"""E6 — Propositions 1 & 2: the average-maximum NN-stretch.

* Prop 1: D^max(π) ≥ the Theorem 1 bound, for every curve.
* Prop 2: D^max(S) = n^{1-1/d} exactly, hence the simple curve is
  optimal for D^max up to a factor ≈ (3/2)·d.
"""

from repro import Universe
from repro.core.asymptotics import dmax_simple_exact
from repro.core.lower_bounds import dmax_lower_bound
from repro.core.stretch import average_maximum_nn_stretch
from repro.curves.registry import curves_for_universe
from repro.curves.simple import SimpleCurve
from repro.viz.tables import format_table

from _bench_utils import run_once

UNIVERSES = [
    Universe.power_of_two(d=2, k=3),
    Universe.power_of_two(d=2, k=5),
    Universe.power_of_two(d=3, k=3),
    Universe.power_of_two(d=4, k=2),
]


def maxstretch_experiment():
    rows = []
    for universe in UNIVERSES:
        bound = dmax_lower_bound(universe.n, universe.d)
        for name, curve in curves_for_universe(universe).items():
            dmax = average_maximum_nn_stretch(curve)
            rows.append(
                {
                    "d": universe.d,
                    "side": universe.side,
                    "curve": name,
                    "Dmax": dmax,
                    "LB(Prop1)": bound,
                    "Dmax/LB": dmax / bound,
                }
            )
    simple_rows = []
    for universe in UNIVERSES:
        measured = average_maximum_nn_stretch(SimpleCurve(universe))
        simple_rows.append(
            {
                "d": universe.d,
                "side": universe.side,
                "Dmax(S) meas": measured,
                "n^(1-1/d)": dmax_simple_exact(universe),
            }
        )
    return rows, simple_rows


def test_e6_prop12_maxstretch(benchmark, results_writer):
    rows, simple_rows = run_once(benchmark, maxstretch_experiment)
    table = format_table(rows) + "\n\nProp 2 (exact):\n" + format_table(
        simple_rows
    )
    results_writer(
        "e6_prop12",
        "E6 / Props 1-2 — Dmax lower bound and Dmax(S) = n^(1-1/d)\n\n"
        + table,
    )
    print("\n" + table)

    for row in rows:
        assert row["Dmax"] >= row["LB(Prop1)"], row
    for row in simple_rows:
        # Prop 2 is an exact identity.
        assert row["Dmax(S) meas"] == float(row["n^(1-1/d)"]), row
    # "Optimal up to a factor equal to the number of dimensions d":
    # ratio ~ (3/2)d asymptotically; allow the finite-size band.
    for row in rows:
        if row["curve"] == "simple":
            assert row["Dmax/LB"] <= 1.8 * row["d"], row
