"""A9 — per-dimension anisotropy and per-cell dispersion of the stretch.

Lemma 5 re-read as a balance statement: the Z curve loads dimension 1
with a fraction 2^{d-1}/(2^d-1) of the total NN-stretch; the simple
curve's loads follow side^{i-1}; Hilbert is nearly isotropic.  Plus
dispersion: who concentrates the stretch on few cells?
"""

from repro import Universe
from repro.analysis.anisotropy import (
    anisotropy_index,
    axis_fractions,
    simple_axis_fraction_exact,
    z_axis_fraction_limit,
)
from repro.analysis.dispersion import stretch_dispersion
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once


def anisotropy_experiment():
    universe = Universe.power_of_two(d=3, k=4)  # 16^3
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "gray", "snake", "simple", "random"]
    )
    rows = []
    for name, curve in zoo.items():
        fractions = axis_fractions(curve)
        rows.append(
            {
                "curve": name,
                "frac_1": fractions[0],
                "frac_2": fractions[1],
                "frac_3": fractions[2],
                "aniso": anisotropy_index(curve),
            }
        )
    disp_rows = []
    u2 = Universe.power_of_two(d=2, k=5)
    for name, curve in curves_for_universe(
        u2, names=["hilbert", "moore", "z", "simple", "random"]
    ).items():
        d = stretch_dispersion(curve)
        disp_rows.append(
            {
                "curve": name,
                "mean": d.mean,
                "std": d.std,
                "gini": d.gini,
                "q99": d.q99,
            }
        )
    return rows, disp_rows


def test_a9_anisotropy_dispersion(benchmark, results_writer):
    rows, disp_rows = run_once(benchmark, anisotropy_experiment)
    table = (
        format_table(rows)
        + "\n\nPer-cell dispersion (32x32):\n"
        + format_table(disp_rows)
    )
    results_writer(
        "a9_anisotropy",
        "A9 — axis balance of Lambda_i (16^3) and per-cell dispersion\n\n"
        + table,
    )
    print("\n" + table)

    by_name = {r["curve"]: r for r in rows}
    # Z's fractions approach the Lemma 5 limits (4/7, 2/7, 1/7).
    for i in (1, 2, 3):
        limit = float(z_axis_fraction_limit(3, i))
        assert abs(by_name["z"][f"frac_{i}"] - limit) < 0.02
    # Simple's fractions are exact geometric weights.
    for i in (1, 2, 3):
        exact = float(simple_axis_fraction_exact(3, 16, i))
        assert abs(by_name["simple"][f"frac_{i}"] - exact) < 1e-9
    # Isotropy ranking: hilbert < z < simple.
    assert by_name["hilbert"]["aniso"] < by_name["z"]["aniso"]
    assert by_name["z"]["aniso"] < by_name["simple"]["aniso"]
    # Random is isotropic in expectation.
    assert by_name["random"]["aniso"] < 1.1
    # Dispersion: simple concentrates least (interior cells identical).
    disp = {r["curve"]: r for r in disp_rows}
    assert disp["simple"]["gini"] < disp["hilbert"]["gini"]
    assert disp["simple"]["gini"] < disp["z"]["gini"]
