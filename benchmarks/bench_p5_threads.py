"""P5 — thread-parallel block reductions inside one metric cell.

PR 3 made every metric a block-wise reduction and PR 4 parallelized
*across* sweep cells; each individual cell still reduced its blocks
serially on one core.  The :mod:`repro.engine.threads` layer fans the
block iterators out to a thread pool — the NumPy block kernels release
the GIL — with an order-preserving merge, so a single cell's metric
set scales across cores while staying **bit-for-bit identical** to the
dense path.

This bench runs the full NN metric set plus a window dilation on a
side=1024 Hilbert cell three ways — dense (reference values), serial
chunked, threaded chunked (``threads=4``) — and asserts the point of
the feature:

* every threaded value equals the dense value **bit-for-bit** (the
  parity flag recorded in the benchmark JSON), and
* with enough hardware, ``threads=4`` beats serial chunked by >= 1.5x
  wall-clock (measured >= 2x on unloaded 4-core machines).

The speedup assertion is gated on the cores this process may actually
use (``sched_getaffinity``): thread-level parallelism physically
cannot beat serial on fewer cores than workers, so a 1-core CI
container records the numbers (and still enforces parity) without
asserting an impossibility.
"""

import os
import time

from repro import Universe
from repro.curves.hilbert import HilbertCurve
from repro.engine.context import MetricContext
from repro.engine.sweep import MetricSpec

from _bench_utils import run_once

#: 1024^2 cells: the regime where the serial chunked NN pass spends
#: ~100% of its time inside GIL-releasing NumPy block kernels.
UNIVERSE = Universe.power_of_two(d=2, k=10)
CHUNK_CELLS = 65536
THREADS = 4
MIN_SPEEDUP = 1.5

#: The multi-metric cell: the one-pass NN scalars plus a windowed
#: dilation (a second, independent block stream).
METRIC_SPECS = (
    "davg",
    "dmax",
    "lambdas",
    "nn_mean",
    "dilation:window=1024",
)

AVAILABLE_CORES = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)


def _run_cell(**context_kwargs):
    """All metrics on a fresh context; returns (values, seconds)."""
    ctx = MetricContext(HilbertCurve(UNIVERSE), **context_kwargs)
    fns = [(spec, MetricSpec.parse(spec).bind()) for spec in METRIC_SPECS]
    start = time.perf_counter()
    values = {spec: fn(ctx) for spec, fn in fns}
    seconds = time.perf_counter() - start
    return values, seconds


def test_p5_threaded_block_reduction(benchmark, results_writer):
    """Acceptance: bit-for-bit vs dense; >=1.5x vs serial chunked."""
    dense_values, t_dense = _run_cell()
    serial_values, t_serial = _run_cell(chunk_cells=CHUNK_CELLS)
    threaded_values, t_threaded = run_once(
        benchmark, _run_cell, chunk_cells=CHUNK_CELLS, threads=THREADS
    )

    parity = threaded_values == dense_values == serial_values
    speedup = t_serial / t_threaded
    benchmark.extra_info["threaded_cell"] = {
        "universe": str(UNIVERSE),
        "metrics": list(METRIC_SPECS),
        "chunk_cells": CHUNK_CELLS,
        "threads": THREADS,
        "available_cores": AVAILABLE_CORES,
        "t_dense_s": round(t_dense, 3),
        "t_serial_chunked_s": round(t_serial, 3),
        "t_threaded_s": round(t_threaded, 3),
        "speedup": round(speedup, 2),
        "bit_for_bit_parity": parity,
    }
    gated = AVAILABLE_CORES >= THREADS
    results_writer(
        "p5_threaded_cell",
        f"P5 — threaded block reductions on {UNIVERSE}, hilbert, "
        f"metrics {', '.join(METRIC_SPECS)}\n"
        f"(chunk_cells={CHUNK_CELLS}, threads={THREADS}, "
        f"{AVAILABLE_CORES} usable cores; values bit-for-bit equal "
        f"to the dense path: {parity})\n\n"
        f"dense           wall: {t_dense:7.3f} s\n"
        f"serial chunked  wall: {t_serial:7.3f} s\n"
        f"threaded x{THREADS}     wall: {t_threaded:7.3f} s   "
        f"speedup vs serial chunked: {speedup:5.2f}x"
        f"{'' if gated else '   (speedup not asserted: too few cores)'}\n",
    )
    print(
        f"\nserial chunked {t_serial:.3f}s vs threads={THREADS} "
        f"{t_threaded:.3f}s ({speedup:.2f}x) on {AVAILABLE_CORES} "
        f"cores; parity={parity}"
    )
    assert parity, (
        f"threaded values diverged: {threaded_values} vs {dense_values}"
    )
    if gated:
        assert speedup >= MIN_SPEEDUP, (
            f"threaded speedup {speedup:.2f}x below {MIN_SPEEDUP}x "
            f"on {AVAILABLE_CORES} cores"
        )


def test_p5_threaded_dense_parity_large():
    """Dense-mode threading on the same cell is also bit-for-bit."""
    dense_values, _ = _run_cell()
    threaded_values, _ = _run_cell(threads=THREADS)
    assert threaded_values == dense_values
