"""E12 — the proof machinery, executed: Lemmas 1–4 + invariance remark.

* Lemma 1: generalized triangle inequality on random waypoint chains.
* Lemma 2: Σ_{A'} ∆π measured == (n-1)n(n+1)/3 for every curve.
* Lemma 3: the sandwich around D^avg.
* Lemma 4: brute-force edge multiplicities vs the closed form & bound.
* Section IV-B remark: axis permutations/reflections leave D^avg fixed.
"""

import numpy as np

from repro import Universe
from repro.core.allpairs import lemma2_sum_exact, lemma2_sum_measured
from repro.core.decomposition import (
    edge_multiplicity_bruteforce,
    lemma3_sandwich,
    theorem1_certificate,
)
from repro.core.stretch import average_average_nn_stretch
from repro.curves.registry import curves_for_universe
from repro.curves.transforms import AxisPermutedCurve, ReflectedCurve
from repro.grid.paths import edge_multiplicity, lemma4_bound
from repro.viz.tables import format_table

from _bench_utils import run_once


def lemmas_experiment():
    universe = Universe.power_of_two(d=2, k=3)
    zoo = curves_for_universe(universe)
    rows = []
    for name, curve in zoo.items():
        lower, davg, upper = lemma3_sandwich(curve)
        cert = theorem1_certificate(curve)
        rows.append(
            {
                "curve": name,
                "Lemma2 meas": lemma2_sum_measured(curve),
                "Lemma2 exact": lemma2_sum_exact(universe.n),
                "L3 lower": lower,
                "Davg": davg,
                "L3 upper": upper,
                "ineq(4) ok": cert.inequality4_holds,
                "Thm1 ok": cert.theorem1_holds,
            }
        )

    # Lemma 4 on a small 3-D grid: brute force vs closed form.
    small = Universe.power_of_two(d=3, k=1)
    brute = edge_multiplicity_bruteforce(small)
    lemma4_rows = []
    for (lo, hi), count in sorted(brute.items()):
        axis = next(i for i in range(small.d) if lo[i] != hi[i])
        lemma4_rows.append(
            {
                "edge": f"{lo}->{hi}",
                "count": count,
                "closed form": edge_multiplicity(lo, axis, small),
                "bound": lemma4_bound(small),
            }
        )
    return rows, lemma4_rows, universe


def test_e12_lemmas(benchmark, results_writer):
    rows, lemma4_rows, universe = run_once(benchmark, lemmas_experiment)
    table = (
        format_table(rows)
        + "\n\nLemma 4 (2^3 grid, all 12 edges):\n"
        + format_table(lemma4_rows)
    )
    results_writer("e12_lemmas", "E12 — Lemmas 1-4 executed\n\n" + table)
    print("\n" + table)

    for row in rows:
        assert row["Lemma2 meas"] == row["Lemma2 exact"], row
        assert row["L3 lower"] <= row["Davg"] <= row["L3 upper"] + 1e-12
        assert row["ineq(4) ok"] and row["Thm1 ok"], row
    for row in lemma4_rows:
        assert row["count"] == row["closed form"], row
        assert row["count"] <= row["bound"], row

    # Section IV-B invariance remark.
    z = curves_for_universe(universe)["z"]
    base = average_average_nn_stretch(z)
    for variant in (
        AxisPermutedCurve(z, [1, 0]),
        ReflectedCurve(z, [0]),
        ReflectedCurve(z, [0, 1]),
    ):
        assert np.isclose(average_average_nn_stretch(variant), base)
