"""P3 — chunked vs dense engine: peak memory O(block) vs O(cells).

The paper's lower bounds only become visible at large side lengths, but
the dense engine holds the full ``(side,)*d`` key grid plus the per-axis
distance arrays — ``O(cells)`` peak memory — capping how far
convergence studies can climb.  The chunked mode streams fixed-size
blocks instead; this bench measures both paths on the same universe and
asserts the point of the feature:

* every metric value is **bit-for-bit identical**, and
* the chunked allocation peak is bounded by the block size, not the
  cell count (we demand at least a 4x reduction; the measured gap is
  far larger).

Peak memory is the tracemalloc allocation peak (resettable per phase,
and it tracks NumPy buffers); ``ru_maxrss`` is recorded alongside for
reference but is monotone per process, so the assertion uses
tracemalloc.  Both measurements plus wall-clock land in the
pytest-benchmark JSON via ``extra_info["peak_memory"]``.
"""

import resource

from repro import Universe
from repro.engine.context import MetricContext
from repro.engine.sweep import Sweep
from repro.curves.zcurve import ZCurve

from _bench_utils import run_once

#: 1M cells: the dense path holds ~8 MB of keys plus ~32 MB of
#: distance/per-cell intermediates; one chunked block is 512 KiB.
UNIVERSE = Universe.power_of_two(d=2, k=10)
CHUNK_CELLS = 1 << 16
CHUNK_BUDGET = 4 * 2**20  # block cache budget: a handful of blocks


def _metric_set(ctx: MetricContext) -> tuple:
    """The NN scalar set every survey row consumes."""
    return (
        ctx.davg(),
        ctx.dmax(),
        tuple(int(v) for v in ctx.lambda_sums()),
        ctx.nn_mean(),
    )


def _dense() -> tuple:
    return _metric_set(MetricContext(ZCurve(UNIVERSE)))


def _chunked() -> tuple:
    ctx = MetricContext(
        ZCurve(UNIVERSE), max_bytes=CHUNK_BUDGET, chunk_cells=CHUNK_CELLS
    )
    return _metric_set(ctx)


def test_p3_chunked_peak_memory_bounded(benchmark, peak_memory, results_writer):
    """Acceptance: chunked peak memory is O(block), values identical.

    The chunked phase runs under the benchmark timer, so the JSON
    output carries its wall-clock alongside the
    ``extra_info["peak_memory"]`` payload of both phases.
    """
    dense_values, dense_peak, dense_time = peak_memory("dense", _dense)
    chunked_values, chunked_peak, chunked_time = peak_memory(
        "chunked", lambda: run_once(benchmark, _chunked)
    )
    rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    assert chunked_values == dense_values  # bit-for-bit identical

    results_writer(
        "p3_chunked_memory",
        "P3 — dense vs chunked NN metric set (Davg, Dmax, Lambda, NN "
        f"mean) on {UNIVERSE}\n"
        f"(chunk_cells={CHUNK_CELLS}, block cache budget "
        f"{CHUNK_BUDGET // 2**20} MiB)\n\n"
        f"dense   peak alloc: {dense_peak / 2**20:9.2f} MiB   "
        f"wall: {dense_time * 1e3:8.1f} ms\n"
        f"chunked peak alloc: {chunked_peak / 2**20:9.2f} MiB   "
        f"wall: {chunked_time * 1e3:8.1f} ms\n"
        f"reduction:          {dense_peak / chunked_peak:9.1f}x\n"
        f"process ru_maxrss:  {rss_kib / 1024:9.1f} MiB (monotone)\n",
    )
    print(
        f"\npeak alloc dense {dense_peak / 2**20:.1f} MiB vs chunked "
        f"{chunked_peak / 2**20:.1f} MiB "
        f"({dense_peak / chunked_peak:.1f}x)"
    )
    # O(block) vs O(cells): demand a clear multiple with noise slack.
    assert chunked_peak * 4 < dense_peak, (
        f"chunked peak {chunked_peak} not O(block) vs dense {dense_peak}"
    )


def test_p3_chunked_sweep_beyond_dense_budget(benchmark, peak_memory):
    """A full sweep completes where the dense grid exceeds the budget.

    The sweep's ``max_bytes`` is set below the dense key-grid size, so
    chunked mode is auto-selected (no ``chunk_cells`` given) and the
    run must stay within a block-bounded footprint.
    """
    budget = 2 * 2**20  # 2 MiB < 8 MiB dense key grid

    def run():
        return Sweep(
            universes=[UNIVERSE],
            curves=["z"],
            metrics=("davg", "dmax", "nn_mean"),
            reports=False,
            max_bytes=budget,
        ).run()

    result, peak, _ = peak_memory(
        "auto_chunked_sweep", lambda: run_once(benchmark, run)
    )
    stats = result.cache_stats
    assert any(key.startswith("key_slab") for key in stats.computes)
    assert "key_grid" not in stats.computes
    dense_grid_bytes = UNIVERSE.n * 8
    assert peak < dense_grid_bytes, (
        f"auto-chunked sweep peak {peak} should undercut the dense "
        f"key grid ({dense_grid_bytes})"
    )
    (record,) = result.records
    assert record.values["davg"] > 0
