"""A4 — N-body window search: recall vs curve window.

The N-body motivation quantified: the window (in curve order) needed
to capture 90/99/100% of nearest-neighbor interactions, per curve —
a direct functional of the NN-stretch distribution.
"""

from repro import Universe
from repro.analysis.distribution import nn_distance_ccdf, window_for_recall
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once

WINDOWS = (1, 2, 4, 8, 16, 32, 64)


def nbody_experiment():
    universe = Universe.power_of_two(d=2, k=5)
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "gray", "snake", "simple", "random"]
    )
    rows = []
    for name, curve in zoo.items():
        ccdf = nn_distance_ccdf(curve, WINDOWS)
        rows.append(
            {
                "curve": name,
                "w(90%)": window_for_recall(curve, 0.90),
                "w(99%)": window_for_recall(curve, 0.99),
                "w(100%)": window_for_recall(curve, 1.00),
                **{f"miss@{w}": ccdf[w] for w in (4, 16, 64)},
            }
        )
    return rows


def test_a4_nbody_window(benchmark, results_writer):
    rows = run_once(benchmark, nbody_experiment)
    rows.sort(key=lambda r: r["w(99%)"])
    table = format_table(rows)
    results_writer(
        "a4_nbody",
        "A4 — window needed per recall target (32x32 grid)\n\n" + table,
    )
    print("\n" + table)

    by_name = {r["curve"]: r for r in rows}
    # Theorem 1 says windows of order n^{1-1/d} = side are unavoidable
    # on average; structured curves achieve 90% within O(side) while a
    # random bijection needs a window of order n.
    side = 32
    assert by_name["hilbert"]["w(90%)"] <= 2 * side
    assert by_name["z"]["w(90%)"] <= 2 * side
    assert by_name["random"]["w(90%)"] > 10 * side
    # Windows are monotone in the recall target.
    for row in rows:
        assert row["w(90%)"] <= row["w(99%)"] <= row["w(100%)"]
    # Full recall for the simple curve needs exactly side^{d-1}
    # (Proposition 2's structure: the vertical-neighbor distance).
    assert by_name["simple"]["w(100%)"] == 32
