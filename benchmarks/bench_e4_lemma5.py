"""E4 — Lemma 5: per-axis NN sums of the Z curve.

Two levels of validation:

1. **Exact**: measured Λ_i(Z) equals the proof's finite-n closed form
   (an integer identity) for every d, k, i tested.
2. **Limit**: Λ_i(Z)/n^{2-1/d} → 2^{d-i}/(2^d-1) with shrinking gap.
"""

from repro import Universe
from repro.core.asymptotics import lambda_limit_coefficient, lambda_z_exact
from repro.core.stretch import lambda_sums
from repro.curves.zcurve import ZCurve
from repro.viz.tables import format_table

from _bench_utils import run_once

CASES = [(2, 3), (2, 5), (2, 7), (3, 2), (3, 4), (4, 2)]


def lemma5_experiment():
    rows = []
    for d, k in CASES:
        universe = Universe.power_of_two(d=d, k=k)
        measured = lambda_sums(ZCurve(universe))
        scale = universe.n ** (2 - 1 / d)
        for i in range(1, d + 1):
            exact = lambda_z_exact(universe, i)
            limit = float(lambda_limit_coefficient(d, i))
            rows.append(
                {
                    "d": d,
                    "k": k,
                    "i": i,
                    "Lambda_i (meas)": int(measured[i - 1]),
                    "Lambda_i (exact)": exact,
                    "ratio/n^(2-1/d)": measured[i - 1] / scale,
                    "limit 2^(d-i)/(2^d-1)": limit,
                }
            )
    return rows


def test_e4_lemma5(benchmark, results_writer):
    rows = run_once(benchmark, lemma5_experiment)
    table = format_table(rows)
    results_writer(
        "e4_lemma5",
        "E4 / Lemma 5 — Lambda_i(Z): exact finite-n identity and limits\n\n"
        + table,
    )
    print("\n" + table)

    for row in rows:
        # Integer identity from the proof.
        assert row["Lambda_i (meas)"] == row["Lambda_i (exact)"], row
    # Limit quality at the best-resolved case (d=2, k=7).
    fine = [r for r in rows if (r["d"], r["k"]) == (2, 7)]
    for row in fine:
        assert abs(
            row["ratio/n^(2-1/d)"] - row["limit 2^(d-i)/(2^d-1)"]
        ) < 0.01 * row["limit 2^(d-i)/(2^d-1)"] + 1e-9
