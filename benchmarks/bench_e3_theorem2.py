"""E3 — Theorem 2: D^avg(Z) ~ n^{1-1/d}/d.

Convergence table: the ratio of the measured D^avg(Z) to the claimed
leading term approaches 1 monotonically as k grows, for d = 2, 3, 4.
"""

from repro import Universe
from repro.analysis.convergence import convergence_study, is_converging
from repro.core.asymptotics import davg_z_limit
from repro.core.stretch import average_average_nn_stretch
from repro.curves.zcurve import ZCurve
from repro.viz.tables import format_table

from _bench_utils import run_once

SWEEPS = {2: (2, 3, 4, 5, 6, 7), 3: (1, 2, 3, 4), 4: (1, 2, 3)}


def theorem2_convergence():
    all_points = {}
    for d, ks in SWEEPS.items():
        points = convergence_study(
            list(ks),
            measure=lambda k, d=d: average_average_nn_stretch(
                ZCurve(Universe.power_of_two(d=d, k=k))
            ),
            reference=lambda k, d=d: davg_z_limit(2 ** (k * d), d),
            n_of=lambda k, d=d: 2 ** (k * d),
        )
        all_points[d] = points
    return all_points


def test_e3_theorem2_z_convergence(benchmark, results_writer):
    all_points = run_once(benchmark, theorem2_convergence)

    rows = []
    for d, points in all_points.items():
        for pt in points:
            rows.append(
                {
                    "d": d,
                    "k": pt.parameter,
                    "n": pt.n,
                    "Davg(Z)": pt.measured,
                    "n^(1-1/d)/d": pt.reference,
                    "ratio": pt.ratio,
                    "|ratio-1|": pt.gap,
                }
            )
    table = format_table(rows)
    results_writer(
        "e3_theorem2",
        "E3 / Theorem 2 — Davg(Z) ~ n^(1-1/d)/d (ratio -> 1)\n\n" + table,
    )
    print("\n" + table)

    for d, points in all_points.items():
        assert is_converging(points, final_gap=0.2), f"d={d} not converging"
    # The best-resolved sweep (d=2, k=7) must be within 3%.
    assert all_points[2][-1].gap < 0.03

    # Sharpening: our exact closed form (core.zexact) reproduces every
    # measured point bit-exactly, and extends the convergence check to
    # n = 2^60 where no grid fits in memory.
    from repro import Universe
    from repro.core.asymptotics import davg_z_limit
    from repro.core.zexact import davg_z_exact

    for d, points in all_points.items():
        for pt in points:
            u = Universe.from_cell_count(d=d, n=pt.n)
            assert abs(pt.measured - float(davg_z_exact(u))) < 1e-9
    huge = Universe.power_of_two(d=2, k=30)  # n = 2^60
    ratio = float(davg_z_exact(huge)) / davg_z_limit(huge.n, 2)
    assert abs(ratio - 1.0) < 1e-8
