"""A10 — periodic domains and dynamic re-sorting.

Two extensions of the paper's model toward real HPC workloads:

* **Torus**: D^avg with periodic neighbors — boundary corrections
  vanish but wrap pairs are expensive; the box lower bound holds a
  fortiori, and the simple curve's torus closed forms are exact.
* **Drift resort**: per-step cost of repairing the curve-sorted
  particle array as particles take unit steps — governed by the mean
  NN curve distance, i.e. the paper's metric in motion.
"""

from repro import Universe
from repro.apps.resort import (
    drift_step_cost,
    expected_unit_move_key_displacement,
)
from repro.core.lower_bounds import davg_lower_bound
from repro.core.stretch import average_average_nn_stretch
from repro.core.torus import (
    average_average_nn_stretch_torus,
    davg_torus_simple_exact,
)
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once


def torus_resort_experiment():
    universe = Universe.power_of_two(d=2, k=5)
    zoo = curves_for_universe(
        universe, names=["hilbert", "moore", "z", "snake", "simple", "random"]
    )
    torus_rows = []
    for name, curve in zoo.items():
        torus_rows.append(
            {
                "curve": name,
                "Davg(box)": average_average_nn_stretch(curve),
                "Davg(torus)": average_average_nn_stretch_torus(curve),
            }
        )
    resort_rows = []
    for name, curve in zoo.items():
        cost = drift_step_cost(curve, n_particles=1000, steps=5, seed=3)
        resort_rows.append(
            {
                "curve": name,
                "E[unit key shift]": expected_unit_move_key_displacement(
                    curve
                ),
                "key shift/step": cost.mean_key_displacement,
                "rank shift/step": cost.mean_rank_displacement,
                "worst rank shift": cost.max_rank_displacement,
            }
        )
    return torus_rows, resort_rows, universe


def test_a10_torus_and_resort(benchmark, results_writer):
    torus_rows, resort_rows, universe = run_once(
        benchmark, torus_resort_experiment
    )
    table = (
        format_table(torus_rows)
        + "\n\nDrift resort (1000 particles, 5 steps):\n"
        + format_table(resort_rows)
    )
    results_writer(
        "a10_torus_resort",
        "A10 — torus metrics and dynamic resort cost (32x32)\n\n" + table,
    )
    print("\n" + table)

    bound = davg_lower_bound(universe.n, universe.d)
    by_name = {r["curve"]: r for r in torus_rows}
    for row in torus_rows:
        # The box lower bound continues to hold on the torus.
        assert row["Davg(torus)"] >= bound
    # For structured curves wrap pairs are expensive, so the torus
    # value exceeds the box value.  (Not universal: for a random
    # bijection the |N| re-weighting of boundary cells can dip the
    # average slightly.)
    for name in ("hilbert", "moore", "z", "snake", "simple"):
        assert (
            by_name[name]["Davg(torus)"]
            >= by_name[name]["Davg(box)"] - 1e-12
        )
    # Simple-curve torus closed form.
    assert by_name["simple"]["Davg(torus)"] == float(
        davg_torus_simple_exact(universe)
    )
    # All structured curves stay within a tight band on the torus —
    # wrap pairs wash out the box-ranking differences (simple/z edge
    # out hilbert/moore here), and all remain far below random.
    structured = [
        by_name[n]["Davg(torus)"]
        for n in ("hilbert", "moore", "z", "snake", "simple")
    ]
    assert max(structured) / min(structured) < 1.1
    assert max(structured) < by_name["random"]["Davg(torus)"] / 5

    resort = {r["curve"]: r for r in resort_rows}
    # Resort cost ranks by NN stretch: structured curves ≪ random.
    assert (
        resort["hilbert"]["rank shift/step"]
        < resort["random"]["rank shift/step"] / 2
    )
    # Measured drift key shift tracks the NN-distance expectation.
    for name in ("hilbert", "z", "simple"):
        expect = resort[name]["E[unit key shift]"]
        measured = resort[name]["key shift/step"]
        assert abs(measured - expect) < 0.35 * expect, name
