"""Helpers shared by all bench files."""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The experiment payloads are deterministic sweeps, so repeating them
    only wastes wall-clock; pedantic mode records a single round.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
