"""Helpers shared by all bench files."""

from __future__ import annotations


def cache_stats_payload(stats) -> dict:
    """A :class:`repro.engine.CacheStats` as a JSON-friendly dict."""
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 4),
        "computes": stats.total_computes,
        "derived": stats.total_derived,
        "mmap": stats.total_mmap,
        "evictions": stats.evictions,
    }


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    The experiment payloads are deterministic sweeps, so repeating them
    only wastes wall-clock; pedantic mode records a single round.
    """
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
