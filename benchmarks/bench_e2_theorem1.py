"""E2 — Theorem 1: the universal lower bound on D^avg.

For every registered curve on a sweep of universes, the measured D^avg
must sit above (2/3d)(n^{1-1/d} - n^{-1-1/d}).  The table reports the
ratio to the bound per curve — the paper's "inherent limit" made
visible.
"""

from repro import Universe
from repro.core.lower_bounds import davg_lower_bound
from repro.core.stretch import average_average_nn_stretch
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once

UNIVERSES = [
    Universe.power_of_two(d=2, k=3),
    Universe.power_of_two(d=2, k=5),
    Universe.power_of_two(d=3, k=2),
    Universe.power_of_two(d=3, k=3),
    Universe.power_of_two(d=4, k=2),
]


def theorem1_sweep():
    rows = []
    for universe in UNIVERSES:
        bound = davg_lower_bound(universe.n, universe.d)
        for name, curve in curves_for_universe(universe).items():
            davg = average_average_nn_stretch(curve)
            rows.append(
                {
                    "d": universe.d,
                    "side": universe.side,
                    "n": universe.n,
                    "curve": name,
                    "Davg": davg,
                    "LB": bound,
                    "Davg/LB": davg / bound,
                }
            )
    return rows


def test_e2_theorem1_lower_bound(benchmark, results_writer):
    rows = run_once(benchmark, theorem1_sweep)
    table = format_table(rows)
    results_writer(
        "e2_theorem1",
        "E2 / Theorem 1 — D^avg >= (2/3d)(n^(1-1/d) - n^(-1-1/d)) "
        "for EVERY curve\n\n" + table,
    )
    print("\n" + table)

    # The negative result: no curve anywhere below the bound.
    for row in rows:
        assert row["Davg"] >= row["LB"], row
    # The bound is tight up to a small constant: some curve is < 2x.
    for universe in UNIVERSES:
        ratios = [
            r["Davg/LB"]
            for r in rows
            if (r["d"], r["side"]) == (universe.d, universe.side)
        ]
        assert min(ratios) < 2.0
