"""E2 — Theorem 1: the universal lower bound on D^avg.

For every registered curve on a sweep of universes, the measured D^avg
must sit above (2/3d)(n^{1-1/d} - n^{-1-1/d}).  The table reports the
ratio to the bound per curve — the paper's "inherent limit" made
visible.
"""

from repro import Universe
from repro.viz.tables import format_table

from _bench_utils import run_once

UNIVERSES = [
    Universe.power_of_two(d=2, k=3),
    Universe.power_of_two(d=2, k=5),
    Universe.power_of_two(d=3, k=2),
    Universe.power_of_two(d=3, k=3),
    Universe.power_of_two(d=4, k=2),
]


def theorem1_sweep(run_sweep):
    result = run_sweep(
        UNIVERSES,
        metrics=("davg", "lower_bound", "davg_ratio"),
        reports=False,
    )
    return [
        {
            "d": rec.d,
            "side": rec.side,
            "n": rec.n,
            "curve": rec.curve_name,
            "Davg": rec.values["davg"],
            "LB": rec.values["lower_bound"],
            "Davg/LB": rec.values["davg_ratio"],
        }
        for rec in result.records
    ]


def test_e2_theorem1_lower_bound(benchmark, results_writer, run_sweep):
    rows = run_once(benchmark, theorem1_sweep, run_sweep)
    table = format_table(rows)
    results_writer(
        "e2_theorem1",
        "E2 / Theorem 1 — D^avg >= (2/3d)(n^(1-1/d) - n^(-1-1/d)) "
        "for EVERY curve\n\n" + table,
    )
    print("\n" + table)

    # The negative result: no curve anywhere below the bound.
    for row in rows:
        assert row["Davg"] >= row["LB"], row
    # The bound is tight up to a small constant: some curve is < 2x.
    for universe in UNIVERSES:
        ratios = [
            r["Davg/LB"]
            for r in rows
            if (r["d"], r["side"]) == (universe.d, universe.side)
        ]
        assert min(ratios) < 2.0
