"""P10 — incremental metric engine vs from-scratch recompute.

A dynamic universe (N-body drift, particles churning between cells)
needs population metrics *per step*, and the step only touches k ≪ N
particles.  :class:`repro.engine.dynamic.DynamicUniverse` maintains
D^avg (integer stretch partials), the windowed dilation (bucketed
window-max) and partition loads in O(k·d) per batch; the bench pits
that delta path against calling :meth:`recompute` every step.

Two timings per workload:

* **bulk load** — one-shot ingestion of N points (vectorized batch
  encode + single stable sort);
* **sustained traffic** — a pre-generated mixed insert/delete/move
  stream applied in batches of k, incremental vs recompute-per-batch.

Acceptance: at k ≤ N/100 the incremental path wins by ≥ 5x, and the
incrementally maintained metrics equal a full recompute — with ``==``,
never approximately — after the stream.  Both the parity flag and the
workload shape (k, N) land in the benchmark JSON via ``extra_info``.
"""

from __future__ import annotations

import time

import numpy as np

from repro import Universe
from repro.engine.dynamic import DynamicUniverse

from _bench_utils import run_once

#: 20k particles on a 256^2 hilbert universe; k = 64 moves per batch
#: (k ≤ N/100 = 200 — the "small batch against a large population"
#: regime the delta engine exists for).
N_POINTS = 20_000
SIDE = 256
D = 2
SPEC = "hilbert"
BATCH_SIZE = 64
N_BATCHES = 10
MIN_SPEEDUP = 5.0


def _make_loaded(seed: int = 7) -> DynamicUniverse:
    dyn = DynamicUniverse(SPEC, universe=Universe(d=D, side=SIDE))
    rng = np.random.default_rng(seed)
    dyn.bulk_load(
        rng.integers(0, SIDE, size=(N_POINTS, D), dtype=np.int64)
    )
    # Settle the initial full-window dilation repair so the timed
    # loops below measure steady-state delta updates only.
    dyn.metrics()
    return dyn


def _traffic(dyn: DynamicUniverse, seed: int = 8):
    """Pre-generate N_BATCHES mixed batches against dyn's population.

    Delete/move targets are tracked so every op is valid when the
    stream is later replayed against an identically seeded universe.
    """
    rng = np.random.default_rng(seed)
    live = set(int(p) for p in dyn.pids())
    next_pid = max(live) + 1 if live else 0
    batches = []
    for _ in range(N_BATCHES):
        moves = []
        pool = sorted(live)
        for _ in range(BATCH_SIZE):
            roll = rng.random()
            if roll < 0.25 or not pool:
                coords = tuple(
                    int(c) for c in rng.integers(0, SIDE, size=D)
                )
                moves.append(("insert", coords))
                live.add(next_pid)
                pool.append(next_pid)
                next_pid += 1
            else:
                pid = pool[int(rng.integers(0, len(pool)))]
                if roll < 0.4:
                    moves.append(("delete", pid))
                    live.discard(pid)
                    pool.remove(pid)
                else:
                    coords = tuple(
                        int(c) for c in rng.integers(0, SIDE, size=D)
                    )
                    moves.append(("move", pid, coords))
        batches.append(moves)
    return batches


def test_p10_bulk_load(benchmark, workload_shape, results_writer):
    """One-shot ingestion of the full population, timed."""
    workload_shape(n_points=N_POINTS, batch_size=N_POINTS, mode="bulk")

    def load():
        start = time.perf_counter()
        dyn = _make_loaded()
        return dyn, time.perf_counter() - start

    dyn, seconds = run_once(benchmark, load)
    assert len(dyn) == N_POINTS
    assert dyn.metrics() == dyn.recompute()
    benchmark.extra_info["bulk_load"] = {
        "seconds": round(seconds, 4),
        "points_per_s": round(N_POINTS / seconds),
        "parity": True,
    }
    results_writer(
        "p10_dynamic_bulk_load",
        f"P10 — bulk load ({SPEC} on {SIDE}^{D}, N={N_POINTS})\n\n"
        f"load + first metrics: {seconds * 1e3:8.1f} ms "
        f"({N_POINTS / seconds:,.0f} points/s)\n"
        "parity: metrics == recompute after load\n",
    )
    print(f"\nbulk load: {seconds * 1e3:.1f} ms")


def test_p10_incremental_vs_recompute(
    benchmark, workload_shape, results_writer
):
    """Acceptance: ≥ 5x at k ≤ N/100, exact parity after the stream."""
    assert BATCH_SIZE <= N_POINTS // 100

    # Two identically seeded universes replay the same stream, so the
    # per-batch cost comparison is apples to apples.
    inc = _make_loaded()
    ref = _make_loaded()
    batches = _traffic(inc)

    def drive_incremental():
        start = time.perf_counter()
        for moves in batches:
            inc.apply(moves)
        return time.perf_counter() - start

    def drive_recompute():
        start = time.perf_counter()
        for moves in batches:
            ref.apply(moves)
            ref.recompute()
        return time.perf_counter() - start

    inc_s = run_once(benchmark, drive_incremental)
    rec_s = drive_recompute()

    # Exact parity: the maintained aggregates equal a from-scratch
    # pass, and both replicas landed on the same state.
    parity = inc.metrics() == inc.recompute()
    assert parity
    assert inc.metrics() == ref.metrics()

    per_batch_inc = inc_s / N_BATCHES
    per_batch_rec = rec_s / N_BATCHES
    speedup = rec_s / inc_s
    ops_per_s = N_BATCHES * BATCH_SIZE / inc_s
    workload_shape(
        n_points=N_POINTS,
        batch_size=BATCH_SIZE,
        n_batches=N_BATCHES,
        mode="sustained",
    )
    benchmark.extra_info["dynamic"] = {
        "incremental_s": round(inc_s, 4),
        "recompute_s": round(rec_s, 4),
        "per_batch_incremental_ms": round(per_batch_inc * 1e3, 3),
        "per_batch_recompute_ms": round(per_batch_rec * 1e3, 3),
        "speedup": round(speedup, 2),
        "ops_per_s": round(ops_per_s),
        "parity": bool(parity),
    }
    results_writer(
        "p10_dynamic_incremental",
        f"P10 — incremental vs recompute ({SPEC} on {SIDE}^{D}, "
        f"N={N_POINTS}, k={BATCH_SIZE}, {N_BATCHES} batches)\n\n"
        f"incremental: {per_batch_inc * 1e3:8.2f} ms/batch "
        f"({ops_per_s:,.0f} ops/s)\n"
        f"recompute:   {per_batch_rec * 1e3:8.2f} ms/batch\n"
        f"speedup:     {speedup:8.1f}x\n"
        "parity: incremental == recompute after the stream\n",
    )
    print(
        f"\nincremental {per_batch_inc * 1e3:.2f} ms/batch vs "
        f"recompute {per_batch_rec * 1e3:.2f} ms/batch "
        f"({speedup:.1f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"incremental path only {speedup:.2f}x over recompute at "
        f"k={BATCH_SIZE}, N={N_POINTS} (want >= {MIN_SPEEDUP}x)"
    )
