"""E9 — Figure 3: the 2-D Z curve on the 8x8 grid, cell by cell.

The figure assigns each cell the binary key formed by interleaving the
coordinate bits (dimension 1's bit first in each group).  We regenerate
the full 64-cell grid and check it against the interleaving definition
and the figure's readable landmarks.
"""

import numpy as np

from repro import Universe
from repro.curves.zcurve import ZCurve
from repro.viz.ascii_art import render_key_grid_binary, render_path

from _bench_utils import run_once


def figure3_experiment():
    universe = Universe.power_of_two(d=2, k=3)
    z = ZCurve(universe)
    return z.key_grid(), render_key_grid_binary(z), render_path(z)


def test_e9_figure3_zcurve_grid(benchmark, results_writer):
    grid, binary_render, path_render = run_once(benchmark, figure3_experiment)

    results_writer(
        "e9_figure3",
        "E9 / Figure 3 — 2-D Z curve on the 8x8 grid (binary keys, "
        "top row y=7)\n\n" + binary_render + "\n\nOrder trace:\n"
        + path_render,
    )
    print("\n" + binary_render)

    # Full-grid oracle: key = interleave(x1, x2) with x1 bit first.
    for x1 in range(8):
        for x2 in range(8):
            expected = 0
            for bit in range(3):
                expected |= ((x1 >> bit) & 1) << (2 * bit + 1)
                expected |= ((x2 >> bit) & 1) << (2 * bit)
            assert grid[x1, x2] == expected, (x1, x2)

    # Landmarks readable off the printed figure.
    assert grid[0, 0] == 0b000000
    assert grid[1, 0] == 0b000010
    assert grid[0, 1] == 0b000001
    assert grid[7, 7] == 0b111111
    assert grid[4, 0] == 0b100000
    assert grid[0, 4] == 0b010000
    # The recursive Z shape: each quadrant holds one contiguous quarter.
    quadrants = [grid[:4, :4], grid[:4, 4:], grid[4:, :4], grid[4:, 4:]]
    starts = sorted(int(q.min()) for q in quadrants)
    assert starts == [0, 16, 32, 48]
    for q in quadrants:
        assert int(q.max()) - int(q.min()) == 15
