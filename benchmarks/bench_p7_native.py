"""P7 — native compiled kernels + vectorized batch encode.

PR 7 adds :mod:`repro.engine.native`: a small C library for the hot
block paths (NN pair fold, neighbor counts, window maxima, batch
curve encode/decode), built on demand with the system compiler and
selected with ``backend="native"``/``"auto"``.  Values are bit-for-bit
identical across backends — the C kernels only produce int64 partials;
float math stays in Python on both paths.

Two experiments on a side=1024 Hilbert cell:

* **batch encode** — ``curve.keys_of`` over 2^20 random points,
  throughput-normalized against the historical per-cell
  ``curve.index`` loop (the pattern the resort/nbody/rangequery hot
  loops used).  Asserted >= 2x; measured two to three orders of
  magnitude.
* **NN block reduction** — the one-pass chunked NN metric set
  (``davg``/``dmax``/``lambdas``/``nn_mean``), numpy vs native
  backend.  Asserted >= 1.3x when the native kernels are available.

On hosts without a C compiler the numbers are still recorded (the
``native`` rows fall back to numpy and say so in the JSON); only the
speedup assertions are skipped — parity is enforced unconditionally.
"""

import time

import numpy as np

from repro import Universe
from repro.curves.hilbert import HilbertCurve
from repro.engine import native
from repro.engine.context import MetricContext

from _bench_utils import run_once

UNIVERSE = Universe.power_of_two(d=2, k=10)
CHUNK_CELLS = 65536
N_POINTS = 1 << 20
#: Per-cell loop sample: enough for a stable rate, small enough that
#: the deliberately-slow baseline stays under a second.
LOOP_POINTS = 2000
MIN_ENCODE_SPEEDUP = 2.0
MIN_REDUCTION_SPEEDUP = 1.3

NATIVE_AVAILABLE = native.available()


def _nn_cell(backend: str):
    """The chunked one-pass NN metric set; returns (values, seconds)."""
    ctx = MetricContext(
        HilbertCurve(UNIVERSE), chunk_cells=CHUNK_CELLS, backend=backend
    )
    start = time.perf_counter()
    values = (
        ctx.davg(),
        ctx.dmax(),
        tuple(ctx.lambda_sums().tolist()),
        ctx.nn_mean(),
    )
    return values, time.perf_counter() - start


def test_p7_batch_encode_throughput(benchmark, results_writer):
    """Acceptance: keys_of >= 2x the per-cell index loop (throughput)."""
    curve = HilbertCurve(UNIVERSE)
    rng = np.random.default_rng(0)
    points = rng.integers(
        0, UNIVERSE.side, size=(N_POINTS, UNIVERSE.d), dtype=np.int64
    )

    start = time.perf_counter()
    loop_keys = np.array(
        [int(curve.index(p)) for p in points[:LOOP_POINTS]], dtype=np.int64
    )
    t_loop = time.perf_counter() - start
    loop_rate = LOOP_POINTS / t_loop

    def timed_keys_of(backend):
        start = time.perf_counter()
        keys = curve.keys_of(points, backend=backend)
        return keys, time.perf_counter() - start

    numpy_keys, t_numpy = timed_keys_of("numpy")
    native_keys, t_native = run_once(benchmark, timed_keys_of, "native")

    parity = bool(
        (numpy_keys[:LOOP_POINTS] == loop_keys).all()
        and (native_keys == numpy_keys).all()
    )
    batch_rate = N_POINTS / min(t_numpy, t_native)
    speedup_vs_loop = batch_rate / loop_rate
    benchmark.extra_info["batch_encode"] = {
        "universe": str(UNIVERSE),
        "points": N_POINTS,
        "native_available": NATIVE_AVAILABLE,
        "per_cell_loop_pts_per_s": round(loop_rate),
        "keys_of_numpy_pts_per_s": round(N_POINTS / t_numpy),
        "keys_of_native_pts_per_s": round(N_POINTS / t_native),
        "speedup_vs_loop": round(speedup_vs_loop, 1),
        "native_vs_numpy": round(t_numpy / t_native, 2),
        "bit_for_bit_parity": parity,
    }
    results_writer(
        "p7_batch_encode",
        f"P7 — batch encode on {UNIVERSE}, hilbert, {N_POINTS} points "
        f"(native kernels available: {NATIVE_AVAILABLE})\n\n"
        f"per-cell index loop : {loop_rate:12,.0f} pts/s\n"
        f"keys_of (numpy)     : {N_POINTS / t_numpy:12,.0f} pts/s\n"
        f"keys_of (native)    : {N_POINTS / t_native:12,.0f} pts/s\n"
        f"batch vs loop: {speedup_vs_loop:.0f}x   "
        f"native vs numpy batch: {t_numpy / t_native:.2f}x   "
        f"parity: {parity}\n",
    )
    print(
        f"\nbatch encode {speedup_vs_loop:.0f}x vs per-cell loop; "
        f"native vs numpy {t_numpy / t_native:.2f}x; parity={parity}"
    )
    assert parity
    assert speedup_vs_loop >= MIN_ENCODE_SPEEDUP, (
        f"batch encode speedup {speedup_vs_loop:.1f}x below "
        f"{MIN_ENCODE_SPEEDUP}x"
    )


def test_p7_native_nn_reduction(benchmark, results_writer):
    """Acceptance: native NN reduction >= 1.3x numpy when available."""
    numpy_values, t_numpy = _nn_cell("numpy")
    native_values, t_native = run_once(benchmark, _nn_cell, "native")

    parity = native_values == numpy_values
    speedup = t_numpy / t_native
    benchmark.extra_info["nn_reduction"] = {
        "universe": str(UNIVERSE),
        "chunk_cells": CHUNK_CELLS,
        "native_available": NATIVE_AVAILABLE,
        "native_fell_back_to_numpy": not NATIVE_AVAILABLE,
        "t_numpy_s": round(t_numpy, 3),
        "t_native_s": round(t_native, 3),
        "speedup": round(speedup, 2),
        "bit_for_bit_parity": parity,
    }
    results_writer(
        "p7_native_nn_reduction",
        f"P7 — chunked NN reduction on {UNIVERSE}, hilbert "
        f"(chunk_cells={CHUNK_CELLS}; native kernels available: "
        f"{NATIVE_AVAILABLE}; values bit-for-bit equal: {parity})\n\n"
        f"numpy backend  wall: {t_numpy:7.3f} s\n"
        f"native backend wall: {t_native:7.3f} s   "
        f"speedup: {speedup:5.2f}x"
        f"{'' if NATIVE_AVAILABLE else '   (not asserted: no compiler)'}\n",
    )
    print(
        f"\nNN reduction numpy {t_numpy:.3f}s vs native {t_native:.3f}s "
        f"({speedup:.2f}x); native_available={NATIVE_AVAILABLE}; "
        f"parity={parity}"
    )
    assert parity, (
        f"backend values diverged: {native_values} vs {numpy_values}"
    )
    if NATIVE_AVAILABLE:
        assert speedup >= MIN_REDUCTION_SPEEDUP, (
            f"native speedup {speedup:.2f}x below {MIN_REDUCTION_SPEEDUP}x"
        )
