"""A8 — stretch profile by grid distance (probabilistic-model question).

profile(r) = E[∆π/∆ | ∆ = r] over uniform pairs.  Findings: structured
curves hold a flat Θ(n^{1-1/d}) profile across all ranges; a random
bijection starts at Θ(n) and decays like 1/r — the structured
advantage is a short-range phenomenon, which is the paper's rationale
for the NN-stretch metric.
"""

from repro import Universe
from repro.analysis.profile import stretch_profile_exact
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once

RS = (1, 2, 4, 8, 16, 30)


def profile_experiment():
    universe = Universe.power_of_two(d=2, k=4)  # 16x16, diameter 30
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "simple", "gray", "random"]
    )
    rows = []
    for name, curve in zoo.items():
        profile = stretch_profile_exact(curve)
        rows.append(
            {"curve": name, **{f"r={r}": profile[r] for r in RS}}
        )
    return rows


def test_a8_stretch_profile(benchmark, results_writer):
    rows = run_once(benchmark, profile_experiment)
    table = format_table(rows)
    results_writer(
        "a8_profile",
        "A8 — stretch profile E[dpi/d | d=r] on 16x16\n\n" + table,
    )
    print("\n" + table)

    by_name = {r["curve"]: r for r in rows}
    # Random decays like 1/r from (n+1)/3.
    n = 256
    for r in RS:
        assert abs(
            by_name["random"][f"r={r}"] * r - (n + 1) / 3
        ) < 0.2 * (n + 1) / 3
    # Structured curves: flat profile (within 2x across the range).
    for name in ("z", "simple", "hilbert"):
        values = [by_name[name][f"r={r}"] for r in RS]
        assert max(values) / min(values) < 2.5, name
    # Short range: structured beats random by ~n^{1/d}.
    for name in ("z", "simple", "hilbert"):
        assert by_name[name]["r=1"] < by_name["random"]["r=1"] / 4
