"""P2 — stretch-metric computation scaling and the metric-engine win.

Times the exact D^avg/D^max/Λ computation on growing universes; the
cost must stay O(d·n) (vectorized slice arithmetic, no per-cell
Python).  The free functions now share a cached
:class:`repro.engine.MetricContext` per curve, so the scaling benches
time a *cache-disabled* context (``max_bytes=0``) to keep measuring the
raw compute.  ``test_p2_multimetric_engine_speedup`` measures the point
of the engine: the full multi-metric set over one cached context vs
the seed behavior of rebuilding every intermediate per metric.
"""

import time

import pytest

from repro import Universe
from repro.core.asymptotics import lambda_z_exact
from repro.core.lower_bounds import davg_lower_bound
from repro.curves.zcurve import ZCurve
from repro.engine.context import MetricContext

CASES = {
    "d2_k8": Universe.power_of_two(d=2, k=8),  # 65k cells
    "d2_k10": Universe.power_of_two(d=2, k=10),  # 1M cells
    "d3_k6": Universe.power_of_two(d=3, k=6),  # 262k cells
}


def _uncached(curve) -> MetricContext:
    """A context that recomputes every intermediate on each call."""
    return MetricContext(curve, max_bytes=0)


@pytest.mark.parametrize("case", sorted(CASES))
def test_p2_davg_scaling(benchmark, case):
    universe = CASES[case]
    curve = ZCurve(universe)
    curve.key_grid()  # exclude one-time grid construction from timing
    value = benchmark(lambda: _uncached(curve).davg())
    assert value >= davg_lower_bound(universe.n, universe.d)


def test_p2_dmax_large(benchmark):
    universe = CASES["d2_k10"]
    curve = ZCurve(universe)
    curve.key_grid()
    value = benchmark(lambda: _uncached(curve).dmax())
    assert value > 0


def test_p2_lambda_large(benchmark):
    universe = CASES["d2_k10"]
    curve = ZCurve(universe)
    curve.key_grid()
    values = benchmark(lambda: _uncached(curve).lambda_sums())
    for i in (1, 2):
        assert int(values[i - 1]) == lambda_z_exact(universe, i)


def _full_metric_set(ctx: MetricContext) -> tuple:
    """The stretch_report + per-cell-heatmap metric set.

    This is what one ``survey`` row plus one heatmap render plus the
    distribution analysis consume: scalars, Λ sums, the NN distance
    pool and both per-cell grids.
    """
    return (
        ctx.davg(),
        ctx.dmax(),
        ctx.davg_ratio(),
        tuple(int(v) for v in ctx.lambda_sums()),
        float(ctx.nn_distance_values().mean()),
        float(ctx.per_cell_avg_stretch().max()),
        int(ctx.per_cell_max_stretch().max()),
    )


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_p2_multimetric_engine_speedup(results_writer):
    """One cached context beats per-metric recomputation measurably."""
    universe = CASES["d2_k10"]
    curve = ZCurve(universe)
    curve.key_grid()  # both paths start from a built key grid

    # Seed behavior: every metric rebuilds the axis-distance arrays
    # (and the per-cell grids rebuild their reductions).
    def naive() -> tuple:
        return (
            _uncached(curve).davg(),
            _uncached(curve).dmax(),
            _uncached(curve).davg_ratio(),
            tuple(int(v) for v in _uncached(curve).lambda_sums()),
            float(_uncached(curve).nn_distance_values().mean()),
            float(_uncached(curve).per_cell_avg_stretch().max()),
            int(_uncached(curve).per_cell_max_stretch().max()),
        )

    # Engine behavior: one context, intermediates shared across metrics.
    def engine() -> tuple:
        return _full_metric_set(MetricContext(curve))

    naive_time, naive_values = _best_of(naive)
    engine_time, engine_values = _best_of(engine)
    assert engine_values == naive_values  # bit-for-bit identical metrics

    speedup = naive_time / engine_time
    results_writer(
        "p2_engine_speedup",
        "P2 — full NN metric set (Davg, Dmax, ratio, Lambda, NN mean, "
        "per-cell grids) on "
        f"{universe}\n\n"
        f"per-metric recompute (seed): {naive_time * 1e3:8.2f} ms\n"
        f"shared MetricContext:        {engine_time * 1e3:8.2f} ms\n"
        f"speedup:                     {speedup:8.2f}x\n",
    )
    print(f"\nmulti-metric speedup: {speedup:.2f}x")
    # The cached path does strictly less work (d axis-distance builds
    # instead of 4d); demand a measurable win with slack for noise.
    assert speedup > 1.1, f"expected engine speedup, got {speedup:.2f}x"


def test_p2_pooled_multimetric_no_regression(results_writer):
    """The ContextPool path keeps the multi-metric speedup (no regression).

    PR 2 moved sweeps onto a shared :class:`repro.engine.ContextPool`;
    the pooled context must deliver the same bit-for-bit values and the
    same order of speedup over per-metric recomputation as a private
    context does.
    """
    from repro.engine.pool import ContextPool

    universe = CASES["d2_k10"]
    curve = ZCurve(universe)
    curve.key_grid()  # both paths start from a built key grid

    def naive() -> tuple:
        return (
            _uncached(curve).davg(),
            _uncached(curve).dmax(),
            _uncached(curve).davg_ratio(),
            tuple(int(v) for v in _uncached(curve).lambda_sums()),
            float(_uncached(curve).nn_distance_values().mean()),
            float(_uncached(curve).per_cell_avg_stretch().max()),
            int(_uncached(curve).per_cell_max_stretch().max()),
        )

    def pooled() -> tuple:
        return _full_metric_set(ContextPool().get(curve))

    naive_time, naive_values = _best_of(naive)
    pooled_time, pooled_values = _best_of(pooled)
    assert pooled_values == naive_values  # bit-for-bit identical metrics

    speedup = naive_time / pooled_time
    results_writer(
        "p2_pool_speedup",
        "P2 — full NN metric set through a ContextPool context on "
        f"{universe}\n\n"
        f"per-metric recompute (seed): {naive_time * 1e3:8.2f} ms\n"
        f"pooled MetricContext:        {pooled_time * 1e3:8.2f} ms\n"
        f"speedup:                     {speedup:8.2f}x\n",
    )
    print(f"\npooled multi-metric speedup: {speedup:.2f}x")
    assert speedup > 1.1, f"pooled path regressed: {speedup:.2f}x"


def test_p2_context_computes_each_intermediate_once():
    universe = CASES["d2_k8"]
    ctx = MetricContext(ZCurve(universe))
    _full_metric_set(ctx)
    ctx.stretch_report()
    for axis in range(universe.d):
        assert ctx.stats.compute_count(f"axis_dist[{axis}]") == 1
    assert ctx.stats.compute_count("neighbor_counts") == 1
    assert ctx.stats.hits > 0
