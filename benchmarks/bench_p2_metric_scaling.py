"""P2 — stretch-metric computation scaling.

Times the exact D^avg/D^max/Λ computation on growing universes; the
cost must stay O(d·n) (vectorized slice arithmetic, no per-cell
Python).
"""

import pytest

from repro import Universe
from repro.core.stretch import (
    average_average_nn_stretch,
    average_maximum_nn_stretch,
    lambda_sums,
)
from repro.curves.zcurve import ZCurve

CASES = {
    "d2_k8": Universe.power_of_two(d=2, k=8),  # 65k cells
    "d2_k10": Universe.power_of_two(d=2, k=10),  # 1M cells
    "d3_k6": Universe.power_of_two(d=3, k=6),  # 262k cells
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_p2_davg_scaling(benchmark, case):
    universe = CASES[case]
    curve = ZCurve(universe)
    curve.key_grid()  # exclude one-time grid construction from timing
    value = benchmark(average_average_nn_stretch, curve)
    from repro.core.lower_bounds import davg_lower_bound

    assert value >= davg_lower_bound(universe.n, universe.d)


def test_p2_dmax_large(benchmark):
    universe = CASES["d2_k10"]
    curve = ZCurve(universe)
    curve.key_grid()
    value = benchmark(average_maximum_nn_stretch, curve)
    assert value > 0


def test_p2_lambda_large(benchmark):
    universe = CASES["d2_k10"]
    curve = ZCurve(universe)
    curve.key_grid()
    from repro.core.asymptotics import lambda_z_exact

    values = benchmark(lambda_sums, curve)
    for i in (1, 2):
        assert int(values[i - 1]) == lambda_z_exact(universe, i)
