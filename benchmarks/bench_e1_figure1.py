"""E1 — Figure 1: the worked 2x2 example.

Paper values: D^avg(π1)=1.5, D^avg(π2)=2, D^max(π1)=2, D^max(π2)=2.5,
and δ^avg_π1 = 1.5 for all four cells.  Reproduced exactly.
"""

import numpy as np

from repro.core.stretch import (
    average_average_nn_stretch,
    average_maximum_nn_stretch,
    per_cell_avg_stretch,
)
from repro.curves.explicit import figure1_pi1, figure1_pi2
from repro.viz.ascii_art import render_order_labels
from repro.viz.tables import format_table

from _bench_utils import run_once


def figure1_experiment():
    pi1, pi2 = figure1_pi1(), figure1_pi2()
    rows = []
    for curve in (pi1, pi2):
        rows.append(
            {
                "curve": curve.name,
                "order": render_order_labels(curve, "DBAC"),
                "Davg": average_average_nn_stretch(curve),
                "Dmax": average_maximum_nn_stretch(curve),
            }
        )
    return rows, per_cell_avg_stretch(pi1)


def test_e1_figure1(benchmark, results_writer):
    rows, pi1_cells = run_once(benchmark, figure1_experiment)

    table = format_table(rows)
    results_writer(
        "e1_figure1",
        "E1 / Figure 1 — 2x2 worked example (paper: 1.5, 2 / 2, 2.5)\n\n"
        + table,
    )
    print("\n" + table)

    by_name = {r["curve"]: r for r in rows}
    # Exact paper values.
    assert by_name["figure1-pi1"]["order"] == "C,A,B,D"
    assert by_name["figure1-pi2"]["order"] == "A,B,C,D"
    assert by_name["figure1-pi1"]["Davg"] == 1.5
    assert by_name["figure1-pi2"]["Davg"] == 2.0
    assert by_name["figure1-pi1"]["Dmax"] == 2.0
    assert by_name["figure1-pi2"]["Dmax"] == 2.5
    # "The values of δ^avg for A, B, C, D are all equal to 1.5."
    assert np.all(pi1_cells == 1.5)
