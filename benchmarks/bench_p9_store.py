"""P9 — persistent store: warm restarts and out-of-core spill.

The :class:`repro.engine.store.GridStore` exists for two workloads:

* **Warm restarts** — a sweep rerun (or a ``repro serve`` restart)
  resolves its curve grids from memory-mapped on-disk artifacts instead
  of re-evaluating curves.  The bench runs the same sweep cold (empty
  store) and warm (fresh pools over the populated store) and asserts
  the point of the feature: the warm pass resolves from mmap, returns
  **bit-for-bit identical** records, and is at least 2x faster (the
  measured gap is far larger — curve evaluation dominates the cold
  pass, a page-cache read costs microseconds).
* **Out-of-core spill** — a table-backed curve whose dense grid busts
  ``max_bytes`` publishes its table to the store once and streams
  slabs back as mmap slices, so the block cache never holds a second
  full copy.  Peak allocation must undercut the dense run by a clear
  multiple, with values identical.

Wall-clock goes through pytest-benchmark; the cold/warm split and both
allocation peaks land in the JSON via ``extra_info``.
"""

from __future__ import annotations

import time

from repro import Universe
from repro.engine.sweep import Sweep

from _bench_utils import cache_stats_payload, run_once

#: Hilbert on 256^2 + 512^2: cold cost is dominated by curve
#: evaluation (order + key grid), exactly what the store amortizes.
WARM_UNIVERSES = (
    Universe.power_of_two(d=2, k=8),
    Universe.power_of_two(d=2, k=9),
)
WARM_KWARGS = dict(
    curves=["hilbert"],
    metrics=("davg", "dilation:window=16"),
    reports=False,
)

#: A table-backed (instance-materialized) curve on 512^2 whose 2 MiB
#: grid busts this budget, forcing chunked mode + store spill.
SPILL_UNIVERSE = Universe.power_of_two(d=2, k=9)
SPILL_BUDGET = 256 * 1024
SPILL_KWARGS = dict(
    curves=["random:seed=11"],
    metrics=("davg", "dmax"),
    reports=False,
)


def _records(result):
    return [(r.spec, r.d, r.side, r.values) for r in result.records]


def test_p9_store_warm_restart_speedup(
    benchmark, tmp_path, results_writer
):
    """Acceptance: warm ≥ 2x cold, mmap hits > 0, records identical."""
    store = tmp_path / "store"

    def timed(**kwargs):
        start = time.perf_counter()
        result = Sweep(universes=list(WARM_UNIVERSES), **WARM_KWARGS, **kwargs).run()
        return result, time.perf_counter() - start

    storeless, _ = timed()
    cold, cold_s = timed(store_dir=store)
    warm, warm_s = run_once(benchmark, lambda: timed(store_dir=store))

    assert _records(cold) == _records(storeless)
    assert _records(warm) == _records(storeless)  # bit-for-bit
    assert cold.cache_stats.total_mmap == 0
    assert warm.cache_stats.total_mmap > 0

    speedup = cold_s / warm_s
    benchmark.extra_info["store"] = {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "warm_cache": cache_stats_payload(warm.cache_stats),
    }
    results_writer(
        "p9_store_warm_restart",
        "P9 — cold vs warm sweep over a persistent grid store\n"
        f"(hilbert on {', '.join(str(u) for u in WARM_UNIVERSES)}, "
        "davg + dilation:window=16)\n\n"
        f"cold (empty store):  {cold_s * 1e3:8.1f} ms   "
        f"mmap hits: {cold.cache_stats.total_mmap}\n"
        f"warm (fresh pools):  {warm_s * 1e3:8.1f} ms   "
        f"mmap hits: {warm.cache_stats.total_mmap}\n"
        f"speedup:             {speedup:8.1f}x\n",
    )
    print(f"\nstore warm restart: {cold_s * 1e3:.1f} ms -> "
          f"{warm_s * 1e3:.1f} ms ({speedup:.1f}x)")
    assert speedup >= 2.0, (
        f"warm restart only {speedup:.2f}x over cold (want >= 2x)"
    )


def test_p9_store_spill_bounded_memory(
    benchmark, peak_memory, tmp_path, results_writer
):
    """Acceptance: spilled sweep completes under the budget's footprint
    with values identical to the dense run."""
    store = tmp_path / "spill"

    def dense():
        return Sweep(universes=[SPILL_UNIVERSE], **SPILL_KWARGS).run()

    def spilled():
        return Sweep(
            universes=[SPILL_UNIVERSE],
            store_dir=store,
            max_bytes=SPILL_BUDGET,
            **SPILL_KWARGS,
        ).run()

    dense_result, dense_peak, _ = peak_memory("dense", dense)
    spill_result, spill_peak, _ = peak_memory(
        "spilled", lambda: run_once(benchmark, spilled)
    )

    assert _records(spill_result) == _records(dense_result)
    # chunked + spilled: slabs stream back as mmap slices of the
    # published table instead of dense key-grid computes
    assert spill_result.cache_stats.total_mmap > 0
    assert "key_grid" not in spill_result.cache_stats.computes

    results_writer(
        "p9_store_spill_memory",
        "P9 — dense vs store-spilled sweep (random:seed=11 on "
        f"{SPILL_UNIVERSE}, davg+dmax, max_bytes="
        f"{SPILL_BUDGET // 1024} KiB)\n\n"
        f"dense   peak alloc: {dense_peak / 2**20:9.2f} MiB\n"
        f"spilled peak alloc: {spill_peak / 2**20:9.2f} MiB\n"
        f"reduction:          {dense_peak / spill_peak:9.1f}x\n",
    )
    print(
        f"\nspill peak {spill_peak / 2**20:.2f} MiB vs dense "
        f"{dense_peak / 2**20:.2f} MiB"
    )
    assert spill_peak * 2 < dense_peak, (
        f"spilled peak {spill_peak} not clearly bounded vs dense "
        f"{dense_peak}"
    )
