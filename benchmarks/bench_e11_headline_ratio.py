"""E11 — the headline: Z is within a factor 1.5 of optimal, in every d.

The asymptotic ratio of D^avg(Z) to the Theorem 1 bound is exactly 3/2;
this bench measures the finite-n ratio over a (d, k) grid and asserts
it converges to 1.5 with a d-independent limit — Section I's
observations 1–3 in one table.
"""

from repro import Universe
from repro.core.gap import headline_ratio, optimality_ratio
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve
from repro.viz.tables import format_table

from _bench_utils import run_once

SWEEPS = {2: (3, 4, 5, 6, 7), 3: (2, 3, 4), 4: (2, 3)}


def headline_experiment():
    rows = []
    for d, ks in SWEEPS.items():
        for k in ks:
            universe = Universe.power_of_two(d=d, k=k)
            rows.append(
                {
                    "d": d,
                    "k": k,
                    "n": universe.n,
                    "Z ratio": optimality_ratio(ZCurve(universe)),
                    "simple ratio": optimality_ratio(SimpleCurve(universe)),
                    "asymptote": headline_ratio(),
                }
            )
    return rows


def test_e11_headline_ratio(benchmark, results_writer):
    rows = run_once(benchmark, headline_experiment)
    table = format_table(rows)
    results_writer(
        "e11_headline",
        "E11 — Z (and simple) vs Theorem 1 bound: ratio -> 1.5, "
        "independent of d\n\n" + table,
    )
    print("\n" + table)

    # Observation 1: ratios never dip below 1 (that would refute Thm 1).
    for row in rows:
        assert row["Z ratio"] >= 1.0
        assert row["simple ratio"] >= 1.0

    # Convergence to 1.5 within each d (gaps shrink with k).
    for d, ks in SWEEPS.items():
        gaps = [
            abs(r["Z ratio"] - 1.5) for r in rows if r["d"] == d
        ]
        assert gaps == sorted(gaps, reverse=True), f"d={d}"

    # d-independence: the finest case per d lands in a common band.
    finest = {
        d: next(
            r for r in rows if r["d"] == d and r["k"] == max(SWEEPS[d])
        )
        for d in SWEEPS
    }
    values = [r["Z ratio"] for r in finest.values()]
    assert max(values) - min(values) < 0.2
    for value in values:
        assert abs(value - 1.5) < 0.2
