"""A3 — parallel domain decomposition quality across curves.

The parallel-computing motivation of Section I, made measurable: cut
each curve into p contiguous segments and count the grid-NN pairs that
cross segment boundaries (communication volume).  Sweep p.
"""

from repro import Universe
from repro.apps.partition import partition_quality
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once

PARTS = (4, 16, 64)


def partition_experiment():
    from repro.apps.halo import halo_exchange

    universe = Universe.power_of_two(d=3, k=4)  # 32^3
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "gray", "snake", "simple", "random"]
    )
    rows = []
    for name, curve in zoo.items():
        for parts in PARTS:
            q = partition_quality(curve, parts)
            halo = halo_exchange(curve, parts)
            rows.append(
                {
                    "curve": name,
                    "parts": parts,
                    "imbalance": q.imbalance,
                    "edge_cut": q.edge_cut,
                    "cut_frac": q.cut_fraction,
                    "ghosts": halo.ghost_cells,
                    "max_partners": halo.max_partners,
                }
            )
    return rows


def test_a3_partition_quality(benchmark, results_writer):
    rows = run_once(benchmark, partition_experiment)
    rows.sort(key=lambda r: (r["parts"], r["cut_frac"]))
    table = format_table(rows)
    results_writer(
        "a3_partition",
        "A3 — SFC domain decomposition on 32^3, p in {4,16,64}\n\n"
        + table,
    )
    print("\n" + table)

    for parts in PARTS:
        here = {r["curve"]: r for r in rows if r["parts"] == parts}
        # Equal-count cuts: perfect balance for every curve.
        for row in here.values():
            assert row["imbalance"] == 1.0
        # Locality curves cut a small fraction; a random bijection cuts
        # the independence fraction 1 - 1/p of all NN pairs.
        assert here["hilbert"]["cut_frac"] < 0.5
        expected_random = 1.0 - 1.0 / parts
        assert abs(here["random"]["cut_frac"] - expected_random) < 0.05
        assert here["hilbert"]["edge_cut"] < here["random"]["edge_cut"] / 2
        # Halo view: compact parts talk to few partners; random talks
        # to everyone once parts hold enough cells.
        assert here["hilbert"]["max_partners"] <= parts - 1
        assert here["random"]["max_partners"] == parts - 1
        assert here["hilbert"]["ghosts"] < here["random"]["ghosts"] / 2
    # More parts -> more cut, monotonically, for every curve.
    for name in {r["curve"] for r in rows}:
        cuts = [r["edge_cut"] for r in rows if r["curve"] == name]
        ordered = [
            r["edge_cut"]
            for r in sorted(
                (x for x in rows if x["curve"] == name),
                key=lambda r: r["parts"],
            )
        ]
        assert ordered == sorted(ordered)
