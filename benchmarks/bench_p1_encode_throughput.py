"""P1 — encode/decode throughput for every analytic curve.

Timing benchmarks proper (multiple rounds): vectorized key computation
for batches of one million cells.  Regressions here flag accidental
de-vectorization of the hot paths.
"""

import numpy as np
import pytest

from repro import Universe
from repro.curves.gray import GrayCurve
from repro.curves.hilbert import HilbertCurve
from repro.curves.simple import SimpleCurve
from repro.curves.snake import SnakeCurve
from repro.curves.zcurve import ZCurve

BATCH = 1_000_000
UNIVERSE = Universe.power_of_two(d=3, k=8)  # 256^3 cells

CURVES = {
    "z": ZCurve,
    "gray": GrayCurve,
    "hilbert": HilbertCurve,
    "simple": SimpleCurve,
    "snake": SnakeCurve,
}


@pytest.fixture(scope="module")
def batch_coords():
    rng = np.random.default_rng(0)
    return rng.integers(
        0, UNIVERSE.side, size=(BATCH, UNIVERSE.d), dtype=np.int64
    )


@pytest.mark.parametrize("name", sorted(CURVES))
def test_p1_encode_throughput(benchmark, batch_coords, name):
    curve = CURVES[name](UNIVERSE)
    keys = benchmark(curve.index, batch_coords)
    assert keys.shape == (BATCH,)
    assert keys.min() >= 0
    assert keys.max() < UNIVERSE.n


@pytest.mark.parametrize("name", sorted(CURVES))
def test_p1_decode_throughput(benchmark, batch_coords, name):
    curve = CURVES[name](UNIVERSE)
    keys = curve.index(batch_coords)
    coords = benchmark(curve.coords, keys)
    assert np.array_equal(coords, batch_coords)
