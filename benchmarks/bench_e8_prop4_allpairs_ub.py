"""E8 — Proposition 4: all-pairs upper bounds for the simple curve.

str_{avg,M}(S) ≤ n^{1-1/d} and str_{avg,E}(S) ≤ √2·n^{1-1/d}; Lemma 7
guarantees the bound per pair, so we also verify the per-pair maxima.
"""

import numpy as np

from repro import Universe
from repro.core.allpairs import average_allpairs_stretch_exact
from repro.core.asymptotics import (
    allpairs_simple_euclidean_ub,
    allpairs_simple_manhattan_ub,
)
from repro.curves.simple import SimpleCurve
from repro.grid.metrics import pairwise_euclidean, pairwise_manhattan
from repro.viz.tables import format_table

from _bench_utils import run_once

UNIVERSES = [
    Universe.power_of_two(d=2, k=2),
    Universe.power_of_two(d=2, k=3),
    Universe.power_of_two(d=2, k=4),
    Universe.power_of_two(d=3, k=2),
]


def _per_pair_max_ratios(curve):
    """Worst ∆_S/∆ and ∆_S/∆_E over all pairs (Lemma 7 check)."""
    universe = curve.universe
    cells = universe.all_coords()
    keys = curve.index(cells).astype(np.float64)
    key_dist = np.abs(keys[:, None] - keys[None, :])
    m = pairwise_manhattan(cells, cells).astype(np.float64)
    e = pairwise_euclidean(cells, cells)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio_m = np.where(m > 0, key_dist / m, 0.0)
        ratio_e = np.where(e > 0, key_dist / e, 0.0)
    return float(ratio_m.max()), float(ratio_e.max())


def prop4_experiment():
    rows = []
    for universe in UNIVERSES:
        s = SimpleCurve(universe)
        worst_m, worst_e = _per_pair_max_ratios(s)
        rows.append(
            {
                "d": universe.d,
                "side": universe.side,
                "str_M(S)": average_allpairs_stretch_exact(s, "manhattan"),
                "UB_M": allpairs_simple_manhattan_ub(universe.n, universe.d),
                "str_E(S)": average_allpairs_stretch_exact(s, "euclidean"),
                "UB_E": allpairs_simple_euclidean_ub(universe.n, universe.d),
                "worst pair M": worst_m,
                "worst pair E": worst_e,
            }
        )
    return rows


def test_e8_prop4_simple_upper_bounds(benchmark, results_writer):
    rows = run_once(benchmark, prop4_experiment)
    table = format_table(rows)
    results_writer(
        "e8_prop4",
        "E8 / Prop 4 — simple-curve all-pairs upper bounds "
        "(averages AND per-pair Lemma 7)\n\n" + table,
    )
    print("\n" + table)

    for row in rows:
        assert row["str_M(S)"] <= row["UB_M"] + 1e-9, row
        assert row["str_E(S)"] <= row["UB_E"] + 1e-9, row
        # Lemma 7 is per-pair: even the WORST pair obeys the bound.
        assert row["worst pair M"] <= row["UB_M"] + 1e-9, row
        assert row["worst pair E"] <= row["UB_E"] + 1e-9, row
