"""A2 — the clustering metric (Moon et al.) vs stretch.

Section II distinguishes stretch from the clustering metric.  We
measure expected clusters per query box for the zoo and show the two
metrics rank curves differently (e.g. the simple curve is clustering-
optimal for row-aligned boxes but stretch-suboptimal).
"""

from repro import Universe
from repro.analysis.clustering import expected_clusters
from repro.core.stretch import average_average_nn_stretch
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once

BOXES = [(4, 4), (8, 2), (2, 8)]


def clustering_experiment():
    universe = Universe.power_of_two(d=2, k=5)
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "gray", "snake", "simple", "random"]
    )
    rows = []
    for name, curve in zoo.items():
        row = {
            "curve": name,
            "Davg": average_average_nn_stretch(curve),
        }
        for box in BOXES:
            row[f"clusters{box}"] = expected_clusters(
                curve, box, n_samples=150, seed=21
            )
        rows.append(row)
    return rows


def test_a2_clustering_metric(benchmark, results_writer):
    rows = run_once(benchmark, clustering_experiment)
    rows.sort(key=lambda r: r["clusters(4, 4)"])
    table = format_table(rows)
    results_writer(
        "a2_clustering",
        "A2 — Moon-et-al clustering vs NN-stretch (different metrics, "
        "different rankings)\n\n" + table,
    )
    print("\n" + table)

    by_name = {r["curve"]: r for r in rows}
    # Hilbert is the clustering champion among recursive curves (Moon
    # et al.'s headline), and far better than random.
    assert (
        by_name["hilbert"]["clusters(4, 4)"]
        < by_name["random"]["clusters(4, 4)"] / 2
    )
    # The rankings DIFFER between metrics: simple wins row-aligned
    # clustering but loses stretch to z.
    assert by_name["simple"]["clusters(8, 2)"] < by_name["z"]["clusters(8, 2)"]
    stretch_rank = sorted(rows, key=lambda r: r["Davg"])
    cluster_rank = sorted(rows, key=lambda r: r["clusters(8, 2)"])
    assert [r["curve"] for r in stretch_rank] != [
        r["curve"] for r in cluster_rank
    ]
