"""A1 — curve-zoo ablation (and the Hilbert open question).

Section VI asks for an analysis of the Hilbert curve's average
NN-stretch.  This ablation measures D^avg and D^max across the whole
zoo at several sizes and dimensions and shows numerically that the
Hilbert curve sits in the same near-optimal Θ(n^{1-1/d}/d) band as Z
and simple, while random bijections are off by Θ(n^{1/d}).
"""

from repro import Universe
from repro.core.lower_bounds import davg_lower_bound
from repro.viz.tables import format_table

from _bench_utils import run_once

UNIVERSES = [
    Universe.power_of_two(d=2, k=4),
    Universe.power_of_two(d=2, k=6),
    Universe.power_of_two(d=3, k=3),
    Universe.power_of_two(d=4, k=2),
]


def ablation_experiment(run_sweep):
    result = run_sweep(UNIVERSES)
    rows = []
    for report in result.reports:
        row = report.as_row()
        del row["str_M"], row["str_E"]
        rows.append(row)
    return rows


def test_a1_curve_ablation(benchmark, results_writer, run_sweep):
    rows = run_once(benchmark, ablation_experiment, run_sweep)
    rows.sort(key=lambda r: (r["d"], r["side"], r["Davg/LB"]))
    table = format_table(rows)
    results_writer(
        "a1_ablation",
        "A1 — D^avg / D^max across the curve zoo (Hilbert open "
        "question)\n\n" + table,
    )
    print("\n" + table)

    for universe in UNIVERSES:
        here = {
            r["curve"]: r
            for r in rows
            if (r["d"], r["side"]) == (universe.d, universe.side)
        }
        bound = davg_lower_bound(universe.n, universe.d)
        # Hilbert answers the open question in the affirmative band:
        # within a small constant of the bound, like Z and simple.
        assert here["hilbert"]["Davg"] <= 2.2 * bound
        assert here["z"]["Davg"] <= 2.0 * bound
        assert here["simple"]["Davg"] <= 2.0 * bound
        # The random bijection is FAR off — the structured curves matter.
        assert here["random"]["Davg"] > 3.0 * here["z"]["Davg"]
        # Continuous recursive curves beat Z on D^max (no big jumps
        # adjacent to every cell).
        assert here["hilbert"]["Dmax"] <= here["z"]["Dmax"] * 1.5
