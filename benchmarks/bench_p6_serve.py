"""P6 — the sweep service: warm repeats beat cold requests.

``repro serve`` exists to amortize the engine's expensive state — key
grids, NN arrays, metric memos — across requests instead of across the
cells of one CLI invocation.  This bench stands up a real HTTP server
(:class:`repro.serve.BackgroundServer`, the same stack ``repro serve``
runs) and measures the feature's headline numbers end-to-end, socket
included:

* **cold**: the first ``POST /sweep`` for a 512x512 Hilbert/Gray cell
  pair — the server builds both contexts from scratch;
* **warm**: the identical request again — every array and scalar memo
  is resident, so the server answers from its caches.

Acceptance asserts the warm repeat is at least **2x** faster (in
practice it is orders of magnitude faster — the point of a persistent
service), that the responses are byte-identical, and that the cache
counters prove the second request recomputed nothing.  A small-request
loop reports sequential service throughput for trend tracking.
"""

import json
import time
import urllib.request

from repro.serve import BackgroundServer, ServeConfig

from _bench_utils import run_once

#: 512^2 cells: key-grid construction dominates, the regime the
#: persistent service amortizes.
SIDE = 512
CURVES = ("hilbert", "gray")
METRIC_SET = ("davg", "dmax", "nn_mean")
MIN_SPEEDUP = 2.0

#: Small-cell request repeated for the throughput figure.
SMALL_BODY = {
    "dims": [2],
    "sides": [16],
    "curves": ["z"],
    "metrics": ["davg"],
}
THROUGHPUT_REQUESTS = 200


def _post(url: str, body: dict) -> bytes:
    request = urllib.request.Request(
        url + "/sweep",
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        assert response.status == 200
        return response.read()


def _get_stats(url: str) -> dict:
    with urllib.request.urlopen(url + "/stats", timeout=60) as response:
        return json.loads(response.read())


def test_p6_serve_warm_vs_cold(benchmark, results_writer):
    """Acceptance: warm repeat >= 2x faster, byte-identical response."""
    body = {
        "dims": [2],
        "sides": [SIDE],
        "curves": list(CURVES),
        "metrics": list(METRIC_SET),
    }
    config = ServeConfig(port=0, batch_window_s=0.001)

    def serve_session():
        with BackgroundServer(config) as server:
            t0 = time.perf_counter()
            cold_body = _post(server.url, body)
            t_cold = time.perf_counter() - t0

            t0 = time.perf_counter()
            warm_body = _post(server.url, body)
            t_warm = time.perf_counter() - t0

            t0 = time.perf_counter()
            for _ in range(THROUGHPUT_REQUESTS):
                _post(server.url, SMALL_BODY)
            t_loop = time.perf_counter() - t0

            return cold_body, t_cold, warm_body, t_warm, t_loop, _get_stats(
                server.url
            )

    cold_body, t_cold, warm_body, t_warm, t_loop, stats = run_once(
        benchmark, serve_session
    )

    assert warm_body == cold_body  # byte-identical responses
    records = json.loads(warm_body)["records"]
    assert [r["spec"] for r in records] == list(CURVES)

    # The cache counters prove the repeats recomputed nothing: one
    # key-grid build per distinct curve across *all* requests of the
    # session (the small z cell adds its one); every re-request is
    # answered by the persistent contexts' memos.
    computes = stats["cache"]["computes"]
    assert computes["key_grid"] == len(CURVES) + 1
    assert (
        stats["counters"]["cells_planned"]
        == 2 * len(CURVES) + THROUGHPUT_REQUESTS
    )

    speedup = t_cold / t_warm
    throughput = THROUGHPUT_REQUESTS / t_loop
    benchmark.extra_info["serve"] = {
        "t_cold_s": round(t_cold, 4),
        "t_warm_s": round(t_warm, 4),
        "speedup": round(speedup, 1),
        "small_requests_per_s": round(throughput, 1),
        "cache": stats["cache"],
        "counters": stats["counters"],
    }
    results_writer(
        "p6_serve",
        f"P6 — repro serve: {SIDE}x{SIDE} sweep of "
        f"{', '.join(CURVES)} (metrics {', '.join(METRIC_SET)}) "
        "over HTTP\n"
        "(cold = first request builds engine state; warm = identical "
        "repeat answered from the persistent pools)\n\n"
        f"cold request:  {t_cold:8.3f} s\n"
        f"warm repeat:   {t_warm:8.3f} s   speedup: {speedup:8.1f}x\n"
        f"throughput:    {throughput:8.1f} small requests/s "
        f"({THROUGHPUT_REQUESTS} sequential 16x16 cells)\n"
        f"cache hit rate: {stats['cache']['hit_rate']:.1%}   "
        f"key grids built: {computes['key_grid']}\n",
    )
    print(
        f"\ncold {t_cold:.3f}s vs warm {t_warm:.4f}s ({speedup:.0f}x); "
        f"{throughput:.0f} small req/s"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm repeat speedup {speedup:.2f}x below {MIN_SPEEDUP}x"
    )


def test_p6_serve_leaves_no_segments():
    """A full serve session reclaims every shared-memory segment."""
    from pathlib import Path

    shm_dir = Path("/dev/shm")
    before = {p.name for p in shm_dir.iterdir()}
    with BackgroundServer(
        ServeConfig(port=0, hot_set=(("hilbert", 2, 32),))
    ) as server:
        _post(
            server.url,
            {"dims": [2], "sides": [32], "metrics": ["davg"]},
        )
    after = {p.name for p in shm_dir.iterdir()}
    assert after == before
