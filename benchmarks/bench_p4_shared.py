"""P4 — shared-memory process sweeps: grids published once, not per worker.

``Sweep(processes=N, shared=False)`` rebuilds every key grid privately
inside each worker cell — the exact redundancy the paper's
shared-structure argument says to exploit (every stretch metric of a
cell reduces over *one* permutation's key grid).  With ``shared`` on
(the default), the parent publishes one grid set per canonical curve
spec into :class:`repro.engine.SharedGridStore` segments — deriving
transform curves' grids from their inner curve instead of evaluating
them — and workers attach zero-copy views.

This bench runs the same multi-curve ``processes=4`` sweep both ways
(a Hilbert/Gray family with reversed / reflected / axis-permuted
variants, where the private mode pays a full curve evaluation per cell)
and asserts the point of the feature:

* every metric value is **bit-for-bit identical**,
* shared mode is at least **1.5x faster** end-to-end, and
* each worker's **private resident memory (USS) shrinks** — its grids
  live in segments mapped once machine-wide, not in per-process copies.

Wall-clock is measured end-to-end (publish cost included).  The memory
probe reads ``/proc/self/smaps_rollup`` inside the workers via a
bench-local registered metric: USS (``Private_Clean + Private_Dirty``)
is the honest per-worker figure — lifetime peak RSS also counts the
*shared* pages a worker touches, which the kernel charges to every
attacher even though they exist once machine-wide (``ru_maxrss`` is
recorded alongside for reference).  The speedup assertion assumes the
redundancy-dominated regime this bench constructs (grid builds ≫ metric
reductions); scale ``UNIVERSE``/``CURVES`` together if the machine
changes that balance.
"""

import resource
import time

from repro import Universe
from repro.engine.sweep import METRICS, Sweep, register_metric

from _bench_utils import run_once
from conftest import cache_stats_payload

#: 512^2 cells: a Hilbert key-grid build costs ~5x the full NN metric
#: set, so per-worker grid rebuilds dominate the private mode.
UNIVERSE = Universe.power_of_two(d=2, k=9)

#: Two expensive bases and their stretch-invariant transform family;
#: private workers evaluate each variant's grid from scratch, while the
#: shared parent derives the ten transforms from the two base grids.
CURVES = tuple(
    spec
    for base in ("hilbert", "gray")
    for spec in (
        base,
        f"reversed:inner={base}",
        f"reflected:inner={base},axes=0",
        f"reflected:inner={base},axes=1",
        f"axisperm:inner={base},perm=1-0",
        f"reversed:inner=reflected:inner={base}",
    )
)

METRIC_SET = ("davg", "dmax", "nn_mean", "lambdas")
PROCESSES = 4
MIN_SPEEDUP = 1.5


def _run(shared: bool, metrics=METRIC_SET):
    kwargs = dict(shared=True) if shared else dict(shared=False, pooled=False)
    return Sweep(
        universes=[UNIVERSE],
        curves=list(CURVES),
        metrics=metrics,
        reports=False,
        processes=PROCESSES,
        **kwargs,
    ).run()


def _worker_memory(ctx) -> tuple:
    """(USS KiB, peak RSS KiB) of the calling worker process."""
    uss = 0
    with open("/proc/self/smaps_rollup") as fh:
        for line in fh:
            if line.startswith(("Private_Clean:", "Private_Dirty:")):
                uss += int(line.split()[1])
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return uss, peak


def test_p4_shared_sweep_speedup_and_worker_memory(
    benchmark, results_writer
):
    """Acceptance: >=1.5x wall-clock, USS reduction, identical records."""
    t0 = time.perf_counter()
    shared_result = run_once(benchmark, _run, True)
    t_shared = time.perf_counter() - t0
    t0 = time.perf_counter()
    private_result = _run(False)
    t_private = time.perf_counter() - t0

    assert shared_result.records == private_result.records  # bit-for-bit
    assert len(shared_result.records) == len(CURVES)
    stats = shared_result.cache_stats
    assert stats.shared_count("key_grid") == len(CURVES)
    # only the two bases were evaluated from scratch (by the parent)
    assert stats.compute_count("key_grid") == 2
    benchmark.extra_info["engine_cache"] = cache_stats_payload(stats)

    # Per-worker memory probe: same sweeps plus a bench-local metric
    # reporting each worker's memory at cell completion.
    register_metric("_p4_worker_memory", _worker_memory, overwrite=True)
    try:
        probed = METRIC_SET + ("_p4_worker_memory",)
        mem_shared = [
            r.values["_p4_worker_memory"]
            for r in _run(True, metrics=probed).records
        ]
        mem_private = [
            r.values["_p4_worker_memory"]
            for r in _run(False, metrics=probed).records
        ]
    finally:
        METRICS.pop("_p4_worker_memory", None)
    uss_shared = max(uss for uss, _ in mem_shared)
    uss_private = max(uss for uss, _ in mem_private)
    rss_shared = max(peak for _, peak in mem_shared)
    rss_private = max(peak for _, peak in mem_private)

    speedup = t_private / t_shared
    reduction = 1 - uss_shared / uss_private
    benchmark.extra_info["shared_sweep"] = {
        "t_shared_s": round(t_shared, 3),
        "t_private_s": round(t_private, 3),
        "speedup": round(speedup, 2),
        "worker_uss_shared_kib": uss_shared,
        "worker_uss_private_kib": uss_private,
        "worker_peak_rss_shared_kib": rss_shared,
        "worker_peak_rss_private_kib": rss_private,
    }
    results_writer(
        "p4_shared_sweep",
        f"P4 — processes={PROCESSES} sweep of {len(CURVES)} curves on "
        f"{UNIVERSE}, metrics {', '.join(METRIC_SET)}\n"
        "(shared grid store vs fully private workers; records "
        "bit-for-bit identical)\n\n"
        f"wall-clock  shared: {t_shared:7.3f} s   "
        f"private: {t_private:7.3f} s   speedup: {speedup:5.2f}x\n"
        f"worker USS  shared: {uss_shared / 1024:7.1f} MiB   "
        f"private: {uss_private / 1024:7.1f} MiB   "
        f"reduction: {reduction:6.1%}\n"
        f"worker peak RSS (shared pages included)  "
        f"shared: {rss_shared / 1024:.1f} MiB   "
        f"private: {rss_private / 1024:.1f} MiB\n",
    )
    print(
        f"\nshared {t_shared:.3f}s vs private {t_private:.3f}s "
        f"({speedup:.2f}x); worker USS {uss_shared / 1024:.1f} vs "
        f"{uss_private / 1024:.1f} MiB ({reduction:.1%} smaller)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"shared sweep speedup {speedup:.2f}x below {MIN_SPEEDUP}x"
    )
    assert uss_shared < uss_private, (
        f"worker USS did not shrink: shared {uss_shared} KiB vs "
        f"private {uss_private} KiB"
    )


def test_p4_segments_reclaimed():
    """The sweep leaves no shared-memory segments behind."""
    from pathlib import Path

    shm_dir = Path("/dev/shm")
    before = {p.name for p in shm_dir.iterdir()}
    _run(True)
    after = {p.name for p in shm_dir.iterdir()}
    assert after == before
