"""E5 — Theorem 3: the simple curve matches the Z curve.

Three checks: the exact boundary-pattern closed form for D^avg(S)
equals the measurement; the ratio to n^{1-1/d}/d converges to 1; and
the simple curve's D^avg tracks the Z curve's within a shrinking gap
(Section I, observation 2).
"""

from repro import Universe
from repro.analysis.convergence import convergence_study, is_converging
from repro.core.asymptotics import davg_simple_exact, davg_simple_limit
from repro.core.stretch import average_average_nn_stretch
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve
from repro.viz.tables import format_table

from _bench_utils import run_once

SWEEPS = {2: (2, 3, 4, 5, 6), 3: (1, 2, 3, 4), 4: (1, 2, 3)}


def theorem3_experiment():
    rows = []
    studies = {}
    for d, ks in SWEEPS.items():
        for k in ks:
            universe = Universe.power_of_two(d=d, k=k)
            measured = average_average_nn_stretch(SimpleCurve(universe))
            closed = float(davg_simple_exact(universe))
            z_val = average_average_nn_stretch(ZCurve(universe))
            rows.append(
                {
                    "d": d,
                    "k": k,
                    "n": universe.n,
                    "Davg(S) meas": measured,
                    "Davg(S) exact": closed,
                    "Davg(Z)": z_val,
                    "S/Z": measured / z_val,
                    "S/limit": measured / davg_simple_limit(universe.n, d),
                }
            )
        studies[d] = convergence_study(
            list(ks),
            measure=lambda k, d=d: float(
                davg_simple_exact(Universe.power_of_two(d=d, k=k))
            ),
            reference=lambda k, d=d: davg_simple_limit(2 ** (k * d), d),
            n_of=lambda k, d=d: 2 ** (k * d),
        )
    return rows, studies


def test_e5_theorem3_simple_curve(benchmark, results_writer):
    rows, studies = run_once(benchmark, theorem3_experiment)
    table = format_table(rows)
    results_writer(
        "e5_theorem3",
        "E5 / Theorem 3 — Davg(S) ~ n^(1-1/d)/d, matching the Z curve\n\n"
        + table,
    )
    print("\n" + table)

    for row in rows:
        # Closed form is exact at every size.
        assert abs(row["Davg(S) meas"] - row["Davg(S) exact"]) < 1e-9, row
    for d, points in studies.items():
        assert is_converging(points, final_gap=0.2), f"d={d}"
    # Observation 2: S/Z -> 1 at the best-resolved sizes.
    finest = [r for r in rows if r["k"] == max(SWEEPS[r["d"]])]
    for row in finest:
        assert abs(row["S/Z"] - 1.0) < 0.1, row
