"""Shared bench infrastructure.

Every bench regenerates one paper artifact (table/figure/claim), writes
its table to ``benchmarks/results/<exp>.txt`` and asserts the paper's
*shape* claim (who wins, by what factor, where limits sit).  Timing is
reported through pytest-benchmark; experiment payloads run once via
``benchmark.pedantic`` so the expensive sweeps are not repeated.

Sweep-shaped benches additionally record the engine's aggregate cache
counters (hits / misses / computes / derivations) into the
pytest-benchmark ``extra_info`` payload, so ``--benchmark-json`` runs
track cache effectiveness alongside wall-clock over time.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from pathlib import Path

import pytest

from _bench_utils import cache_stats_payload  # noqa: F401  (re-export)

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_caches(tmp_path_factory):
    """Keep bench runs off the host's persistent caches (see
    tests/conftest.py): native builds go to session tmp when no cache
    is configured, and the store env defaults are cleared so every
    bench that wants a store opts in with an explicit directory."""
    preset = os.environ.get("REPRO_NATIVE_CACHE")
    if not preset:
        os.environ["REPRO_NATIVE_CACHE"] = str(
            tmp_path_factory.mktemp("native-cache")
        )
    saved = {
        name: os.environ.pop(name, None)
        for name in ("REPRO_STORE", "REPRO_STORE_CRASH")
    }
    try:
        yield
    finally:
        if not preset:
            del os.environ["REPRO_NATIVE_CACHE"]
        for name, value in saved.items():
            if value is not None:
                os.environ[name] = value


@pytest.fixture
def run_sweep(request):
    """Run a declarative curve × universe sweep (engine-backed).

    The sweep-shaped benches all share this entry point, so their
    orchestration loop lives in :class:`repro.engine.Sweep` instead of
    being hand-rolled per bench.  When the test also uses the
    ``benchmark`` fixture, the sweep's engine cache counters are stored
    under ``extra_info["engine_cache"]`` in the benchmark JSON.
    """
    from repro.engine.sweep import Sweep

    def run(universes, curves=None, metrics=None, **kwargs):
        sweep = Sweep(
            universes=list(universes),
            curves=curves,
            metrics=tuple(metrics) if metrics is not None else (),
            **kwargs,
        )
        result = sweep.run()
        if result.cache_stats is not None:
            try:
                bench = request.getfixturevalue("benchmark")
            except Exception:
                bench = None
            if bench is not None:
                bench.extra_info["engine_cache"] = cache_stats_payload(
                    result.cache_stats
                )
        return result

    return run


@pytest.fixture
def peak_memory(request):
    """Measure a callable's allocation peak (tracemalloc) + wall-clock.

    Returns ``measure(label, fn) -> (value, peak_bytes, seconds)``.
    Every measurement lands under ``extra_info["peak_memory"][label]``
    in the benchmark JSON when the test also uses the ``benchmark``
    fixture — how bench_p3 records dense-vs-chunked footprints over
    time.  tracemalloc tracks NumPy's buffers, so unlike ``ru_maxrss``
    (monotone per process) the peak resets per measured phase.
    """
    payload: dict = {}

    def measure(label: str, fn):
        tracemalloc.start()
        try:
            start = time.perf_counter()
            value = fn()
            seconds = time.perf_counter() - start
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        payload[label] = {
            "peak_bytes": int(peak),
            "seconds": round(seconds, 4),
        }
        # Only attach to a benchmark the test itself declared (and
        # therefore runs): instantiating an unused benchmark fixture
        # here would both warn and suppress the JSON output.
        if "benchmark" in request.fixturenames:
            bench = request.getfixturevalue("benchmark")
            bench.extra_info["peak_memory"] = payload
        return value, peak, seconds

    return measure


@pytest.fixture
def workload_shape(request):
    """Record a dynamic workload's shape into the benchmark JSON.

    Call ``workload_shape(n_points=..., batch_size=..., **extra)`` once
    per bench; everything lands under ``extra_info["workload"]`` so
    ``--benchmark-json`` runs can compare incremental-update timings at
    like-for-like ``k`` (move-batch size) and ``N`` (universe
    population) across revisions.
    """

    def record(n_points: int, batch_size: int, **extra):
        payload = {"n_points": int(n_points), "batch_size": int(batch_size)}
        payload.update(extra)
        if "benchmark" in request.fixturenames:
            bench = request.getfixturevalue("benchmark")
            bench.extra_info["workload"] = payload
        return payload

    return record


@pytest.fixture
def results_writer():
    """Write a named experiment table under benchmarks/results/."""

    def write(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return write


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
