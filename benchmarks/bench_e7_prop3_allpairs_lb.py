"""E7 — Proposition 3: lower bounds on the all-pairs stretch.

str_{avg,M}(π) ≥ (1/3d)(n+1)/(n^{1/d}-1) and the √d analogue for the
Euclidean metric — exact evaluation on small universes for every curve,
sampled (seeded, CI-checked) on a larger one.
"""

from repro import Universe
from repro.core.allpairs import (
    average_allpairs_stretch_exact,
    average_allpairs_stretch_sampled,
)
from repro.core.lower_bounds import (
    allpairs_euclidean_lower_bound,
    allpairs_manhattan_lower_bound,
)
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once

EXACT_UNIVERSES = [
    Universe.power_of_two(d=2, k=2),
    Universe.power_of_two(d=2, k=3),
    Universe.power_of_two(d=3, k=2),
]
SAMPLED_UNIVERSE = Universe.power_of_two(d=2, k=6)  # n = 4096


def allpairs_lb_experiment():
    rows = []
    for universe in EXACT_UNIVERSES:
        lb_m = allpairs_manhattan_lower_bound(universe.n, universe.d)
        lb_e = allpairs_euclidean_lower_bound(universe.n, universe.d)
        for name, curve in curves_for_universe(universe).items():
            rows.append(
                {
                    "d": universe.d,
                    "side": universe.side,
                    "curve": name,
                    "mode": "exact",
                    "str_M": average_allpairs_stretch_exact(
                        curve, "manhattan"
                    ),
                    "LB_M": lb_m,
                    "str_E": average_allpairs_stretch_exact(
                        curve, "euclidean"
                    ),
                    "LB_E": lb_e,
                }
            )
    # Sampled on a larger grid (seeded).
    universe = SAMPLED_UNIVERSE
    lb_m = allpairs_manhattan_lower_bound(universe.n, universe.d)
    lb_e = allpairs_euclidean_lower_bound(universe.n, universe.d)
    for name, curve in curves_for_universe(
        universe, names=["z", "simple", "hilbert", "random"]
    ).items():
        est_m = average_allpairs_stretch_sampled(
            curve, n_pairs=60_000, metric="manhattan", seed=11
        )
        est_e = average_allpairs_stretch_sampled(
            curve, n_pairs=60_000, metric="euclidean", seed=12
        )
        rows.append(
            {
                "d": universe.d,
                "side": universe.side,
                "curve": name,
                "mode": "sampled",
                "str_M": est_m.mean,
                "LB_M": lb_m,
                "str_E": est_e.mean,
                "LB_E": lb_e,
            }
        )
    return rows


def test_e7_prop3_allpairs_lower_bounds(benchmark, results_writer):
    rows = run_once(benchmark, allpairs_lb_experiment)
    table = format_table(rows)
    results_writer(
        "e7_prop3",
        "E7 / Prop 3 — all-pairs stretch lower bounds "
        "(Manhattan & Euclidean)\n\n" + table,
    )
    print("\n" + table)

    for row in rows:
        slack = 1e-9 if row["mode"] == "exact" else 0.05 * row["LB_M"]
        assert row["str_M"] >= row["LB_M"] - slack, row
        assert row["str_E"] >= row["LB_E"] - slack, row
