"""A6 — the reverse metric (Gotsman-Lindenbaum / Niedermeier et al.).

Section II argues the 1D→dD dilation is a *different* metric from the
stretch.  Numerically: the Hilbert curve obeys the √window law
(∆ ≤ 3√m − 2), while the Z curve's window dilation is near-diameter at
window 1 — yet both have near-optimal average NN-stretch.  Opposite
rankings ⇒ genuinely different metrics.
"""

import numpy as np

from repro import Universe
from repro.analysis.locality import dilation_profile
from repro.core.stretch import average_average_nn_stretch
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once

WINDOWS = (1, 4, 9, 16, 25, 64)


def locality_experiment():
    universe = Universe.power_of_two(d=2, k=5)
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "snake", "simple", "random"]
    )
    rows = []
    for name, curve in zoo.items():
        profile = dilation_profile(curve, list(WINDOWS))
        rows.append(
            {
                "curve": name,
                "Davg": average_average_nn_stretch(curve),
                **{f"dil@{w}": profile[w] for w in WINDOWS},
            }
        )
    return rows


def test_a6_locality_reverse_metric(benchmark, results_writer):
    rows = run_once(benchmark, locality_experiment)
    table = format_table(rows)
    results_writer(
        "a6_locality",
        "A6 — window dilation max ∆(window w apart on curve), 32x32\n\n"
        + table,
    )
    print("\n" + table)

    by_name = {r["curve"]: r for r in rows}
    # Hilbert: the Niedermeier et al. √m law (3√m - 2 bound, Manhattan).
    for w in WINDOWS:
        assert by_name["hilbert"][f"dil@{w}"] <= 3 * np.sqrt(w) - 2 + 1e-9
    # Z curve: dilation jumps to Θ(side) immediately.
    assert by_name["z"]["dil@1"] >= 16
    # The two metrics disagree: Z beats simple on Davg at this size
    # (barely) ... while simple/snake have smaller dil@1 than Z? No —
    # the decisive comparison: Hilbert and Z are both stretch-near-
    # optimal but differ wildly on dilation.
    assert by_name["hilbert"]["Davg"] < 2.5 * by_name["z"]["Davg"]
    assert by_name["z"]["dil@1"] > 10 * by_name["hilbert"]["dil@1"]
