"""E10 — Figure 4: the simple curve on the 8x8 grid.

Row-major scan (Eq. 8): key = x1 + 8·x2; each row left-to-right,
bottom-to-top, with a jump between rows.
"""

import numpy as np

from repro import Universe
from repro.curves.simple import SimpleCurve
from repro.viz.ascii_art import render_key_grid, render_path

from _bench_utils import run_once


def figure4_experiment():
    universe = Universe.power_of_two(d=2, k=3)
    s = SimpleCurve(universe)
    return s.key_grid(), s.order(), render_key_grid(s), render_path(s)


def test_e10_figure4_simple_grid(benchmark, results_writer):
    grid, order, key_render, path_render = run_once(
        benchmark, figure4_experiment
    )

    results_writer(
        "e10_figure4",
        "E10 / Figure 4 — simple curve on the 8x8 grid\n\n"
        + key_render + "\n\nOrder trace:\n" + path_render,
    )
    print("\n" + key_render)

    # Eq. 8 oracle over the full grid.
    for x1 in range(8):
        for x2 in range(8):
            assert grid[x1, x2] == x1 + 8 * x2

    # Figure 4's visual: 8 straight rows with 7 wrap jumps.
    steps = np.diff(order, axis=0)
    row_steps = int((steps[:, 0] == 1).sum())
    wraps = int((steps[:, 0] == -7).sum())
    assert row_steps == 56  # 7 per row x 8 rows
    assert wraps == 7
    assert path_render.count("(-7,+1)") == 7
