"""A7 — how tight is Theorem 1?  Ground truth and adversarial probes.

Section VI's first open question: close the gap between the bound
(2/3d)·n^{1-1/d} and the best curve (1/d)·n^{1-1/d}.  We measure:

* the TRUE optimum over all n! bijections on tiny universes
  (exhaustive), against the bound and against Z; and
* the best bijection found by seeded hill climbing on larger grids —
  an adversarial attempt to beat the bound (it must fail, and its best
  value brackets the real optimum from above).
"""

from repro import Universe
from repro.core.lower_bounds import davg_lower_bound
from repro.core.optimal import exhaustive_optimum, local_search
from repro.core.stretch import average_average_nn_stretch
from repro.curves.zcurve import ZCurve
from repro.viz.tables import format_table

from _bench_utils import run_once

EXHAUSTIVE = [
    Universe(d=1, side=4),
    Universe(d=2, side=2),
    Universe(d=3, side=2),
    Universe(d=2, side=3),
]
SEARCH = [
    Universe.power_of_two(d=2, k=2),
    Universe.power_of_two(d=2, k=3),
]


def optimal_experiment():
    rows = []
    for universe in EXHAUSTIVE:
        opt = exhaustive_optimum(universe)
        bound = davg_lower_bound(universe.n, universe.d)
        rows.append(
            {
                "mode": "exhaustive",
                "d": universe.d,
                "side": universe.side,
                "n": universe.n,
                "best Davg": opt.davg,
                "LB": bound,
                "best/LB": opt.davg / bound,
                "evaluated": opt.n_evaluated,
            }
        )
    for universe in SEARCH:
        z = ZCurve(universe)
        z_keys = z.key_grid().reshape(-1, order="F")
        result = local_search(
            universe, start_keys=z_keys, iterations=30_000, seed=0
        )
        bound = davg_lower_bound(universe.n, universe.d)
        rows.append(
            {
                "mode": "hill-climb(Z)",
                "d": universe.d,
                "side": universe.side,
                "n": universe.n,
                "best Davg": result.davg,
                "LB": bound,
                "best/LB": result.davg / bound,
                "evaluated": result.iterations,
            }
        )
    return rows


def test_a7_optimal_search(benchmark, results_writer):
    rows = run_once(benchmark, optimal_experiment)
    table = format_table(rows)
    results_writer(
        "a7_optimal",
        "A7 — true optimum (tiny n) and adversarial search vs "
        "Theorem 1's bound\n\n" + table,
    )
    print("\n" + table)

    for row in rows:
        # Nothing — not even the true optimum — crosses the bound.
        assert row["best Davg"] >= row["LB"] - 1e-12, row
    # The true 2x2 optimum is exactly 1.5 (Figure 1's π1).
    tiny = next(
        r for r in rows if (r["d"], r["side"]) == (2, 2)
    )
    assert tiny["best Davg"] == 1.5
    # Hill climbing starting from Z improves at most marginally — Z is
    # already near-optimal (its ratio stays within the [1, 1.5] band).
    for row in rows:
        if row["mode"] == "hill-climb(Z)":
            universe = Universe(d=row["d"], side=row["side"])
            z_val = average_average_nn_stretch(ZCurve(universe))
            assert row["best Davg"] <= z_val + 1e-12
            assert row["best Davg"] >= z_val * 0.8
