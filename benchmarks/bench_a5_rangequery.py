"""A5 — range-query I/O cost across curves (database motivation).

Seek+scan cost model over uniformly placed boxes: runs = clustering
number, scan volume = box volume.  Curves with better clustering pay
fewer seeks; the scan term is curve-independent.
"""

from repro import Universe
from repro.apps.rangequery import SFCIndex
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table

from _bench_utils import run_once

BOXES = [(4, 4), (8, 8)]
SEEK, SCAN = 10.0, 1.0


def rangequery_experiment():
    universe = Universe.power_of_two(d=2, k=5)
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "gray", "snake", "simple", "random"]
    )
    rows = []
    for name, curve in zoo.items():
        index = SFCIndex(curve, seek_cost=SEEK, scan_cost=SCAN)
        row = {"curve": name}
        for box in BOXES:
            row[f"cost{box}"] = index.average_query_cost(
                box, n_samples=120, seed=17
            )
        rows.append(row)
    return rows


def test_a5_rangequery_cost(benchmark, results_writer):
    rows = run_once(benchmark, rangequery_experiment)
    rows.sort(key=lambda r: r["cost(4, 4)"])
    table = format_table(rows)
    results_writer(
        "a5_rangequery",
        f"A5 — range-query I/O (seek={SEEK}, scan={SCAN}, 32x32 grid)\n\n"
        + table,
    )
    print("\n" + table)

    by_name = {r["curve"]: r for r in rows}
    for box in BOXES:
        volume = box[0] * box[1]
        key = f"cost{box}"
        # Scan floor: no curve can read fewer than `volume` cells, plus
        # at least one seek.
        for row in rows:
            assert row[key] >= SCAN * volume + SEEK - 1e-9
        # Random pays nearly one seek per cell.
        assert by_name["random"][key] > SCAN * volume + SEEK * volume * 0.5
        # Hilbert's seek overhead stays a small multiple of the floor.
        assert by_name["hilbert"][key] < SCAN * volume + SEEK * volume * 0.35
        assert by_name["hilbert"][key] < by_name["random"][key] / 2
