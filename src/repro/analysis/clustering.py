"""The clustering metric of Moon et al. (2001) — related-work comparison.

Given a rectangular query region, the *cluster count* is the number of
maximal runs of consecutive curve indices needed to cover the region's
cells.  Moon et al. analyze this for the Hilbert curve; the paper's
Section II stresses that clustering and stretch are **different** metrics
— our A2 bench shows they rank curves differently.

Functions accept a curve or a :class:`repro.engine.MetricContext`; box
keys are read straight off the context's cached key grid (no per-query
coordinate materialization or curve evaluation).  ``"clusters:box=4"``
is also a registered sweep metric (:data:`repro.engine.METRICS`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.context import get_context

__all__ = [
    "box_bounds",
    "box_keys",
    "rectangle_cells",
    "cluster_count",
    "expected_clusters",
]


def box_bounds(
    universe, lo: Sequence[int], hi: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Validated ``(lo, hi)`` arrays of the half-open box ``[lo, hi)``.

    Raises for wrong shape, out-of-range or empty boxes.
    """
    lo_arr = np.asarray(lo, dtype=np.int64)
    hi_arr = np.asarray(hi, dtype=np.int64)
    if lo_arr.shape != (universe.d,) or hi_arr.shape != (universe.d,):
        raise ValueError(f"lo/hi must have shape ({universe.d},)")
    if np.any(lo_arr < 0) or np.any(hi_arr > universe.side):
        raise ValueError("box extends outside the universe")
    if np.any(hi_arr <= lo_arr):
        raise ValueError("box must be non-empty (hi > lo per axis)")
    return lo_arr, hi_arr


def box_keys(ctx, lo: Sequence[int], hi: Sequence[int]) -> np.ndarray:
    """Sorted curve keys of the box ``[lo, hi)``, off the cached key grid.

    ``ctx`` is a :class:`repro.engine.MetricContext` (or anything
    :func:`get_context` accepts).  The shared primitive behind the
    cluster count and the range-query index.  Chunked contexts evaluate
    the curve on the box's cells directly (``O(volume)``, no dense
    grid); the sorted keys are identical either way.
    """
    ctx = get_context(ctx)
    lo_arr, hi_arr = box_bounds(ctx.universe, lo, hi)
    if ctx.chunked:
        cells = rectangle_cells(ctx.universe, lo_arr, hi_arr)
        return np.sort(
            ctx.curve.keys_of(cells, backend=ctx.backend), axis=None
        )
    box = tuple(slice(int(a), int(b)) for a, b in zip(lo_arr, hi_arr))
    return np.sort(ctx.key_grid()[box], axis=None)


def rectangle_cells(
    universe, lo: Sequence[int], hi: Sequence[int]
) -> np.ndarray:
    """Coordinates of all cells in the half-open box ``[lo, hi)``.

    Returns shape ``(volume, d)``; raises for empty or out-of-range boxes.
    """
    lo_arr, hi_arr = box_bounds(universe, lo, hi)
    axes = [np.arange(a, b, dtype=np.int64) for a, b in zip(lo_arr, hi_arr)]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.reshape(-1) for m in mesh], axis=-1)


def cluster_count(
    curve, lo: Sequence[int], hi: Sequence[int]
) -> int:
    """Number of maximal consecutive-key runs covering the box ``[lo, hi)``.

    This is Moon et al.'s clustering number: each run corresponds to one
    contiguous read when the data is laid out in curve order.
    """
    keys = box_keys(curve, lo, hi)
    if keys.size == 0:
        return 0
    breaks = int((np.diff(keys) > 1).sum())
    return breaks + 1


def expected_clusters(
    curve,
    box_shape: Sequence[int],
    n_samples: int = 200,
    seed: int = 0,
) -> float:
    """Average cluster count over uniformly placed boxes of a fixed shape.

    Moon et al.'s quantity of interest for query workloads.  Placement is
    uniform over all in-bounds positions.

    On a threaded context the per-box counts run on the context's
    :class:`repro.engine.threads.BlockScheduler`.  The box placements
    are drawn up front in the serial loop's RNG order, and the integer
    count sum is order-free, so the threaded average is bit-for-bit
    the serial one.
    """
    ctx = get_context(curve)
    universe = ctx.universe
    shape = np.asarray(box_shape, dtype=np.int64)
    if shape.shape != (universe.d,):
        raise ValueError(f"box_shape must have {universe.d} entries")
    if np.any(shape < 1) or np.any(shape > universe.side):
        raise ValueError("box_shape must fit in the universe")
    rng = np.random.default_rng(seed)
    max_lo = universe.side - shape  # inclusive upper bound per axis
    placements = [
        np.array([rng.integers(0, m + 1) for m in max_lo], dtype=np.int64)
        for _ in range(n_samples)
    ]
    tasks = [
        (lambda lo=lo: cluster_count(ctx, lo, lo + shape))
        for lo in placements
    ]
    if ctx.threaded:
        from repro.engine.threads import prepare_box_reads

        prepare_box_reads(ctx)
        total = sum(ctx.scheduler.imap(tasks))
    else:
        total = sum(fn() for fn in tasks)
    return total / n_samples
