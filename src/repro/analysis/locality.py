"""Reverse ("window dilation") locality metrics.

Gotsman & Lindenbaum (1996) and Niedermeier, Reinhardt & Sanders (2002)
study the **opposite direction** from the paper's stretch: how far apart
in the grid can two cells be whose curve indices are within ``m`` of each
other?  For the 2-D Hilbert curve ``∆(α,β) ≤ 3·√(|i−j|) − 2``; for the Z
curve no such square-root law holds (consecutive keys can be Θ(side)
apart).  Section II of the paper stresses these metrics are *different*
from the stretch; bench A6 demonstrates it numerically.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.grid.metrics import euclidean, manhattan

__all__ = ["window_dilation", "worst_window_pairs", "dilation_profile"]


def window_dilation(
    curve: SpaceFillingCurve, window: int, metric: str = "manhattan"
) -> int | float:
    """Max grid distance between cells exactly ``window`` apart on the curve.

    ``max_α ∆(π^{-1}(t), π^{-1}(t+window))`` — the worst-case grid jump
    of a fixed-size curve step.
    """
    if window < 1 or window >= curve.universe.n:
        raise ValueError(f"window must be in [1, n), got {window}")
    path = curve.order()
    a, b = path[:-window], path[window:]
    if metric == "manhattan":
        return int(manhattan(a, b).max())
    if metric == "euclidean":
        return float(euclidean(a, b).max())
    raise ValueError("metric must be 'manhattan' or 'euclidean'")


def worst_window_pairs(
    curve: SpaceFillingCurve, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """The cell pairs attaining :func:`window_dilation` (Manhattan).

    Returns two ``(m, d)`` arrays of the worst pairs' endpoints.
    """
    if window < 1 or window >= curve.universe.n:
        raise ValueError(f"window must be in [1, n), got {window}")
    path = curve.order()
    a, b = path[:-window], path[window:]
    dist = manhattan(a, b)
    worst = dist == dist.max()
    return a[worst], b[worst]


def dilation_profile(
    curve: SpaceFillingCurve, windows: list[int], metric: str = "manhattan"
) -> dict[int, float]:
    """:func:`window_dilation` evaluated over a list of window sizes.

    For a Hilbert curve the profile grows like ``O(window^{1/d})``; for
    the Z curve it saturates near the grid diameter at window 1 already.
    """
    return {
        w: float(window_dilation(curve, w, metric=metric)) for w in windows
    }
