"""Reverse ("window dilation") locality metrics.

Gotsman & Lindenbaum (1996) and Niedermeier, Reinhardt & Sanders (2002)
study the **opposite direction** from the paper's stretch: how far apart
in the grid can two cells be whose curve indices are within ``m`` of each
other?  For the 2-D Hilbert curve ``∆(α,β) ≤ 3·√(|i−j|) − 2``; for the Z
curve no such square-root law holds (consecutive keys can be Θ(side)
apart).  Section II of the paper stresses these metrics are *different*
from the stretch; bench A6 demonstrates it numerically.

All functions accept either a curve or a
:class:`repro.engine.MetricContext`; the windowed curve-shift distance
arrays are cached on the context, so profiles and repeated queries
reuse them.  ``"dilation:window=16"`` is also a registered sweep metric
(:data:`repro.engine.METRICS`).
"""

from __future__ import annotations

import numpy as np

from repro.engine.context import get_context

__all__ = ["window_dilation", "worst_window_pairs", "dilation_profile"]


def window_dilation(
    curve, window: int, metric: str = "manhattan"
) -> int | float:
    """Max grid distance between cells exactly ``window`` apart on the curve.

    ``max_α ∆(π^{-1}(t), π^{-1}(t+window))`` — the worst-case grid jump
    of a fixed-size curve step.  ``curve`` may be a curve or a
    :class:`repro.engine.MetricContext`; chunked contexts reduce
    block-wise over :meth:`~repro.engine.MetricContext.iter_window_pairs`
    with values identical to the dense path.
    """
    return get_context(curve).window_dilation(window, metric=metric)


def worst_window_pairs(
    curve, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """The cell pairs attaining :func:`window_dilation` (Manhattan).

    Returns two ``(m, d)`` arrays of the worst pairs' endpoints.
    """
    ctx = get_context(curve)
    if ctx.chunked:
        from repro.grid.metrics import manhattan

        best = ctx.window_dilation(window)
        firsts, seconds = [], []
        for _, _, a, b in ctx.iter_window_pairs(window):
            worst = manhattan(a, b) == best
            if worst.any():
                firsts.append(a[worst])
                seconds.append(b[worst])
        return np.concatenate(firsts), np.concatenate(seconds)
    dist = ctx.window_shift_distances(window, "manhattan")
    path = ctx.order()
    a, b = path[:-window], path[window:]
    worst = dist == dist.max()
    return a[worst], b[worst]


def dilation_profile(
    curve, windows: list[int], metric: str = "manhattan"
) -> dict[int, float]:
    """:func:`window_dilation` evaluated over a list of window sizes.

    For a Hilbert curve the profile grows like ``O(window^{1/d})``; for
    the Z curve it saturates near the grid diameter at window 1 already.
    """
    ctx = get_context(curve)
    return {
        w: float(window_dilation(ctx, w, metric=metric)) for w in windows
    }
