"""Surrounding analyses: related-work metrics, estimation, convergence.

These modules implement the *other* locality metrics the paper's related
work section discusses (clustering, reverse window dilation), the
convergence tooling used to validate asymptotic (``~``) claims at finite
n, distribution views of NN curve distances, and shared sampling
helpers.
"""

from repro.analysis.anisotropy import (
    anisotropy_index,
    axis_fractions,
    simple_axis_fraction_exact,
    z_axis_fraction_limit,
)
from repro.analysis.clustering import (
    cluster_count,
    expected_clusters,
    rectangle_cells,
)
from repro.analysis.dispersion import (
    StretchDispersion,
    gini,
    stretch_dispersion,
)
from repro.analysis.profile import (
    stretch_profile_exact,
    stretch_profile_sampled,
)
from repro.analysis.convergence import ConvergencePoint, convergence_study, is_converging
from repro.analysis.distribution import nn_distance_ccdf, nn_distance_quantiles
from repro.analysis.locality import window_dilation, worst_window_pairs
from repro.analysis.sampling import sample_mean_ci, sample_rectangles

__all__ = [
    "anisotropy_index",
    "axis_fractions",
    "z_axis_fraction_limit",
    "simple_axis_fraction_exact",
    "StretchDispersion",
    "stretch_dispersion",
    "gini",
    "stretch_profile_exact",
    "stretch_profile_sampled",
    "cluster_count",
    "expected_clusters",
    "rectangle_cells",
    "ConvergencePoint",
    "convergence_study",
    "is_converging",
    "nn_distance_ccdf",
    "nn_distance_quantiles",
    "window_dilation",
    "worst_window_pairs",
    "sample_mean_ci",
    "sample_rectangles",
]
