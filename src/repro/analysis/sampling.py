"""Shared seeded-sampling helpers (rectangles, pair means with CIs).

Everything random in the library flows through ``numpy.random.default_rng``
with explicit seeds, so all benches and examples are reproducible
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["MeanEstimate", "sample_mean_ci", "sample_rectangles"]


@dataclass(frozen=True)
class MeanEstimate:
    """Sample mean with CLT standard error."""

    mean: float
    stderr: float
    n_samples: int

    @property
    def ci95(self) -> tuple[float, float]:
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)


def sample_mean_ci(
    draw: Callable[[np.random.Generator], float],
    n_samples: int,
    seed: int = 0,
) -> MeanEstimate:
    """Monte-Carlo mean of a scalar draw function, with standard error."""
    if n_samples < 2:
        raise ValueError("need n_samples >= 2")
    rng = np.random.default_rng(seed)
    values = np.array([draw(rng) for _ in range(n_samples)], dtype=np.float64)
    return MeanEstimate(
        mean=float(values.mean()),
        stderr=float(values.std(ddof=1) / np.sqrt(n_samples)),
        n_samples=n_samples,
    )


def sample_rectangles(
    side: int,
    d: int,
    box_shape: Sequence[int],
    n_samples: int,
    seed: int = 0,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Uniformly placed boxes of a fixed shape inside a ``side^d`` grid.

    Returns ``(lo, hi)`` pairs with ``hi = lo + box_shape`` (half-open).
    """
    shape = np.asarray(box_shape, dtype=np.int64)
    if shape.shape != (d,):
        raise ValueError(f"box_shape must have {d} entries")
    if np.any(shape < 1) or np.any(shape > side):
        raise ValueError("box_shape must fit in the grid")
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n_samples):
        lo = np.array(
            [rng.integers(0, side - s + 1) for s in shape], dtype=np.int64
        )
        out.append((lo, lo + shape))
    return out
