"""Distribution views of the NN curve-distance values.

``D^avg`` and ``D^max`` are means of the per-cell stretch; applications
(notably the N-body window search in :mod:`repro.apps.nbody`) need the
full distribution of ``∆π`` over NN pairs: quantiles and the CCDF
``P(∆π > w)``, which equals the *miss rate* of a curve-window neighbor
search with half-width ``w``.

Functions accept a curve or a :class:`repro.engine.MetricContext`; the
NN distance pool is the context's cached ``nn_distance_values`` array.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.context import get_context

__all__ = [
    "nn_distance_quantiles",
    "nn_distance_ccdf",
    "window_for_recall",
]


def nn_distance_quantiles(
    curve, qs: Sequence[float] = (0.5, 0.9, 0.99, 1.0)
) -> dict[float, float]:
    """Quantiles of ``∆π`` over all unordered NN pairs."""
    values = get_context(curve).nn_distance_values()
    out = {}
    for q in qs:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        out[q] = float(np.quantile(values, q))
    return out


def nn_distance_ccdf(
    curve, windows: Sequence[int]
) -> dict[int, float]:
    """``P(∆π > w)`` over NN pairs, for each window ``w``.

    This is exactly the fraction of nearest-neighbor interactions a
    curve-window search of half-width ``w`` would miss.
    """
    values = get_context(curve).nn_distance_values()
    total = values.size
    return {
        int(w): float((values > w).sum()) / total for w in windows
    }


def window_for_recall(curve, recall: float) -> int:
    """Smallest window ``w`` with ``P(∆π ≤ w) ≥ recall``.

    The application-level cost of a curve: better NN-stretch ⇒ smaller
    windows for the same recall.
    """
    if not 0.0 < recall <= 1.0:
        raise ValueError(f"recall must be in (0,1], got {recall}")
    values = np.sort(get_context(curve).nn_distance_values())
    rank = int(np.ceil(recall * values.size)) - 1
    return int(values[rank])
