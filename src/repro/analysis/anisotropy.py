"""Per-dimension balance of the NN-stretch (Lemma 5 through a new lens).

Lemma 5 shows the Z curve spends its NN-stretch budget very unevenly
across dimensions: asymptotically a fraction ``2^{d−i}/(2^d − 1)`` of
the total on dimension i — dimension 1 carries over half the stretch.
The simple curve is even more skewed (``side^{i−1}`` weights); the
Hilbert curve is nearly isotropic.

This module quantifies that with the *anisotropy profile*
``Λ_i / Σ_j Λ_j`` and a scalar anisotropy index (max/min fraction).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.engine.context import get_context

__all__ = [
    "axis_fractions",
    "anisotropy_index",
    "z_axis_fraction_limit",
    "simple_axis_fraction_exact",
]


def axis_fractions(curve) -> np.ndarray:
    """``Λ_i / Σ_j Λ_j`` per dimension (sums to 1).

    ``curve`` may be a curve or a :class:`repro.engine.MetricContext`.
    """
    lam = get_context(curve).lambda_sums().astype(np.float64)
    total = lam.sum()
    if total <= 0:
        raise ValueError("degenerate universe (no NN pairs)")
    return lam / total


def anisotropy_index(curve) -> float:
    """``max_i Λ_i / min_i Λ_i`` — 1.0 means perfectly isotropic."""
    lam = get_context(curve).lambda_sums().astype(np.float64)
    if lam.min() <= 0:
        raise ValueError("degenerate universe (axis with no pairs)")
    return float(lam.max() / lam.min())


def z_axis_fraction_limit(d: int, i: int) -> Fraction:
    """Asymptotic Λ_i fraction of the Z curve: ``2^{d−i}/(2^d − 1)``.

    Direct corollary of Lemma 5: all Λ_i share the scale ``n^{2−1/d}``,
    so their fractions converge to the limit coefficients (which sum
    to 1).
    """
    if not 1 <= i <= d:
        raise ValueError(f"dimension index must be in [1, {d}], got {i}")
    return Fraction(2 ** (d - i), 2**d - 1)


def simple_axis_fraction_exact(d: int, side: int, i: int) -> Fraction:
    """Exact Λ_i fraction of the simple curve: ``side^{i−1}·(side−1)/(side^d−1)``.

    Every axis has the same pair count and constant distance
    ``side^{i−1}``, so fractions follow the geometric weights exactly
    at every finite size (no limit needed).
    """
    if not 1 <= i <= d:
        raise ValueError(f"dimension index must be in [1, {d}], got {i}")
    if side < 2:
        raise ValueError("need side >= 2")
    total = sum(side ** (j - 1) for j in range(1, d + 1))
    return Fraction(side ** (i - 1), total)
