"""Convergence studies for the paper's asymptotic (``f ~ g``) claims.

Theorems 2–3 and Lemma 5 are statements of the form
``lim_{n→∞} f(n)/g(n) = 1`` (or ``= c``).  At finite n we validate them
by sweeping ``k`` and checking that the ratio sequence approaches the
limit monotonically in distance — the numerical signature of the
asymptotic claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

__all__ = [
    "ConvergencePoint",
    "convergence_study",
    "metric_convergence_study",
    "is_converging",
]


@dataclass(frozen=True)
class ConvergencePoint:
    """One finite-n point of a ratio-to-limit sequence."""

    parameter: int  # typically k (side = 2^k)
    n: int
    measured: float
    reference: float

    @property
    def ratio(self) -> float:
        """``measured / reference``; → 1 under the paper's ``~`` claim."""
        return self.measured / self.reference

    @property
    def gap(self) -> float:
        """``|ratio − 1|``; should shrink along the sweep."""
        return abs(self.ratio - 1.0)


def convergence_study(
    parameters: Sequence[int],
    measure: Callable[[int], float],
    reference: Callable[[int], float],
    n_of: Callable[[int], int],
) -> list[ConvergencePoint]:
    """Evaluate ``measure/reference`` along a parameter sweep.

    Parameters
    ----------
    parameters:
        Sweep values (e.g. ``k = 1..8``), in increasing order.
    measure, reference:
        Callables mapping a parameter to the measured quantity and its
        claimed asymptotic leading term.
    n_of:
        Maps a parameter to the universe size (for reporting).
    """
    points = []
    for p in parameters:
        points.append(
            ConvergencePoint(
                parameter=p,
                n=n_of(p),
                measured=measure(p),
                reference=reference(p),
            )
        )
    return points


def metric_convergence_study(
    parameters: Sequence[int],
    curve: str,
    metric: str,
    reference: Callable[[int], float],
    d: int = 2,
    pool: Optional["ContextPool"] = None,
    chunk_cells: Optional[int] = None,
) -> list[ConvergencePoint]:
    """:func:`convergence_study` of a registered engine metric along ``k``.

    ``curve`` and ``metric`` are engine spec strings (``"z"``,
    ``"random:seed=3"``; ``"davg"``, ``"dilation:window=16"``), evaluated
    on ``Universe.power_of_two(d, k)`` for each parameter ``k``.  All
    contexts come from one shared :class:`repro.engine.ContextPool`, so
    the sweep reuses intermediates the same way a declarative
    :class:`repro.engine.Sweep` does.

    ``chunk_cells`` runs every context in the engine's chunked mode —
    the knob that lets a convergence study climb past the dense-grid
    ceiling toward the asymptotic regimes the paper reasons about
    (values are bit-for-bit identical to the dense mode where both run).
    Ignored when an explicit ``pool`` is supplied.
    """
    from repro.engine.pool import ContextPool
    from repro.engine.sweep import CurveSpec, MetricSpec
    from repro.grid.universe import Universe

    if pool is None:
        pool = ContextPool(chunk_cells=chunk_cells)
    curve_spec = CurveSpec.parse(curve)
    metric_fn = MetricSpec.parse(metric).bind()

    def measure(k: int) -> float:
        universe = Universe.power_of_two(d=d, k=k)
        return float(metric_fn(pool.get(curve_spec.make(universe))))

    return convergence_study(
        parameters,
        measure,
        reference,
        lambda k: Universe.power_of_two(d=d, k=k).n,
    )


def is_converging(
    points: Sequence[ConvergencePoint],
    final_gap: float = 0.25,
    allow_slack: float = 1e-12,
) -> bool:
    """Accept a sweep as consistent with ``ratio → 1``.

    Criteria: the last gap is below ``final_gap`` **and** the gap never
    increases along the sweep (up to ``allow_slack`` for float noise).
    This is a falsifiable check: a wrong constant or a wrong exponent in
    the reference fails it immediately.
    """
    if not points:
        raise ValueError("empty convergence study")
    gaps = [pt.gap for pt in points]
    monotone = all(
        later <= earlier + allow_slack
        for earlier, later in zip(gaps[:-1], gaps[1:])
    )
    return monotone and gaps[-1] <= final_gap
