"""Convergence studies for the paper's asymptotic (``f ~ g``) claims.

Theorems 2–3 and Lemma 5 are statements of the form
``lim_{n→∞} f(n)/g(n) = 1`` (or ``= c``).  At finite n we validate them
by sweeping ``k`` and checking that the ratio sequence approaches the
limit monotonically in distance — the numerical signature of the
asymptotic claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["ConvergencePoint", "convergence_study", "is_converging"]


@dataclass(frozen=True)
class ConvergencePoint:
    """One finite-n point of a ratio-to-limit sequence."""

    parameter: int  # typically k (side = 2^k)
    n: int
    measured: float
    reference: float

    @property
    def ratio(self) -> float:
        """``measured / reference``; → 1 under the paper's ``~`` claim."""
        return self.measured / self.reference

    @property
    def gap(self) -> float:
        """``|ratio − 1|``; should shrink along the sweep."""
        return abs(self.ratio - 1.0)


def convergence_study(
    parameters: Sequence[int],
    measure: Callable[[int], float],
    reference: Callable[[int], float],
    n_of: Callable[[int], int],
) -> list[ConvergencePoint]:
    """Evaluate ``measure/reference`` along a parameter sweep.

    Parameters
    ----------
    parameters:
        Sweep values (e.g. ``k = 1..8``), in increasing order.
    measure, reference:
        Callables mapping a parameter to the measured quantity and its
        claimed asymptotic leading term.
    n_of:
        Maps a parameter to the universe size (for reporting).
    """
    points = []
    for p in parameters:
        points.append(
            ConvergencePoint(
                parameter=p,
                n=n_of(p),
                measured=measure(p),
                reference=reference(p),
            )
        )
    return points


def is_converging(
    points: Sequence[ConvergencePoint],
    final_gap: float = 0.25,
    allow_slack: float = 1e-12,
) -> bool:
    """Accept a sweep as consistent with ``ratio → 1``.

    Criteria: the last gap is below ``final_gap`` **and** the gap never
    increases along the sweep (up to ``allow_slack`` for float noise).
    This is a falsifiable check: a wrong constant or a wrong exponent in
    the reference fails it immediately.
    """
    if not points:
        raise ValueError("empty convergence study")
    gaps = [pt.gap for pt in points]
    monotone = all(
        later <= earlier + allow_slack
        for earlier, later in zip(gaps[:-1], gaps[1:])
    )
    return monotone and gaps[-1] <= final_gap
