"""Stretch conditioned on grid distance — the probabilistic-model view.

The paper's final open question proposes analyzing proximity
preservation "using a more general probabilistic model of input".  The
natural object is the *stretch profile*

    ``profile(r) = E[ ∆π(α,β)/∆(α,β) | ∆(α,β) = r ]``

over uniformly random pairs at each grid distance r: how the stretch
decays from the NN regime (r = 1, the paper's focus) to the diameter.
Exact (chunked all-pairs) for small universes; seeded sampling for
large ones.

Functions accept a curve or a :class:`repro.engine.MetricContext`; keys
come from the context's cached rank-ordered flat key array instead of
re-evaluating the curve.
"""

from __future__ import annotations

import numpy as np

from repro.engine.context import get_context
from repro.grid.metrics import pairwise_manhattan

__all__ = ["stretch_profile_exact", "stretch_profile_sampled"]


def stretch_profile_exact(
    curve, chunk: int = 1024
) -> dict[int, float]:
    """Exact ``profile(r)`` for every realized Manhattan distance r.

    ``O(n²)`` chunked; intended for universes up to ~10⁴ cells.
    """
    ctx = get_context(curve)
    universe = ctx.universe
    n = universe.n
    if n < 2:
        raise ValueError("need n >= 2")
    cells = universe.all_coords()
    keys = ctx.flat_keys().astype(np.float64)
    max_r = universe.d * (universe.side - 1)
    sums = np.zeros(max_r + 1, dtype=np.float64)
    counts = np.zeros(max_r + 1, dtype=np.int64)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        dist = pairwise_manhattan(cells[start:stop], cells)
        key_dist = np.abs(keys[start:stop, None] - keys[None, :])
        flat_r = dist.reshape(-1)
        ratio = np.divide(
            key_dist.reshape(-1),
            flat_r,
            out=np.zeros(flat_r.size),
            where=flat_r > 0,
        )
        sums += np.bincount(flat_r, weights=ratio, minlength=max_r + 1)
        counts += np.bincount(flat_r, minlength=max_r + 1)
    return {
        r: float(sums[r] / counts[r])
        for r in range(1, max_r + 1)
        if counts[r] > 0
    }


def stretch_profile_sampled(
    curve,
    n_pairs: int = 200_000,
    seed: int = 0,
) -> dict[int, float]:
    """Sampled ``profile(r)`` from uniform random ordered pairs.

    Distances with no sampled pair are absent from the result; rare
    extreme distances get noisy estimates — use the exact variant for
    assertions.
    """
    ctx = get_context(curve)
    universe = ctx.universe
    n = universe.n
    if n < 2:
        raise ValueError("need n >= 2")
    if n_pairs < 1:
        raise ValueError("need n_pairs >= 1")
    rng = np.random.default_rng(seed)
    from repro.grid.coords import rank_to_coords

    first = rng.integers(0, n, size=n_pairs, dtype=np.int64)
    second = (first + rng.integers(1, n, size=n_pairs, dtype=np.int64)) % n
    a = rank_to_coords(first, universe)
    b = rank_to_coords(second, universe)
    dist = np.abs(a - b).sum(axis=1)
    keys = ctx.flat_keys()
    ratio = np.abs(keys[first] - keys[second]) / dist
    max_r = int(dist.max())
    sums = np.bincount(dist, weights=ratio, minlength=max_r + 1)
    counts = np.bincount(dist, minlength=max_r + 1)
    return {
        r: float(sums[r] / counts[r])
        for r in range(1, max_r + 1)
        if counts[r] > 0
    }
