"""Dispersion of the per-cell stretch: beyond the paper's means.

``D^avg`` and ``D^max`` are means over cells; fairness-style questions
("are a few cells pathologically stretched, or is the cost spread
evenly?") need dispersion statistics of the per-cell ``δ^avg_π``
field:

* standard deviation and coefficient of variation;
* the Gini coefficient (0 = perfectly even, → 1 = concentrated);
* tail quantiles of the per-cell stretch.

The simple curve is the extreme case: interior cells all share one
value (zero interior dispersion), while recursive curves spread a wide
range of per-cell values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.context import get_context

__all__ = ["StretchDispersion", "stretch_dispersion", "gini"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = all equal)."""
    arr = np.sort(np.asarray(values, dtype=np.float64).reshape(-1))
    if arr.size == 0:
        raise ValueError("empty sample")
    if np.any(arr < 0):
        raise ValueError("Gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1)
    # Clamp: the exact value lies in [0, 1), but for an all-equal
    # sample the alternating-sign dot product cancels to within float
    # error of zero and can land epsilon-negative.
    return float(max(0.0, (2 * index - n - 1) @ arr / (n * total)))


@dataclass(frozen=True)
class StretchDispersion:
    """Dispersion summary of the per-cell δ^avg field."""

    curve_name: str
    mean: float
    std: float
    gini: float
    q50: float
    q90: float
    q99: float

    @property
    def coefficient_of_variation(self) -> float:
        return self.std / self.mean


def stretch_dispersion(
    curve,
    quantiles: Sequence[float] = (0.5, 0.9, 0.99),
) -> StretchDispersion:
    """Compute dispersion statistics of ``δ^avg_π`` over all cells.

    ``curve`` may be a curve or a :class:`repro.engine.MetricContext`;
    the per-cell field comes from the context's cache.
    """
    ctx = get_context(curve)
    field = ctx.per_cell_avg_stretch().reshape(-1)
    q50, q90, q99 = (float(np.quantile(field, q)) for q in quantiles)
    return StretchDispersion(
        curve_name=ctx.curve.name,
        mean=float(field.mean()),
        std=float(field.std()),
        gini=gini(field),
        q50=q50,
        q90=q90,
        q99=q99,
    )
