"""Dispersion of the per-cell stretch: beyond the paper's means.

``D^avg`` and ``D^max`` are means over cells; fairness-style questions
("are a few cells pathologically stretched, or is the cost spread
evenly?") need dispersion statistics of the per-cell ``δ^avg_π``
field:

* standard deviation and coefficient of variation;
* the Gini coefficient (0 = perfectly even, → 1 = concentrated);
* tail quantiles of the per-cell stretch.

The simple curve is the extreme case: interior cells all share one
value (zero interior dispersion), while recursive curves spread a wide
range of per-cell values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.stretch import per_cell_avg_stretch
from repro.curves.base import SpaceFillingCurve

__all__ = ["StretchDispersion", "stretch_dispersion", "gini"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = all equal)."""
    arr = np.sort(np.asarray(values, dtype=np.float64).reshape(-1))
    if arr.size == 0:
        raise ValueError("empty sample")
    if np.any(arr < 0):
        raise ValueError("Gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1)
    return float((2 * index - n - 1) @ arr / (n * total))


@dataclass(frozen=True)
class StretchDispersion:
    """Dispersion summary of the per-cell δ^avg field."""

    curve_name: str
    mean: float
    std: float
    gini: float
    q50: float
    q90: float
    q99: float

    @property
    def coefficient_of_variation(self) -> float:
        return self.std / self.mean


def stretch_dispersion(
    curve: SpaceFillingCurve,
    quantiles: Sequence[float] = (0.5, 0.9, 0.99),
) -> StretchDispersion:
    """Compute dispersion statistics of ``δ^avg_π`` over all cells."""
    field = per_cell_avg_stretch(curve).reshape(-1)
    q50, q90, q99 = (float(np.quantile(field, q)) for q in quantiles)
    return StretchDispersion(
        curve_name=curve.name,
        mean=float(field.mean()),
        std=float(field.std()),
        gini=gini(field),
        q50=q50,
        q90=q90,
        q99=q99,
    )
