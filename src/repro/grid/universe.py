"""The d-dimensional grid universe of Section III.

The paper's model: the universe is the grid of dimensions
``s × s × ... × s`` (d times) with ``s = 2^k`` for a non-negative integer
``k``, and ``n = s^d`` cells.  Each cell is a d-tuple
``(x_1, ..., x_d)`` with ``0 <= x_i < s``.

This module keeps the model slightly more general: any integer side
``s >= 1`` is allowed (the simple curve, snake curve, random bijections and
all metrics are well defined for any side), while curves that require a
power-of-two side (Z, Gray, Hilbert) check :attr:`Universe.k` themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["Universe"]


def _is_power_of(value: int, base: int) -> bool:
    """Return True iff ``value == base**m`` for some integer ``m >= 0``."""
    if value < 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


@dataclass(frozen=True)
class Universe:
    """The universe ``U``: a d-dimensional grid with ``side`` cells per axis.

    Parameters
    ----------
    d:
        Number of dimensions.  The paper assumes ``d`` is a constant; any
        ``d >= 1`` is supported here (memory permitting: ``n = side**d``).
    side:
        Number of cells along each axis (the paper's ``n^{1/d} = 2^k``).

    Notes
    -----
    Axis ``i`` of a coordinate array corresponds to the paper's dimension
    ``i + 1``.  In particular the paper's "dimension 1" is
    ``coords[..., 0]``.
    """

    d: int
    side: int

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ValueError(f"dimension must be >= 1, got {self.d}")
        if self.side < 1:
            raise ValueError(f"side must be >= 1, got {self.side}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def power_of_two(cls, d: int, k: int) -> "Universe":
        """The paper's universe with side ``2^k`` (``n = 2^{kd}``)."""
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        return cls(d=d, side=1 << k)

    @classmethod
    def from_cell_count(cls, d: int, n: int) -> "Universe":
        """Universe with ``n`` cells; ``n`` must be a perfect d-th power."""
        side = round(n ** (1.0 / d))
        # Fix rounding drift for large n.
        for candidate in (side - 1, side, side + 1):
            if candidate >= 1 and candidate**d == n:
                return cls(d=d, side=candidate)
        raise ValueError(f"n={n} is not a perfect {d}-th power")

    # ------------------------------------------------------------------
    # Scalar structure
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of cells, ``side**d``."""
        return self.side**self.d

    @property
    def k(self) -> int:
        """``log2(side)`` when the side is a power of two.

        Raises
        ------
        ValueError
            If ``side`` is not a power of two.  Curves relying on the
            paper's ``side = 2^k`` assumption call this and surface a
            clear error for unsupported grids.
        """
        if not _is_power_of(self.side, 2):
            raise ValueError(f"side={self.side} is not a power of two")
        return self.side.bit_length() - 1

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of a dense per-cell array: ``(side,) * d``."""
        return (self.side,) * self.d

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Universe(d={self.d}, side={self.side}, n={self.n})"

    # ------------------------------------------------------------------
    # Cell enumeration
    # ------------------------------------------------------------------
    def all_coords(self) -> np.ndarray:
        """All cell coordinates, shape ``(n, d)``.

        Cells are listed in the order of the *simple curve* (Eq. 8): the
        paper's dimension 1 (axis 0) varies fastest.
        """
        ranks = np.arange(self.n, dtype=np.int64)
        from repro.grid.coords import rank_to_coords

        return rank_to_coords(ranks, self)

    def iter_cells(self) -> Iterator[tuple[int, ...]]:
        """Iterate over cells as Python tuples (simple-curve order)."""
        for row in self.all_coords():
            yield tuple(int(v) for v in row)

    def coordinate_grids(self) -> list[np.ndarray]:
        """Per-axis coordinate arrays of shape ``(side,)*d``.

        ``coordinate_grids()[i][cell] == coords(cell)[i]``, with array axis
        ``i`` indexing the paper's dimension ``i+1``.
        """
        axes = [np.arange(self.side, dtype=np.int64) for _ in range(self.d)]
        return list(np.meshgrid(*axes, indexing="ij"))

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Boolean mask of which coordinate rows lie inside the grid."""
        arr = np.asarray(coords)
        if arr.shape[-1] != self.d:
            raise ValueError(
                f"coords last axis must be d={self.d}, got {arr.shape[-1]}"
            )
        return np.all((arr >= 0) & (arr < self.side), axis=-1)

    def validate_coords(self, coords: np.ndarray) -> np.ndarray:
        """Return ``coords`` as an int64 array, raising if out of range."""
        arr = np.asarray(coords, dtype=np.int64)
        if arr.shape[-1] != self.d:
            raise ValueError(
                f"coords last axis must be d={self.d}, got shape {arr.shape}"
            )
        if not np.all(self.contains(arr)):
            raise ValueError("coordinates outside the universe")
        return arr

    def validate_ranks(self, ranks: np.ndarray) -> np.ndarray:
        """Return ``ranks`` as an int64 array, raising if out of range."""
        arr = np.asarray(ranks, dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self.n):
            raise ValueError(f"ranks must lie in [0, {self.n})")
        return arr

    # ------------------------------------------------------------------
    # Boundary structure (used by Theorems 2-3 boundary corrections)
    # ------------------------------------------------------------------
    def boundary_axis_count(self) -> np.ndarray:
        """Per-cell count of axes on which the cell touches the boundary.

        A cell ``α`` has ``|N(α)| = 2d - b(α)`` where ``b(α)`` is this
        count (each boundary axis removes exactly one neighbor, and with
        ``side == 1`` an axis contributes no neighbors at all — that case
        is handled by :func:`repro.grid.neighbors.neighbor_count_grid`).
        """
        out = np.zeros(self.shape, dtype=np.int64)
        for grid in self.coordinate_grids():
            on_boundary = (grid == 0) | (grid == self.side - 1)
            out += on_boundary.astype(np.int64)
        return out

    def interior_mask(self) -> np.ndarray:
        """Mask of cells with the full ``2d`` neighbors (paper's ``U_1``)."""
        return self.boundary_axis_count() == 0

    def boundary_mask(self) -> np.ndarray:
        """Mask of cells on at least one (d-1)-face (paper's ``U_2``)."""
        return self.boundary_axis_count() > 0

    def interior_cell_count(self) -> int:
        """``(side - 2)^d`` for side >= 2 (0 when side < 3)."""
        return max(self.side - 2, 0) ** self.d
