"""Nearest-neighbor path decomposition ``p(α, β)`` of Section IV-A.

This is the combinatorial machinery behind Theorem 1: every ordered pair
``(α, β)`` is decomposed into a staircase path of nearest-neighbor edges
that corrects coordinates one dimension at a time (dimension 1 first).
Lemma 4 bounds how many ordered pairs route through any single edge; we
implement both the decomposition and the *exact* multiplicity count so the
bound can be verified numerically.

Edges are represented as ordered tuples ``(lo, hi)`` of coordinate tuples
with ``hi = lo + e_axis`` (the canonical orientation), matching the
paper's view of ``NN_d`` elements as unordered pairs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.universe import Universe

Cell = tuple[int, ...]
Edge = tuple[Cell, Cell]

__all__ = [
    "axis_segment",
    "staircase_waypoints",
    "nn_decomposition",
    "edge_multiplicity",
    "lemma4_bound",
    "path_is_valid",
]


def _as_cell(coords: Sequence[int]) -> Cell:
    return tuple(int(v) for v in coords)


def axis_segment(alpha: Sequence[int], beta: Sequence[int]) -> list[Edge]:
    """Decompose a pair differing along a single axis into unit edges.

    Implements the paper's base case: for ``x_i < y_i`` the edges are
    ``((.., ℓ, ..), (.., ℓ+1, ..))`` for ``ℓ = x_i .. y_i − 1``; the
    ``x_i > y_i`` case yields the same (unordered) edge set, as noted in
    the paper (``p(α,β) = p(β,α)`` for single-axis pairs).
    """
    a, b = _as_cell(alpha), _as_cell(beta)
    diff_axes = [i for i in range(len(a)) if a[i] != b[i]]
    if len(diff_axes) > 1:
        raise ValueError("axis_segment requires a pair differing on one axis")
    if not diff_axes:
        return []
    axis = diff_axes[0]
    lo, hi = sorted((a[axis], b[axis]))
    edges: list[Edge] = []
    for level in range(lo, hi):
        left = a[:axis] + (level,) + a[axis + 1 :]
        right = a[:axis] + (level + 1,) + a[axis + 1 :]
        edges.append((left, right))
    return edges


def staircase_waypoints(alpha: Sequence[int], beta: Sequence[int]) -> list[Cell]:
    """The intermediate cells ``α_0 = α, α_1, ..., α_d = β`` of Section IV-A.

    ``α_j`` has the first ``j`` coordinates of ``β`` and the rest of ``α``:
    the path corrects dimension 1, then dimension 2, and so on.
    """
    a, b = _as_cell(alpha), _as_cell(beta)
    if len(a) != len(b):
        raise ValueError("dimension mismatch")
    waypoints = [a]
    for j in range(1, len(a) + 1):
        waypoints.append(b[:j] + a[j:])
    return waypoints


def nn_decomposition(alpha: Sequence[int], beta: Sequence[int]) -> list[Edge]:
    """The paper's ``p(α, β)``: a set of NN edges forming an α→β path.

    The result is returned in path order (α end first); as a *set* of
    edges it matches the paper's definition
    ``p(α,β) = ∪_j p(α_j, α_{j+1})``.  Note ``p(α,β)`` and ``p(β,α)``
    generally differ when more than one coordinate differs (Figure 2).
    """
    edges: list[Edge] = []
    waypoints = staircase_waypoints(alpha, beta)
    for start, stop in zip(waypoints[:-1], waypoints[1:]):
        edges.extend(axis_segment(start, stop))
    return edges


def path_is_valid(
    alpha: Sequence[int], beta: Sequence[int], edges: list[Edge]
) -> bool:
    """Check that an edge set forms a connected α→β staircase path.

    Test oracle: every edge must be a unit step, the multiset of steps must
    telescope from ``α`` to ``β``, and ``|edges| = ∆(α, β)``.
    """
    a, b = _as_cell(alpha), _as_cell(beta)
    manhattan = sum(abs(x - y) for x, y in zip(a, b))
    if len(edges) != manhattan:
        return False
    for lo, hi in edges:
        delta = [h - l for l, h in zip(lo, hi)]
        if sorted(np.abs(delta).tolist()) != [0] * (len(lo) - 1) + [1]:
            return False
    # Telescoping: walk the path orienting each edge as needed.
    current = a
    remaining = list(edges)
    while remaining:
        for idx, (lo, hi) in enumerate(remaining):
            if lo == current:
                current = hi
                break
            if hi == current:
                current = lo
                break
        else:
            return False
        remaining.pop(idx)
    return current == b


def edge_multiplicity(
    zeta: Sequence[int], axis: int, universe: "Universe"
) -> int:
    """Exact number of ordered pairs routing through edge ``(ζ, ζ + e_axis)``.

    Lemma 4 characterizes membership: ``(ζ, η) ∈ p(α, β)`` iff β agrees
    with ζ on dimensions before ``axis``, α agrees with ζ on dimensions
    after ``axis``, and the unit interval ``[ζ_i, ζ_i + 1]`` lies between
    ``x_i`` and ``y_i``.  Counting exactly:

    ``count = 2 · side^{d−1} · (ζ_i + 1) · (side − 1 − ζ_i)``

    (the factor 2 covers both orientations of the i-th coordinate).  The
    paper upper-bounds this by ``n^{(d+1)/d}/2`` (Lemma 4); see
    :func:`lemma4_bound`.
    """
    z = _as_cell(zeta)
    if len(z) != universe.d:
        raise ValueError("zeta dimensionality mismatch")
    if not 0 <= axis < universe.d:
        raise ValueError(f"axis must be in [0, {universe.d})")
    if not (0 <= z[axis] < universe.side - 1):
        raise ValueError("edge endpoint out of range along its axis")
    side = universe.side
    free = side ** (universe.d - 1)
    zi = z[axis]
    return 2 * free * (zi + 1) * (side - 1 - zi)


def lemma4_bound(universe: "Universe") -> float:
    """Lemma 4's bound ``n^{(d+1)/d} / 2`` on edge multiplicities.

    ``n^{(d+1)/d} = side^{d+1}`` exactly, so the bound is computed in
    integer arithmetic (a float power would round below the true value,
    which the central edges attain with equality on even sides).
    """
    return 0.5 * float(universe.side ** (universe.d + 1))
