"""Discrete-grid substrate: the universe model of Section III of the paper.

The universe ``U`` is the d-dimensional grid of side ``s`` (the paper uses
``s = 2^k``), holding ``n = s^d`` cells.  Everything in :mod:`repro` is built
on this package: coordinates, neighbor structure, grid metrics and the
nearest-neighbor path decomposition used in the proof of Theorem 1.
"""

from repro.grid.universe import Universe
from repro.grid.coords import (
    coords_to_rank,
    rank_to_coords,
    mixed_radix_decode,
    mixed_radix_encode,
)
from repro.grid.metrics import (
    chebyshev,
    euclidean,
    grid_diameter_euclidean,
    grid_diameter_manhattan,
    manhattan,
)
from repro.grid.neighbors import (
    axis_pair_index_arrays,
    neighbor_count_grid,
    neighbors_of,
    nn_pair_count,
    iter_nn_pairs,
)
from repro.grid.paths import (
    axis_segment,
    edge_multiplicity,
    lemma4_bound,
    nn_decomposition,
    staircase_waypoints,
)

__all__ = [
    "Universe",
    "coords_to_rank",
    "rank_to_coords",
    "mixed_radix_encode",
    "mixed_radix_decode",
    "manhattan",
    "euclidean",
    "chebyshev",
    "grid_diameter_manhattan",
    "grid_diameter_euclidean",
    "neighbors_of",
    "neighbor_count_grid",
    "axis_pair_index_arrays",
    "nn_pair_count",
    "iter_nn_pairs",
    "nn_decomposition",
    "axis_segment",
    "staircase_waypoints",
    "edge_multiplicity",
    "lemma4_bound",
]
