"""Grid metrics of Section III and Lemma 6.

``manhattan`` is the paper's ``∆`` and ``euclidean`` its ``∆_E``; both are
vectorized over leading axes.  ``chebyshev`` (L-infinity) is included as an
extra metric used by the application substrates.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "manhattan",
    "euclidean",
    "chebyshev",
    "grid_diameter_manhattan",
    "grid_diameter_euclidean",
    "pairwise_manhattan",
    "pairwise_euclidean",
]


def _as_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a_arr = np.asarray(a, dtype=np.int64)
    b_arr = np.asarray(b, dtype=np.int64)
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise ValueError("coordinate dimensionality mismatch")
    return a_arr, b_arr


def manhattan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The paper's ``∆(α, β) = Σ_i |α_i − β_i|`` (L1 metric)."""
    a_arr, b_arr = _as_pair(a, b)
    return np.abs(a_arr - b_arr).sum(axis=-1)


def euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The paper's ``∆_E(α, β)`` (L2 metric), returned as float64."""
    a_arr, b_arr = _as_pair(a, b)
    diff = (a_arr - b_arr).astype(np.float64)
    return np.sqrt((diff * diff).sum(axis=-1))


def chebyshev(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """L-infinity metric ``max_i |α_i − β_i|``."""
    a_arr, b_arr = _as_pair(a, b)
    return np.abs(a_arr - b_arr).max(axis=-1)


def grid_diameter_manhattan(d: int, side: int) -> int:
    """Lemma 6: ``max ∆(α,β) = d(side − 1)``, attained at opposite corners."""
    if d < 1 or side < 1:
        raise ValueError("need d >= 1 and side >= 1")
    return d * (side - 1)


def grid_diameter_euclidean(d: int, side: int) -> float:
    """Lemma 6: ``max ∆_E(α,β) = sqrt(d)·(side − 1)``."""
    if d < 1 or side < 1:
        raise ValueError("need d >= 1 and side >= 1")
    return math.sqrt(d) * (side - 1)


def pairwise_manhattan(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs L1 distances: shapes ``(m, d) × (p, d) → (m, p)``.

    Used by the chunked exact all-pairs stretch computation; memory is
    ``O(m·p·d)`` transiently, so callers chunk the first argument.
    """
    a_arr = np.asarray(a, dtype=np.int64)
    b_arr = np.asarray(b, dtype=np.int64)
    return np.abs(a_arr[:, None, :] - b_arr[None, :, :]).sum(axis=-1)


def pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs L2 distances: shapes ``(m, d) × (p, d) → (m, p)`` floats."""
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    diff = a_arr[:, None, :] - b_arr[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))
