"""Coordinate <-> linear-rank conversion.

The canonical cell enumeration used throughout the library is the paper's
*simple curve* layout (Eq. 8):

    ``rank(x) = sum_i x_i * side**(i-1)``   (paper dimension i, 1-indexed)

i.e. dimension 1 (array axis 0) is the **least significant** digit.  This
is NumPy's Fortran order for a ``(side,)*d`` array, and we keep all dense
per-cell arrays indexable as ``arr[tuple(coords)]``.

Also provided: generic mixed-radix codecs used by curves with non-uniform
per-level bases (e.g. the Peano curve's base-3 digits).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.universe import Universe

__all__ = [
    "coords_to_rank",
    "rank_to_coords",
    "mixed_radix_encode",
    "mixed_radix_decode",
]


def coords_to_rank(coords: np.ndarray, universe: "Universe") -> np.ndarray:
    """Map coordinates ``(..., d)`` to simple-curve ranks ``(...,)``.

    This is exactly the paper's simple curve ``S`` (Eq. 8); it doubles as
    the library's canonical cell numbering.
    """
    arr = universe.validate_coords(coords)
    weights = universe.side ** np.arange(universe.d, dtype=np.int64)
    return np.asarray(arr @ weights, dtype=np.int64)


def rank_to_coords(ranks: np.ndarray, universe: "Universe") -> np.ndarray:
    """Inverse of :func:`coords_to_rank`; returns shape ``(..., d)``."""
    arr = universe.validate_ranks(ranks)
    out = np.empty(arr.shape + (universe.d,), dtype=np.int64)
    rest = arr
    for axis in range(universe.d):
        out[..., axis] = rest % universe.side
        rest = rest // universe.side
    return out


def mixed_radix_encode(digits: np.ndarray, bases: Sequence[int]) -> np.ndarray:
    """Combine digit arrays into integers, ``digits[..., 0]`` least significant.

    Parameters
    ----------
    digits:
        Integer array of shape ``(..., len(bases))`` with
        ``0 <= digits[..., j] < bases[j]``.
    bases:
        Radix of each digit position.
    """
    arr = np.asarray(digits, dtype=np.int64)
    if arr.shape[-1] != len(bases):
        raise ValueError(
            f"digits last axis ({arr.shape[-1]}) must match bases ({len(bases)})"
        )
    weights = np.empty(len(bases), dtype=np.int64)
    acc = 1
    for j, base in enumerate(bases):
        if base < 1:
            raise ValueError("bases must be >= 1")
        weights[j] = acc
        acc *= int(base)
    if np.any(arr < 0) or np.any(arr >= np.asarray(bases, dtype=np.int64)):
        raise ValueError("digit out of range for its base")
    return np.asarray(arr @ weights, dtype=np.int64)


def mixed_radix_decode(values: np.ndarray, bases: Sequence[int]) -> np.ndarray:
    """Split integers into digit arrays, inverse of :func:`mixed_radix_encode`."""
    arr = np.asarray(values, dtype=np.int64)
    total = 1
    for base in bases:
        total *= int(base)
    if arr.size and (arr.min() < 0 or arr.max() >= total):
        raise ValueError(f"values must lie in [0, {total})")
    out = np.empty(arr.shape + (len(bases),), dtype=np.int64)
    rest = arr
    for j, base in enumerate(bases):
        out[..., j] = rest % base
        rest = rest // base
    return out
