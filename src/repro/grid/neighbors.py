"""Nearest-neighbor structure of the universe (the paper's ``N(α)`` and ``NN_d``).

``N(α)`` is the set of cells at Manhattan distance exactly 1 from ``α``;
``NN_d`` is the set of unordered nearest-neighbor pairs, which the paper
treats as the edges of the grid graph.  Everything here is exact and
vectorized: per-axis pair enumeration works directly on dense
``(side,)*d`` arrays so the stretch metrics never loop over cells.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.universe import Universe

__all__ = [
    "neighbors_of",
    "neighbor_count_grid",
    "axis_pair_index_arrays",
    "nn_pair_count",
    "nn_pair_count_axis",
    "iter_nn_pairs",
]


def neighbors_of(coords: np.ndarray, universe: "Universe") -> np.ndarray:
    """Return ``N(α)`` for a single cell, as an array of shape ``(m, d)``.

    ``d <= m <= 2d`` for ``side >= 2`` (the paper's bound); cells lose one
    neighbor per boundary axis.  For ``side == 1`` an axis contributes no
    neighbors.
    """
    base = universe.validate_coords(coords)
    if base.ndim != 1:
        raise ValueError("neighbors_of expects a single cell (1-D coords)")
    out = []
    for axis in range(universe.d):
        for delta in (-1, 1):
            cand = base.copy()
            cand[axis] += delta
            if 0 <= cand[axis] < universe.side:
                out.append(cand)
    if not out:
        return np.empty((0, universe.d), dtype=np.int64)
    return np.stack(out)


def neighbor_count_grid(universe: "Universe") -> np.ndarray:
    """Dense ``(side,)*d`` array of ``|N(α)|`` for every cell.

    For ``side >= 2`` this equals ``2d − b(α)`` with ``b(α)`` the number of
    boundary axes; for ``side == 1`` it is identically 0.
    """
    if universe.side == 1:
        return np.zeros(universe.shape, dtype=np.int64)
    return 2 * universe.d - universe.boundary_axis_count()


def axis_pair_index_arrays(
    universe: "Universe", axis: int
) -> tuple[tuple[slice, ...], tuple[slice, ...]]:
    """Slicing tuples selecting the two endpoints of all axis-``axis`` NN pairs.

    For a dense per-cell array ``A`` (shape ``(side,)*d``),
    ``A[lo]`` and ``A[hi]`` are aligned arrays over the pairs
    ``(α, α + e_axis)`` — the paper's group ``G_{axis+1}``.  Using slices
    keeps the pair enumeration allocation-free (NumPy views).
    """
    if not 0 <= axis < universe.d:
        raise ValueError(f"axis must be in [0, {universe.d}), got {axis}")
    lo = tuple(
        slice(0, universe.side - 1) if i == axis else slice(None)
        for i in range(universe.d)
    )
    hi = tuple(
        slice(1, universe.side) if i == axis else slice(None)
        for i in range(universe.d)
    )
    return lo, hi


def nn_pair_count_axis(universe: "Universe", axis: int) -> int:
    """``|G_{axis+1}| = side^{d−1}·(side−1)`` unordered pairs along one axis."""
    if not 0 <= axis < universe.d:
        raise ValueError(f"axis must be in [0, {universe.d}), got {axis}")
    return universe.side ** (universe.d - 1) * (universe.side - 1)


def nn_pair_count(universe: "Universe") -> int:
    """``|NN_d| = d·side^{d−1}·(side−1)`` unordered nearest-neighbor pairs."""
    return universe.d * nn_pair_count_axis(universe, 0)


def iter_nn_pairs(
    universe: "Universe",
) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Iterate all unordered NN pairs as coordinate tuples (test oracle).

    This is the slow, obviously-correct enumeration used to validate the
    vectorized slicing machinery; O(n·d) time.
    """
    for alpha in universe.iter_cells():
        for axis in range(universe.d):
            if alpha[axis] + 1 < universe.side:
                beta = list(alpha)
                beta[axis] += 1
                yield alpha, tuple(beta)
