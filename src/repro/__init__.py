"""repro — reproduction of Xu & Tirthapura (IPDPS 2012),
"A Lower Bound on Proximity Preservation by Space Filling Curves".

Public API highlights
---------------------
* :class:`repro.Universe` — the d-dimensional grid model (Section III).
* Curves: :class:`repro.ZCurve`, :class:`repro.SimpleCurve`,
  :class:`repro.HilbertCurve`, :class:`repro.GrayCurve`, … (see
  :mod:`repro.curves`).
* Metrics: :class:`repro.MetricContext` — one cached compute core per
  (curve, universe) exposing ``D^avg``, ``D^max``, ``Λ_i`` sums, per-cell
  grids, all-pairs stretch, the inverse permutation and windowed
  curve-shift arrays over shared intermediates.  Every function in
  :mod:`repro.analysis` and :mod:`repro.apps` accepts a curve *or* a
  context, and the classic free functions
  (:func:`repro.average_average_nn_stretch`, …) remain as thin wrappers.
* Pooling: :class:`repro.ContextPool` — shares contexts across curves
  of a universe (curve-independent intermediates computed once) and
  derives transform-curve arrays (reversed/reflected/axis-permuted)
  from their inner curve's cache.  Process sweeps extend the sharing
  across workers: :class:`repro.SharedGridStore` publishes one grid
  set per curve spec into shared memory and workers attach zero-copy
  views (see ``docs/parallelism.md``).
* Sweeps: :class:`repro.Sweep` — declarative curve × universe × metric
  runs (``"random:seed=3"``-style curve specs,
  ``"dilation:window=16"``-style metric specs over the pluggable
  :data:`repro.engine.METRICS` registry, capability-aware curve
  selection, pooled execution, optional process parallelism, and
  thread-parallel block reductions inside each cell via
  ``threads="auto"|N`` — bit-for-bit identical to serial) behind
  :func:`repro.survey` and the CLI.  Policy: new metrics land in the
  engine (as context functions registered via
  :func:`repro.register_metric`).
* Bounds: :func:`repro.davg_lower_bound` (Theorem 1) and the closed
  forms in :mod:`repro.core.asymptotics`.

Quickstart
----------
>>> from repro import Universe, ZCurve, MetricContext, Sweep
>>> u = Universe.power_of_two(d=2, k=4)      # 16x16 grid, n = 256
>>> ctx = MetricContext(ZCurve(u))           # one cached compute core
>>> ctx.davg() >= ctx.lower_bound()          # Theorem 1
True
>>> result = Sweep(dims=[2], sides=[8, 16],  # declarative sweep
...                curves=["z", "hilbert", "random:seed=3"],
...                metrics=["davg", "dilation:window=16"]).run()
>>> len(result.records)
6
>>> result.cache_stats.total_computes > 0    # pooled engine counters
True
"""

from repro.grid.universe import Universe
from repro.curves import (
    DiagonalCurve,
    GrayCurve,
    HilbertCurve,
    PeanoCurve,
    PermutationCurve,
    RandomCurve,
    SimpleCurve,
    SnakeCurve,
    SpaceFillingCurve,
    SpiralCurve,
    ZCurve,
    available_curves,
    curves_for_universe,
    figure1_pi1,
    figure1_pi2,
    make_curve,
    register_curve,
)
from repro.core import (
    average_allpairs_stretch_exact,
    average_allpairs_stretch_sampled,
    average_average_nn_stretch,
    average_maximum_nn_stretch,
    davg_lower_bound,
    davg_simple_exact,
    davg_z_limit,
    dmax_lower_bound,
    dmax_simple_exact,
    gap_survey,
    lambda_sums,
    lambda_z_exact,
    lemma2_sum_exact,
    optimality_ratio,
    stretch_report,
    survey,
    theorem1_certificate,
)
from repro.engine import (
    CacheStats,
    ContextPool,
    CurveSpec,
    MetricContext,
    MetricSpec,
    SharedGridStore,
    Sweep,
    SweepResult,
    get_context,
    parse_curve_spec,
    parse_metric_spec,
    register_metric,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Universe",
    "SpaceFillingCurve",
    "PermutationCurve",
    "ZCurve",
    "SimpleCurve",
    "SnakeCurve",
    "GrayCurve",
    "HilbertCurve",
    "PeanoCurve",
    "DiagonalCurve",
    "SpiralCurve",
    "RandomCurve",
    "figure1_pi1",
    "figure1_pi2",
    "available_curves",
    "curves_for_universe",
    "register_curve",
    "make_curve",
    "average_average_nn_stretch",
    "average_maximum_nn_stretch",
    "average_allpairs_stretch_exact",
    "average_allpairs_stretch_sampled",
    "lambda_sums",
    "lambda_z_exact",
    "lemma2_sum_exact",
    "davg_lower_bound",
    "dmax_lower_bound",
    "davg_z_limit",
    "davg_simple_exact",
    "dmax_simple_exact",
    "optimality_ratio",
    "gap_survey",
    "stretch_report",
    "survey",
    "theorem1_certificate",
    "MetricContext",
    "CacheStats",
    "ContextPool",
    "SharedGridStore",
    "get_context",
    "Sweep",
    "SweepResult",
    "CurveSpec",
    "MetricSpec",
    "parse_curve_spec",
    "parse_metric_spec",
    "register_metric",
]
