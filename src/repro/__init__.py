"""repro — reproduction of Xu & Tirthapura (IPDPS 2012),
"A Lower Bound on Proximity Preservation by Space Filling Curves".

Public API highlights
---------------------
* :class:`repro.Universe` — the d-dimensional grid model (Section III).
* Curves: :class:`repro.ZCurve`, :class:`repro.SimpleCurve`,
  :class:`repro.HilbertCurve`, :class:`repro.GrayCurve`, … (see
  :mod:`repro.curves`).
* Metrics: :func:`repro.average_average_nn_stretch` (``D^avg``),
  :func:`repro.average_maximum_nn_stretch` (``D^max``),
  :func:`repro.average_allpairs_stretch_exact` (``str_{avg,M/E}``).
* Bounds: :func:`repro.davg_lower_bound` (Theorem 1) and the closed
  forms in :mod:`repro.core.asymptotics`.

Quickstart
----------
>>> from repro import Universe, ZCurve, average_average_nn_stretch
>>> from repro import davg_lower_bound
>>> u = Universe.power_of_two(d=2, k=4)      # 16x16 grid, n = 256
>>> z = ZCurve(u)
>>> davg = average_average_nn_stretch(z)
>>> davg >= davg_lower_bound(u.n, u.d)       # Theorem 1
True
"""

from repro.grid.universe import Universe
from repro.curves import (
    DiagonalCurve,
    GrayCurve,
    HilbertCurve,
    PeanoCurve,
    PermutationCurve,
    RandomCurve,
    SimpleCurve,
    SnakeCurve,
    SpaceFillingCurve,
    SpiralCurve,
    ZCurve,
    available_curves,
    curves_for_universe,
    figure1_pi1,
    figure1_pi2,
    make_curve,
)
from repro.core import (
    average_allpairs_stretch_exact,
    average_allpairs_stretch_sampled,
    average_average_nn_stretch,
    average_maximum_nn_stretch,
    davg_lower_bound,
    davg_simple_exact,
    davg_z_limit,
    dmax_lower_bound,
    dmax_simple_exact,
    gap_survey,
    lambda_sums,
    lambda_z_exact,
    lemma2_sum_exact,
    optimality_ratio,
    stretch_report,
    survey,
    theorem1_certificate,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Universe",
    "SpaceFillingCurve",
    "PermutationCurve",
    "ZCurve",
    "SimpleCurve",
    "SnakeCurve",
    "GrayCurve",
    "HilbertCurve",
    "PeanoCurve",
    "DiagonalCurve",
    "SpiralCurve",
    "RandomCurve",
    "figure1_pi1",
    "figure1_pi2",
    "available_curves",
    "curves_for_universe",
    "make_curve",
    "average_average_nn_stretch",
    "average_maximum_nn_stretch",
    "average_allpairs_stretch_exact",
    "average_allpairs_stretch_sampled",
    "lambda_sums",
    "lambda_z_exact",
    "lemma2_sum_exact",
    "davg_lower_bound",
    "dmax_lower_bound",
    "davg_z_limit",
    "davg_simple_exact",
    "dmax_simple_exact",
    "optimality_ratio",
    "gap_survey",
    "stretch_report",
    "survey",
    "theorem1_certificate",
]
