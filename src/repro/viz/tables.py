"""Fixed-width table formatting for benches, EXPERIMENTS.md and the CLI."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "format_float"]


def format_float(value: Any, digits: int = 4) -> str:
    """Render numbers compactly; passthrough for non-floats and None."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.{digits}e}"
        return f"{value:.{digits}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    digits: int = 4,
) -> str:
    """Render dict rows as an aligned text table with a header rule."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [
        [format_float(row.get(col), digits) for col in cols] for row in rows
    ]
    widths = [
        max(len(col), *(len(r[j]) for r in rendered))
        for j, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(cols, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(r, widths))
        for r in rendered
    ]
    return "\n".join([header, rule, *body])
