"""ASCII renders of curves on small 2-D grids (Figures 1, 3, 4 style).

The paper's figures draw the grid with dimension 1 horizontal (left to
right) and dimension 2 vertical (bottom to top); renders follow that
layout, so the printed top row is ``y = side − 1``.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve

__all__ = ["render_key_grid", "render_key_grid_binary", "render_path"]


def _require_2d(curve: SpaceFillingCurve) -> None:
    if curve.universe.d != 2:
        raise ValueError("ASCII renders support d == 2 only")


def render_key_grid(curve: SpaceFillingCurve) -> str:
    """Decimal keys laid out on the grid (Figure 3 left, in decimal)."""
    _require_2d(curve)
    grid = curve.key_grid()
    side = curve.universe.side
    width = len(str(curve.universe.n - 1))
    lines = []
    for y in range(side - 1, -1, -1):
        row = " ".join(f"{int(grid[x, y]):>{width}d}" for x in range(side))
        lines.append(row)
    return "\n".join(lines)


def render_key_grid_binary(curve: SpaceFillingCurve) -> str:
    """Binary keys laid out on the grid — the exact Figure 3 (left) view."""
    _require_2d(curve)
    grid = curve.key_grid()
    side = curve.universe.side
    bits = max((curve.universe.n - 1).bit_length(), 1)
    lines = []
    for y in range(side - 1, -1, -1):
        row = " ".join(
            format(int(grid[x, y]), f"0{bits}b") for x in range(side)
        )
        lines.append(row)
    return "\n".join(lines)


_ARROWS = {(1, 0): "→", (-1, 0): "←", (0, 1): "↑", (0, -1): "↓"}


def render_path(curve: SpaceFillingCurve) -> str:
    """Step-direction trace of the curve (Figure 3 right / Figure 4 style).

    Continuous steps render as arrows; jumps (discontinuities, e.g. the
    Z curve's block hops or the simple curve's row wraps) render as
    ``(dx,dy)`` jump annotations.
    """
    _require_2d(curve)
    path = curve.order()
    pieces = []
    for (x0, y0), (x1, y1) in zip(path[:-1], path[1:]):
        step = (int(x1 - x0), int(y1 - y0))
        pieces.append(_ARROWS.get(step, f"({step[0]:+d},{step[1]:+d})"))
    return " ".join(pieces)


def render_order_labels(curve: SpaceFillingCurve, labels: str) -> str:
    """Visit order as cell labels (Figure 1 style, e.g. ``"C,A,B,D"``).

    ``labels`` maps cells in simple-curve rank order to characters; for
    the 2×2 Figure 1 grid use ``"DBAC"`` (ranks (0,0),(1,0),(0,1),(1,1)).
    """
    from repro.grid.coords import coords_to_rank

    ranks = coords_to_rank(curve.order(), curve.universe)
    if len(labels) != curve.universe.n:
        raise ValueError("need one label per cell")
    return ",".join(labels[int(r)] for r in ranks)
