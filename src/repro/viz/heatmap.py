"""ASCII heat maps of per-cell fields (stretch landscapes).

Renders a 2-D per-cell array (e.g. ``δ^avg_π``) with a density ramp, so
the *spatial structure* of the stretch is visible at a glance: the
simple curve's flat interior, the Z curve's hierarchical seams, the
Hilbert curve's fractal hot spots.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_heatmap", "stretch_heatmap"]

#: Density ramp, light to heavy.
_RAMP = " .:-=+*#%@"


def render_heatmap(field: np.ndarray, ramp: str = _RAMP) -> str:
    """Render a 2-D float field as ASCII (top row = highest y).

    Values are min-max normalized onto the ramp; a constant field
    renders entirely with the ramp's first character.
    """
    arr = np.asarray(field, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"need a 2-D field, got shape {arr.shape}")
    if len(ramp) < 2:
        raise ValueError("ramp needs at least 2 characters")
    lo, hi = float(arr.min()), float(arr.max())
    if hi > lo:
        levels = ((arr - lo) / (hi - lo) * (len(ramp) - 1)).round()
    else:
        levels = np.zeros_like(arr)
    levels = levels.astype(np.int64)
    side_y = arr.shape[1]
    lines = []
    for y in range(side_y - 1, -1, -1):
        lines.append("".join(ramp[int(v)] for v in levels[:, y]))
    return "\n".join(lines)


def stretch_heatmap(curve) -> str:
    """Heat map of ``δ^avg_π`` over a 2-D universe."""
    from repro.core.stretch import per_cell_avg_stretch

    if curve.universe.d != 2:
        raise ValueError("stretch_heatmap supports d == 2 only")
    return render_heatmap(per_cell_avg_stretch(curve))
