"""Presentation helpers: ASCII curve renders and fixed-width tables."""

from repro.viz.ascii_art import (
    render_key_grid,
    render_key_grid_binary,
    render_path,
)
from repro.viz.heatmap import render_heatmap, stretch_heatmap
from repro.viz.tables import format_table

__all__ = [
    "render_key_grid",
    "render_key_grid_binary",
    "render_path",
    "render_heatmap",
    "stretch_heatmap",
    "format_table",
]
