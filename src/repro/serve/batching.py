"""Micro-batching: cells arriving within a window run as one batch.

Requests hitting a service cluster in bursts (a dashboard refresh, a
parameter-scan client) each plan a handful of cells.  Executing every
request's cells independently would interleave pool access and pay the
executor hand-off per cell; instead the service enqueues each *new*
canonical cell here, and the batcher drains everything that arrived
within ``window_s`` into one list executed back-to-back on the compute
executor — the engine-side analogue of running one larger ``Sweep``,
sharing the same pools, schedulers and warm caches across the whole
batch.

The compute executor is a **single worker thread** on purpose: the
engine parallelizes *inside* a cell (block-scheduler threads), so
running batches sequentially keeps one cell's reduction from competing
with another's for the same cores while the event loop stays free to
accept, dedup and reject requests.

Completion is reported per key through a ``finish(key, outcome)``
callback scheduled on the event loop (the single-flight table resolves
futures there), so this module stays free of request bookkeeping.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Hashable, List, Optional, Tuple

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Collects enqueued cells and executes them in windowed batches."""

    def __init__(
        self,
        run_batch: Callable[[list], list],
        finish: Callable[[Hashable, object], None],
        window_s: float = 0.005,
        executor=None,
    ) -> None:
        #: Synchronous batch executor: ``run_batch(tasks) -> outcomes``
        #: (one outcome per task, exception instances included — a
        #: failing cell must not poison its batchmates).
        self._run_batch = run_batch
        self._finish = finish
        self.window_s = window_s
        self._executor = executor
        self._pending: List[Tuple[Hashable, object]] = []
        self._wake: Optional[asyncio.Event] = None
        self._runner: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Batches executed / cells batched / largest batch seen.
        self.batches = 0
        self.batched_cells = 0
        self.max_batch = 0

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._runner = asyncio.create_task(
            self._run(), name="repro-serve-batcher"
        )

    def enqueue(self, key: Hashable, task: object) -> None:
        """Queue one cell (event-loop thread only)."""
        self._pending.append((key, task))
        self._wake.set()

    async def aclose(self) -> None:
        """Cancel the runner; pending cells are left to the caller to
        fail (the service fails all open flights on shutdown)."""
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except asyncio.CancelledError:
                pass
            self._runner = None

    async def _run(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.window_s > 0:
                # The batching window: everything enqueued while we
                # sleep joins this batch.
                await asyncio.sleep(self.window_s)
            batch, self._pending = self._pending, []
            if not batch:
                continue
            self.batches += 1
            self.batched_cells += len(batch)
            self.max_batch = max(self.max_batch, len(batch))
            keys = [key for key, _ in batch]
            tasks = [task for _, task in batch]
            try:
                outcomes = await self._loop.run_in_executor(
                    self._executor, self._run_batch, tasks
                )
            except asyncio.CancelledError:
                raise
            except BaseException as exc:  # safety net; run_batch
                # catches per-cell errors itself
                outcomes = [exc] * len(keys)
            for key, outcome in zip(keys, outcomes):
                self._finish(key, outcome)
