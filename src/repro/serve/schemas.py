"""JSON request/response schemas of the sweep service.

The wire grammar is deliberately the ``repro sweep`` grammar: a
:class:`SweepRequest` carries the same curve/metric spec strings,
universe geometry and engine knobs the CLI accepts, and converts to a
:class:`repro.engine.Sweep` with one method call — so an HTTP sweep and
a CLI sweep *plan the identical task list* and their records can be
compared bit for bit.

Everything here is plain stdlib ``json``-compatible data: requests
validate dicts (rejecting unknown keys, so client typos fail loudly
instead of silently sweeping defaults), responses render
:class:`repro.engine.SweepRecord` values into JSON scalars/lists and
round-trip through :meth:`SweepResponse.from_dict` for clients and
tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.engine.sweep import DEFAULT_METRICS, SkippedCell, Sweep, SweepRecord
from repro.grid.universe import Universe

__all__ = [
    "SweepRequest",
    "CellRecord",
    "CellSkip",
    "SweepResponse",
    "DynamicCreate",
    "DynamicStepRequest",
    "DynamicStepResponse",
    "jsonable",
]


def _int_tuple(value, name: str, minimum: int = 1) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"{name} must be a list of integers")
    out = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise ValueError(f"{name} entries must be integers")
        if item < minimum:
            raise ValueError(f"{name} entries must be >= {minimum}")
        out.append(int(item))
    return tuple(out)


def _str_tuple(value, name: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"{name} must be a list of strings")
    for item in value:
        if not isinstance(item, str) or not item:
            raise ValueError(f"{name} entries must be non-empty strings")
    return tuple(value)


@dataclass(frozen=True)
class SweepRequest:
    """One ``POST /sweep`` body, validated.

    Mirrors the ``repro sweep`` surface: universes come from
    ``dims × sides`` and/or explicit ``universes`` pairs; ``curves`` and
    ``metrics`` take the registry spec grammar (``"gray"``,
    ``"random:seed=3"``, ``"dilation:window=16"``); ``chunk_cells``,
    ``threads`` and ``backend`` are the engine execution knobs.
    ``timeout_s`` overrides the server's default per-request timeout.
    """

    dims: Tuple[int, ...] = ()
    sides: Tuple[int, ...] = ()
    universes: Tuple[Tuple[int, int], ...] = ()
    curves: Optional[Tuple[str, ...]] = None
    metrics: Optional[Tuple[str, ...]] = None
    chunk_cells: Optional[int] = None
    threads: Union[None, int, str] = None
    backend: Optional[str] = None
    strict: bool = False
    timeout_s: Optional[float] = None

    _FIELDS = (
        "dims",
        "sides",
        "universes",
        "curves",
        "metrics",
        "chunk_cells",
        "threads",
        "backend",
        "strict",
        "timeout_s",
    )

    @classmethod
    def from_dict(cls, payload: object) -> "SweepRequest":
        """Validate a decoded JSON body; raises ``ValueError`` loudly."""
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ValueError(
                f"unknown request fields {unknown}; "
                f"accepted: {sorted(cls._FIELDS)}"
            )
        dims = _int_tuple(payload.get("dims", []), "dims")
        sides = _int_tuple(payload.get("sides", []), "sides")
        universes = []
        raw_universes = payload.get("universes", [])
        if not isinstance(raw_universes, (list, tuple)):
            raise ValueError("universes must be a list of [d, side] pairs")
        for pair in raw_universes:
            geom = _int_tuple(pair, "universes entries")
            if len(geom) != 2:
                raise ValueError("universes entries must be [d, side] pairs")
            universes.append(geom)
        if not dims and not sides and not universes:
            raise ValueError(
                "request selects no universes: give dims+sides "
                "and/or universes"
            )
        curves = payload.get("curves")
        if curves is not None:
            curves = _str_tuple(curves, "curves")
        metrics = payload.get("metrics")
        if metrics is not None:
            metrics = _str_tuple(metrics, "metrics")
        chunk_cells = payload.get("chunk_cells")
        if chunk_cells is not None:
            if isinstance(chunk_cells, bool) or not isinstance(
                chunk_cells, int
            ):
                raise ValueError("chunk_cells must be an integer")
            if chunk_cells < 0:
                raise ValueError("chunk_cells must be >= 0 (0 forces dense)")
        threads = payload.get("threads")
        if threads is not None and threads != "auto":
            if isinstance(threads, bool) or not isinstance(threads, int):
                raise ValueError('threads must be a positive int or "auto"')
            if threads < 1:
                raise ValueError("threads must be >= 1")
        backend = payload.get("backend")
        if backend is not None and backend not in ("numpy", "native", "auto"):
            raise ValueError(
                'backend must be one of "numpy", "native", "auto"'
            )
        strict = payload.get("strict", False)
        if not isinstance(strict, bool):
            raise ValueError("strict must be a boolean")
        timeout_s = payload.get("timeout_s")
        if timeout_s is not None:
            if isinstance(timeout_s, bool) or not isinstance(
                timeout_s, (int, float)
            ):
                raise ValueError("timeout_s must be a number")
            if timeout_s <= 0:
                raise ValueError("timeout_s must be positive")
            timeout_s = float(timeout_s)
        return cls(
            dims=dims,
            sides=sides,
            universes=tuple(universes),
            curves=curves,
            metrics=metrics,
            chunk_cells=chunk_cells,
            threads=threads,
            backend=backend,
            strict=strict,
            timeout_s=timeout_s,
        )

    def to_dict(self) -> dict:
        """JSON-ready form; ``from_dict(to_dict(r)) == r``."""
        return {
            "dims": list(self.dims),
            "sides": list(self.sides),
            "universes": [list(pair) for pair in self.universes],
            "curves": None if self.curves is None else list(self.curves),
            "metrics": None if self.metrics is None else list(self.metrics),
            "chunk_cells": self.chunk_cells,
            "threads": self.threads,
            "backend": self.backend,
            "strict": self.strict,
            "timeout_s": self.timeout_s,
        }

    def to_sweep(
        self,
        max_bytes: Optional[int],
        default_threads: Union[None, int, str] = None,
        default_backend: str = "auto",
        store_dir: Optional[str] = None,
    ) -> Sweep:
        """The equivalent :class:`repro.engine.Sweep` declaration.

        ``reports=False``: a service response carries metric values;
        clients wanting the prose report run the CLI.  The sweep's own
        planner performs all cross-field validation (dims without
        sides, unknown curves/metrics, bad params), so HTTP requests
        fail with exactly the CLI's error messages.
        """
        threads = self.threads if self.threads is not None else default_threads
        backend = self.backend if self.backend is not None else default_backend
        return Sweep(
            dims=list(self.dims) or None,
            sides=list(self.sides) or None,
            universes=[Universe(d=d, side=side) for d, side in self.universes]
            or None,
            curves=None if self.curves is None else list(self.curves),
            metrics=DEFAULT_METRICS if self.metrics is None else self.metrics,
            reports=False,
            strict=self.strict,
            chunk_cells=self.chunk_cells,
            max_bytes=max_bytes,
            threads=threads,
            backend=backend,
            store_dir=store_dir,
        )


def jsonable(value: object) -> object:
    """A metric value rendered as JSON-compatible data.

    Metric callables return Python/NumPy scalars or tuples (``lambdas``
    returns one int per dimension); tuples become lists and NumPy
    scalars their Python equivalents.  Floats pass through untouched —
    ``json`` round-trips float64 exactly (``repr`` shortest-round-trip),
    which is what makes the HTTP-vs-CLI bit-for-bit parity test an
    equality, not an approximation.
    """
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"metric value of type {type(value).__name__} is not JSON-renderable"
    )


@dataclass(frozen=True)
class CellRecord:
    """One computed cell, as serialized to clients."""

    spec: str
    curve: str
    d: int
    side: int
    n: int
    values: Dict[str, object]

    @classmethod
    def from_record(cls, record: SweepRecord) -> "CellRecord":
        return cls(
            spec=record.spec,
            curve=record.curve_name,
            d=record.d,
            side=record.side,
            n=record.n,
            values={
                label: jsonable(value)
                for label, value in record.values.items()
            },
        )

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "curve": self.curve,
            "d": self.d,
            "side": self.side,
            "n": self.n,
            "values": dict(self.values),
        }


@dataclass(frozen=True)
class CellSkip:
    """One skipped cell (non-strict construction failure)."""

    spec: str
    d: int
    side: int
    reason: str

    @classmethod
    def from_skip(cls, skip: SkippedCell) -> "CellSkip":
        return cls(spec=skip.spec, d=skip.d, side=skip.side, reason=skip.reason)

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "d": self.d,
            "side": self.side,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class DynamicCreate:
    """Session geometry of a ``POST /dynamic/step`` ``create`` block."""

    d: int
    side: int
    curve: str = "hilbert"
    parts: int = 8
    window: int = 1
    reselect_threshold: Optional[float] = None
    candidates: Optional[Tuple[str, ...]] = None
    #: Random points bulk-loaded at creation (0 starts empty).
    seed_points: int = 0
    seed: int = 0

    _FIELDS = (
        "d",
        "side",
        "curve",
        "parts",
        "window",
        "reselect_threshold",
        "candidates",
        "seed_points",
        "seed",
    )

    @classmethod
    def from_dict(cls, payload: object) -> "DynamicCreate":
        if not isinstance(payload, dict):
            raise ValueError("create must be a JSON object")
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ValueError(
                f"unknown create fields {unknown}; "
                f"accepted: {sorted(cls._FIELDS)}"
            )
        values = {}
        for name, minimum in (
            ("d", 1),
            ("side", 1),
            ("parts", 1),
            ("window", 1),
        ):
            value = payload.get(name, getattr(cls, name, None))
            if value is None:
                raise ValueError(f"create requires {name}")
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"create.{name} must be an integer")
            if value < minimum:
                raise ValueError(f"create.{name} must be >= {minimum}")
            values[name] = int(value)
        curve = payload.get("curve", cls.curve)
        if not isinstance(curve, str) or not curve:
            raise ValueError("create.curve must be a non-empty string")
        threshold = payload.get("reselect_threshold")
        if threshold is not None:
            if isinstance(threshold, bool) or not isinstance(
                threshold, (int, float)
            ):
                raise ValueError(
                    "create.reselect_threshold must be a number"
                )
            if threshold <= 0:
                raise ValueError(
                    "create.reselect_threshold must be positive"
                )
            threshold = float(threshold)
        candidates = payload.get("candidates")
        if candidates is not None:
            candidates = _str_tuple(candidates, "create.candidates")
        for name in ("seed_points", "seed"):
            value = payload.get(name, 0)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(f"create.{name} must be an integer")
            if value < 0:
                raise ValueError(f"create.{name} must be >= 0")
            values[name] = int(value)
        return cls(
            d=values["d"],
            side=values["side"],
            curve=curve,
            parts=values["parts"],
            window=values["window"],
            reselect_threshold=threshold,
            candidates=candidates,
            seed_points=values["seed_points"],
            seed=values["seed"],
        )


def _parse_moves(raw: object) -> Tuple[tuple, ...]:
    """Wire move objects -> the ``DynamicUniverse.apply`` op tuples."""
    if not isinstance(raw, (list, tuple)):
        raise ValueError("moves must be a list of op objects")
    ops = []
    for item in raw:
        if not isinstance(item, dict) or "op" not in item:
            raise ValueError('each move needs an "op" field')
        kind = item["op"]
        if kind not in ("insert", "delete", "move"):
            raise ValueError(
                f'move op {kind!r} is not "insert", "delete" or "move"'
            )
        extra = sorted(set(item) - {"op", "id", "coords"})
        if extra:
            raise ValueError(f"unknown move fields {extra}")
        if kind in ("delete", "move"):
            pid = item.get("id")
            if isinstance(pid, bool) or not isinstance(pid, int):
                raise ValueError(f'{kind} moves need an integer "id"')
        if kind in ("insert", "move"):
            coords = item.get("coords")
            if not isinstance(coords, (list, tuple)) or not all(
                isinstance(c, int) and not isinstance(c, bool)
                for c in coords
            ):
                raise ValueError(
                    f'{kind} moves need integer-list "coords"'
                )
            coords = tuple(int(c) for c in coords)
        if kind == "insert":
            ops.append(("insert", coords))
        elif kind == "delete":
            ops.append(("delete", int(pid)))
        else:
            ops.append(("move", int(pid), coords))
    return tuple(ops)


@dataclass(frozen=True)
class DynamicStepRequest:
    """One ``POST /dynamic/step`` body, validated.

    Names a session and applies one batch of moves to it; a ``create``
    block makes the request self-bootstrapping (idempotent when the
    session already exists).  ``verify`` asks the server for an exact
    incremental-vs-recompute parity check on the updated state.
    """

    session: str
    create: Optional[DynamicCreate] = None
    moves: Tuple[tuple, ...] = ()
    verify: bool = False
    timeout_s: Optional[float] = None

    _FIELDS = ("session", "create", "moves", "verify", "timeout_s")

    @classmethod
    def from_dict(cls, payload: object) -> "DynamicStepRequest":
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ValueError(
                f"unknown request fields {unknown}; "
                f"accepted: {sorted(cls._FIELDS)}"
            )
        session = payload.get("session")
        if not isinstance(session, str) or not session:
            raise ValueError("session must be a non-empty string")
        create = payload.get("create")
        if create is not None:
            create = DynamicCreate.from_dict(create)
        moves = _parse_moves(payload.get("moves", []))
        verify = payload.get("verify", False)
        if not isinstance(verify, bool):
            raise ValueError("verify must be a boolean")
        timeout_s = payload.get("timeout_s")
        if timeout_s is not None:
            if isinstance(timeout_s, bool) or not isinstance(
                timeout_s, (int, float)
            ):
                raise ValueError("timeout_s must be a number")
            if timeout_s <= 0:
                raise ValueError("timeout_s must be positive")
            timeout_s = float(timeout_s)
        return cls(
            session=session,
            create=create,
            moves=moves,
            verify=verify,
            timeout_s=timeout_s,
        )


@dataclass(frozen=True)
class DynamicStepResponse:
    """One ``POST /dynamic/step`` 200 body."""

    session: str
    spec: str
    step: int
    metrics: Dict[str, object]
    drift: float
    reselections: int
    created: bool = False
    #: Present only when the request asked ``verify``; ``True`` means
    #: the incremental aggregates matched a full recompute with ``==``.
    parity: Optional[bool] = None

    def to_dict(self) -> dict:
        payload = {
            "session": self.session,
            "spec": self.spec,
            "step": self.step,
            "metrics": dict(self.metrics),
            "drift": self.drift,
            "reselections": self.reselections,
            "created": self.created,
        }
        if self.parity is not None:
            payload["parity"] = self.parity
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DynamicStepResponse":
        return cls(
            session=payload["session"],
            spec=payload["spec"],
            step=int(payload["step"]),
            metrics=dict(payload["metrics"]),
            drift=float(payload["drift"]),
            reselections=int(payload["reselections"]),
            created=bool(payload.get("created", False)),
            parity=payload.get("parity"),
        )


@dataclass(frozen=True)
class SweepResponse:
    """One ``POST /sweep`` 200 body."""

    records: Tuple[CellRecord, ...]
    skipped: Tuple[CellSkip, ...] = ()
    #: Cells of this request that attached to an in-flight computation
    #: started by a concurrent request (the single-flight table).
    deduped_cells: int = 0
    #: Cells whose (curve, universe) pair was in the warm-started hot
    #: set, so their grids were resident before the request arrived.
    served_from_warm: int = 0

    def to_dict(self) -> dict:
        return {
            "records": [record.to_dict() for record in self.records],
            "skipped": [skip.to_dict() for skip in self.skipped],
            "deduped_cells": self.deduped_cells,
            "served_from_warm": self.served_from_warm,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepResponse":
        return cls(
            records=tuple(
                CellRecord(
                    spec=item["spec"],
                    curve=item["curve"],
                    d=item["d"],
                    side=item["side"],
                    n=item["n"],
                    values=dict(item["values"]),
                )
                for item in payload.get("records", [])
            ),
            skipped=tuple(
                CellSkip(
                    spec=item["spec"],
                    d=item["d"],
                    side=item["side"],
                    reason=item["reason"],
                )
                for item in payload.get("skipped", [])
            ),
            deduped_cells=int(payload.get("deduped_cells", 0)),
            served_from_warm=int(payload.get("served_from_warm", 0)),
        )
