"""The sweep service core: persistent pools, warm start, admission.

One :class:`SweepService` owns the engine state that ``repro sweep``
rebuilds per invocation and keeps it for the process lifetime:

* a :class:`repro.engine.ContextPool` per execution mode
  ``(chunk_cells, threads)`` — every request computing a canonical
  (curve, universe) spec resolves the *same* context, so key grids and
  metric memos persist across requests;
* one owning :class:`repro.engine.shm.SharedGridStore` holding the
  warm-started hot set's grids as shared-memory segments (zero-copy
  re-attachable if the LRU ever evicts, and visible in ``/stats`` as
  the segments to watch for clean teardown);
* the async request machinery — a :class:`SingleFlight` table keyed by
  the engine's canonical ``_Task`` tuple and a :class:`MicroBatcher`
  draining new cells to a single compute thread.

Admission control happens *before* any engine work: oversized requests
are rejected by a byte estimate (413), and requests that would push the
in-flight cell count past ``max_inflight`` get a 429 with a retry hint
— the bounded-queue backpressure the tentpole requires.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from repro.engine.context import DEFAULT_CACHE_BYTES, CacheStats
from repro.engine.pool import ContextPool
from repro.engine.shm import SharedGridStore, shared_key, universe_key
from repro.engine.sweep import CurveSpec, SkippedCell, _run_cell
from repro.engine.threads import resolve_threads
from repro.grid.universe import Universe
from repro.serve.batching import MicroBatcher
from repro.serve.schemas import (
    CellRecord,
    CellSkip,
    DynamicStepRequest,
    DynamicStepResponse,
    SweepRequest,
    SweepResponse,
)
from repro.serve.singleflight import SingleFlight

__all__ = ["ServeConfig", "SweepService", "parse_hot_set"]


def parse_hot_set(text: str) -> Tuple[Tuple[str, int, int], ...]:
    """Parse ``--hot-set``: ``;``-separated ``spec@DxS`` entries.

    Curve specs may contain commas and colons (``random:seed=3``), so
    entries are ``;``-separated and the geometry rides after the last
    ``@``: ``"hilbert@2x64;random:seed=3@3x16"``.

    >>> parse_hot_set("hilbert@2x64; z@3x16")
    (('hilbert', 2, 64), ('z', 3, 16))
    >>> parse_hot_set("")
    ()
    """
    entries = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        spec, sep, geometry = chunk.rpartition("@")
        if not sep or not spec:
            raise ValueError(
                f"hot-set entry {chunk!r} is not of the form spec@DxS"
            )
        d_text, sep, side_text = geometry.partition("x")
        try:
            d, side = int(d_text), int(side_text)
        except ValueError:
            raise ValueError(
                f"hot-set geometry {geometry!r} is not DxS (e.g. 2x64)"
            ) from None
        if not sep or d < 1 or side < 1:
            raise ValueError(
                f"hot-set geometry {geometry!r} is not DxS (e.g. 2x64)"
            )
        entries.append((spec, d, side))
    return tuple(entries)


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs to run."""

    host: str = "127.0.0.1"
    port: int = 8842
    #: ``(curve_spec, d, side)`` pairs warmed at startup.
    hot_set: Tuple[Tuple[str, int, int], ...] = ()
    #: Bound on concurrently in-flight canonical cells (backpressure).
    max_inflight: int = 64
    #: Micro-batch collection window (seconds).
    batch_window_s: float = 0.005
    #: Default per-request timeout; requests may lower/raise their own.
    timeout_s: float = 30.0
    #: Reject requests whose cells' estimated engine state exceeds
    #: this (bytes); ``None`` disables the check.
    max_request_bytes: Optional[int] = 1 << 30
    #: Per-context LRU budget, as in ``Sweep.max_bytes``.
    max_bytes: Optional[int] = DEFAULT_CACHE_BYTES
    #: Default worker threads per cell for requests that don't choose.
    threads: Union[None, int, str] = None
    #: Default compute backend for requests that don't choose
    #: (``"numpy"``, ``"native"``, or ``"auto"``).
    backend: str = "auto"
    #: Bound on live ``/dynamic/step`` sessions (each holds a point
    #: population and its incremental aggregates resident).
    max_sessions: int = 16
    #: Directory of a persistent :class:`repro.engine.store.GridStore`
    #: (``repro serve --store``), or ``None``.  With a store the warm
    #: start *maps* previously computed hot-set grids from disk instead
    #: of evaluating curves, every pool writes fresh grids through, and
    #: a server restart comes back warm — persistence across restarts,
    #: which ``--hot-set`` alone (shared memory dies with the process)
    #: cannot provide.
    store_dir: Optional[str] = None


class _DynamicSession:
    """One live :class:`repro.engine.dynamic.DynamicUniverse` + its lock.

    The lock serializes step batches per session on the event loop;
    the universe itself is only ever touched from the compute thread.
    """

    __slots__ = ("universe", "lock")

    def __init__(self, universe) -> None:
        self.universe = universe
        self.lock = asyncio.Lock()


class SweepService:
    """Long-lived sweep engine behind the HTTP app.

    Construction performs the warm start synchronously (the server
    should not accept requests advertising a cold hot set);
    :meth:`start` (async) brings up the batcher and executor, and
    :meth:`aclose` tears everything down including the shared-memory
    segments — the teardown the lifecycle tests assert on.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.store = SharedGridStore.create()
        #: The persistent grid store behind every pool, or ``None``.
        self.grid_store = None
        if config.store_dir is not None:
            from repro.engine.store import GridStore

            self.grid_store = GridStore(config.store_dir)
        self.flight = SingleFlight()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "cells_planned": 0,
            "cells_started": 0,
            "served_from_warm": 0,
            "timeouts": 0,
            "rejected": 0,
            "errors": 0,
            "dynamic_requests": 0,
            "dynamic_steps": 0,
            "dynamic_moves": 0,
        }
        #: Live dynamic sessions by name; see :meth:`handle_dynamic`.
        self._sessions: Dict[str, "_DynamicSession"] = {}
        self._pools: Dict[Tuple, ContextPool] = {}
        self._pool_lock = threading.Lock()
        self._warm_pairs: set = set()
        self._default_threads = resolve_threads(config.threads)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self.batcher: Optional[MicroBatcher] = None
        self._warm_start()

    # ------------------------------------------------------------------
    # Engine state
    # ------------------------------------------------------------------
    def _pool_for(
        self,
        chunk_cells: Optional[int],
        threads: Optional[int],
        backend: str = "auto",
    ) -> ContextPool:
        """The persistent pool of one execution mode (created once)."""
        key = (chunk_cells, threads, backend)
        with self._pool_lock:
            pool = self._pools.get(key)
            if pool is None:
                pool = ContextPool(
                    max_bytes=self.config.max_bytes,
                    chunk_cells=chunk_cells,
                    shared_store=self.store,
                    threads=threads,
                    backend=backend,
                    store=self.grid_store,
                )
                self._pools[key] = pool
            return pool

    def _warm_start(self) -> None:
        """Compute the hot set's grids and publish them to shared memory.

        A hot entry that fails to parse or construct raises — a typo'd
        hot set should stop the server at startup, not surface as
        mysteriously cold requests later.

        With a persistent store configured the pools are already wired
        to it, so a restarted server *maps* previously computed grids
        from disk here (counted in ``cache.mmap``) instead of
        re-evaluating the curves, and first-boot computes are written
        through for the next restart.
        """
        for spec_text, d, side in self.config.hot_set:
            universe = Universe(d=d, side=side)
            spec = CurveSpec.parse(spec_text)
            curve = spec.make(universe)
            pool = self._pool_for(
                None, self._default_threads, self.config.backend
            )
            ctx = pool.get(curve)
            skey = shared_key(curve)
            if skey is not None and (skey, "key_grid") not in self.store:
                self.store.put(skey, "key_grid", ctx.key_grid())
                if getattr(curve, "inner", None) is None:
                    # Base specs get the full grid set; a transform's
                    # flat keys / inverse are one vector op from the
                    # grid (the process-sweep publish policy).
                    self.store.put(skey, "flat_keys", ctx.flat_keys())
                    self.store.put(
                        skey, "inverse_perm", ctx.inverse_permutation()
                    )
            ukey = universe_key(universe)
            if (ukey, "neighbor_counts") not in self.store:
                self.store.put(
                    ukey, "neighbor_counts", ctx.neighbor_counts()
                )
            self._warm_pairs.add((d, side, spec.label))

    def run_batch(self, tasks: list) -> list:
        """Execute one micro-batch on the compute thread.

        Returns one outcome per task — a ``SweepRecord``, a
        ``SkippedCell``, or the exception the cell raised (callers
        map those per request; one bad cell must not fail its
        batchmates).
        """
        outcomes = []
        for task in tasks:
            try:
                pool = self._pool_for(task[9], task[11], task[12])
                outcomes.append(_run_cell(task, pool=pool))
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    @staticmethod
    def estimate_task_bytes(task) -> int:
        """Rough resident engine state of one cell (admission check).

        Chunked cells hold ~64 bytes per block cell (keys, coordinates,
        reduction temporaries); dense cells hold the key grid plus the
        same-order derived arrays (flat keys, inverse, per-cell grids).
        """
        d, side, chunk_cells = task[0], task[1], task[9]
        n = side**d
        if chunk_cells:
            return min(n, chunk_cells) * 64
        return n * 8 * 4

    # ------------------------------------------------------------------
    # Async lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        # Single compute thread: cells parallelize internally via the
        # engine's block scheduler; see the batching module docstring.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-compute"
        )
        self.batcher = MicroBatcher(
            self.run_batch,
            self._finish_cell,
            window_s=self.config.batch_window_s,
            executor=self._executor,
        )
        await self.batcher.start()

    def _finish_cell(self, key, outcome) -> None:
        self.flight.resolve(key, outcome)

    async def aclose(self) -> None:
        """Stop the batcher, drain compute, unlink shared memory."""
        if self.batcher is not None:
            await self.batcher.aclose()
        self.flight.fail_all(RuntimeError("server shutting down"))
        if self._executor is not None:
            # wait=True: a batch still computing must finish before the
            # store unlinks (its contexts may read shared views).
            self._executor.shutdown(wait=True)
        self.store.unlink()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def handle_sweep(self, request: SweepRequest) -> Tuple[int, dict]:
        """``(status, payload)`` for one validated sweep request."""
        self.counters["requests"] += 1
        try:
            sweep = request.to_sweep(
                max_bytes=self.config.max_bytes,
                default_threads=self.config.threads,
                default_backend=self.config.backend,
                store_dir=self.config.store_dir,
            )
            tasks, planned_skips = sweep._plan()
        except (ValueError, KeyError) as exc:
            self.counters["errors"] += 1
            return 400, {"error": str(exc).strip("'\"")}
        unique = list(dict.fromkeys(tasks))
        self.counters["cells_planned"] += len(unique)
        if self.config.max_request_bytes is not None:
            estimate = sum(map(self.estimate_task_bytes, unique))
            if estimate > self.config.max_request_bytes:
                self.counters["rejected"] += 1
                return 413, {
                    "error": (
                        f"request needs ~{estimate} bytes of engine "
                        f"state, over the server's "
                        f"{self.config.max_request_bytes}-byte budget; "
                        "split the sweep or pass chunk_cells"
                    )
                }
        if (
            len(self.flight) + self.flight.new_keys(unique)
            > self.config.max_inflight
        ):
            self.counters["rejected"] += 1
            return 429, {
                "error": (
                    "server is at its in-flight cell bound "
                    f"({self.config.max_inflight}); retry shortly"
                ),
                "retry_after_s": max(self.config.batch_window_s * 10, 0.1),
            }
        warm_hits = sum(
            1
            for task in unique
            if (task[0], task[1], task[2]) in self._warm_pairs
        )
        self.counters["served_from_warm"] += warm_hits
        deduped = 0
        futures: Dict[object, asyncio.Future] = {}
        for task in unique:
            future, created = self.flight.admit(task, self._loop)
            if created:
                self.counters["cells_started"] += 1
                self.batcher.enqueue(task, task)
            else:
                deduped += 1
            futures[task] = future
        timeout = (
            request.timeout_s
            if request.timeout_s is not None
            else self.config.timeout_s
        )
        if futures:
            # asyncio.wait (not wait_for+gather): futures are shared
            # with concurrent requests through the single-flight table,
            # and a timeout here must never cancel them under a request
            # that is still waiting.
            done, pending = await asyncio.wait(
                set(futures.values()), timeout=timeout
            )
            if pending:
                self.counters["timeouts"] += 1
                return 504, {
                    "error": (
                        f"sweep timed out after {timeout}s; the "
                        "computation continues server-side and a retry "
                        "will reuse it"
                    )
                }
        records = []
        skipped = [CellSkip.from_skip(skip) for skip in planned_skips]
        # Original task order, spec-keyed reuse positionally — exactly
        # Sweep.run's assembly.
        for task in tasks:
            future = futures[task]
            exc = future.exception()
            if exc is not None:
                self.counters["errors"] += 1
                if isinstance(exc, (ValueError, KeyError)):
                    return 400, {"error": str(exc).strip("'\"")}
                return 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            outcome = future.result()
            if isinstance(outcome, SkippedCell):
                skipped.append(CellSkip.from_skip(outcome))
            else:
                records.append(CellRecord.from_record(outcome))
        response = SweepResponse(
            records=tuple(records),
            skipped=tuple(skipped),
            deduped_cells=deduped,
            served_from_warm=warm_hits,
        )
        return 200, response.to_dict()

    # ------------------------------------------------------------------
    # Dynamic sessions
    # ------------------------------------------------------------------
    async def handle_dynamic(
        self, request: DynamicStepRequest
    ) -> Tuple[int, dict]:
        """``(status, payload)`` for one validated dynamic-step request.

        Session creation goes through the single-flight table (keyed
        ``("dynamic", name)``), so concurrent self-bootstrapping
        requests build the universe once and share it.  Steps run on
        the *same* single compute thread as sweep micro-batches and are
        serialized per session by an :class:`asyncio.Lock` — concurrent
        batches against one session compose sequentially, never
        interleave.
        """
        self.counters["dynamic_requests"] += 1
        timeout = (
            request.timeout_s
            if request.timeout_s is not None
            else self.config.timeout_s
        )
        name = request.session
        created = False
        session = self._sessions.get(name)
        if session is None:
            if request.create is None:
                self.counters["errors"] += 1
                return 404, {
                    "error": (
                        f"no dynamic session {name!r}; include a "
                        '"create" block to bootstrap it'
                    )
                }
            if len(self._sessions) >= self.config.max_sessions:
                self.counters["rejected"] += 1
                return 429, {
                    "error": (
                        "server is at its dynamic session bound "
                        f"({self.config.max_sessions}); retry shortly"
                    ),
                    "retry_after_s": 1.0,
                }
            key = ("dynamic", name)
            future, opened = self.flight.admit(key, self._loop)
            if opened:
                created = True

                def build() -> object:
                    try:
                        return self._build_session(request.create)
                    except Exception as exc:
                        return exc

                handle = self._loop.run_in_executor(self._executor, build)

                def publish(done_future) -> None:
                    outcome = done_future.result()
                    if not isinstance(outcome, BaseException):
                        self._sessions[name] = outcome
                    self.flight.resolve(key, outcome)

                handle.add_done_callback(publish)
            done, pending = await asyncio.wait({future}, timeout=timeout)
            if pending:
                self.counters["timeouts"] += 1
                return 504, {
                    "error": (
                        f"session bootstrap timed out after {timeout}s; "
                        "it continues server-side and a retry will "
                        "attach to it"
                    )
                }
            exc = future.exception()
            if exc is not None:
                self.counters["errors"] += 1
                if isinstance(exc, (ValueError, KeyError)):
                    return 400, {"error": str(exc).strip("'\"")}
                return 500, {"error": f"{type(exc).__name__}: {exc}"}
            session = future.result()
        # The step task owns the session lock for its full compute, so
        # a request timeout returns 504 without breaking serialization
        # (the in-flight batch finishes before the next one starts).
        task = self._loop.create_task(
            self._step_session(session, request)
        )
        done, pending = await asyncio.wait({task}, timeout=timeout)
        if pending:
            self.counters["timeouts"] += 1
            return 504, {
                "error": (
                    f"dynamic step timed out after {timeout}s; the "
                    "batch continues server-side"
                )
            }
        exc = task.exception()
        if exc is not None:
            self.counters["errors"] += 1
            if isinstance(exc, (ValueError, KeyError)):
                return 400, {"error": str(exc).strip("'\"")}
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        response: DynamicStepResponse = task.result()
        if created:
            response = DynamicStepResponse(
                session=response.session,
                spec=response.spec,
                step=response.step,
                metrics=response.metrics,
                drift=response.drift,
                reselections=response.reselections,
                created=True,
                parity=response.parity,
            )
        return 200, response.to_dict()

    def _build_session(self, create) -> "_DynamicSession":
        """Construct one dynamic universe on the compute thread.

        The universe rides on the service's default pool, so its key
        grids (and any re-selection candidates') are the same cached
        contexts sweep requests resolve.
        """
        import numpy as np

        from repro.engine.dynamic import DynamicUniverse

        universe = Universe(d=create.d, side=create.side)
        pool = self._pool_for(
            None, self._default_threads, self.config.backend
        )
        dyn = DynamicUniverse(
            create.curve,
            universe=universe,
            pool=pool,
            parts=create.parts,
            window=create.window,
            reselect_threshold=create.reselect_threshold,
            candidates=create.candidates,
        )
        if create.seed_points:
            rng = np.random.default_rng(create.seed)
            dyn.bulk_load(
                rng.integers(
                    0,
                    create.side,
                    size=(create.seed_points, create.d),
                    dtype=np.int64,
                )
            )
        return _DynamicSession(dyn)

    async def _step_session(
        self, session: "_DynamicSession", request: DynamicStepRequest
    ) -> DynamicStepResponse:
        """Apply one batch under the session lock, on the compute thread."""
        async with session.lock:
            def compute() -> DynamicStepResponse:
                dyn = session.universe
                if request.moves:
                    metrics = dyn.apply(list(request.moves))
                else:
                    metrics = dyn.metrics()
                parity = None
                if request.verify:
                    parity = metrics == dyn.recompute()
                return DynamicStepResponse(
                    session=request.session,
                    spec=dyn.spec,
                    step=dyn.steps,
                    metrics={
                        "n_points": metrics.n_points,
                        "n_cells": metrics.n_cells,
                        "edge_count": metrics.edge_count,
                        "stretch_sum": metrics.stretch_sum,
                        "davg": metrics.davg,
                        "dilation": metrics.dilation,
                        "loads": list(metrics.loads),
                    },
                    drift=dyn.drift(),
                    reselections=len(dyn.reselections),
                    parity=parity,
                )

            response = await self._loop.run_in_executor(
                self._executor, compute
            )
            if request.moves:
                self.counters["dynamic_steps"] += 1
                self.counters["dynamic_moves"] += len(request.moves)
            return response

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_payload(self) -> dict:
        """The ``GET /stats`` body: engine counters + service counters."""
        with self._pool_lock:
            pools = list(self._pools.values())
        stats = CacheStats.aggregate([pool.stats for pool in pools])
        counters = dict(self.counters)
        counters["deduped_cells"] = self.flight.coalesced
        payload = {
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "hit_rate": stats.hit_rate,
                "evictions": stats.evictions,
                "computes": dict(stats.computes),
                "derived": dict(stats.derived),
                "shared": dict(stats.shared),
                "mmap": dict(stats.mmap),
                "backends": dict(stats.backends),
            },
            "backend": self.config.backend,
            "counters": counters,
            "inflight": len(self.flight),
            "pools": len(pools),
            "warm_pairs": sorted(
                f"{spec}@{d}x{side}" for d, side, spec in self._warm_pairs
            ),
            "shm": {
                "segments": list(self.store.segment_names),
                "nbytes": self.store.nbytes,
            },
            "dynamic": {
                "sessions": {
                    name: {
                        "points": len(session.universe),
                        "spec": session.universe.spec,
                        "steps": session.universe.steps,
                        "reselections": len(
                            session.universe.reselections
                        ),
                    }
                    for name, session in sorted(self._sessions.items())
                },
                "max_sessions": self.config.max_sessions,
            },
        }
        if self.grid_store is not None:
            payload["store"] = {
                "dir": str(self.grid_store.root),
                "entries": len(self.grid_store.entries()),
                "nbytes": self.grid_store.nbytes,
                "quarantined": self.grid_store.quarantined_count(),
                "counters": self.grid_store.stats(),
            }
        if self.batcher is not None:
            payload["counters"]["batches"] = self.batcher.batches
            payload["counters"]["batched_cells"] = self.batcher.batched_cells
            payload["counters"]["max_batch"] = self.batcher.max_batch
        return payload
