"""Minimal asyncio HTTP/1.1 front end for the sweep service.

Stdlib only — ``asyncio.start_server`` plus a small request parser —
because the service's surface is three JSON endpoints, not a web
framework's worth of routing:

* ``POST /sweep``  — a :class:`repro.serve.schemas.SweepRequest` body;
  returns the :class:`repro.serve.schemas.SweepResponse` (200) or an
  ``{"error": ...}`` body with 400/413/429/504 per the service's
  admission and timeout rules.
* ``POST /dynamic/step`` — a
  :class:`repro.serve.schemas.DynamicStepRequest` body applying one
  move batch to a named
  :class:`repro.engine.dynamic.DynamicUniverse` session (creating it
  through the single-flight table when a ``create`` block rides
  along); returns the
  :class:`repro.serve.schemas.DynamicStepResponse`.
* ``GET /stats``   — aggregated engine cache counters + service
  counters (see :meth:`repro.serve.service.SweepService.stats_payload`).
* ``GET /healthz`` — liveness.

:func:`run` is the blocking CLI entry point (``repro serve``): it
installs SIGTERM/SIGINT handlers, prints the bound address (port 0
binds an ephemeral port, so smoke tests parse the line), and on
shutdown closes the listener, drains in-flight compute and unlinks
every shared-memory segment before printing the clean-exit line the
lifecycle tests assert on.  :class:`BackgroundServer` runs the same
stack on a daemon-thread event loop for in-process tests and benches.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Optional, Tuple

from repro.serve.schemas import DynamicStepRequest, SweepRequest
from repro.serve.service import ServeConfig, SweepService

__all__ = ["HttpServer", "BackgroundServer", "start_server", "run"]

_MAX_HEADER_BYTES = 32_768
_MAX_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class HttpServer:
    """Routes parsed requests to a :class:`SweepService`."""

    def __init__(self, service: SweepService) -> None:
        self.service = service

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").split()
                    )
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"}
                    )
                    break
                headers = {}
                header_bytes = 0
                overflow = False
                while True:
                    line = await reader.readline()
                    header_bytes += len(line)
                    if header_bytes > _MAX_HEADER_BYTES:
                        overflow = True
                        break
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                if overflow:
                    await self._respond(
                        writer, 431, {"error": "headers too large"}
                    )
                    break
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "bad Content-Length"}
                    )
                    break
                if length > _MAX_BODY_BYTES:
                    await self._respond(
                        writer,
                        413,
                        {"error": f"body over {_MAX_BODY_BYTES} bytes"},
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload = await self.dispatch(method, target, body)
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                await self._respond(
                    writer, status, payload, close=not keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, dict]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET /healthz"}
            return 200, {"status": "ok"}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "GET /stats"}
            return 200, self.service.stats_payload()
        if path == "/sweep":
            if method != "POST":
                return 405, {"error": "POST /sweep"}
            try:
                payload = json.loads(body.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
            try:
                request = SweepRequest.from_dict(payload)
            except ValueError as exc:
                return 400, {"error": str(exc)}
            return await self.service.handle_sweep(request)
        if path == "/dynamic/step":
            if method != "POST":
                return 405, {"error": "POST /dynamic/step"}
            try:
                payload = json.loads(body.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
            try:
                request = DynamicStepRequest.from_dict(payload)
            except ValueError as exc:
                return 400, {"error": str(exc)}
            return await self.service.handle_dynamic(request)
        return 404, {"error": f"no route {method} {path}"}

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        retry_after = payload.get("retry_after_s")
        if status == 429 and retry_after is not None:
            lines.append(f"Retry-After: {max(1, round(retry_after))}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def start_server(
    config: ServeConfig,
) -> Tuple[SweepService, asyncio.AbstractServer, int]:
    """Warm-start a service and bind its listener; returns the port."""
    service = SweepService(config)
    await service.start()
    http = HttpServer(service)
    server = await asyncio.start_server(
        http.handle_connection, config.host, config.port
    )
    port = server.sockets[0].getsockname()[1]
    return service, server, port


async def _run_until_signal(config: ServeConfig) -> None:
    service, server, port = await start_server(config)
    print(
        f"repro serve listening on http://{config.host}:{port}", flush=True
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            signal.signal(sig, lambda *_: stop.set())
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.aclose()
    print("repro serve shut down cleanly", flush=True)


def run(config: ServeConfig) -> int:
    """Blocking ``repro serve`` entry point; returns the exit code."""
    asyncio.run(_run_until_signal(config))
    return 0


class BackgroundServer:
    """The full serve stack on a daemon-thread event loop.

    For tests and benchmarks that need a live HTTP endpoint inside one
    process: construction warm-starts and binds (``port`` attribute
    carries the ephemeral port), :meth:`stop` performs the same clean
    teardown as the signal path — shared-memory segments are unlinked
    when it returns.
    """

    def __init__(self, config: ServeConfig) -> None:
        self._host = config.host
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-serve-loop",
            daemon=True,
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            start_server(config), self._loop
        )
        self.service, self._server, self.port = future.result(timeout=60)

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def stop(self) -> None:
        async def shutdown() -> None:
            self._server.close()
            await self._server.wait_closed()
            await self.service.aclose()

        asyncio.run_coroutine_threadsafe(shutdown(), self._loop).result(
            timeout=60
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
