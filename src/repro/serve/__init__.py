"""``repro serve`` — a persistent sweep service over the pooled engine.

The CLI's ``repro sweep`` computes each canonical (curve, universe)
cell once *per invocation*; everything it builds — key grids, NN
arrays, shared-memory segments, metric memos — dies with the process.
This package keeps that state alive behind a long-lived HTTP/JSON
service (stdlib asyncio, no new dependencies), so canonical specs are
computed once per *process lifetime*:

* :mod:`repro.serve.service` — the engine side: persistent
  :class:`repro.engine.ContextPool`\\ s, a warm-started hot set
  published to one :class:`repro.engine.shm.SharedGridStore`, and
  admission control (byte budget, bounded in-flight cells);
* :mod:`repro.serve.singleflight` — concurrent identical requests
  await one in-flight computation per canonical cell key;
* :mod:`repro.serve.batching` — cells arriving within a window run as
  one batch on a single compute thread;
* :mod:`repro.serve.schemas` — the wire forms, deliberately the
  ``repro sweep`` grammar so HTTP and CLI sweeps are comparable bit
  for bit;
* :mod:`repro.serve.app` — the HTTP front end, signal-clean shutdown,
  and the in-process :class:`BackgroundServer` used by tests and
  benchmarks.

See ``docs/serving.md`` for endpoints and operational notes.
"""

from repro.serve.app import BackgroundServer, HttpServer, run, start_server
from repro.serve.schemas import (
    CellRecord,
    CellSkip,
    DynamicCreate,
    DynamicStepRequest,
    DynamicStepResponse,
    SweepRequest,
    SweepResponse,
)
from repro.serve.service import ServeConfig, SweepService, parse_hot_set

__all__ = [
    "BackgroundServer",
    "HttpServer",
    "run",
    "start_server",
    "CellRecord",
    "CellSkip",
    "DynamicCreate",
    "DynamicStepRequest",
    "DynamicStepResponse",
    "SweepRequest",
    "SweepResponse",
    "ServeConfig",
    "SweepService",
    "parse_hot_set",
]
