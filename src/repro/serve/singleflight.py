"""Async single-flight table: one in-flight computation per cell key.

PR 4 gave ``Sweep.run`` spec-keyed dedup *within one sweep* — identical
``_Task`` tuples compute once and share their outcome positionally.
The service generalizes that across *concurrent requests*: the
canonical cell key (the hashable ``_Task`` 12-tuple, which pins the
universe, curve spec, metric set and execution knobs) maps to one
``asyncio.Future``; the first request to name a key starts the
computation, every later request awaits the same future, and nobody
computes a canonical cell twice while it is in flight.  Completed keys
leave the table — *result* reuse across requests is the engine pool's
job (its caches make the recomputation near-free), keeping this table
small and free of invalidation policy.

Single-threaded by design: every method must be called on the event
loop thread (the batcher hands outcomes back via
``loop.call_soon_threadsafe``), so the table needs no lock.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Hashable, Iterable, Tuple

__all__ = ["SingleFlight"]


class SingleFlight:
    """In-flight futures keyed by canonical cell key."""

    def __init__(self) -> None:
        self._inflight: Dict[Hashable, asyncio.Future] = {}
        #: Admissions that attached to an existing in-flight future.
        self.coalesced = 0
        #: Admissions that created a new future (computations started).
        self.started = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._inflight

    def new_keys(self, keys: Iterable[Hashable]) -> int:
        """How many of ``keys`` would start a computation right now.

        The admission-control probe: capacity checks must count only
        genuinely new cells, or a request duplicating in-flight work
        would be bounced by the very dedup that makes it cheap.
        """
        return sum(1 for key in keys if key not in self._inflight)

    def admit(
        self, key: Hashable, loop: asyncio.AbstractEventLoop
    ) -> Tuple[asyncio.Future, bool]:
        """``(future, created)`` for ``key``.

        ``created`` is True when this call opened the flight — the
        caller is then responsible for eventually :meth:`resolve`-ing
        the key (the batcher does this for every key it executes).
        """
        future = self._inflight.get(key)
        if future is not None:
            self.coalesced += 1
            return future, False
        future = loop.create_future()
        self._inflight[key] = future
        self.started += 1
        return future, True

    def resolve(self, key: Hashable, outcome: object) -> None:
        """Complete and remove ``key``'s flight.

        ``outcome`` may be an exception instance, which is set as the
        future's exception (every awaiting request sees it).  Unknown
        or already-resolved keys are ignored, so shutdown's blanket
        :meth:`fail_all` and a late batch completion cannot collide.
        """
        future = self._inflight.pop(key, None)
        if future is None or future.done():
            return
        if isinstance(outcome, BaseException):
            future.set_exception(outcome)
            # Every awaiting request retrieves the exception, but a
            # flight may have outlived its waiters (request timeout,
            # shutdown); retrieve it once so asyncio never logs
            # "exception was never retrieved" for an orphaned flight.
            future.add_done_callback(lambda f: f.exception())
        else:
            future.set_result(outcome)

    def fail_all(self, error: BaseException) -> None:
        """Fail every open flight (server shutdown)."""
        for key in list(self._inflight):
            self.resolve(key, error)
