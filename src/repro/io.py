"""Serialization: save/load curves as portable ``.npz`` archives.

Any SFC (including transforms, random bijections and search-optimized
curves) can be frozen to disk as its key grid plus metadata and loaded
back as a :class:`~repro.curves.base.PermutationCurve` with identical
metrics — useful for sharing optimized orders and for pinning bench
inputs.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.curves.base import PermutationCurve, SpaceFillingCurve
from repro.grid.universe import Universe

__all__ = ["save_curve", "load_curve"]

_FORMAT_VERSION = 1


def save_curve(curve: SpaceFillingCurve, path: str | Path) -> Path:
    """Write ``curve`` to ``path`` (``.npz``); returns the path written.

    The archive stores the dense key grid, the universe parameters and
    the curve name; it is independent of the curve class.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    np.savez_compressed(
        path,
        key_grid=curve.key_grid(),
        d=np.int64(curve.universe.d),
        side=np.int64(curve.universe.side),
        name=np.bytes_(curve.name.encode("utf-8")),
        format_version=np.int64(_FORMAT_VERSION),
    )
    return path


def load_curve(path: str | Path) -> PermutationCurve:
    """Load a curve saved by :func:`save_curve`.

    Raises
    ------
    ValueError
        For missing fields, unknown format versions, or an archive
        whose key grid is not a bijection (corruption guard).
    """
    path = Path(path)
    with np.load(path) as data:
        for field in ("key_grid", "d", "side", "name", "format_version"):
            if field not in data:
                raise ValueError(f"{path}: missing field {field!r}")
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported format version {version}"
            )
        universe = Universe(d=int(data["d"]), side=int(data["side"]))
        name = bytes(data["name"]).decode("utf-8")
        return PermutationCurve(
            universe, key_grid=data["key_grid"], name=name
        )
