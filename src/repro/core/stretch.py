"""Exact nearest-neighbor stretch metrics (Definitions 1–4, Lemma 5 groups).

All computations run on the dense key grid and per-axis slice views, so
the cost is ``O(d · n)`` with NumPy-vectorized inner loops — exact values,
no sampling.

Definitions (Section III):

* ``δ^avg_π(α) = (Σ_{β∈N(α)} ∆π(α,β)) / |N(α)|``
* ``D^avg(π)  = (1/n) Σ_α δ^avg_π(α)``   (average-average NN-stretch)
* ``δ^max_π(α) = max_{β∈N(α)} ∆π(α,β)``
* ``D^max(π)  = (1/n) Σ_α δ^max_π(α)``   (average-maximum NN-stretch)

Lemma 5 machinery: ``G_i`` is the set of NN pairs differing along the
paper's dimension ``i`` and ``Λ_i(π) = Σ_{(α,β)∈G_i} ∆π(α,β)``;
``G_{i,j} ⊂ G_i`` collects pairs whose lower coordinate ``κ`` has exactly
``j−1`` trailing one bits.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.grid.neighbors import axis_pair_index_arrays, neighbor_count_grid

__all__ = [
    "axis_pair_curve_distances",
    "lambda_sums",
    "nn_distance_values",
    "per_cell_stretch_sums",
    "per_cell_avg_stretch",
    "per_cell_max_stretch",
    "average_average_nn_stretch",
    "average_maximum_nn_stretch",
    "gij_decomposition",
    "trailing_ones",
]


def _require_neighbors(curve: SpaceFillingCurve) -> None:
    if curve.universe.side < 2:
        raise ValueError(
            "stretch metrics need side >= 2 (no nearest neighbors otherwise)"
        )


def axis_pair_curve_distances(
    curve: SpaceFillingCurve, axis: int
) -> np.ndarray:
    """``∆π`` for every NN pair along ``axis`` (the group ``G_{axis+1}``).

    Returns an array of shape ``(side,)*(axis) + (side−1,) + …`` aligned
    with the lower endpoint of each pair.
    """
    grid = curve.key_grid()
    lo, hi = axis_pair_index_arrays(curve.universe, axis)
    return np.abs(grid[hi] - grid[lo])


def lambda_sums(curve: SpaceFillingCurve) -> np.ndarray:
    """``[Λ_1(π), …, Λ_d(π)]``: per-dimension total NN curve distance."""
    _require_neighbors(curve)
    return np.array(
        [
            int(axis_pair_curve_distances(curve, axis).sum())
            for axis in range(curve.universe.d)
        ],
        dtype=np.int64,
    )


def nn_distance_values(curve: SpaceFillingCurve) -> np.ndarray:
    """Flat array of ``∆π`` over all unordered NN pairs (each once).

    Powers the distribution analysis (quantiles, recall-vs-window for the
    N-body substrate).
    """
    _require_neighbors(curve)
    parts = [
        axis_pair_curve_distances(curve, axis).reshape(-1)
        for axis in range(curve.universe.d)
    ]
    return np.concatenate(parts)


def per_cell_stretch_sums(
    curve: SpaceFillingCurve,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell ``(Σ_{β∈N(α)} ∆π(α,β), |N(α)|)`` as dense grids."""
    _require_neighbors(curve)
    universe = curve.universe
    sums = np.zeros(universe.shape, dtype=np.int64)
    for axis in range(universe.d):
        dist = axis_pair_curve_distances(curve, axis)
        lo, hi = axis_pair_index_arrays(universe, axis)
        sums[lo] += dist
        sums[hi] += dist
    counts = neighbor_count_grid(universe)
    return sums, counts


def per_cell_avg_stretch(curve: SpaceFillingCurve) -> np.ndarray:
    """Dense grid of ``δ^avg_π(α)`` (Definition 1)."""
    sums, counts = per_cell_stretch_sums(curve)
    return sums / counts


def per_cell_max_stretch(curve: SpaceFillingCurve) -> np.ndarray:
    """Dense grid of ``δ^max_π(α)`` (Definition 3)."""
    _require_neighbors(curve)
    universe = curve.universe
    best = np.zeros(universe.shape, dtype=np.int64)
    for axis in range(universe.d):
        dist = axis_pair_curve_distances(curve, axis)
        lo, hi = axis_pair_index_arrays(universe, axis)
        np.maximum(best[lo], dist, out=best[lo])
        np.maximum(best[hi], dist, out=best[hi])
    return best


def average_average_nn_stretch(curve: SpaceFillingCurve) -> float:
    """``D^avg(π)`` (Definition 2), computed exactly."""
    return float(per_cell_avg_stretch(curve).mean())


def average_maximum_nn_stretch(curve: SpaceFillingCurve) -> float:
    """``D^max(π)`` (Definition 4), computed exactly."""
    return float(per_cell_max_stretch(curve).mean())


def trailing_ones(values: np.ndarray) -> np.ndarray:
    """Number of trailing 1 bits of each value (vectorized).

    ``trailing_ones(κ) = j − 1`` identifies the Lemma 5 group ``G_{i,j}``
    of the pair ``(κ, κ+1)``.
    """
    arr = np.asarray(values, dtype=np.int64)
    flipped = ~arr  # trailing ones of v = trailing zeros of ~v
    # Trailing zeros via isolating the lowest set bit: ~v & (v+1) has a
    # single bit at the position of the first 0 bit of v.
    lowest = flipped & (arr + 1)
    # log2 of a power of two; lowest >= 1 always (int64 has a 0 bit).
    return np.round(np.log2(lowest.astype(np.float64))).astype(np.int64)


def gij_decomposition(
    curve: SpaceFillingCurve, axis: int
) -> dict[int, tuple[int, np.ndarray]]:
    """Split ``G_{axis+1}`` into the Lemma 5 groups ``G_{i,j}``.

    Returns ``{j: (count, distances)}`` where ``distances`` holds the
    ``∆π`` values of the group's pairs.  For the Z curve, every distance
    within a group is the same constant (Lemma 5's key observation) —
    asserted in the tests.
    """
    universe = curve.universe
    k = universe.k  # requires power-of-two side, as in the paper
    dist = axis_pair_curve_distances(curve, axis)
    # κ values (coordinate of the lower endpoint along `axis`) aligned
    # with `dist`: broadcast the axis coordinate across the other axes.
    shape = [1] * universe.d
    shape[axis] = universe.side - 1
    kappa = np.arange(universe.side - 1, dtype=np.int64).reshape(shape)
    kappa = np.broadcast_to(kappa, dist.shape)
    groups = trailing_ones(kappa) + 1  # j index, 1-based
    out: dict[int, tuple[int, np.ndarray]] = {}
    flat_groups = groups.reshape(-1)
    flat_dist = dist.reshape(-1)
    for j in range(1, k + 1):
        mask = flat_groups == j
        out[j] = (int(mask.sum()), flat_dist[mask])
    return out
