"""Exact nearest-neighbor stretch metrics (Definitions 1–4, Lemma 5 groups).

All computations run on the dense key grid and per-axis slice views, so
the cost is ``O(d · n)`` with NumPy-vectorized inner loops — exact values,
no sampling.

Definitions (Section III):

* ``δ^avg_π(α) = (Σ_{β∈N(α)} ∆π(α,β)) / |N(α)|``
* ``D^avg(π)  = (1/n) Σ_α δ^avg_π(α)``   (average-average NN-stretch)
* ``δ^max_π(α) = max_{β∈N(α)} ∆π(α,β)``
* ``D^max(π)  = (1/n) Σ_α δ^max_π(α)``   (average-maximum NN-stretch)

Lemma 5 machinery: ``G_i`` is the set of NN pairs differing along the
paper's dimension ``i`` and ``Λ_i(π) = Σ_{(α,β)∈G_i} ∆π(α,β)``;
``G_{i,j} ⊂ G_i`` collects pairs whose lower coordinate ``κ`` has exactly
``j−1`` trailing one bits.

The functions below are thin wrappers over the shared per-curve
:class:`repro.engine.MetricContext` (via
:func:`repro.engine.get_context`): repeated metric calls on the same
curve object reuse the cached key grid, per-axis distance arrays and
neighbor counts instead of rebuilding them.  Array results are cached
and therefore returned **read-only** — copy before mutating.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.engine.context import get_context

__all__ = [
    "axis_pair_curve_distances",
    "lambda_sums",
    "nn_distance_values",
    "per_cell_stretch_sums",
    "per_cell_avg_stretch",
    "per_cell_max_stretch",
    "average_average_nn_stretch",
    "average_maximum_nn_stretch",
    "gij_decomposition",
    "trailing_ones",
]


def axis_pair_curve_distances(
    curve: SpaceFillingCurve, axis: int
) -> np.ndarray:
    """``∆π`` for every NN pair along ``axis`` (the group ``G_{axis+1}``).

    Returns an array of shape ``(side,)*(axis) + (side−1,) + …`` aligned
    with the lower endpoint of each pair.
    """
    return get_context(curve).axis_pair_curve_distances(axis)


def lambda_sums(curve: SpaceFillingCurve) -> np.ndarray:
    """``[Λ_1(π), …, Λ_d(π)]``: per-dimension total NN curve distance."""
    return get_context(curve).lambda_sums()


def nn_distance_values(curve: SpaceFillingCurve) -> np.ndarray:
    """Flat array of ``∆π`` over all unordered NN pairs (each once).

    Powers the distribution analysis (quantiles, recall-vs-window for the
    N-body substrate).
    """
    return get_context(curve).nn_distance_values()


def per_cell_stretch_sums(
    curve: SpaceFillingCurve,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell ``(Σ_{β∈N(α)} ∆π(α,β), |N(α)|)`` as dense grids."""
    return get_context(curve).per_cell_stretch_sums()


def per_cell_avg_stretch(curve: SpaceFillingCurve) -> np.ndarray:
    """Dense grid of ``δ^avg_π(α)`` (Definition 1)."""
    return get_context(curve).per_cell_avg_stretch()


def per_cell_max_stretch(curve: SpaceFillingCurve) -> np.ndarray:
    """Dense grid of ``δ^max_π(α)`` (Definition 3)."""
    return get_context(curve).per_cell_max_stretch()


def average_average_nn_stretch(curve: SpaceFillingCurve) -> float:
    """``D^avg(π)`` (Definition 2), computed exactly."""
    return get_context(curve).davg()


def average_maximum_nn_stretch(curve: SpaceFillingCurve) -> float:
    """``D^max(π)`` (Definition 4), computed exactly."""
    return get_context(curve).dmax()


def trailing_ones(values: np.ndarray) -> np.ndarray:
    """Number of trailing 1 bits of each value (vectorized).

    ``trailing_ones(κ) = j − 1`` identifies the Lemma 5 group ``G_{i,j}``
    of the pair ``(κ, κ+1)``.
    """
    arr = np.asarray(values, dtype=np.int64)
    flipped = ~arr  # trailing ones of v = trailing zeros of ~v
    # Trailing zeros via isolating the lowest set bit: ~v & (v+1) has a
    # single bit at the position of the first 0 bit of v.
    lowest = flipped & (arr + 1)
    # log2 of a power of two; lowest >= 1 always (int64 has a 0 bit).
    return np.round(np.log2(lowest.astype(np.float64))).astype(np.int64)


def gij_decomposition(
    curve: SpaceFillingCurve, axis: int
) -> dict[int, tuple[int, np.ndarray]]:
    """Split ``G_{axis+1}`` into the Lemma 5 groups ``G_{i,j}``.

    Returns ``{j: (count, distances)}`` where ``distances`` holds the
    ``∆π`` values of the group's pairs.  For the Z curve, every distance
    within a group is the same constant (Lemma 5's key observation) —
    asserted in the tests.
    """
    return get_context(curve).gij_decomposition(axis)
