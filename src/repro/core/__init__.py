"""The paper's primary contribution: stretch metrics, bounds and analyses.

* :mod:`repro.core.stretch` — exact nearest-neighbor stretch metrics
  (Definitions 1–4) and the per-axis ``Λ_i`` sums of Lemma 5.
* :mod:`repro.core.allpairs` — all-pairs stretch (Section V-B) and the
  Lemma 2 sum identity.
* :mod:`repro.core.lower_bounds` — Theorem 1, Propositions 1 and 3.
* :mod:`repro.core.asymptotics` — Theorems 2–3 closed forms, exact
  finite-n formulas for the Z and simple curves, Propositions 2 and 4.
* :mod:`repro.core.decomposition` — the proof machinery of Theorem 1
  (path decompositions, double counting, Lemmas 1–4) as runnable checks.
* :mod:`repro.core.gap` — optimality ratios (the 1.5-factor headline).
* :mod:`repro.core.summary` — survey reports across the curve zoo.
"""

from repro.core.stretch import (
    average_average_nn_stretch,
    average_maximum_nn_stretch,
    axis_pair_curve_distances,
    gij_decomposition,
    lambda_sums,
    nn_distance_values,
    per_cell_avg_stretch,
    per_cell_max_stretch,
)
from repro.core.allpairs import (
    AllPairsEstimate,
    average_allpairs_stretch_exact,
    average_allpairs_stretch_sampled,
    lemma2_sum_exact,
    lemma2_sum_measured,
)
from repro.core.lower_bounds import (
    allpairs_euclidean_lower_bound,
    allpairs_manhattan_lower_bound,
    davg_lower_bound,
    davg_lower_bound_exact,
    dmax_lower_bound,
)
from repro.core.asymptotics import (
    allpairs_simple_euclidean_ub,
    allpairs_simple_manhattan_ub,
    davg_simple_exact,
    davg_simple_limit,
    davg_z_limit,
    dmax_simple_exact,
    lambda_limit_coefficient,
    lambda_z_exact,
    simple_interior_delta_avg,
    z_h1_exact,
    zcurve_gij_count,
    zcurve_gij_distance,
)
from repro.core.decomposition import (
    Theorem1Certificate,
    edge_multiplicity_bruteforce,
    path_triangle_check,
    theorem1_certificate,
)
from repro.core.gap import GapReport, gap_survey, headline_ratio, optimality_ratio
from repro.core.optimal import (
    Optimum,
    SearchResult,
    davg_of_keys,
    exhaustive_optimum,
    local_search,
    rank_space_pairs,
)
from repro.core.summary import StretchReport, stretch_report, survey
from repro.core.zexact import davg_z_exact, z_h2_exact
from repro.core.torus import (
    average_average_nn_stretch_torus,
    average_maximum_nn_stretch_torus,
    davg_torus_simple_exact,
    dmax_torus_simple_exact,
    lambda_sums_torus,
    wrap_pair_curve_distances,
)

__all__ = [
    "average_average_nn_stretch",
    "average_maximum_nn_stretch",
    "axis_pair_curve_distances",
    "per_cell_avg_stretch",
    "per_cell_max_stretch",
    "lambda_sums",
    "nn_distance_values",
    "gij_decomposition",
    "AllPairsEstimate",
    "average_allpairs_stretch_exact",
    "average_allpairs_stretch_sampled",
    "lemma2_sum_exact",
    "lemma2_sum_measured",
    "davg_lower_bound",
    "davg_lower_bound_exact",
    "dmax_lower_bound",
    "allpairs_manhattan_lower_bound",
    "allpairs_euclidean_lower_bound",
    "davg_z_limit",
    "davg_simple_limit",
    "davg_simple_exact",
    "dmax_simple_exact",
    "simple_interior_delta_avg",
    "lambda_limit_coefficient",
    "lambda_z_exact",
    "z_h1_exact",
    "zcurve_gij_count",
    "zcurve_gij_distance",
    "allpairs_simple_manhattan_ub",
    "allpairs_simple_euclidean_ub",
    "Theorem1Certificate",
    "theorem1_certificate",
    "edge_multiplicity_bruteforce",
    "path_triangle_check",
    "Optimum",
    "SearchResult",
    "davg_of_keys",
    "exhaustive_optimum",
    "local_search",
    "rank_space_pairs",
    "GapReport",
    "optimality_ratio",
    "headline_ratio",
    "gap_survey",
    "StretchReport",
    "stretch_report",
    "survey",
    "davg_z_exact",
    "z_h2_exact",
    "average_average_nn_stretch_torus",
    "average_maximum_nn_stretch_torus",
    "davg_torus_simple_exact",
    "dmax_torus_simple_exact",
    "lambda_sums_torus",
    "wrap_pair_curve_distances",
]
