"""Lower bounds over the class of all SFCs: Theorem 1, Propositions 1 & 3.

These are the paper's central negative results — *no* bijection, however
clever, can beat them:

* Theorem 1 / Proposition 1:
  ``D^avg(π), D^max(π) ≥ (2/3d)·(n^{1−1/d} − n^{−1−1/d})``
* Proposition 3 (all-pairs):
  ``str_{avg,M}(π) ≥ (1/3d)·(n+1)/(n^{1/d} − 1)`` and
  ``str_{avg,E}(π) ≥ (1/3√d)·(n+1)/(n^{1/d} − 1)``.

Exact :class:`fractions.Fraction` variants are provided for universes
whose ``side = n^{1/d}`` is an integer, avoiding any float slack when a
bench asserts ``measured ≥ bound``.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.universe import Universe

__all__ = [
    "davg_lower_bound",
    "davg_lower_bound_exact",
    "dmax_lower_bound",
    "allpairs_manhattan_lower_bound",
    "allpairs_manhattan_lower_bound_exact",
    "allpairs_euclidean_lower_bound",
]


def _check(n: int, d: int) -> None:
    if d < 1:
        raise ValueError(f"need d >= 1, got {d}")
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")


def davg_lower_bound(n: int, d: int) -> float:
    """Theorem 1: ``D^avg(π) ≥ (2/3d)(n^{1−1/d} − n^{−1−1/d})`` for any π."""
    _check(n, d)
    return (2.0 / (3.0 * d)) * (n ** (1.0 - 1.0 / d) - n ** (-1.0 - 1.0 / d))


def davg_lower_bound_exact(universe: "Universe") -> Fraction:
    """Theorem 1 bound as an exact rational (uses ``side = n^{1/d}``).

    ``n^{1−1/d} = side^{d−1}`` and ``n^{−1−1/d} = side^{−d(d+1)/d·…}``;
    concretely ``n^{-1-1/d} = 1 / side^{d+1}``.
    """
    n = universe.n
    _check(n, universe.d)
    side = universe.side
    d = universe.d
    return Fraction(2, 3 * d) * (
        Fraction(side ** (d - 1)) - Fraction(1, side ** (d + 1))
    )


def dmax_lower_bound(n: int, d: int) -> float:
    """Proposition 1: the same bound applies to ``D^max`` (δ^max ≥ δ^avg)."""
    return davg_lower_bound(n, d)


def allpairs_manhattan_lower_bound(n: int, d: int) -> float:
    """Proposition 3 (Manhattan): ``str_{avg,M} ≥ (1/3d)·(n+1)/(n^{1/d}−1)``."""
    _check(n, d)
    root = n ** (1.0 / d)
    if root <= 1.0:
        raise ValueError("bound undefined for a single-cell side")
    return (1.0 / (3.0 * d)) * (n + 1) / (root - 1.0)


def allpairs_manhattan_lower_bound_exact(universe: "Universe") -> Fraction:
    """Proposition 3 bound as an exact rational."""
    n = universe.n
    _check(n, universe.d)
    if universe.side < 2:
        raise ValueError("bound undefined for side < 2")
    return Fraction(n + 1, 3 * universe.d * (universe.side - 1))


def allpairs_euclidean_lower_bound(n: int, d: int) -> float:
    """Proposition 3 (Euclidean): ``str_{avg,E} ≥ (1/3√d)·(n+1)/(n^{1/d}−1)``."""
    _check(n, d)
    root = n ** (1.0 / d)
    if root <= 1.0:
        raise ValueError("bound undefined for a single-cell side")
    return (1.0 / (3.0 * math.sqrt(d))) * (n + 1) / (root - 1.0)
