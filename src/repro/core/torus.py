"""Stretch metrics on the d-dimensional *torus* (periodic boundaries).

HPC stencil codes often use periodic domains; the paper's universe is a
box.  On the torus every cell has exactly ``2d`` neighbors — the
boundary corrections (``h_2`` in Theorem 2's proof, ``U_2`` in Theorem
3's) disappear, but each axis gains ``side^{d−1}`` wraparound pairs
whose curve distance is typically large.

This module computes ``D^avg``/``D^max`` under the torus neighbor
structure, plus exact closed forms for the simple curve:

    ``D^avg_torus(S) = 2(n−1)/(d·side)``
    ``D^max_torus(S) = ((side−2) + 2(side−1))·side^{d−1}/side``

The Theorem 1 bound is stated for the box; since the torus only *adds*
neighbor pairs at distance ≥ the box pairs' (the wrap pairs), the
bench shows the box bound continues to hold for all tested curves.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING

import numpy as np

from repro.core.stretch import axis_pair_curve_distances
from repro.curves.base import SpaceFillingCurve
from repro.grid.neighbors import axis_pair_index_arrays

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.universe import Universe

__all__ = [
    "wrap_pair_curve_distances",
    "average_average_nn_stretch_torus",
    "average_maximum_nn_stretch_torus",
    "lambda_sums_torus",
    "davg_torus_simple_exact",
    "dmax_torus_simple_exact",
]


def _require_torus(curve: SpaceFillingCurve) -> None:
    if curve.universe.side < 3:
        raise ValueError(
            "torus metrics need side >= 3 (side 2 wraps duplicate pairs)"
        )


def wrap_pair_curve_distances(
    curve: SpaceFillingCurve, axis: int
) -> np.ndarray:
    """``∆π`` for the wraparound pairs ``(x_i = side−1) ↔ (x_i = 0)``.

    Shape ``(side,)*(d−1)`` — one wrap pair per grid line along ``axis``.
    """
    universe = curve.universe
    if not 0 <= axis < universe.d:
        raise ValueError(f"axis must be in [0, {universe.d})")
    grid = curve.key_grid()
    first = tuple(
        0 if i == axis else slice(None) for i in range(universe.d)
    )
    last = tuple(
        universe.side - 1 if i == axis else slice(None)
        for i in range(universe.d)
    )
    return np.abs(grid[last] - grid[first])


def lambda_sums_torus(curve: SpaceFillingCurve) -> np.ndarray:
    """Per-axis total NN curve distance including the wrap pairs."""
    _require_torus(curve)
    out = []
    for axis in range(curve.universe.d):
        interior = int(axis_pair_curve_distances(curve, axis).sum())
        wrap = int(wrap_pair_curve_distances(curve, axis).sum())
        out.append(interior + wrap)
    return np.array(out, dtype=np.int64)


def _per_cell_torus(
    curve: SpaceFillingCurve,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell (sum of ∆π over torus neighbors, max ∆π)."""
    universe = curve.universe
    sums = np.zeros(universe.shape, dtype=np.int64)
    best = np.zeros(universe.shape, dtype=np.int64)
    for axis in range(universe.d):
        dist = axis_pair_curve_distances(curve, axis)
        lo, hi = axis_pair_index_arrays(universe, axis)
        sums[lo] += dist
        sums[hi] += dist
        np.maximum(best[lo], dist, out=best[lo])
        np.maximum(best[hi], dist, out=best[hi])
        wrap = wrap_pair_curve_distances(curve, axis)
        first = tuple(
            0 if i == axis else slice(None) for i in range(universe.d)
        )
        last = tuple(
            universe.side - 1 if i == axis else slice(None)
            for i in range(universe.d)
        )
        sums[first] += wrap
        sums[last] += wrap
        # Assignment form: integer indices (d == 1) yield scalars that
        # cannot serve as an `out=` buffer.
        best[first] = np.maximum(best[first], wrap)
        best[last] = np.maximum(best[last], wrap)
    return sums, best


def average_average_nn_stretch_torus(curve: SpaceFillingCurve) -> float:
    """``D^avg`` with periodic neighbors (every ``|N(α)| = 2d``)."""
    _require_torus(curve)
    sums, _ = _per_cell_torus(curve)
    return float(sums.mean() / (2 * curve.universe.d))


def average_maximum_nn_stretch_torus(curve: SpaceFillingCurve) -> float:
    """``D^max`` with periodic neighbors."""
    _require_torus(curve)
    _, best = _per_cell_torus(curve)
    return float(best.mean())


def davg_torus_simple_exact(universe: "Universe") -> Fraction:
    """Closed form: ``D^avg_torus(S) = 2(n−1)/(d·side)``.

    Per axis i, each cycle of ``side`` cells carries ``side−1`` unit
    edges of curve distance ``side^{i−1}`` plus one wrap edge of
    distance ``(side−1)·side^{i−1}`` — summing the geometric series
    telescopes to the formula.
    """
    if universe.side < 3:
        raise ValueError("need side >= 3")
    return Fraction(2 * (universe.n - 1), universe.d * universe.side)


def dmax_torus_simple_exact(universe: "Universe") -> Fraction:
    """Closed form: ``D^max_torus(S) = (3·side − 4)/side · side^{d−1}``.

    A fraction ``2/side`` of cells touch the axis-d wrap (max distance
    ``(side−1)·side^{d−1}``); the rest keep ``side^{d−1}``.
    """
    side = universe.side
    if side < 3:
        raise ValueError("need side >= 3")
    step = side ** (universe.d - 1)
    total = (side - 2) * step + 2 * (side - 1) * step
    return Fraction(total, side)
