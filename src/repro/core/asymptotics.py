"""Closed forms for specific curves: Theorems 2–3, Lemma 5, Props 2 & 4.

Two kinds of formulas live here:

* **Asymptotic leading terms** the paper states with ``~`` (ratio → 1):
  ``D^avg(Z) ~ n^{1−1/d}/d`` (Theorem 2) and the same for the simple
  curve (Theorem 3), plus the Lemma 5 limits
  ``Λ_i(Z)/n^{2−1/d} → 2^{d−i}/(2^d−1)``.

* **Exact finite-n values** extracted from the proofs, computed in exact
  integer/rational arithmetic so benches can assert *equality*, not just
  convergence:

  - ``Λ_i(Z)`` from the ``G_{i,j}`` group decomposition in Lemma 5's
    proof (counts ``2^{k−j}·n^{1−1/d}``, constant distance per group);
  - ``h_1`` of Theorem 2's proof (``(1/d)·Σ_i Λ_i(Z)``);
  - ``D^avg(S)`` via the boundary-pattern sum over the ``2^d`` subsets
    of boundary axes (sharpening Theorem 3's proof to an identity);
  - ``D^max(S) = n^{1−1/d}`` (Proposition 2, exact);
  - Prop 4 upper bounds for the simple curve's all-pairs stretch.
"""

from __future__ import annotations

import math
from fractions import Fraction
from itertools import product
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.universe import Universe

__all__ = [
    "davg_z_limit",
    "davg_simple_limit",
    "lambda_limit_coefficient",
    "zcurve_gij_count",
    "zcurve_gij_distance",
    "lambda_z_exact",
    "z_h1_exact",
    "davg_simple_exact",
    "simple_interior_delta_avg",
    "dmax_simple_exact",
    "allpairs_simple_manhattan_ub",
    "allpairs_simple_euclidean_ub",
]


def davg_z_limit(n: int, d: int) -> float:
    """Theorem 2 leading term: ``D^avg(Z) ~ n^{1−1/d}/d``."""
    if d < 1 or n < 1:
        raise ValueError("need d >= 1 and n >= 1")
    return n ** (1.0 - 1.0 / d) / d


def davg_simple_limit(n: int, d: int) -> float:
    """Theorem 3 leading term — identical to the Z curve's."""
    return davg_z_limit(n, d)


def lambda_limit_coefficient(d: int, i: int) -> Fraction:
    """Lemma 5 limit: ``lim Λ_i(Z)/n^{2−1/d} = 2^{d−i}/(2^d − 1)``.

    ``i`` is the paper's 1-based dimension index.
    """
    if not 1 <= i <= d:
        raise ValueError(f"dimension index i must be in [1, {d}], got {i}")
    return Fraction(2 ** (d - i), 2**d - 1)


def zcurve_gij_count(universe: "Universe", j: int) -> int:
    """``|G_{i,j}| = 2^{k−j} · side^{d−1}`` (independent of i).

    From Lemma 5's proof: the i-th coordinate κ must have exactly
    ``j−1`` trailing ones (``2^{k−j}`` choices), the other ``d−1``
    coordinates are free.
    """
    k = universe.k
    if not 1 <= j <= k:
        raise ValueError(f"group index j must be in [1, {k}], got {j}")
    return 2 ** (k - j) * universe.side ** (universe.d - 1)


def zcurve_gij_distance(universe: "Universe", i: int, j: int) -> int:
    """``∆_Z`` of every pair in ``G_{i,j}``: ``2^{jd−i} − Σ_{ℓ=1}^{j−1} 2^{ℓd−i}``.

    Constant within the group — the κ → κ+1 increment flips coordinate
    bit ``j−1`` up and bits ``0..j−2`` down, whose interleaved positions
    are ``ℓd − i`` for ``ℓ = j, j−1, …, 1``.
    """
    d = universe.d
    k = universe.k
    if not 1 <= i <= d:
        raise ValueError(f"dimension index i must be in [1, {d}], got {i}")
    if not 1 <= j <= k:
        raise ValueError(f"group index j must be in [1, {k}], got {j}")
    gain = 2 ** (j * d - i)
    loss = sum(2 ** (ell * d - i) for ell in range(1, j))
    return gain - loss


def lambda_z_exact(universe: "Universe", i: int) -> int:
    """Exact finite-n ``Λ_i(Z) = Σ_j |G_{i,j}| · ∆_Z(G_{i,j})``.

    This is the quantity Lemma 5 passes to the limit; here it is an exact
    integer, asserted equal to the measured per-axis sum in the tests.
    """
    k = universe.k
    return sum(
        zcurve_gij_count(universe, j) * zcurve_gij_distance(universe, i, j)
        for j in range(1, k + 1)
    )


def z_h1_exact(universe: "Universe") -> Fraction:
    """Theorem 2's ``h_1 = (1/d)·Σ_{i=1}^{d} Λ_i(Z)``, exactly.

    ``D^avg(Z) = (h_1 + h_2)/n`` where ``h_2`` is the boundary correction
    shown to vanish asymptotically (``h_2/n^{2−1/d} → 0``).
    """
    d = universe.d
    total = sum(lambda_z_exact(universe, i) for i in range(1, d + 1))
    return Fraction(total, d)


def davg_simple_exact(universe: "Universe") -> Fraction:
    """Exact ``D^avg(S)`` for the simple curve, any ``side ≥ 2``.

    For the simple curve, an axis-i neighbor pair always has
    ``∆_S = side^{i−1}``, so a cell's stretch depends only on *which*
    axes touch the boundary.  Grouping cells by their boundary pattern
    ``B ⊆ {1..d}`` (2 boundary positions per axis in B, ``side−2``
    interior positions otherwise):

    ``D^avg(S) = (1/n) Σ_B 2^{|B|}(side−2)^{d−|B|} ·
                 (Σ_{i∉B} 2·side^{i−1} + Σ_{i∈B} side^{i−1}) / (2d−|B|)``
    """
    side = universe.side
    d = universe.d
    if side < 2:
        raise ValueError("need side >= 2")
    total = Fraction(0)
    for pattern in product((False, True), repeat=d):
        b = sum(pattern)
        count = (2**b) * (side - 2) ** (d - b)
        if count == 0:
            continue
        numer = sum(
            (1 if on_boundary else 2) * side**axis
            for axis, on_boundary in enumerate(pattern)
        )
        total += Fraction(count * numer, 2 * d - b)
    return total / universe.n


def simple_interior_delta_avg(universe: "Universe") -> Fraction:
    """Theorem 3's interior-cell value: ``δ^avg_S(α) = (n−1)/(d(side−1))``.

    Every interior cell has two neighbors per axis at distance
    ``side^{i−1}``, so ``δ^avg = (1/d)·Σ_{ℓ=0}^{d−1} side^ℓ``.
    """
    side = universe.side
    if side < 3:
        raise ValueError("interior cells require side >= 3")
    return Fraction(universe.n - 1, universe.d * (side - 1))


def dmax_simple_exact(universe: "Universe") -> int:
    """Proposition 2: ``D^max(S) = n^{1−1/d} = side^{d−1}`` exactly.

    Every cell has an axis-d neighbor at curve distance ``side^{d−1}``,
    the maximum possible step, so ``δ^max`` is constant across cells.
    """
    if universe.side < 2:
        raise ValueError("need side >= 2")
    return universe.side ** (universe.d - 1)


def allpairs_simple_manhattan_ub(n: int, d: int) -> float:
    """Proposition 4: ``str_{avg,M}(S) ≤ n^{1−1/d}``."""
    if d < 1 or n < 1:
        raise ValueError("need d >= 1 and n >= 1")
    return n ** (1.0 - 1.0 / d)


def allpairs_simple_euclidean_ub(n: int, d: int) -> float:
    """Proposition 4: ``str_{avg,E}(S) ≤ √2 · n^{1−1/d}``."""
    return math.sqrt(2.0) * allpairs_simple_manhattan_ub(n, d)
