"""Runnable proof machinery for Theorem 1 (Lemmas 1–4).

The proof of Theorem 1 computes ``S_{A'}(π) = Σ_{ordered pairs} ∆π``
two ways: exactly (Lemma 2), and as a double-counted sum over the
nearest-neighbor path decompositions ``p(α, β)`` bounded via Lemma 4.
This module makes each link in that chain a checkable computation:

* :func:`path_triangle_check` — inequality (2): ``∆π(α,β) ≤ Σ_{edges} ∆π``.
* :func:`edge_multiplicity_bruteforce` — how many ordered pairs route
  through each NN edge (compared against the Lemma 4 closed form).
* :func:`theorem1_certificate` — assembles every intermediate quantity
  for a concrete curve, so the bench can print the proof "executed" on
  real data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allpairs import lemma2_sum_exact
from repro.core.lower_bounds import davg_lower_bound
from repro.core.stretch import (
    average_average_nn_stretch,
    lambda_sums,
)
from repro.curves.base import SpaceFillingCurve
from repro.grid.paths import lemma4_bound, nn_decomposition
from repro.grid.universe import Universe

__all__ = [
    "path_triangle_check",
    "edge_multiplicity_bruteforce",
    "Theorem1Certificate",
    "theorem1_certificate",
    "lemma3_sandwich",
]

Cell = tuple[int, ...]
Edge = tuple[Cell, Cell]


def path_triangle_check(
    curve: SpaceFillingCurve, alpha: Cell, beta: Cell
) -> tuple[int, int]:
    """Evaluate both sides of inequality (2) for one ordered pair.

    Returns ``(∆π(α,β), Σ_{(α',β')∈p(α,β)} ∆π(α',β'))``; Lemma 1
    guarantees the first is ≤ the second.
    """
    lhs = int(
        curve.curve_distance(
            np.asarray(alpha, dtype=np.int64), np.asarray(beta, dtype=np.int64)
        )
    )
    rhs = 0
    for lo, hi in nn_decomposition(alpha, beta):
        rhs += int(
            curve.curve_distance(
                np.asarray(lo, dtype=np.int64), np.asarray(hi, dtype=np.int64)
            )
        )
    return lhs, rhs


def edge_multiplicity_bruteforce(universe: Universe) -> dict[Edge, int]:
    """Count, for every NN edge, the ordered pairs whose ``p(α,β)`` uses it.

    Exhaustive ``O(n² · diameter)`` enumeration — the oracle against
    which the Lemma 4 closed form (:func:`repro.grid.paths
    .edge_multiplicity`) is verified on small grids.
    """
    counts: dict[Edge, int] = {}
    cells = [tuple(int(v) for v in row) for row in universe.all_coords()]
    for alpha in cells:
        for beta in cells:
            if alpha == beta:
                continue
            for edge in nn_decomposition(alpha, beta):
                counts[edge] = counts.get(edge, 0) + 1
    return counts


def lemma3_sandwich(curve: SpaceFillingCurve) -> tuple[float, float, float]:
    """Lemma 3: ``(1/nd)·Σ_{NN}∆π ≤ D^avg(π) ≤ (2/nd)·Σ_{NN}∆π``.

    Returns ``(lower, D^avg, upper)``.
    """
    universe = curve.universe
    nn_total = float(lambda_sums(curve).sum())
    davg = average_average_nn_stretch(curve)
    lower = nn_total / (universe.n * universe.d)
    upper = 2.0 * nn_total / (universe.n * universe.d)
    return lower, davg, upper


@dataclass(frozen=True)
class Theorem1Certificate:
    """Every intermediate quantity in Theorem 1's proof, for one curve.

    The proof chain (inequality 4 combined with Lemmas 2–3)::

        (n³−n)/3 = S_{A'}(π) ≤ (n^{(d+1)/d}/2) · Σ_{NN} 2·∆π
                  and  Σ_{NN} ∆π ≤ n·d·D^avg(π)
        ⟹ D^avg(π) ≥ (2/3d)(n^{1−1/d} − n^{−1−1/d})
    """

    curve_name: str
    n: int
    d: int
    sa_prime: int  # Lemma 2 value (exact)
    nn_sum: int  # Σ_{unordered NN} ∆π (measured)
    lemma4_edge_bound: float  # n^{(d+1)/d} / 2
    inequality4_rhs: float  # bound on S_{A'} via the decomposition
    davg: float
    theorem1_bound: float

    @property
    def inequality4_holds(self) -> bool:
        """``S_{A'} ≤ (n^{(d+1)/d}/2)·Σ_{ordered NN} ∆π`` (inequality 4)."""
        return self.sa_prime <= self.inequality4_rhs + 1e-9

    @property
    def theorem1_holds(self) -> bool:
        """The final conclusion: ``D^avg ≥ (2/3d)(n^{1−1/d} − n^{−1−1/d})``."""
        return self.davg >= self.theorem1_bound - 1e-12


def theorem1_certificate(curve: SpaceFillingCurve) -> Theorem1Certificate:
    """Execute Theorem 1's proof chain numerically on ``curve``."""
    universe = curve.universe
    n, d = universe.n, universe.d
    nn_sum = int(lambda_sums(curve).sum())
    edge_bound = lemma4_bound(universe)
    # Inequality 4's RHS uses the *ordered* NN sum, i.e. 2·nn_sum
    # (the paper's NN_d is unordered but each ∆π is symmetric; the sum
    # over (ζ,η) ∈ NN_d in inequality 4 is the unordered sum, and the
    # multiplicity bound already accounts for both pair orientations).
    inequality4_rhs = edge_bound * float(nn_sum)
    return Theorem1Certificate(
        curve_name=curve.name,
        n=n,
        d=d,
        sa_prime=lemma2_sum_exact(n),
        nn_sum=nn_sum,
        lemma4_edge_bound=edge_bound,
        inequality4_rhs=inequality4_rhs,
        davg=average_average_nn_stretch(curve),
        theorem1_bound=davg_lower_bound(n, d),
    )
