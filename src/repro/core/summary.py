"""Survey reports: all stretch metrics for a curve in one structure.

:class:`StretchReport` is the library's canonical "row" — benches,
EXPERIMENTS.md tables and the CLI all print it.  Reports are computed
through the shared :class:`repro.engine.MetricContext`, so the metric
set shares one cached set of intermediates per curve, and
:func:`survey` is a thin wrapper over the declarative
:class:`repro.engine.Sweep` runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.curves.base import SpaceFillingCurve
from repro.grid.universe import Universe

__all__ = ["StretchReport", "stretch_report", "survey"]

#: Universes at most this many cells get exact all-pairs values.
_EXACT_ALLPAIRS_LIMIT = 4096


@dataclass(frozen=True)
class StretchReport:
    """All headline metrics of one curve on one universe."""

    curve_name: str
    d: int
    side: int
    n: int
    davg: float
    dmax: float
    lower_bound: float
    davg_ratio: float
    lambdas: tuple[int, ...] = field(default=())
    allpairs_manhattan: float | None = None
    allpairs_euclidean: float | None = None
    allpairs_exact: bool = True

    def as_row(self) -> dict[str, object]:
        """Flat dict for table formatting."""
        return {
            "curve": self.curve_name,
            "d": self.d,
            "side": self.side,
            "n": self.n,
            "Davg": self.davg,
            "Dmax": self.dmax,
            "LB(Thm1)": self.lower_bound,
            "Davg/LB": self.davg_ratio,
            "str_M": self.allpairs_manhattan,
            "str_E": self.allpairs_euclidean,
        }


def stretch_report(
    curve: SpaceFillingCurve,
    include_allpairs: bool = False,
    allpairs_samples: int = 50_000,
    seed: int = 0,
    context: Optional["MetricContext"] = None,
) -> StretchReport:
    """Compute a full :class:`StretchReport` for ``curve``.

    All NN metrics are exact.  All-pairs metrics (optional) are exact for
    universes up to ``4096`` cells and sampled (with the given budget)
    beyond that.  Pass an existing :class:`repro.engine.MetricContext`
    as ``context`` to reuse its cached intermediates; by default the
    curve's shared context is used.
    """
    from repro.engine.context import get_context

    ctx = context if context is not None else get_context(curve)
    universe = curve.universe
    davg = ctx.davg()
    dmax = ctx.dmax()
    bound = ctx.lower_bound()
    ap_m = ap_e = None
    exact = True
    if include_allpairs:
        if universe.n <= _EXACT_ALLPAIRS_LIMIT:
            ap_m = ctx.allpairs_exact("manhattan")
            ap_e = ctx.allpairs_exact("euclidean")
        else:
            exact = False
            ap_m = ctx.allpairs_sampled(
                allpairs_samples, "manhattan", seed
            ).mean
            ap_e = ctx.allpairs_sampled(
                allpairs_samples, "euclidean", seed
            ).mean
    return StretchReport(
        curve_name=curve.name,
        d=universe.d,
        side=universe.side,
        n=universe.n,
        davg=davg,
        dmax=dmax,
        lower_bound=bound,
        davg_ratio=ctx.davg_ratio(),
        lambdas=tuple(int(v) for v in ctx.lambda_sums()),
        allpairs_manhattan=ap_m,
        allpairs_euclidean=ap_e,
        allpairs_exact=exact,
    )


def survey(
    universe: Universe,
    names: Sequence[str] | None = None,
    include_allpairs: bool = False,
    curves: Mapping[str, SpaceFillingCurve] | None = None,
) -> list[StretchReport]:
    """Reports for every applicable registered curve on ``universe``.

    ``curves`` overrides the registry lookup (useful for custom zoos);
    otherwise this delegates to a one-universe
    :class:`repro.engine.Sweep`.
    """
    if curves is not None:
        return [
            stretch_report(curve, include_allpairs=include_allpairs)
            for curve in curves.values()
        ]
    # Late import: repro.engine.sweep imports this module.
    from repro.engine.sweep import Sweep

    result = Sweep(
        universes=[universe],
        curves=list(names) if names is not None else None,
        metrics=(),
        reports=True,
        include_allpairs=include_allpairs,
    ).run()
    return result.reports
