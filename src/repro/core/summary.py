"""Survey reports: all stretch metrics for a curve in one structure.

:class:`StretchReport` is the library's canonical "row" — benches,
EXPERIMENTS.md tables and the CLI all print it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.allpairs import (
    average_allpairs_stretch_exact,
    average_allpairs_stretch_sampled,
)
from repro.core.lower_bounds import davg_lower_bound
from repro.core.stretch import (
    average_average_nn_stretch,
    average_maximum_nn_stretch,
    lambda_sums,
)
from repro.curves.base import SpaceFillingCurve
from repro.curves.registry import curves_for_universe
from repro.grid.universe import Universe

__all__ = ["StretchReport", "stretch_report", "survey"]

#: Universes at most this many cells get exact all-pairs values.
_EXACT_ALLPAIRS_LIMIT = 4096


@dataclass(frozen=True)
class StretchReport:
    """All headline metrics of one curve on one universe."""

    curve_name: str
    d: int
    side: int
    n: int
    davg: float
    dmax: float
    lower_bound: float
    davg_ratio: float
    lambdas: tuple[int, ...] = field(default=())
    allpairs_manhattan: float | None = None
    allpairs_euclidean: float | None = None
    allpairs_exact: bool = True

    def as_row(self) -> dict[str, object]:
        """Flat dict for table formatting."""
        return {
            "curve": self.curve_name,
            "d": self.d,
            "side": self.side,
            "n": self.n,
            "Davg": self.davg,
            "Dmax": self.dmax,
            "LB(Thm1)": self.lower_bound,
            "Davg/LB": self.davg_ratio,
            "str_M": self.allpairs_manhattan,
            "str_E": self.allpairs_euclidean,
        }


def stretch_report(
    curve: SpaceFillingCurve,
    include_allpairs: bool = False,
    allpairs_samples: int = 50_000,
    seed: int = 0,
) -> StretchReport:
    """Compute a full :class:`StretchReport` for ``curve``.

    All NN metrics are exact.  All-pairs metrics (optional) are exact for
    universes up to ``4096`` cells and sampled (with the given budget)
    beyond that.
    """
    universe = curve.universe
    davg = average_average_nn_stretch(curve)
    dmax = average_maximum_nn_stretch(curve)
    bound = davg_lower_bound(universe.n, universe.d)
    ap_m = ap_e = None
    exact = True
    if include_allpairs:
        if universe.n <= _EXACT_ALLPAIRS_LIMIT:
            ap_m = average_allpairs_stretch_exact(curve, "manhattan")
            ap_e = average_allpairs_stretch_exact(curve, "euclidean")
        else:
            exact = False
            ap_m = average_allpairs_stretch_sampled(
                curve, allpairs_samples, "manhattan", seed
            ).mean
            ap_e = average_allpairs_stretch_sampled(
                curve, allpairs_samples, "euclidean", seed
            ).mean
    return StretchReport(
        curve_name=curve.name,
        d=universe.d,
        side=universe.side,
        n=universe.n,
        davg=davg,
        dmax=dmax,
        lower_bound=bound,
        davg_ratio=davg / bound,
        lambdas=tuple(int(v) for v in lambda_sums(curve)),
        allpairs_manhattan=ap_m,
        allpairs_euclidean=ap_e,
        allpairs_exact=exact,
    )


def survey(
    universe: Universe,
    names: Sequence[str] | None = None,
    include_allpairs: bool = False,
    curves: Mapping[str, SpaceFillingCurve] | None = None,
) -> list[StretchReport]:
    """Reports for every applicable registered curve on ``universe``.

    ``curves`` overrides the registry lookup (useful for custom zoos).
    """
    pool: Iterable[SpaceFillingCurve]
    if curves is not None:
        pool = curves.values()
    else:
        pool = curves_for_universe(universe, names).values()
    return [
        stretch_report(curve, include_allpairs=include_allpairs)
        for curve in pool
    ]
