"""Optimality gaps: how far is a curve from Theorem 1's lower bound?

The paper's headline (Section I observations):

1. the Z curve is within a factor **1.5** of optimal for ``D^avg``,
   *irrespective of d* — because
   ``(n^{1−1/d}/d) / ((2/3d)·n^{1−1/d}) = 3/2``;
2. the simple curve matches it;
3. any other SFC can improve on them by at most a constant factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.lower_bounds import davg_lower_bound
from repro.core.stretch import average_average_nn_stretch
from repro.curves.base import SpaceFillingCurve
from repro.curves.registry import curves_for_universe
from repro.grid.universe import Universe

__all__ = ["GapReport", "optimality_ratio", "headline_ratio", "gap_survey"]


def headline_ratio() -> float:
    """The asymptotic Z-vs-bound ratio: exactly 3/2, for every d."""
    return 1.5


def optimality_ratio(curve: SpaceFillingCurve) -> float:
    """``D^avg(π) / theorem1_bound`` — 1.0 would mean a tight optimum."""
    universe = curve.universe
    return average_average_nn_stretch(curve) / davg_lower_bound(
        universe.n, universe.d
    )


@dataclass(frozen=True)
class GapReport:
    """One curve's distance from the universal lower bound."""

    curve_name: str
    d: int
    side: int
    n: int
    davg: float
    lower_bound: float
    ratio: float

    @classmethod
    def from_curve(cls, curve: SpaceFillingCurve) -> "GapReport":
        universe = curve.universe
        davg = average_average_nn_stretch(curve)
        bound = davg_lower_bound(universe.n, universe.d)
        return cls(
            curve_name=curve.name,
            d=universe.d,
            side=universe.side,
            n=universe.n,
            davg=davg,
            lower_bound=bound,
            ratio=davg / bound,
        )


def gap_survey(
    universes: Iterable[Universe],
    names: Sequence[str] | None = None,
) -> list[GapReport]:
    """Gap reports for every (universe, applicable curve) combination."""
    reports: list[GapReport] = []
    for universe in universes:
        for curve in curves_for_universe(universe, names).values():
            reports.append(GapReport.from_curve(curve))
    return reports
