"""Exact finite-n ``D^avg(Z)`` — sharpening Theorem 2 to an identity.

Theorem 2 gives ``D^avg(Z) ~ n^{1−1/d}/d`` and bounds the boundary
correction ``h_2`` only asymptotically.  But the proof's ingredients
determine the exact value:

* every NN pair along dimension i with lower coordinate κ has the
  group distance ``∆_Z(i, j(κ))`` with ``j(κ) = trailing_ones(κ) + 1``
  (constant within a group — Lemma 5's key step);
* the Definition-2 weight ``1/|N(α)| + 1/|N(β)|`` depends only on how
  many of the *other* ``d−1`` coordinates touch the boundary (a
  binomial pattern with ``2`` boundary values per axis) and on whether
  κ itself is 0 (α on the face) or ``side−2`` (β on the face).

Summing these with exact rational arithmetic yields ``D^avg(Z)`` as a
:class:`fractions.Fraction` in ``O(d·k·d)`` work — no grid needed.
The tests assert bit-exact agreement with the measured value.
"""

from __future__ import annotations

from fractions import Fraction
from math import comb
from typing import TYPE_CHECKING

from repro.core.asymptotics import zcurve_gij_distance

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.universe import Universe

__all__ = ["davg_z_exact", "z_h2_exact"]


def _boundary_pattern_weights(d: int, side: int) -> list[int]:
    """``weight[b]`` = # of ways the d−1 free coordinates have exactly
    ``b`` boundary axes: ``C(d−1, b)·2^b·(side−2)^{d−1−b}``."""
    return [
        comb(d - 1, b) * (2**b) * (side - 2) ** (d - 1 - b)
        for b in range(d)
    ]


def davg_z_exact(universe: "Universe") -> Fraction:
    """Exact ``D^avg(Z)`` for any power-of-two universe.

    ``D^avg = (1/n)·Σ_{i,j} ∆_Z(i,j)·[ n_gen(j)·W_gen + n_spec(j)·W_spec ]``

    where per dimension-i group j there are ``2^{k−j}`` κ values, of
    which κ = 0 and κ = side−2 (both in group 1 for k ≥ 2) put one
    endpoint on a face, and the weights ``W`` aggregate
    ``1/|N(α)| + 1/|N(β)|`` over the boundary patterns of the free
    coordinates.
    """
    d = universe.d
    k = universe.k  # raises for non powers of two
    side = universe.side
    if side < 2:
        raise ValueError("need side >= 2")
    weights = _boundary_pattern_weights(d, side)

    # Aggregated Definition-2 weights over free-coordinate patterns:
    w_generic = sum(
        Fraction(2 * w, 2 * d - b) for b, w in enumerate(weights) if w
    )
    w_one_face = sum(
        Fraction(w, 2 * d - b - 1) + Fraction(w, 2 * d - b)
        for b, w in enumerate(weights)
        if w
    )
    w_two_faces = sum(
        Fraction(2 * w, 2 * d - b - 1) for b, w in enumerate(weights) if w
    )

    total = Fraction(0)
    for i in range(1, d + 1):
        for j in range(1, k + 1):
            dist = zcurve_gij_distance(universe, i, j)
            kappa_count = 2 ** (k - j)
            if k == 1:
                # side == 2: the single κ = 0 has both endpoints on
                # faces of axis i.
                contribution = w_two_faces
            elif j == 1:
                # κ = 0 and κ = side−2 are the two one-face values.
                contribution = (kappa_count - 2) * w_generic + 2 * w_one_face
            else:
                contribution = kappa_count * w_generic
            total += dist * contribution
    return total / universe.n


def z_h2_exact(universe: "Universe") -> Fraction:
    """Exact boundary correction ``h_2 = n·D^avg(Z) − h_1`` of Theorem 2.

    Theorem 2 proves ``h_2/n^{2−1/d} → 0``; here it is computed
    exactly, so the vanishing rate itself becomes measurable.
    """
    from repro.core.asymptotics import z_h1_exact

    return universe.n * davg_z_exact(universe) - z_h1_exact(universe)
