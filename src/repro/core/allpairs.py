"""All-pairs stretch (Section V-B) and the Lemma 2 sum identity.

The average all-pairs stretch under grid metric ``m`` is

    ``str_{avg,m}(π) = (2 / n(n−1)) · Σ_{unordered pairs} ∆π(α,β)/m(α,β)``

Computed two ways:

* **exactly**, by chunked ``O(n²)`` evaluation (feasible to n ≈ 10⁴ cells
  comfortably), and
* **estimated**, by uniform sampling of ordered pairs with a CLT-based
  confidence interval, for large universes.

Lemma 2 — ``Σ_{ordered pairs} ∆π(α,β) = (n−1)n(n+1)/3`` for **every**
bijection π — is provided both as a closed form and as an ``O(n log n)``
measurement from the actual keys, so the identity can be checked per
curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.grid.metrics import pairwise_euclidean, pairwise_manhattan

__all__ = [
    "lemma2_sum_exact",
    "lemma2_sum_measured",
    "average_allpairs_stretch_exact",
    "average_allpairs_stretch_sampled",
    "AllPairsEstimate",
]

_METRICS = {"manhattan": pairwise_manhattan, "euclidean": pairwise_euclidean}


def lemma2_sum_exact(n: int) -> int:
    """Lemma 2 closed form: ``S_{A'}(π) = (n−1)n(n+1)/3`` (any bijection)."""
    if n < 1:
        raise ValueError("need n >= 1")
    return (n - 1) * n * (n + 1) // 3


def lemma2_sum_measured(curve: SpaceFillingCurve) -> int:
    """Measure ``Σ_{ordered pairs} |π(α) − π(β)|`` from the actual keys.

    For sorted values ``v_0 ≤ … ≤ v_{n−1}``,
    ``Σ_{i<j} (v_j − v_i) = Σ_j (2j − n + 1)·v_j``; ordered pairs double
    it.  ``O(n log n)`` and independent of any permutation structure, so
    it genuinely *measures* the identity rather than assuming keys are
    ``0..n−1``.
    """
    keys = np.sort(curve.key_grid().reshape(-1)).astype(object)
    n = keys.size
    coeff = 2 * np.arange(n, dtype=object) - (n - 1)
    return int(2 * (coeff * keys).sum())


def _ratio_chunk_sum(
    pairwise, cells: np.ndarray, keys: np.ndarray, start: int, stop: int
) -> float:
    """``Σ ∆π/m`` over the ordered pairs with first index in [start, stop).

    The shared per-chunk core of the serial and threaded exact paths;
    keeping it single-sourced is what makes their results bit-for-bit
    identical (the merge order is the only other degree of freedom, and
    both merge in chunk order).
    """
    grid_dist = pairwise(cells[start:stop], cells).astype(np.float64)
    key_dist = np.abs(keys[start:stop, None] - keys[None, :])
    ratio = np.divide(
        key_dist,
        grid_dist,
        out=np.zeros_like(key_dist),
        where=grid_dist > 0,
    )
    return float(ratio.sum())


def average_allpairs_stretch_exact(
    curve: SpaceFillingCurve,
    metric: str = "manhattan",
    chunk: int = 1024,
    scheduler=None,
) -> float:
    """Exact ``str_{avg,m}(π)`` by chunked pairwise evaluation.

    Parameters
    ----------
    curve:
        Any SFC.
    metric:
        ``"manhattan"`` (the paper's ``∆``) or ``"euclidean"`` (``∆_E``).
    chunk:
        Row-chunk size bounding transient memory at ``O(chunk · n · d)``.
    scheduler:
        Optional :class:`repro.engine.threads.BlockScheduler`; when
        given, row chunks are evaluated on its worker threads.  Partial
        sums are merged in submission order — the serial loop's order —
        so the result is bit-for-bit the serial one.
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {sorted(_METRICS)}")
    pairwise = _METRICS[metric]
    universe = curve.universe
    n = universe.n
    if n < 2:
        raise ValueError("all-pairs stretch needs n >= 2")
    cells = universe.all_coords()
    keys = curve.index(cells).astype(np.float64)
    spans = [
        (start, min(start + chunk, n)) for start in range(0, n, chunk)
    ]
    total = 0.0
    if scheduler is not None:
        tasks = [
            (lambda lo=lo, hi=hi: _ratio_chunk_sum(pairwise, cells, keys, lo, hi))
            for lo, hi in spans
        ]
        for part in scheduler.imap(tasks):
            total += part
    else:
        for lo, hi in spans:
            total += _ratio_chunk_sum(pairwise, cells, keys, lo, hi)
    # `total` sums over ordered pairs (diagonal contributes 0); the
    # unordered-average definition equals total / (n(n-1)).
    return total / (n * (n - 1))


@dataclass(frozen=True)
class AllPairsEstimate:
    """Sampled all-pairs stretch with a CLT confidence interval."""

    mean: float
    stderr: float
    n_pairs: int
    metric: str

    @property
    def ci95(self) -> tuple[float, float]:
        """Approximate 95% confidence interval for the true average."""
        half = 1.96 * self.stderr
        return (self.mean - half, self.mean + half)

    def compatible_with(self, value: float, z: float = 4.0) -> bool:
        """True if ``value`` lies within ``z`` standard errors of the mean."""
        if self.stderr == 0.0:
            return abs(value - self.mean) < 1e-12
        return abs(value - self.mean) <= z * self.stderr


def _sampled_ratios(
    curve: SpaceFillingCurve,
    first: np.ndarray,
    second: np.ndarray,
    metric: str,
) -> np.ndarray:
    """Stretch ratios of the ordered pairs ``(first[i], second[i])``.

    Every operation is elementwise per pair, so evaluating a split of
    the index arrays block by block and concatenating yields exactly
    the full-array result — the property the threaded sampled path
    relies on.
    """
    from repro.grid.coords import rank_to_coords

    universe = curve.universe
    a = rank_to_coords(first, universe)
    b = rank_to_coords(second, universe)
    if metric == "manhattan":
        grid_dist = np.abs(a - b).sum(axis=1).astype(np.float64)
    else:
        diff = (a - b).astype(np.float64)
        grid_dist = np.sqrt((diff * diff).sum(axis=1))
    key_dist = np.abs(curve.index(a) - curve.index(b)).astype(np.float64)
    return key_dist / grid_dist


def average_allpairs_stretch_sampled(
    curve: SpaceFillingCurve,
    n_pairs: int = 100_000,
    metric: str = "manhattan",
    seed: int = 0,
    scheduler=None,
) -> AllPairsEstimate:
    """Unbiased estimate of ``str_{avg,m}(π)`` from uniform random pairs.

    Pairs are drawn uniformly from ordered pairs with ``α ≠ β``; the
    ordered-pair average equals the unordered-pair average, so the
    estimator is unbiased for the paper's definition.

    With a ``scheduler`` the (already drawn) pair arrays are split into
    blocks evaluated on worker threads; the per-pair ratios are
    elementwise, so the reassembled array — and hence the mean and
    standard error — is bit-for-bit the serial result.
    """
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {sorted(_METRICS)}")
    if n_pairs < 2:
        raise ValueError("need n_pairs >= 2 for a standard error")
    universe = curve.universe
    n = universe.n
    if n < 2:
        raise ValueError("all-pairs stretch needs n >= 2")
    rng = np.random.default_rng(seed)
    first = rng.integers(0, n, size=n_pairs, dtype=np.int64)
    # Uniform over β ≠ α via a shifted draw modulo n.
    second = (first + rng.integers(1, n, size=n_pairs, dtype=np.int64)) % n
    if scheduler is not None and scheduler.threads > 1:
        # One single-element probe warms the curve's lazy evaluation
        # caches before the fan-out (see threads._warm_curve_caches).
        curve.index(np.zeros((1, universe.d), dtype=np.int64))
        step = -(-n_pairs // (scheduler.threads * 4))
        spans = [
            (lo, min(lo + step, n_pairs))
            for lo in range(0, n_pairs, step)
        ]
        blocks = scheduler.map(
            [
                (
                    lambda lo=lo, hi=hi: _sampled_ratios(
                        curve, first[lo:hi], second[lo:hi], metric
                    )
                )
                for lo, hi in spans
            ]
        )
        ratios = np.concatenate(blocks)
    else:
        ratios = _sampled_ratios(curve, first, second, metric)
    mean = float(ratios.mean())
    stderr = float(ratios.std(ddof=1) / np.sqrt(n_pairs))
    return AllPairsEstimate(
        mean=mean, stderr=stderr, n_pairs=n_pairs, metric=metric
    )
