"""Searching for the *optimal* SFC: how tight is Theorem 1 really?

Section VI's first open question asks to close the gap between the
lower bound `(2/3d)·n^{1−1/d}` and the best known upper bound
`(1/d)·n^{1−1/d}` (Z / simple).  This module attacks the question
empirically:

* :func:`exhaustive_optimum` enumerates **all** `n!` bijections on tiny
  universes and returns the true optimal `D^avg` — ground truth for the
  gap at small n.
* :func:`local_search` runs seeded swap-based hill climbing from any
  starting bijection on larger universes — an adversarial attempt to
  beat the bound (it never succeeds, and how close it gets measures the
  bound's empirical tightness).

Both work in "rank space": a bijection is an int64 vector ``keys`` with
``keys[r]`` the key of the cell of simple-curve rank ``r``, and
``D^avg`` is evaluated for whole batches of bijections at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice, permutations

import numpy as np

from repro.grid.neighbors import neighbor_count_grid
from repro.grid.universe import Universe

__all__ = [
    "rank_space_pairs",
    "davg_of_keys",
    "delta_fold",
    "population_stretch",
    "select_curve",
    "exhaustive_optimum",
    "local_search",
    "Optimum",
    "PopulationStretch",
    "SearchResult",
]

#: Enumerating n! bijections is feasible only for tiny n.
_EXHAUSTIVE_LIMIT = 9


def rank_space_pairs(
    universe: Universe,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """NN pair structure in rank space: ``(i_ranks, j_ranks, pair_weights)``.

    ``pair_weights[p] = (1/|N(α_i)| + 1/|N(α_j)|) / n`` so that
    ``D^avg = Σ_p pair_weights[p] · |keys[i_p] − keys[j_p]|`` — the
    Lemma 3 expansion of Definition 2.
    """
    if universe.side < 2:
        raise ValueError("need side >= 2")
    counts = neighbor_count_grid(universe).astype(np.float64)
    inv = 1.0 / counts
    rank_grid = np.arange(universe.n, dtype=np.int64).reshape(
        universe.shape, order="F"
    )
    i_parts, j_parts, w_parts = [], [], []
    from repro.grid.neighbors import axis_pair_index_arrays

    for axis in range(universe.d):
        lo, hi = axis_pair_index_arrays(universe, axis)
        i_parts.append(rank_grid[lo].reshape(-1))
        j_parts.append(rank_grid[hi].reshape(-1))
        w_parts.append((inv[lo] + inv[hi]).reshape(-1) / universe.n)
    return (
        np.concatenate(i_parts),
        np.concatenate(j_parts),
        np.concatenate(w_parts),
    )


def davg_of_keys(
    keys: np.ndarray,
    pairs: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> np.ndarray:
    """Vectorized ``D^avg`` for a batch of bijections ``(..., n)``."""
    i_ranks, j_ranks, weights = pairs
    arr = np.asarray(keys, dtype=np.int64)
    diffs = np.abs(arr[..., i_ranks] - arr[..., j_ranks])
    return (diffs * weights).sum(axis=-1)


def delta_fold(a: np.ndarray, b: np.ndarray, kernels=None) -> int:
    """``Σ |a_i − b_i|`` over paired int64 key arrays, as a Python int.

    The integer fold behind every population-stretch evaluation.  With
    ``kernels`` (a loaded :class:`repro.engine.native.NativeKernels`)
    the sum folds in one C pass; the NumPy path produces the identical
    integer (int64 addition is order-free), so backends stay
    bit-for-bit interchangeable.
    """
    if a.size == 0:
        return 0
    if kernels is not None and hasattr(kernels, "delta_fold"):
        return kernels.delta_fold(
            np.ascontiguousarray(a, dtype=np.int64),
            np.ascontiguousarray(b, dtype=np.int64),
        )
    return int(np.abs(a - b).sum())


@dataclass(frozen=True)
class PopulationStretch:
    """From-scratch stretch aggregates of one point population.

    ``davg = stretch_sum / edge_count`` is the mean ``∆π`` over the
    *occupied* NN cell pairs — the population analogue of
    ``nn_distance_values().mean()`` (and exactly equal to it when every
    cell is occupied).  Both integer fields are Python ints so
    incremental maintainers can assert ``==`` against them.
    """

    stretch_sum: int
    edge_count: int

    @property
    def davg(self) -> float:
        if not self.edge_count:
            return 0.0
        return self.stretch_sum / self.edge_count


def population_stretch(
    curve,
    positions: np.ndarray,
    backend=None,
    kernels=None,
) -> PopulationStretch:
    """Stretch aggregates over the cells occupied by ``positions``.

    Vectorized and from scratch: one ``keys_of`` batch encode, one
    ``unique`` to collapse multiplicity to occupied cells, one sorted
    membership probe per axis to enumerate occupied NN edges (each
    unordered edge once, via its +1 endpoint).  ``O(m·d + m log m)``
    for m points — the recompute cost that
    :class:`repro.engine.dynamic.DynamicUniverse` beats with O(k·d)
    incremental deltas, and the reference those deltas are verified
    against bit-for-bit.
    """
    universe = curve.universe
    pos = np.asarray(positions, dtype=np.int64)
    if pos.ndim != 2 or pos.shape[1] != universe.d:
        raise ValueError("positions must be a (m, d) array")
    if len(pos) == 0:
        return PopulationStretch(stretch_sum=0, edge_count=0)
    if backend is None:
        keys = curve.keys_of(pos)
    else:
        keys = curve.keys_of(pos, backend=backend)
    strides = np.array(
        [universe.side**axis for axis in range(universe.d)], dtype=np.int64
    )
    ranks = pos @ strides
    cell_ranks, first = np.unique(ranks, return_index=True)
    cell_keys = keys[first]
    cell_pos = pos[first]
    stretch_sum = 0
    edge_count = 0
    for axis in range(universe.d):
        has_next = cell_pos[:, axis] + 1 < universe.side
        next_ranks = cell_ranks[has_next] + int(strides[axis])
        idx = np.searchsorted(cell_ranks, next_ranks)
        idx = np.minimum(idx, len(cell_ranks) - 1)
        found = cell_ranks[idx] == next_ranks
        a = cell_keys[has_next][found]
        b = cell_keys[idx[found]]
        edge_count += int(found.sum())
        stretch_sum += delta_fold(a, b, kernels=kernels)
    return PopulationStretch(stretch_sum=stretch_sum, edge_count=edge_count)


def select_curve(
    candidates,
    positions: np.ndarray,
    backend=None,
) -> tuple:
    """``(best_index, davgs)`` over candidate curves for one population.

    ``candidates`` is a sequence of curves (or objects with ``.curve``
    /``.backend``/``.kernels``, i.e. metric contexts — the pooled
    re-selection path hands contexts in so cached grids are reused).
    Ties break toward the earliest candidate, so the selection is
    deterministic.
    """
    candidates = list(candidates)
    if not candidates:
        raise ValueError("select_curve needs at least one candidate")
    davgs = []
    for cand in candidates:
        curve = getattr(cand, "curve", cand)
        cand_backend = getattr(cand, "backend", backend)
        kernels = getattr(cand, "kernels", None)
        davgs.append(
            population_stretch(
                curve, positions, backend=cand_backend, kernels=kernels
            ).davg
        )
    best = min(range(len(davgs)), key=lambda i: davgs[i])
    return best, davgs


@dataclass(frozen=True)
class Optimum:
    """Result of the exhaustive search."""

    davg: float
    keys: tuple[int, ...]  # one optimal bijection, in rank order
    n_evaluated: int


def exhaustive_optimum(universe: Universe, chunk: int = 40320) -> Optimum:
    """True optimal ``D^avg`` over **all** bijections (tiny n only).

    Complexity ``O(n! · |NN_d|)``; refuses universes with more than
    9 cells.
    """
    n = universe.n
    if n > _EXHAUSTIVE_LIMIT:
        raise ValueError(
            f"exhaustive search limited to n <= {_EXHAUSTIVE_LIMIT}, "
            f"got n = {n}"
        )
    pairs = rank_space_pairs(universe)
    best_val = np.inf
    best_keys: tuple[int, ...] = tuple(range(n))
    evaluated = 0
    perm_iter = permutations(range(n))
    while True:
        block = list(islice(perm_iter, chunk))
        if not block:
            break
        arr = np.asarray(block, dtype=np.int64)
        values = davg_of_keys(arr, pairs)
        idx = int(values.argmin())
        if values[idx] < best_val:
            best_val = float(values[idx])
            best_keys = tuple(int(v) for v in arr[idx])
        evaluated += arr.shape[0]
    return Optimum(davg=best_val, keys=best_keys, n_evaluated=evaluated)


@dataclass(frozen=True)
class SearchResult:
    """Result of the local-search optimizer."""

    davg: float
    start_davg: float
    keys: np.ndarray
    iterations: int
    improvements: int

    @property
    def improved(self) -> bool:
        return self.davg < self.start_davg


def local_search(
    universe: Universe,
    start_keys: np.ndarray | None = None,
    iterations: int = 20_000,
    seed: int = 0,
    batch: int = 64,
) -> SearchResult:
    """Swap-based hill climbing on ``D^avg`` (adversarial bound probe).

    Each step proposes ``batch`` random key swaps, applies the best one
    if it improves.  Deterministic for a fixed seed.  Starting point
    defaults to the simple curve (identity keys).
    """
    if iterations < 1:
        raise ValueError("need iterations >= 1")
    n = universe.n
    pairs = rank_space_pairs(universe)
    i_ranks, j_ranks, weights = pairs
    keys = (
        np.arange(n, dtype=np.int64)
        if start_keys is None
        else np.asarray(start_keys, dtype=np.int64).copy()
    )
    if keys.shape != (n,) or sorted(keys.tolist()) != list(range(n)):
        raise ValueError("start_keys must be a permutation of 0..n-1")
    rng = np.random.default_rng(seed)
    current = float(davg_of_keys(keys, pairs))
    start = current
    improvements = 0
    steps = 0
    while steps < iterations:
        take = min(batch, iterations - steps)
        steps += take
        a = rng.integers(0, n, size=take)
        b = rng.integers(0, n, size=take)
        trial = np.broadcast_to(keys, (take, n)).copy()
        rows = np.arange(take)
        trial[rows, a], trial[rows, b] = keys[b], keys[a]
        values = davg_of_keys(trial, pairs)
        idx = int(values.argmin())
        if values[idx] < current:
            keys = trial[idx].copy()
            current = float(values[idx])
            improvements += 1
    return SearchResult(
        davg=current,
        start_davg=start,
        keys=keys,
        iterations=steps,
        improvements=improvements,
    )
