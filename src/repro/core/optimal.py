"""Searching for the *optimal* SFC: how tight is Theorem 1 really?

Section VI's first open question asks to close the gap between the
lower bound `(2/3d)·n^{1−1/d}` and the best known upper bound
`(1/d)·n^{1−1/d}` (Z / simple).  This module attacks the question
empirically:

* :func:`exhaustive_optimum` enumerates **all** `n!` bijections on tiny
  universes and returns the true optimal `D^avg` — ground truth for the
  gap at small n.
* :func:`local_search` runs seeded swap-based hill climbing from any
  starting bijection on larger universes — an adversarial attempt to
  beat the bound (it never succeeds, and how close it gets measures the
  bound's empirical tightness).

Both work in "rank space": a bijection is an int64 vector ``keys`` with
``keys[r]`` the key of the cell of simple-curve rank ``r``, and
``D^avg`` is evaluated for whole batches of bijections at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice, permutations

import numpy as np

from repro.grid.neighbors import neighbor_count_grid
from repro.grid.universe import Universe

__all__ = [
    "rank_space_pairs",
    "davg_of_keys",
    "exhaustive_optimum",
    "local_search",
    "Optimum",
    "SearchResult",
]

#: Enumerating n! bijections is feasible only for tiny n.
_EXHAUSTIVE_LIMIT = 9


def rank_space_pairs(
    universe: Universe,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """NN pair structure in rank space: ``(i_ranks, j_ranks, pair_weights)``.

    ``pair_weights[p] = (1/|N(α_i)| + 1/|N(α_j)|) / n`` so that
    ``D^avg = Σ_p pair_weights[p] · |keys[i_p] − keys[j_p]|`` — the
    Lemma 3 expansion of Definition 2.
    """
    if universe.side < 2:
        raise ValueError("need side >= 2")
    counts = neighbor_count_grid(universe).astype(np.float64)
    inv = 1.0 / counts
    rank_grid = np.arange(universe.n, dtype=np.int64).reshape(
        universe.shape, order="F"
    )
    i_parts, j_parts, w_parts = [], [], []
    from repro.grid.neighbors import axis_pair_index_arrays

    for axis in range(universe.d):
        lo, hi = axis_pair_index_arrays(universe, axis)
        i_parts.append(rank_grid[lo].reshape(-1))
        j_parts.append(rank_grid[hi].reshape(-1))
        w_parts.append((inv[lo] + inv[hi]).reshape(-1) / universe.n)
    return (
        np.concatenate(i_parts),
        np.concatenate(j_parts),
        np.concatenate(w_parts),
    )


def davg_of_keys(
    keys: np.ndarray,
    pairs: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> np.ndarray:
    """Vectorized ``D^avg`` for a batch of bijections ``(..., n)``."""
    i_ranks, j_ranks, weights = pairs
    arr = np.asarray(keys, dtype=np.int64)
    diffs = np.abs(arr[..., i_ranks] - arr[..., j_ranks])
    return (diffs * weights).sum(axis=-1)


@dataclass(frozen=True)
class Optimum:
    """Result of the exhaustive search."""

    davg: float
    keys: tuple[int, ...]  # one optimal bijection, in rank order
    n_evaluated: int


def exhaustive_optimum(universe: Universe, chunk: int = 40320) -> Optimum:
    """True optimal ``D^avg`` over **all** bijections (tiny n only).

    Complexity ``O(n! · |NN_d|)``; refuses universes with more than
    9 cells.
    """
    n = universe.n
    if n > _EXHAUSTIVE_LIMIT:
        raise ValueError(
            f"exhaustive search limited to n <= {_EXHAUSTIVE_LIMIT}, "
            f"got n = {n}"
        )
    pairs = rank_space_pairs(universe)
    best_val = np.inf
    best_keys: tuple[int, ...] = tuple(range(n))
    evaluated = 0
    perm_iter = permutations(range(n))
    while True:
        block = list(islice(perm_iter, chunk))
        if not block:
            break
        arr = np.asarray(block, dtype=np.int64)
        values = davg_of_keys(arr, pairs)
        idx = int(values.argmin())
        if values[idx] < best_val:
            best_val = float(values[idx])
            best_keys = tuple(int(v) for v in arr[idx])
        evaluated += arr.shape[0]
    return Optimum(davg=best_val, keys=best_keys, n_evaluated=evaluated)


@dataclass(frozen=True)
class SearchResult:
    """Result of the local-search optimizer."""

    davg: float
    start_davg: float
    keys: np.ndarray
    iterations: int
    improvements: int

    @property
    def improved(self) -> bool:
        return self.davg < self.start_davg


def local_search(
    universe: Universe,
    start_keys: np.ndarray | None = None,
    iterations: int = 20_000,
    seed: int = 0,
    batch: int = 64,
) -> SearchResult:
    """Swap-based hill climbing on ``D^avg`` (adversarial bound probe).

    Each step proposes ``batch`` random key swaps, applies the best one
    if it improves.  Deterministic for a fixed seed.  Starting point
    defaults to the simple curve (identity keys).
    """
    if iterations < 1:
        raise ValueError("need iterations >= 1")
    n = universe.n
    pairs = rank_space_pairs(universe)
    i_ranks, j_ranks, weights = pairs
    keys = (
        np.arange(n, dtype=np.int64)
        if start_keys is None
        else np.asarray(start_keys, dtype=np.int64).copy()
    )
    if keys.shape != (n,) or sorted(keys.tolist()) != list(range(n)):
        raise ValueError("start_keys must be a permutation of 0..n-1")
    rng = np.random.default_rng(seed)
    current = float(davg_of_keys(keys, pairs))
    start = current
    improvements = 0
    steps = 0
    while steps < iterations:
        take = min(batch, iterations - steps)
        steps += take
        a = rng.integers(0, n, size=take)
        b = rng.integers(0, n, size=take)
        trial = np.broadcast_to(keys, (take, n)).copy()
        rows = np.arange(take)
        trial[rows, a], trial[rows, b] = keys[b], keys[a]
        values = davg_of_keys(trial, pairs)
        idx = int(values.argmin())
        if values[idx] < current:
            keys = trial[idx].copy()
            current = float(values[idx])
            improvements += 1
    return SearchResult(
        davg=current,
        start_davg=start,
        keys=keys,
        iterations=steps,
        improvements=improvements,
    )
