"""Thread-parallel block execution inside one :class:`MetricContext`.

The fourth and final leg of the engine's parallelism story:

* PR 1 **vectorized** every metric onto dense NumPy kernels,
* PR 3 **chunked** them into fixed-size block reductions,
* PR 4 **shared** grids across process-sweep workers, and
* this module **threads** the block reductions of a single context, so
  one cell's metric set saturates several cores instead of one.

Why threads work here: the block kernels are NumPy ufunc chains over
int64/float64 arrays, and NumPy releases the GIL for the duration of
each array operation.  A :class:`BlockScheduler` therefore fans the
engine's block iterators (key slabs, window-pair ranges) out to a
``ThreadPoolExecutor`` and the workers genuinely run concurrently —
no process spawn, no pickling, zero-copy access to every cached array.

Determinism is engineered the same way the chunked mode engineered it
(:mod:`repro.engine.chunked`):

* every block task is **self-contained** (a task owning grid planes
  ``[lo, hi)`` reads the two adjacent boundary planes itself, so no
  cross-task carry exists to race on);
* integer reductions (``Λ`` sums, per-cell maxima, boundary pairs) are
  associative, so per-task partials sum to the dense value exactly;
* the one order-sensitive reduction — the float mean behind ``D^avg``
  — is merged **in block-index order** through
  :func:`repro.engine.chunked.pairwise_sum_stream`, which replays
  NumPy's pairwise summation tree over the logical value stream.  The
  stream's content and order are independent of which thread produced
  which block, so threaded results are **bit-for-bit identical** to
  the serial chunked and dense paths.

Workers write into per-thread :class:`ScratchBuffers` (``out=`` ufunc
targets reused across blocks), so steady-state kernels allocate only
their result arrays.

>>> sched = BlockScheduler(threads=2)
>>> sched.map([lambda i=i: i * i for i in range(5)])  # order preserved
[0, 1, 4, 9, 16]
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.engine.chunked import (
    accumulate_block_pairs,
    pairwise_sum_stream,
    slab_neighbor_counts,
)

__all__ = [
    "BlockScheduler",
    "ScratchBuffers",
    "resolve_threads",
    "quiesce_schedulers",
    "prepare_box_reads",
    "threaded_nn_reduction",
    "threaded_window_max",
]

#: Dense-mode ranges per worker thread: mild oversubscription so one
#: slow block (cache-cold plane, uneven tail) cannot stall the merge.
_DENSE_OVERSUBSCRIPTION = 4

#: Every live scheduler, so a process sweep can join their worker
#: threads before forking (see :func:`quiesce_schedulers`).
_LIVE_SCHEDULERS: "weakref.WeakSet[BlockScheduler]" = weakref.WeakSet()


def quiesce_schedulers() -> None:
    """Join every live scheduler's worker threads (executors rebuild).

    ``fork()`` in a multi-threaded process is hazardous: a forked
    child inherits lock state from threads that no longer exist in it.
    Idle scheduler workers linger until their executor is garbage
    collected, so a process sweep calls this immediately before
    creating its ``ProcessPoolExecutor`` — schedulers stay usable
    (each lazily recreates its executor on next use), only the idle
    threads are reaped.

    Best-effort by design: a threaded reduction *actively running* in
    another thread rebuilds its executor on its next submit, so this
    guarantees a thread-free fork only when process sweeps are
    launched while no threaded reduction is in flight (the normal
    case).  Launching a process sweep concurrently with threaded
    metric calls keeps the generic CPython fork-with-threads caveat.
    """
    for scheduler in list(_LIVE_SCHEDULERS):
        scheduler.close()


def resolve_threads(
    threads: Union[None, int, str],
    processes: Optional[int] = None,
    cores: Optional[int] = None,
) -> int:
    """Resolve a ``threads`` spec to a concrete worker count.

    ``None`` means serial (1).  ``"auto"`` divides the machine's cores
    by the number of sweep worker *processes* (if any), so
    ``processes × threads <= cores`` and a process sweep is never
    oversubscribed by its own cells.  An explicit positive int is taken
    as given.

    >>> resolve_threads(None)
    1
    >>> resolve_threads(3)
    3
    >>> resolve_threads("auto", processes=4, cores=8)
    2
    >>> resolve_threads("auto", processes=16, cores=8)
    1
    """
    if threads is None:
        return 1
    if threads == "auto":
        if cores is None:
            cores = os.cpu_count() or 1
        per_process = int(processes) if processes else 1
        return max(1, cores // max(1, per_process))
    if isinstance(threads, bool) or not isinstance(threads, int):
        raise ValueError(
            f'threads must be a positive int, "auto" or None, '
            f"got {threads!r}"
        )
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    return threads


class ScratchBuffers:
    """Named, growable ``out=`` targets for one worker thread.

    ``take(tag, shape, dtype)`` returns a view of a thread-private
    backing buffer, reallocating only when the request outgrows what
    the tag has seen before — so a kernel that runs over many blocks
    allocates its temporaries once and reuses them for every block.
    Returned views are *uninitialized* (they alias the previous
    block's values); callers must fully overwrite or zero them.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def take(self, tag: str, shape, dtype) -> np.ndarray:
        """An uninitialized ``shape``/``dtype`` view under ``tag``."""
        size = int(np.prod(shape, dtype=np.int64))
        backing = self._buffers.get(tag)
        if (
            backing is None
            or backing.size < size
            or backing.dtype != np.dtype(dtype)
        ):
            backing = np.empty(max(size, 1), dtype=dtype)
            self._buffers[tag] = backing
        return backing[:size].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by this thread's buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())


class BlockScheduler:
    """Order-preserving fan-out of block tasks over a thread pool.

    The scheduler owns a lazily created ``ThreadPoolExecutor`` and a
    per-thread :class:`ScratchBuffers` set.  :meth:`imap` submits
    callables with a bounded prefetch window and yields their results
    **in submission order**, so a streaming consumer (such as
    :func:`repro.engine.chunked.pairwise_sum_stream`) sees the same
    deterministic block sequence a serial loop would produce while at
    most ``threads + 2`` block results are in flight.

    ``threads=1`` degenerates to inline execution on the calling
    thread — no executor is created, which keeps serial contexts free
    of thread machinery.
    """

    def __init__(self, threads: int = 1) -> None:
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.threads = int(threads)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._local = threading.local()
        self._lock = threading.Lock()
        _LIVE_SCHEDULERS.add(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self._executor is not None else "idle"
        return f"BlockScheduler(threads={self.threads}, {state})"

    def scratch(self) -> ScratchBuffers:
        """The calling thread's private scratch-buffer set."""
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = ScratchBuffers()
            self._local.buffers = buffers
        return buffers

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.threads,
                    thread_name_prefix="repro-block",
                )
            return self._executor

    def imap(
        self, tasks: Iterable[Callable[[], object]]
    ) -> Iterator[object]:
        """Run ``tasks`` concurrently, yielding results in task order.

        The prefetch window bounds in-flight results to
        ``threads + 2``, so streaming over an ``O(n / block)``-long
        task list holds ``O(threads × block)`` values, not ``O(n)``.
        A task exception propagates at its position in the stream.
        """
        it = iter(tasks)
        if self.threads == 1:
            for fn in it:
                yield fn()
            return
        window = self.threads + 2
        pending: deque = deque()
        for fn in itertools.islice(it, window):
            pending.append(self._submit(fn))
        while pending:
            done = pending.popleft()
            fn = next(it, None)
            if fn is not None:
                pending.append(self._submit(fn))
            yield done.result()

    def _submit(self, fn: Callable[[], object]):
        """Submit, transparently rebuilding a concurrently closed pool."""
        try:
            return self._ensure_executor().submit(fn)
        except RuntimeError:
            # close()/quiesce_schedulers() shut the executor between
            # our lookup and the submit; rebuild and retry once.
            with self._lock:
                self._executor = None
            return self._ensure_executor().submit(fn)

    def map(self, tasks: Iterable[Callable[[], object]]) -> List[object]:
        """:meth:`imap`, materialized."""
        return list(self.imap(tasks))

    def close(self) -> None:
        """Shut the executor down (idempotent; scheduler stays usable)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


# ----------------------------------------------------------------------
# Block partitioning
# ----------------------------------------------------------------------
def _plane_ranges(ctx) -> list:
    """Axis-0 plane ranges the NN reduction fans out over.

    Chunked contexts reuse the slab partition (so cached/derived slabs
    are shared with the serial path); dense contexts split the grid
    into ``~threads × 4`` ranges of contiguous planes, each a zero-copy
    view of the cached key grid.
    """
    if ctx.chunked:
        return ctx._slab_ranges()
    side = ctx.universe.side
    parts = min(side, max(1, ctx.threads * _DENSE_OVERSUBSCRIPTION))
    per = -(-side // parts)
    return [(lo, min(side, lo + per)) for lo in range(0, side, per)]


def _range_keys(ctx, lo: int, hi: int) -> np.ndarray:
    """Keys of planes ``[lo, hi)``: a grid view (dense) or slab (chunked)."""
    if ctx.chunked:
        return ctx._key_slab(lo, hi)
    return ctx.key_grid()[lo:hi]


def _plane_keys(ctx, x0: int) -> np.ndarray:
    """Keys of the single plane ``x0`` (shape ``(1,) + (side,)*(d-1)``).

    In dense mode boundary planes are free grid views.  In chunked
    mode the plane belongs to the *neighboring* canonical slab — which
    the adjacent range task typically just fetched into the LRU — so
    we peek that slab (silently: no cache traffic, no stats) and slice
    the plane out zero-copy.  Only when the slab is not resident is
    the single plane evaluated directly (honoring pool-installed block
    derivations), which bounds the worst case at one plane — never a
    full slab — and never pollutes the canonical block partition with
    overlapping cache keys.
    """
    if not ctx.chunked:
        return ctx.key_grid()[x0 : x0 + 1]
    lo, hi = ctx._slab_span(x0)
    slab = ctx._store.peek(f"key_slab[{lo}:{hi}]")
    if slab is not None:
        return slab[x0 - lo : x0 - lo + 1]
    return ctx._key_slab_values(x0, x0 + 1)


def _warm_curve_caches(ctx, inverse: bool) -> None:
    """Touch the curve's lazy cache in the calling thread before fan-out.

    A cold first touch raced by N workers builds N copies of the
    curve-level ``O(n)`` table (the argsort inverse behind generic
    ``coords``, or a table-backed curve's key grid behind ``index``) —
    multiplying transient memory by the thread count in the mode that
    exists to bound memory.  One single-element probe warms exactly
    the table the workers will read; analytic curves pay a no-op.
    Transform wrappers delegate, so their inner curve warms too.
    """
    if inverse:
        ctx.curve.coords(np.zeros(1, dtype=np.int64))
    else:
        ctx.curve.index(np.zeros((1, ctx.universe.d), dtype=np.int64))


def prepare_box_reads(ctx) -> None:
    """Resolve the state box-sampling workers share, before fan-out.

    The sampling loops threaded through the scheduler (cluster counts,
    range-query costs) evaluate per-box kernels that read the dense key
    grid — or, in chunked mode, call ``curve.index`` on rectangle
    cells.  Both sit behind lazy caches whose cold first touch must not
    be raced by N workers (N redundant ``O(n)`` builds); resolving them
    once in the calling thread makes the fanned-out tasks pure readers.
    """
    if ctx.chunked:
        _warm_curve_caches(ctx, inverse=False)
    else:
        ctx.key_grid()


# ----------------------------------------------------------------------
# The threaded NN reduction
# ----------------------------------------------------------------------
def _nn_range_kernel(ctx, lo: int, hi: int, scheduler: BlockScheduler):
    """All NN-pair contributions for the cells with ``x_0 ∈ [lo, hi)``.

    Self-contained: the kernel reads the boundary planes ``lo - 1`` and
    ``hi`` itself, so every per-cell sum/max it produces is final.  The
    axis-0 boundary *pair* ``(lo-1, lo)`` is attributed to this range's
    ``Λ_1`` partial (matching the serial carry's attribution); the pair
    ``(hi-1, hi)`` contributes to this range's per-cell state only and
    is counted by the next range.  All temporaries live in the calling
    thread's scratch buffers; only the per-cell average array (the
    kernel's actual result) is freshly allocated.
    """
    scratch = scheduler.scratch()
    universe = ctx.universe
    d, side = universe.d, universe.side
    body = _range_keys(ctx, lo, hi)
    shape = body.shape
    sums = scratch.take("nn_sums", shape, np.int64)
    sums[...] = 0
    best = scratch.take("nn_best", shape, np.int64)
    best[...] = 0
    lambdas = [0] * d
    accumulate_block_pairs(
        body, d, side, sums, best, lambdas, scratch, kernels=ctx.kernels
    )
    plane_shape = (1,) + shape[1:]
    if lo > 0:
        bdist = scratch.take("nn_bdist", plane_shape, np.int64)
        np.subtract(body[:1], _plane_keys(ctx, lo - 1), out=bdist)
        np.abs(bdist, out=bdist)
        lambdas[0] += int(bdist.sum())
        sums[:1] += bdist
        np.maximum(best[:1], bdist, out=best[:1])
    if hi < side:
        udist = scratch.take("nn_bdist", plane_shape, np.int64)
        np.subtract(_plane_keys(ctx, hi), body[-1:], out=udist)
        np.abs(udist, out=udist)
        sums[-1:] += udist
        np.maximum(best[-1:], udist, out=best[-1:])
    counts = scratch.take("nn_counts", shape, np.int64)
    slab_neighbor_counts(universe, lo, hi, out=counts, kernels=ctx.kernels)
    # repro: allow[R004] — the kernel's *result* array: it leaves the
    # scratch arena and is merged by the scheduler, so it cannot reuse
    # a per-thread buffer
    avg = np.empty(shape, dtype=np.float64)
    np.divide(sums, counts, out=avg)
    return avg.reshape(-1), lambdas, int(best.sum())


def threaded_nn_reduction(ctx) -> dict:
    """All NN-stretch scalars of ``ctx``, block-parallel across threads.

    Returns the same ``{"davg", "dmax", "lambdas", "nn_sum"}`` payload
    as :func:`repro.engine.chunked.nn_block_reduction`, bit-for-bit
    (see the module docstring for why).  Requires ``side >= 2``; the
    degenerate cases are handled by the calling metric methods.
    """
    universe = ctx.universe
    d, n = universe.d, universe.n
    scheduler = ctx.scheduler
    if not ctx.chunked:
        # Resolve the dense grid once in the calling thread: every
        # range task reads it, and racing the first resolution across
        # workers would compute (or attach) it once per thread.
        ctx.key_grid()
    else:
        _warm_curve_caches(ctx, inverse=False)
    lambdas = [0] * d
    state = {"max_total": 0}
    tasks = [
        (lambda lo=lo, hi=hi: _nn_range_kernel(ctx, lo, hi, scheduler))
        for lo, hi in _plane_ranges(ctx)
    ]

    def avg_blocks():
        for avg, partial, max_part in scheduler.imap(tasks):
            for axis in range(d):
                lambdas[axis] += partial[axis]
            state["max_total"] += max_part
            yield avg

    davg = pairwise_sum_stream(avg_blocks(), n) / n
    return {
        "davg": davg,
        "dmax": float(state["max_total"]) / n,
        "lambdas": tuple(lambdas),
        "nn_sum": sum(lambdas),
    }


# ----------------------------------------------------------------------
# The threaded window-dilation reduction
# ----------------------------------------------------------------------
def _block_max_distance(
    a: np.ndarray,
    b: np.ndarray,
    metric: str,
    scratch: ScratchBuffers,
    kernels=None,
):
    """Max grid distance over one block of cell pairs, scratch-backed.

    Operation-for-operation identical to
    :func:`repro.grid.metrics.manhattan` / ``euclidean`` followed by
    ``.max()`` — only the temporaries' storage differs — so block
    maxima merge to the dense value exactly (max is order-free).  With
    the native ``kernels`` the whole fold runs as one C call (integer
    maxima; the euclidean variant maximizes the squared sum and takes a
    single sqrt — a monotone map, hence bit-identical).
    """
    if (
        kernels is not None
        and a.flags["C_CONTIGUOUS"]
        and b.flags["C_CONTIGUOUS"]
    ):
        value = kernels.window_max(a, b, metric)
        return int(value) if metric == "manhattan" else value
    m, d = a.shape
    diff = scratch.take("win_diff", (m, d), np.int64)
    np.subtract(a, b, out=diff)
    if metric == "manhattan":
        np.abs(diff, out=diff)
        dist = scratch.take("win_dist", (m,), np.int64)
        diff.sum(axis=-1, out=dist)
        return int(dist.max())
    fdiff = scratch.take("win_fdiff", (m, d), np.float64)
    fdiff[...] = diff
    np.multiply(fdiff, fdiff, out=fdiff)
    fdist = scratch.take("win_fdist", (m,), np.float64)
    fdiff.sum(axis=-1, out=fdist)
    np.sqrt(fdist, out=fdist)
    return float(fdist.max())


def threaded_window_max(ctx, window: int, metric: str = "manhattan"):
    """``window_dilation`` reduced block-parallel across threads.

    Dense contexts slice the cached curve order (zero-copy); chunked
    contexts evaluate coordinate blocks exactly like
    :meth:`~repro.engine.MetricContext.iter_window_pairs`, but each
    block on its own worker thread.  The merge is a plain ``max`` over
    block maxima — order-free, hence bit-for-bit equal to both serial
    paths.
    """
    universe = ctx.universe
    n = universe.n
    scheduler = ctx.scheduler
    total = n - window
    if ctx.chunked:
        _warm_curve_caches(ctx, inverse=True)
        step = ctx.chunk_cells
        path = None
    else:
        parts = max(1, scheduler.threads * _DENSE_OVERSUBSCRIPTION)
        step = max(1, -(-total // parts))
        path = ctx.order()

    def make(t0: int, t1: int):
        def run():
            if path is None:
                idx = np.arange(t0, t1, dtype=np.int64)
                a = ctx.curve.coords_of(idx, backend=ctx.backend)
                b = ctx.curve.coords_of(idx + window, backend=ctx.backend)
            else:
                a, b = path[t0:t1], path[t0 + window : t1 + window]
            return _block_max_distance(
                a, b, metric, scheduler.scratch(), kernels=ctx.kernels
            )

        return run

    tasks = [
        make(t0, min(total, t0 + step)) for t0 in range(0, total, step)
    ]
    best = None
    for value in scheduler.imap(tasks):
        best = value if best is None else max(best, value)
    return int(best) if metric == "manhattan" else float(best)
