/* Native kernels for the metric engine's hot block paths.
 *
 * Compiled on demand by repro.engine.native with the system C compiler
 * into a per-machine cached shared library and loaded through ctypes.
 * Every kernel mirrors one NumPy reference implementation *exactly*:
 * all stretch arithmetic stays in int64 (order-free), float division
 * and the order-sensitive pairwise mean remain on the Python side, so
 * results are bit-for-bit identical to the NumPy backend (the parity
 * argument is spelled out in docs/performance.md and enforced by
 * tests/engine/test_native.py).
 *
 * Array layout contract: every array argument is a C-contiguous int64
 * buffer.  A "slab" of t key planes has t * side^(d-1) cells, with
 * grid axis a >= 1 at stride side^(d-1-a) — the layout of
 * MetricContext.iter_key_slabs slabs.
 */

#include <stdint.h>

#define EXPORT __attribute__((visibility("default")))

static inline int64_t i64abs(int64_t v) { return v < 0 ? -v : v; }
static inline int64_t i64max(int64_t a, int64_t b) { return a > b ? a : b; }

/* ------------------------------------------------------------------ */
/* NN block reduction                                                  */
/* ------------------------------------------------------------------ */

/* Fold every within-slab NN pair of `body` (t planes) into the
 * per-cell partials, the single fused pass replacing the ufunc chain
 * of repro.engine.chunked.accumulate_block_pairs: for each pair the
 * absolute key difference is added to both endpoints' stretch sums,
 * folded into both endpoints' maxima, and accumulated into the pair
 * axis's lambda.  Axis-0 pairs with an endpoint outside the slab are
 * the caller's carry, exactly as in the NumPy version. */
EXPORT void repro_nn_block_pairs(
    const int64_t *body, int64_t t, int64_t side, int64_t d,
    int64_t *sums, int64_t *best, int64_t *lambdas)
{
    int64_t plane = 1;
    for (int64_t i = 0; i < d - 1; ++i) plane *= side;

    int64_t stride = plane;
    for (int64_t axis = 1; axis < d; ++axis) {
        stride /= side;
        int64_t group = stride * side;
        int64_t lam = 0;
        for (int64_t row = 0; row < t; ++row) {
            const int64_t *keys = body + row * plane;
            int64_t *s = sums + row * plane;
            int64_t *m = best + row * plane;
            for (int64_t base = 0; base < plane; base += group) {
                for (int64_t off = 0; off < group - stride; ++off) {
                    int64_t i = base + off;
                    int64_t j = i + stride;
                    int64_t dist = i64abs(keys[j] - keys[i]);
                    lam += dist;
                    s[i] += dist;
                    s[j] += dist;
                    m[i] = i64max(m[i], dist);
                    m[j] = i64max(m[j], dist);
                }
            }
        }
        lambdas[axis] += lam;
    }

    int64_t lam0 = 0;
    for (int64_t row = 0; row + 1 < t; ++row) {
        const int64_t *a = body + row * plane;
        const int64_t *b = a + plane;
        int64_t *sa = sums + row * plane;
        int64_t *ma = best + row * plane;
        for (int64_t c = 0; c < plane; ++c) {
            int64_t dist = i64abs(b[c] - a[c]);
            lam0 += dist;
            sa[c] += dist;
            sa[plane + c] += dist;
            ma[c] = i64max(ma[c], dist);
            ma[plane + c] = i64max(ma[plane + c], dist);
        }
    }
    lambdas[0] += lam0;
}

/* |N(alpha)| for the cells with x_0 in [lo, hi), written into `out`
 * (a (hi-lo) * side^(d-1) buffer) — the layout and boundary handling
 * of repro.engine.chunked.slab_neighbor_counts. */
EXPORT void repro_neighbor_counts(
    int64_t d, int64_t side, int64_t lo, int64_t hi, int64_t *out)
{
    int64_t plane = 1;
    for (int64_t i = 0; i < d - 1; ++i) plane *= side;
    int64_t t = hi - lo;
    int64_t total = t * plane;
    for (int64_t i = 0; i < total; ++i) out[i] = 2 * d;
    if (lo == 0)
        for (int64_t c = 0; c < plane; ++c) out[c] -= 1;
    if (hi == side)
        for (int64_t c = 0; c < plane; ++c) out[(t - 1) * plane + c] -= 1;
    int64_t stride = plane;
    for (int64_t axis = 1; axis < d; ++axis) {
        stride /= side;
        int64_t group = stride * side;
        for (int64_t row = 0; row < t; ++row) {
            int64_t *o = out + row * plane;
            for (int64_t base = 0; base < plane; base += group) {
                for (int64_t off = 0; off < stride; ++off) {
                    o[base + off] -= 1;
                    o[base + group - stride + off] -= 1;
                }
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Window dilation block maxima                                        */
/* ------------------------------------------------------------------ */

/* max over m coordinate rows of the L1 distance |a - b|. */
EXPORT int64_t repro_window_max_manhattan(
    const int64_t *a, const int64_t *b, int64_t m, int64_t d)
{
    int64_t best = 0;
    for (int64_t r = 0; r < m; ++r) {
        const int64_t *pa = a + r * d;
        const int64_t *pb = b + r * d;
        int64_t s = 0;
        for (int64_t i = 0; i < d; ++i) s += i64abs(pa[i] - pb[i]);
        best = i64max(best, s);
    }
    return best;
}

/* max over m rows of the *squared* L2 distance (exact int64; the
 * caller takes one sqrt — monotone, so max-of-sqrt == sqrt-of-max and
 * the float64 result is bit-identical to the NumPy chain). */
EXPORT int64_t repro_window_max_euclidean_sq(
    const int64_t *a, const int64_t *b, int64_t m, int64_t d)
{
    int64_t best = 0;
    for (int64_t r = 0; r < m; ++r) {
        const int64_t *pa = a + r * d;
        const int64_t *pb = b + r * d;
        int64_t s = 0;
        for (int64_t i = 0; i < d; ++i) {
            int64_t diff = pa[i] - pb[i];
            s += diff * diff;
        }
        best = i64max(best, s);
    }
    return best;
}

/* ------------------------------------------------------------------ */
/* Delta fold                                                          */
/* ------------------------------------------------------------------ */

/* sum over m paired keys of |a - b| — the integer edge-delta fold
 * behind population-stretch evaluation (repro.core.optimal.delta_fold)
 * and the DynamicUniverse recompute/re-selection passes.  int64
 * addition is associative, so the fold order cannot change the result
 * vs the NumPy reduction. */
EXPORT int64_t repro_delta_fold(
    const int64_t *a, const int64_t *b, int64_t m)
{
    int64_t s = 0;
    for (int64_t r = 0; r < m; ++r) s += i64abs(a[r] - b[r]);
    return s;
}

/* ------------------------------------------------------------------ */
/* Curve encode / decode                                               */
/* ------------------------------------------------------------------ */

/* The Python side guarantees k >= 1, k * d <= 62 for every bitwise
 * kernel, so d <= 62 and keys fit in int64. */
#define REPRO_MAX_D 62

/* Morton interleave: coordinate bit b of axis i lands at key bit
 * b*d + (d-1-i) — the layout of repro.curves.zcurve.interleave_bits. */
static inline int64_t interleave_point(
    const int64_t *x, int64_t d, int64_t k)
{
    int64_t key = 0;
    for (int64_t b = 0; b < k; ++b)
        for (int64_t i = 0; i < d; ++i)
            key |= ((x[i] >> b) & 1) << (b * d + (d - 1 - i));
    return key;
}

static inline void deinterleave_point(
    int64_t key, int64_t d, int64_t k, int64_t *x)
{
    for (int64_t i = 0; i < d; ++i) x[i] = 0;
    for (int64_t b = 0; b < k; ++b)
        for (int64_t i = 0; i < d; ++i)
            x[i] |= ((key >> (b * d + (d - 1 - i))) & 1) << b;
}

/* Inverse reflected-binary Gray code (prefix XOR); values are
 * non-negative, so the arithmetic right shift is a logical one. */
static inline int64_t gray_decode64(int64_t v)
{
    for (int64_t s = 1; s < 64; s <<= 1) v ^= v >> s;
    return v;
}

EXPORT void repro_z_encode(
    const int64_t *coords, int64_t m, int64_t d, int64_t k, int64_t *keys)
{
    for (int64_t r = 0; r < m; ++r)
        keys[r] = interleave_point(coords + r * d, d, k);
}

EXPORT void repro_z_decode(
    const int64_t *keys, int64_t m, int64_t d, int64_t k, int64_t *coords)
{
    for (int64_t r = 0; r < m; ++r)
        deinterleave_point(keys[r], d, k, coords + r * d);
}

EXPORT void repro_gray_encode(
    const int64_t *coords, int64_t m, int64_t d, int64_t k, int64_t *keys)
{
    for (int64_t r = 0; r < m; ++r)
        keys[r] = gray_decode64(interleave_point(coords + r * d, d, k));
}

EXPORT void repro_gray_decode(
    const int64_t *keys, int64_t m, int64_t d, int64_t k, int64_t *coords)
{
    for (int64_t r = 0; r < m; ++r) {
        int64_t g = keys[r] ^ (keys[r] >> 1);
        deinterleave_point(g, d, k, coords + r * d);
    }
}

/* Skilling's AxestoTranspose (per point) — the scalar original of the
 * vectorized port in repro.curves.hilbert. */
static void axes_to_transpose_point(int64_t *X, int64_t d, int64_t k)
{
    int64_t M = (int64_t)1 << (k - 1);
    for (int64_t Q = M; Q > 1; Q >>= 1) {
        int64_t P = Q - 1;
        for (int64_t i = 0; i < d; ++i) {
            if (X[i] & Q) {
                X[0] ^= P;
            } else {
                int64_t t = (X[0] ^ X[i]) & P;
                X[0] ^= t;
                X[i] ^= t;
            }
        }
    }
    for (int64_t i = 1; i < d; ++i) X[i] ^= X[i - 1];
    int64_t t = 0;
    for (int64_t Q = M; Q > 1; Q >>= 1)
        if (X[d - 1] & Q) t ^= Q - 1;
    for (int64_t i = 0; i < d; ++i) X[i] ^= t;
}

static void transpose_to_axes_point(int64_t *X, int64_t d, int64_t k)
{
    int64_t N = (int64_t)2 << (k - 1);
    int64_t t = X[d - 1] >> 1;
    for (int64_t i = d - 1; i > 0; --i) X[i] ^= X[i - 1];
    X[0] ^= t;
    for (int64_t Q = 2; Q != N; Q <<= 1) {
        int64_t P = Q - 1;
        for (int64_t i = d - 1; i >= 0; --i) {
            if (X[i] & Q) {
                X[0] ^= P;
            } else {
                int64_t t2 = (X[0] ^ X[i]) & P;
                X[0] ^= t2;
                X[i] ^= t2;
            }
        }
    }
}

EXPORT void repro_hilbert_encode(
    const int64_t *coords, int64_t m, int64_t d, int64_t k, int64_t *keys)
{
    int64_t X[REPRO_MAX_D];
    for (int64_t r = 0; r < m; ++r) {
        const int64_t *src = coords + r * d;
        for (int64_t i = 0; i < d; ++i) X[i] = src[i];
        axes_to_transpose_point(X, d, k);
        keys[r] = interleave_point(X, d, k);
    }
}

EXPORT void repro_hilbert_decode(
    const int64_t *keys, int64_t m, int64_t d, int64_t k, int64_t *coords)
{
    int64_t X[REPRO_MAX_D];
    for (int64_t r = 0; r < m; ++r) {
        deinterleave_point(keys[r], d, k, X);
        transpose_to_axes_point(X, d, k);
        int64_t *dst = coords + r * d;
        for (int64_t i = 0; i < d; ++i) dst[i] = X[i];
    }
}

/* Boustrophedon scan for any side: the emitted digit of an axis flips
 * direction with the parity of the higher original coordinates. */
EXPORT void repro_snake_encode(
    const int64_t *coords, int64_t m, int64_t d, int64_t side,
    int64_t *keys)
{
    int64_t top = 1;
    for (int64_t i = 0; i < d - 1; ++i) top *= side;
    for (int64_t r = 0; r < m; ++r) {
        const int64_t *x = coords + r * d;
        int64_t key = 0, parity = 0, weight = top;
        for (int64_t axis = d - 1; axis >= 0; --axis) {
            int64_t digit = x[axis];
            int64_t eff = (parity % 2 == 0) ? digit : side - 1 - digit;
            key += eff * weight;
            parity += digit;
            weight /= side;
        }
        keys[r] = key;
    }
}

EXPORT void repro_snake_decode(
    const int64_t *keys, int64_t m, int64_t d, int64_t side,
    int64_t *coords)
{
    int64_t top = 1;
    for (int64_t i = 0; i < d - 1; ++i) top *= side;
    for (int64_t r = 0; r < m; ++r) {
        int64_t rest = keys[r], parity = 0, weight = top;
        int64_t *x = coords + r * d;
        for (int64_t axis = d - 1; axis >= 0; --axis) {
            int64_t eff = rest / weight;
            rest %= weight;
            int64_t digit = (parity % 2 == 0) ? eff : side - 1 - eff;
            x[axis] = digit;
            parity += digit;
            weight /= side;
        }
    }
}
