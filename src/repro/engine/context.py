"""The metric engine: one cached compute core per (curve, universe).

Every exact stretch metric (Definitions 1–4, Lemma 5 groups, all-pairs
stretch) consumes the same handful of intermediates:

* the dense **key grid** ``π(α)`` (one ``O(n)`` curve evaluation),
* the per-axis **pair curve-distance arrays** ``∆π`` over ``G_{i}``
  (one ``O(n)`` slice-subtract per axis),
* the **neighbor-count grid** ``|N(α)|``,
* the derived per-cell sum / max grids,
* the **inverse permutation** (rank grid), the rank-ordered flat key
  array, and the **windowed curve-shift distance arrays** consumed by
  the analysis and application layers.

Historically each free function in :mod:`repro.core.stretch` rebuilt
these from scratch, so a full :func:`repro.core.summary.stretch_report`
paid for the axis distance arrays four times over.  A
:class:`MetricContext` materializes each intermediate **at most once**,
holds it in a memory-bounded LRU store, and exposes every metric as a
method that reuses the shared state.  The legacy free functions now
delegate here through :func:`get_context`, so existing call sites get
the caching for free.

Cached arrays are returned **read-only** (``writeable=False``): callers
share the cache, so in-place mutation would silently corrupt every later
metric.  Copy first if you need a scratch buffer.

**Chunked mode** (``chunk_cells=...``) serves universes whose dense
``(side,)*d`` arrays would not fit the cache budget (or memory): the key
grid, flat keys, inverse permutation and per-axis NN-distance state are
produced as iterators of fixed-size blocks
(:meth:`MetricContext.iter_key_slabs`, :meth:`~MetricContext.iter_key_blocks`,
:meth:`~MetricContext.iter_inverse_blocks`,
:meth:`~MetricContext.iter_window_pairs`), recently used blocks are kept
in the same ``max_bytes`` LRU store, and every metric method reduces
block-wise with values bit-for-bit equal to the dense path (see
:mod:`repro.engine.chunked` for how that equality is engineered).
Memory model: ``max_bytes`` bounds what is *retained*, ``chunk_cells``
bounds what is *materialized at once*.  Methods that inherently return a
dense ``O(n)`` array raise in chunked mode and name the block iterator
to use instead.  The ``O(block)`` guarantee holds for procedural curves
(Z, Gray, Hilbert, snake, simple); table-backed curves
(:class:`repro.curves.base.PermutationCurve` subclasses such as
``random`` or ``peano``) are already defined by a dense table and gain
no memory over the dense mode.

**Threaded mode** (``threads=N`` / ``threads="auto"``): the block
reductions behind the NN and window metrics fan out over a
:class:`repro.engine.threads.BlockScheduler` thread pool — the NumPy
block kernels release the GIL, so one context saturates several cores.
Composes with both dense and chunked execution, and results stay
bit-for-bit identical to the serial paths (the order-sensitive
``D^avg`` mean is merged in block order through the same pairwise-sum
replication the chunked mode uses).

**Native backend** (``backend="native"``/``"auto"``): the hot block
kernels — the NN pair fold, neighbor counts, window max, batch curve
encode/decode — dispatch to the compiled C library of
:mod:`repro.engine.native` when it is available, falling back to the
NumPy bodies otherwise.  Backend choice never changes values: integer
kernels are exact and the float reductions (``D^avg`` division,
pairwise mean) stay in Python, so every metric is bit-for-bit equal
across ``{numpy, native}`` × ``{dense, chunked, threaded}``.

**Shared mode** (process sweeps): a context wired to a
:class:`repro.engine.shm.SharedGridStore` (via
:class:`repro.engine.ContextPool`) resolves its key grid, flat keys,
inverse permutation and neighbor counts as zero-copy read-only views
of parent-published shared-memory segments before computing anything
locally; resolutions are counted in :attr:`CacheStats.shared` and the
views are retained outside the ``max_bytes`` budget (their pages are
mapped once machine-wide, not owned by this process).  See
``docs/memory-model.md`` for the full retention / materialization /
duplication picture.

**Persistent store** (``store_dir=...`` / ``repro sweep --store``): a
context wired to a :class:`repro.engine.store.GridStore` resolves the
same grid intermediates as read-only ``np.memmap`` views of
checksummed on-disk artifacts — resolution order **shared → mmap →
derived → compute**, counted in :attr:`CacheStats.mmap` — and writes
freshly computed ones through, so a later process (a sweep rerun, a
``repro serve`` restart) starts warm from disk.  In chunked mode the
same store backs out-of-core spill: table-backed curves publish their
key grid once and every slab then streams from the mapping, so blocks
evicted from the LRU re-resolve from disk bit-for-bit instead of being
recomputed.  See ``docs/persistence.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.core.allpairs import (
    AllPairsEstimate,
    average_allpairs_stretch_exact,
    average_allpairs_stretch_sampled,
)
from repro.core.lower_bounds import davg_lower_bound
from repro.curves.base import SpaceFillingCurve
from repro.grid.neighbors import axis_pair_index_arrays, neighbor_count_grid

__all__ = [
    "CacheStats",
    "MetricContext",
    "get_context",
    "DEFAULT_CACHE_BYTES",
]

#: Default per-context budget for cached intermediate arrays (256 MiB).
#: Generous enough to hold the full intermediate set of a ~10M-cell
#: universe; pass ``max_bytes=0`` to disable caching entirely.
DEFAULT_CACHE_BYTES = 256 * 2**20


@dataclass
class CacheStats:
    """Counters for the intermediate store (test + tuning hooks).

    Aggregation sums counters across stores — how a sweep folds every
    worker's (and the publishing parent's) counters into one summary:

    >>> a = CacheStats(hits=2, misses=1, computes={"key_grid": 1})
    >>> b = CacheStats(hits=1, misses=1, shared={"key_grid": 1})
    >>> total = CacheStats.aggregate([a, b])
    >>> total.hits, total.compute_count("key_grid"), total.total_shared
    (3, 1, 1)
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: How many times each intermediate's compute function actually ran.
    computes: Dict[str, int] = field(default_factory=dict)
    #: How many times an intermediate was *derived* from another context
    #: (cheap array transform of a base curve's cache) instead of
    #: materialized from scratch; see :class:`repro.engine.ContextPool`.
    derived: Dict[str, int] = field(default_factory=dict)
    #: How many times an intermediate was resolved as a zero-copy view
    #: of a :class:`repro.engine.SharedGridStore` segment published by
    #: the sweep parent, instead of being computed in this process.
    shared: Dict[str, int] = field(default_factory=dict)
    #: How many sweep cells each compute backend served (``"numpy"`` /
    #: ``"native"``); recorded by :class:`repro.engine.Sweep` as each
    #: cell finishes, so ``repro sweep --stats`` and the serve
    #: ``/stats`` payload can report which backend actually ran.
    backends: Dict[str, int] = field(default_factory=dict)
    #: How many times an intermediate was resolved as a read-only
    #: memory-mapped view of a persistent
    #: :class:`repro.engine.store.GridStore` artifact (``--store``)
    #: instead of being computed in this process.  Chunked spill reads
    #: land here too, under their block keys (``key_slab[lo:hi]``).
    mmap: Dict[str, int] = field(default_factory=dict)

    def compute_count(self, key: str) -> int:
        """Times the named intermediate was materialized from scratch."""
        return self.computes.get(key, 0)

    def derived_count(self, key: str) -> int:
        """Times the named intermediate was derived from a base context."""
        return self.derived.get(key, 0)

    def shared_count(self, key: str) -> int:
        """Times the named intermediate was attached from shared memory."""
        return self.shared.get(key, 0)

    def mmap_count(self, key: str) -> int:
        """Times the named intermediate was mapped from the grid store."""
        return self.mmap.get(key, 0)

    @property
    def total_computes(self) -> int:
        """Total from-scratch materializations across all intermediates."""
        return sum(self.computes.values())

    @property
    def total_derived(self) -> int:
        """Total derivations across all intermediates."""
        return sum(self.derived.values())

    @property
    def total_shared(self) -> int:
        """Total shared-memory attachments across all intermediates."""
        return sum(self.shared.values())

    @property
    def total_mmap(self) -> int:
        """Total persistent-store mappings across all intermediates."""
        return sum(self.mmap.values())

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @classmethod
    def aggregate(cls, parts: "Iterable[CacheStats]") -> "CacheStats":
        """Sum the counters of several stores into one summary."""
        out = cls()
        for part in parts:
            out.hits += part.hits
            out.misses += part.misses
            out.evictions += part.evictions
            for key, count in part.computes.items():
                out.computes[key] = out.computes.get(key, 0) + count
            for key, count in part.derived.items():
                out.derived[key] = out.derived.get(key, 0) + count
            for key, count in part.shared.items():
                out.shared[key] = out.shared.get(key, 0) + count
            for key, count in part.backends.items():
                out.backends[key] = out.backends.get(key, 0) + count
            for key, count in part.mmap.items():
                out.mmap[key] = out.mmap.get(key, 0) + count
        return out

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.1%}, "
            f"computes={self.total_computes}, "
            f"derived={self.total_derived}, "
            f"shared={self.total_shared}, "
            f"mmap={self.total_mmap}, "
            f"evictions={self.evictions})"
        )


class _BoundedStore:
    """LRU array store bounded by total ``nbytes``.

    ``max_bytes=None`` means unbounded; ``max_bytes=0`` disables storage
    (every lookup recomputes) — useful for benchmarking the uncached
    path.  Stored arrays are frozen (``writeable=False``) because they
    are shared across all metrics of the context.

    Arrays resolved through a ``shared`` factory (zero-copy views of a
    :class:`repro.engine.shm.SharedGridStore` segment) or an ``mmap``
    factory (read-only maps of :class:`repro.engine.store.GridStore`
    artifacts) are retained in a side table that does **not** count
    against ``max_bytes``: their pages belong to a machine-wide shared
    mapping or to the kernel page cache, not to this process's private
    budget, and evicting a view would save nothing.

    The store is **thread-safe**: dict state and counters mutate under
    a lock, while compute/derive factories run outside it so worker
    threads materializing *different* blocks proceed concurrently
    (the :class:`repro.engine.threads.BlockScheduler` regime).  Two
    threads missing the *same* key may both run its factory — results
    are deterministic, so this wastes a compute but never corrupts —
    and the first insertion wins, keeping the handed-out object
    identity stable.
    """

    def __init__(self, max_bytes: Optional[int]) -> None:
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._items: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._views: Dict[str, np.ndarray] = {}
        self._bytes = 0
        self._lock = threading.Lock()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held (shared views excluded)."""
        with self._lock:
            return self._bytes

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], np.ndarray],
        freeze: bool = True,
        derive: Optional[Callable[[], np.ndarray]] = None,
        shared: Optional[Callable[[], Optional[np.ndarray]]] = None,
        mmap: Optional[Callable[[], Optional[np.ndarray]]] = None,
        persist: Optional[Callable[[np.ndarray], object]] = None,
        pin: bool = False,
    ) -> np.ndarray:
        with self._lock:
            if key in self._items:
                self.stats.hits += 1
                self._items.move_to_end(key)
                return self._items[key]
            if key in self._views:
                self.stats.hits += 1
                return self._views[key]
            self.stats.misses += 1
        if shared is not None:
            value = shared()
            if value is not None:
                # Zero-copy view of a parent-published segment: counted
                # separately, retained outside the LRU budget.
                with self._lock:
                    existing = self._views.get(key)
                    if existing is not None:
                        # A concurrent miss resolved the view first;
                        # reclassify our lookup as the hit it
                        # effectively was (the miss was provisional)
                        # so hits + misses equals actual lookups and
                        # shared counters stay one-per-intermediate.
                        self.stats.misses -= 1
                        self.stats.hits += 1
                        return existing
                    self.stats.shared[key] = (
                        self.stats.shared.get(key, 0) + 1
                    )
                    if self.max_bytes != 0:
                        self._views[key] = value
                return value
        if mmap is not None:
            # Read-only map of a verified persistent-store artifact:
            # the disk tier between shared memory and derivation.  The
            # factory returning None means "not on disk" (or rejected
            # by its checksum) and falls through to derive / compute.
            value = mmap()
            if value is not None:
                with self._lock:
                    existing = self._views.get(key)
                    if existing is not None:
                        # Same provisional-miss reclassification as the
                        # shared tier above.
                        self.stats.misses -= 1
                        self.stats.hits += 1
                        return existing
                    self.stats.mmap[key] = self.stats.mmap.get(key, 0) + 1
                    if self.max_bytes != 0:
                        self._views[key] = value
                return value
        if derive is not None:
            value = np.asarray(derive())
            computed = False
            with self._lock:
                self.stats.derived[key] = self.stats.derived.get(key, 0) + 1
        else:
            value = np.asarray(compute())
            computed = True
            with self._lock:
                self.stats.computes[key] = (
                    self.stats.computes.get(key, 0) + 1
                )
        if freeze:
            value.flags.writeable = False
        if persist is not None and computed:
            # Write-through to the persistent store, only for genuinely
            # computed arrays (derived ones are cheap transforms that a
            # warm restart re-derives from their mapped base).  Best
            # effort: the store swallows I/O errors.
            persist(value)
        with self._lock:
            if self.max_bytes != 0:
                if pin:
                    # Pinned arrays (e.g. the curve-cached order path)
                    # live in the off-budget side table: their memory
                    # is owned elsewhere for the curve's lifetime, so
                    # charging them to max_bytes would evict genuinely
                    # reclaimable intermediates for zero savings.
                    return self._views.setdefault(key, value)
                if key in self._items:
                    # A concurrent miss on the same key beat us to the
                    # insert; serve its (identical) array.
                    return self._items[key]
                self._items[key] = value
                self._bytes += value.nbytes
                self._evict()
        return value

    def peek(self, key: str) -> Optional[np.ndarray]:
        """The cached array for ``key``, or ``None`` — never computes.

        Silent: no counters move and the LRU order is untouched, so
        opportunistic consumers (a threaded kernel checking whether a
        neighbor block is already resident) do not distort the stats
        the tests and tuning hooks read.
        """
        with self._lock:
            value = self._items.get(key)
            if value is not None:
                return value
            return self._views.get(key)

    def _evict(self) -> None:
        if self.max_bytes is None:
            return
        # Never evict the most-recently-inserted entry: an oversized
        # single array is simply not retained after being handed out.
        while self._bytes > self.max_bytes and len(self._items) > 1:
            _, dropped = self._items.popitem(last=False)
            self._bytes -= dropped.nbytes
            self.stats.evictions += 1
        if self._bytes > self.max_bytes and self._items:
            _, dropped = self._items.popitem(last=False)
            self._bytes -= dropped.nbytes
            self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._items.clear()
            self._views.clear()
            self._bytes = 0


class MetricContext:
    """Cached metric engine for one curve on its universe.

    All metric methods are exact and bit-for-bit identical to the legacy
    free functions in :mod:`repro.core`; they differ only in sharing the
    intermediates.  Scalar results (``davg``, all-pairs values, …) are
    memoized unconditionally; array intermediates live in a
    memory-bounded LRU store (see :data:`DEFAULT_CACHE_BYTES`).

    >>> from repro import Universe, ZCurve
    >>> from repro.engine import MetricContext
    >>> ctx = MetricContext(ZCurve(Universe.power_of_two(d=2, k=3)))
    >>> ctx.davg() >= ctx.lower_bound()
    True
    """

    def __init__(
        self,
        curve: SpaceFillingCurve,
        max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
        universe_store: Optional[_BoundedStore] = None,
        chunk_cells: Optional[int] = None,
        threads: Union[None, int, str] = None,
        backend: str = "auto",
        store: Optional[object] = None,
        store_dir: Optional[str] = None,
    ) -> None:
        from repro.engine import native
        from repro.engine.threads import resolve_threads

        if chunk_cells is not None and chunk_cells < 1:
            raise ValueError(
                f"chunk_cells must be >= 1, got {chunk_cells}"
            )
        self.curve = curve
        self.universe = curve.universe
        #: Block size (cells) of the chunked execution mode; ``None``
        #: selects the dense mode.  In chunked mode no dense ``O(n)``
        #: array is materialized: state is streamed in blocks and
        #: recently used blocks are retained under ``max_bytes``.
        self.chunk_cells = chunk_cells
        #: Worker-thread count for block-parallel metric reductions
        #: (``None``/1 = serial; ``"auto"`` = one per core).  Threaded
        #: results are bit-for-bit identical to the serial paths; see
        #: :mod:`repro.engine.threads`.
        self.threads = resolve_threads(threads)
        #: The compute backend as requested (``"numpy"``/``"native"``/
        #: ``"auto"``); kept for introspection and task replication.
        self.backend_requested = backend
        #: The backend actually serving this context: ``"native"`` when
        #: the compiled kernels of :mod:`repro.engine.native` loaded,
        #: else ``"numpy"``.  An explicit ``"native"`` request on a host
        #: without the kernels warns once and degrades to ``"numpy"``;
        #: results are bit-for-bit identical either way.
        self.backend = native.resolve_backend(backend)
        #: The loaded :class:`repro.engine.native.NativeKernels`, or
        #: ``None`` on the NumPy backend.  Block kernels consult this
        #: and fall back to their NumPy bodies when it is ``None``.
        self.kernels = (
            native.load_kernels() if self.backend == "native" else None
        )
        self._scheduler = None
        self._scalar_lock = threading.RLock()
        self._store = _BoundedStore(max_bytes)
        #: Optional store shared by every context of the same universe
        #: (wired by :class:`repro.engine.ContextPool`); holds
        #: curve-independent intermediates such as ``neighbor_counts``.
        self._universe_store = universe_store
        #: Intermediate key → zero-arg factory deriving the array cheaply
        #: from another curve's context (wired by the pool for
        #: transform-derived curves).  Derived arrays are bit-for-bit
        #: identical to from-scratch computation; only the cost differs.
        self._derivations: Dict[str, Callable[[], np.ndarray]] = {}
        #: Chunked-mode analogue of ``_derivations``: block kind →
        #: ``(lo, hi) -> array`` factory deriving a block from another
        #: context (wired by the pool, e.g. for reversed curves).
        self._chunk_derivations: Dict[
            str, Callable[[int, int], np.ndarray]
        ] = {}
        #: Intermediate key → zero-arg factory resolving the array as a
        #: zero-copy view of a parent-published shared-memory segment
        #: (wired by a :class:`repro.engine.ContextPool` holding a
        #: :class:`repro.engine.shm.SharedGridStore`).  A factory
        #: returning ``None`` means "not published" and falls through
        #: to derivation / local compute.  Resolutions are counted in
        #: :attr:`CacheStats.shared`.
        self._shared_sources: Dict[
            str, Callable[[], Optional[np.ndarray]]
        ] = {}
        #: Intermediate key → zero-arg factory resolving the array as a
        #: read-only memmap of a persistent
        #: :class:`repro.engine.store.GridStore` artifact.  Consulted
        #: after the shared tier, before derivation; a factory
        #: returning ``None`` (absent or checksum-rejected entry) falls
        #: through.  Resolutions are counted in :attr:`CacheStats.mmap`.
        self._mmap_sources: Dict[
            str, Callable[[], Optional[np.ndarray]]
        ] = {}
        #: Intermediate key → write-through sink persisting a genuinely
        #: computed array to the grid store (best effort).
        self._persist_sinks: Dict[str, Callable[[np.ndarray], object]] = {}
        #: ``(GridStore, spec key)`` backing the chunked out-of-core
        #: spill, or ``None``.  See :meth:`_spill_grid_view`.
        self._spill = None
        self._spill_grid: object = False  # False = unresolved memo
        #: The wired :class:`repro.engine.store.GridStore`, or ``None``.
        if store is None and store_dir is not None:
            from repro.engine.store import GridStore

            store = GridStore(store_dir)
        self.grid_store = store
        if store is not None:
            self._wire_store(store)
        self._scalars: Dict[Tuple, object] = {}

    def _wire_store(self, store) -> None:
        """Point this context at a persistent grid store.

        Dense contexts with a process-stable spec key get an mmap
        source and a write-through sink per shared kind; chunked
        contexts instead arm the out-of-core spill (dense mappings are
        exactly what chunked mode exists to avoid materializing — the
        spill hands out ``O(block)`` slices of the same artifact).
        Instance-keyed curves have no stable key and stay store-exempt;
        the curve-independent neighbor counts are wired in every mode.
        """
        from repro.engine.shm import SHARED_KINDS, shared_key, universe_key

        skey = shared_key(self.curve)
        if skey is not None:
            if not self.chunked:
                for kind in SHARED_KINDS:
                    self._mmap_sources[kind] = (
                        lambda k=skey, kd=kind: store.get(k, kd)
                    )
                    self._persist_sinks[kind] = (
                        lambda arr, k=skey, kd=kind: store.put(k, kd, arr)
                    )
            else:
                self._spill = (store, skey)
        ukey = universe_key(self.universe)
        self._mmap_sources["neighbor_counts"] = (
            lambda: store.get(ukey, "neighbor_counts")
        )
        self._persist_sinks["neighbor_counts"] = (
            lambda arr: store.put(ukey, "neighbor_counts", arr)
        )

    def _spill_grid_view(self) -> Optional[np.ndarray]:
        """Memmapped key grid backing the chunked spill, or ``None``.

        Resolved once per context: the store's committed grid if one
        exists, else — for curves whose defining dense table is already
        resident (``PermutationCurve`` subclasses build it in
        ``__init__``) — the table is published first and mapped back,
        so every later slab (and every later process) streams from
        disk.  Procedural curves are never forced to materialize a
        dense grid here; absent an artifact they stay on the
        ``O(block)`` compute path.
        """
        if self._spill is None:
            return None
        with self._scalar_lock:
            if self._spill_grid is False:
                grid_store, skey = self._spill
                view = grid_store.get(skey, "key_grid")
                if view is None:
                    table = getattr(self.curve, "_key_grid_cache", None)
                    if table is not None:
                        grid_store.put(skey, "key_grid", table)
                        view = grid_store.get(skey, "key_grid")
                self._spill_grid = view
            return self._spill_grid

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Hit/miss/compute counters of the intermediate store."""
        return self._store.stats

    @property
    def cache_bytes(self) -> int:
        """Bytes of intermediates currently cached."""
        return self._store.nbytes

    def clear_cache(self) -> None:
        """Drop every cached intermediate and memoized scalar."""
        self._store.clear()
        with self._scalar_lock:
            self._scalars.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricContext({self.curve!r})"

    @property
    def chunked(self) -> bool:
        """True when the context runs in chunked (block-streaming) mode."""
        return self.chunk_cells is not None

    @property
    def threaded(self) -> bool:
        """True when block reductions fan out over worker threads."""
        return self.threads > 1

    @property
    def scheduler(self):
        """The context's :class:`repro.engine.threads.BlockScheduler`.

        Created lazily (a serial context never spawns a thread pool)
        and reused across every threaded reduction of this context, so
        worker threads and their scratch buffers amortize over all
        metrics of a cell.
        """
        if self._scheduler is None:
            from repro.engine.threads import BlockScheduler

            self._scheduler = BlockScheduler(self.threads)
        return self._scheduler

    def _require_dense(self, name: str, alternative: str) -> None:
        if self.chunked:
            raise ValueError(
                f"{name}() materializes a dense O(n) array and is "
                f"unavailable in chunked mode; use {alternative} instead"
            )

    def _scalar(self, key: Tuple, compute: Callable[[], object]) -> object:
        # Reentrant lock: scalar computes nest (davg_ratio -> davg,
        # lower_bound) and may fan work out to the block scheduler,
        # whose workers never touch the scalar memo.  Holding the lock
        # across the compute keeps concurrent callers (one ContextPool
        # hammered from many threads) from duplicating a reduction.
        with self._scalar_lock:
            if key not in self._scalars:
                self._scalars[key] = compute()
            return self._scalars[key]

    def _cached(
        self,
        key: str,
        compute: Callable[[], np.ndarray],
        freeze: bool = True,
        pin: bool = False,
    ) -> np.ndarray:
        """Store lookup honoring pool-installed shared/derivation rules.

        Resolution order is cheapest-first: an already-cached array,
        then a zero-copy shared-memory view, then a persistent-store
        memmap, then a derivation from a base context, then local
        compute (persisted back to the store when one is wired).
        ``pin`` retains a locally computed array outside the LRU budget
        (for arrays whose memory is owned elsewhere, e.g. the curve's
        own caches).
        """
        return self._store.get_or_compute(
            key,
            compute,
            freeze=freeze,
            derive=self._derivations.get(key),
            shared=self._shared_sources.get(key),
            mmap=self._mmap_sources.get(key),
            persist=self._persist_sinks.get(key),
            pin=pin,
        )

    # ------------------------------------------------------------------
    # Shared intermediates
    # ------------------------------------------------------------------
    def key_grid(self) -> np.ndarray:
        """The curve's dense key grid (built once per curve).

        Returned frozen like every other cached array — but as a
        read-only *view* of the curve's own cache, so the curve's
        public ``key_grid()`` (which predates the engine and stays
        writable) is untouched, no bytes are copied, and the store's
        budget accounting is unchanged.
        """
        self._require_dense("key_grid", "iter_key_slabs()")
        return self._cached(
            "key_grid", lambda: self.curve.key_grid().view()
        )

    def order(self) -> np.ndarray:
        """Cells in curve order, ``(n, d)``.

        Resolution order matches the other grid intermediates: a
        parent-published shared-memory view first (process sweeps
        publish ``order`` when a windowed metric is requested, counted
        in :attr:`CacheStats.shared`), then the curve's own cache —
        which computes the full inverse once and keeps the array on
        the curve object, as it always did.
        """
        self._require_dense(
            "order", "iter_window_pairs() or curve.coords on key blocks"
        )
        # freeze=False: curve.order() already returns its array
        # read-only, and shared views arrive frozen.  pin=True: the
        # locally computed array is the curve's own cache, pinned for
        # the curve's lifetime — charging its (n, d) bytes against
        # max_bytes would evict reclaimable intermediates for nothing.
        # repro: allow[R003] — curve.order() is frozen at the source
        return self._cached("order", self.curve.order, freeze=False, pin=True)

    def flat_keys(self) -> np.ndarray:
        """Keys in cell-rank order: ``flat_keys()[rank(α)] = π(α)``.

        The rank order is the simple-curve enumeration (axis 0 fastest),
        matching :meth:`repro.grid.universe.Universe.all_coords`.
        """
        self._require_dense("flat_keys", "iter_key_blocks()")
        return self._cached(
            "flat_keys",
            lambda: self.key_grid().reshape(-1, order="F"),
        )

    def inverse_permutation(self) -> np.ndarray:
        """The rank grid ``π^{-1}`` as ranks: ``inv[π(α)] = rank(α)``.

        ``rank_to_coords(inv[keys], universe)`` recovers coordinates for
        any key array — the cached inverse the range-query index and the
        window metrics build on.
        """
        self._require_dense("inverse_permutation", "iter_inverse_blocks()")

        def compute() -> np.ndarray:
            inverse = np.empty(self.universe.n, dtype=np.int64)
            inverse[self.flat_keys()] = np.arange(
                self.universe.n, dtype=np.int64
            )
            return inverse

        return self._cached("inverse_perm", compute)

    def axis_pair_slices(self, axis: int) -> tuple:
        """``(lo, hi)`` slicing tuples over the NN pairs of ``G_{axis+1}``.

        Memoized; downstream consumers (partitioning, halo exchange)
        take these from the context instead of rebuilding the pair
        enumeration themselves.
        """
        if not 0 <= axis < self.universe.d:
            raise ValueError(
                f"axis must be in [0, {self.universe.d}), got {axis}"
            )
        return self._scalar(
            ("axis_slices", axis),
            lambda: axis_pair_index_arrays(self.universe, axis),
        )

    def axis_pair_curve_distances(self, axis: int) -> np.ndarray:
        """``∆π`` over the NN pairs of ``G_{axis+1}`` (cached per axis)."""
        if not 0 <= axis < self.universe.d:
            raise ValueError(
                f"axis must be in [0, {self.universe.d}), got {axis}"
            )
        self._require_dense(
            "axis_pair_curve_distances",
            "the block-wise metric methods (davg/dmax/lambda_sums)",
        )

        def compute() -> np.ndarray:
            grid = self.key_grid()
            lo, hi = self.axis_pair_slices(axis)
            return np.abs(grid[hi] - grid[lo])

        return self._cached(f"axis_dist[{axis}]", compute)

    def window_shift_distances(
        self, window: int, metric: str = "manhattan"
    ) -> np.ndarray:
        """Grid distances of all curve steps of size ``window`` (cached).

        Entry ``t`` is ``∆(π^{-1}(t), π^{-1}(t+window))`` in the chosen
        grid metric — the array behind the Gotsman–Lindenbaum window
        dilation metrics in :mod:`repro.analysis.locality`.
        """
        if window < 1 or window >= self.universe.n:
            raise ValueError(f"window must be in [1, n), got {window}")
        if metric not in ("manhattan", "euclidean"):
            raise ValueError("metric must be 'manhattan' or 'euclidean'")
        self._require_dense(
            "window_shift_distances",
            "iter_window_pairs(window) or window_dilation(window)",
        )

        def compute() -> np.ndarray:
            from repro.grid.metrics import euclidean, manhattan

            path = self.order()
            a, b = path[:-window], path[window:]
            return manhattan(a, b) if metric == "manhattan" else euclidean(a, b)

        return self._cached(f"win_dist[{window},{metric}]", compute)

    def neighbor_counts(self) -> np.ndarray:
        """Dense ``|N(α)|`` grid (cached; curve-independent).

        When the context belongs to a :class:`repro.engine.ContextPool`,
        this lives in the pool's per-universe store so every curve of
        the universe shares one copy.

        Available in chunked mode too: the grid is assembled slab by
        slab with :func:`repro.engine.chunked.slab_neighbor_counts`
        (each slab write is independent, so the result equals the dense
        grid exactly).  The *result* is inherently ``O(n)`` — callers
        exporting it accept a dense grid by asking for one.
        """
        store = (
            self._universe_store
            if self._universe_store is not None
            else self._store
        )

        def compute() -> np.ndarray:
            if not self.chunked:
                return neighbor_count_grid(self.universe)
            from repro.engine.chunked import slab_neighbor_counts

            counts = np.empty(self.universe.shape, dtype=np.int64)
            for lo, hi in self._slab_ranges():
                slab_neighbor_counts(
                    self.universe,
                    lo,
                    hi,
                    out=counts[lo:hi],
                    kernels=self.kernels,
                )
            return counts

        return store.get_or_compute(
            "neighbor_counts",
            compute,
            shared=self._shared_sources.get("neighbor_counts"),
            mmap=self._mmap_sources.get("neighbor_counts"),
            persist=self._persist_sinks.get("neighbor_counts"),
        )

    # ------------------------------------------------------------------
    # Block iteration (the chunked mode's public surface; also usable in
    # dense mode, where each iterator yields one full-size block)
    # ------------------------------------------------------------------
    def _slab_thickness(self) -> int:
        """Planes per canonical slab — the one source of the partition
        arithmetic shared by :meth:`_slab_ranges` and :meth:`_slab_span`."""
        side, d = self.universe.side, self.universe.d
        if not self.chunked:
            return side
        return max(1, self.chunk_cells // side ** (d - 1))

    def _slab_ranges(self) -> list:
        """Axis-0 plane ranges ``(lo, hi)`` of the slab partition."""
        side = self.universe.side
        per_slab = self._slab_thickness()
        return [
            (lo, min(side, lo + per_slab))
            for lo in range(0, side, per_slab)
        ]

    def _slab_span(self, x0: int) -> tuple:
        """The canonical slab range ``(lo, hi)`` containing plane ``x0``.

        Lets consumers address the LRU-cached slab a plane lives in
        without scanning the range list.
        """
        side = self.universe.side
        per_slab = self._slab_thickness()
        lo = (x0 // per_slab) * per_slab
        return lo, min(side, lo + per_slab)

    def _span_ranges(self) -> list:
        """1-D ranges ``(start, stop)`` of the flat block partition."""
        n = self.universe.n
        if not self.chunked:
            return [(0, n)]
        return [
            (start, min(n, start + self.chunk_cells))
            for start in range(0, n, self.chunk_cells)
        ]

    def _cached_block(
        self, kind: str, lo: int, hi: int, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """LRU-cached block, honoring pool-installed block derivations.

        With the out-of-core spill armed, key-grid slabs resolve as
        ``O(block)`` slices of the store's memmapped grid before any
        derivation or compute — so a block evicted under ``max_bytes``
        streams back from disk bit-for-bit instead of being rebuilt.
        """
        derive_fn = self._chunk_derivations.get(kind)
        derive = None if derive_fn is None else (lambda: derive_fn(lo, hi))
        mmap = None
        if kind == "key_slab" and self._spill is not None:

            def mmap() -> Optional[np.ndarray]:
                grid = self._spill_grid_view()
                return None if grid is None else grid[lo:hi]

        return self._store.get_or_compute(
            f"{kind}[{lo}:{hi}]", compute, derive=derive, mmap=mmap
        )

    def _key_slab_values(self, lo: int, hi: int) -> np.ndarray:
        """Key-grid slab for ``x_0 ∈ [lo, hi)``, uncached.

        Honors pool-installed block derivations (a reversed curve's
        slab is derived from its inner curve's cache) but bypasses the
        LRU store — the entry point for off-partition reads such as
        the threaded NN reduction's boundary planes, which must not
        pollute the canonical slab partition's cache keys.
        """
        derive = self._chunk_derivations.get("key_slab")
        if derive is not None:
            return derive(lo, hi)
        spilled = self._spill_grid_view()
        if spilled is not None:
            return spilled[lo:hi]
        side, d = self.universe.side, self.universe.d
        axes = [np.arange(lo, hi, dtype=np.int64)]
        axes += [np.arange(side, dtype=np.int64)] * (d - 1)
        mesh = np.meshgrid(*axes, indexing="ij")
        coords = np.stack([m.reshape(-1) for m in mesh], axis=-1)
        keys = self.curve.keys_of(coords, backend=self.backend)
        return keys.reshape((hi - lo,) + (side,) * (d - 1))

    def _key_slab(self, lo: int, hi: int) -> np.ndarray:
        """Key-grid slab for ``x_0 ∈ [lo, hi)``, LRU-cached per block.

        ``_cached_block`` resolves a pool-installed derivation first,
        so the compute closure only ever runs the raw evaluation.
        """
        return self._cached_block(
            "key_slab", lo, hi, lambda: self._key_slab_values(lo, hi)
        )

    def _key_block(self, start: int, stop: int) -> np.ndarray:
        """Flat keys for ranks ``[start, stop)``, computed per block."""

        def compute() -> np.ndarray:
            from repro.grid.coords import rank_to_coords

            ranks = np.arange(start, stop, dtype=np.int64)
            return self.curve.keys_of(
                rank_to_coords(ranks, self.universe), backend=self.backend
            )

        return self._cached_block("key_block", start, stop, compute)

    def _inverse_block(self, start: int, stop: int) -> np.ndarray:
        """Ranks of keys ``[start, stop)``, computed per block."""

        def compute() -> np.ndarray:
            from repro.grid.coords import coords_to_rank

            keys = np.arange(start, stop, dtype=np.int64)
            return coords_to_rank(
                self.curve.coords_of(keys, backend=self.backend),
                self.universe,
            )

        return self._cached_block("inverse_block", start, stop, compute)

    def iter_key_slabs(self):
        """Yield ``(lo, hi, slab)``: the key grid for ``x_0 ∈ [lo, hi)``.

        Slabs walk the grid along axis 0 (C order); ``slab`` has shape
        ``(hi - lo,) + (side,) * (d - 1)`` and equals
        ``key_grid()[lo:hi]`` bit-for-bit.  In dense mode one slab
        covering the whole grid is yielded; in chunked mode each slab
        holds roughly ``chunk_cells`` cells and is LRU-cached under the
        ``max_bytes`` budget.
        """
        if not self.chunked:
            yield 0, self.universe.side, self.key_grid()
            return
        for lo, hi in self._slab_ranges():
            yield lo, hi, self._key_slab(lo, hi)

    def iter_key_blocks(self):
        """Yield ``(start, stop, keys)`` blocks of :meth:`flat_keys`.

        Blocks cover ranks ``[start, stop)`` in simple-curve order; the
        concatenation equals ``flat_keys()`` bit-for-bit.
        """
        if not self.chunked:
            yield 0, self.universe.n, self.flat_keys()
            return
        for start, stop in self._span_ranges():
            yield start, stop, self._key_block(start, stop)

    def iter_inverse_blocks(self):
        """Yield ``(start, stop, ranks)`` blocks of the rank-of-key map.

        ``ranks[i]`` is the rank of the cell with key ``start + i``; the
        concatenation equals ``inverse_permutation()`` bit-for-bit.  In
        chunked mode this uses ``curve.coords`` per block — ``O(block)``
        for curves with an analytic inverse.
        """
        if not self.chunked:
            yield 0, self.universe.n, self.inverse_permutation()
            return
        for start, stop in self._span_ranges():
            yield start, stop, self._inverse_block(start, stop)

    def iter_window_pairs(self, window: int):
        """Yield ``(t0, t1, a, b)`` coordinate blocks of curve steps.

        ``a`` and ``b`` are the cells at curve positions ``[t0, t1)``
        and ``[t0 + window, t1 + window)`` — the pairs behind the
        Gotsman–Lindenbaum window metrics.  Blocks are not cached (two
        shifted coordinate streams would double the block footprint for
        a single-pass consumer).
        """
        n = self.universe.n
        if window < 1 or window >= n:
            raise ValueError(f"window must be in [1, n), got {window}")
        if not self.chunked:
            path = self.order()
            yield 0, n - window, path[:-window], path[window:]
            return
        step = self.chunk_cells
        for t0 in range(0, n - window, step):
            t1 = min(n - window, t0 + step)
            idx = np.arange(t0, t1, dtype=np.int64)
            a = self.curve.coords_of(idx, backend=self.backend)
            b = self.curve.coords_of(idx + window, backend=self.backend)
            yield t0, t1, a, b

    def _chunked_nn_stats(self) -> dict:
        """Memoized one-pass NN reduction (chunked mode only)."""
        from repro.engine.chunked import nn_block_reduction

        return self._scalar(
            ("chunked_nn",), lambda: nn_block_reduction(self)
        )

    def _threaded_nn_stats(self) -> dict:
        """Memoized thread-parallel NN reduction (``threads > 1``).

        One block-parallel pass produces every NN scalar (``davg``,
        ``dmax``, ``Λ`` sums, NN-pair sum) with values bit-for-bit
        equal to the serial paths; see
        :func:`repro.engine.threads.threaded_nn_reduction`.
        """
        from repro.engine.threads import threaded_nn_reduction

        return self._scalar(
            ("threaded_nn",), lambda: threaded_nn_reduction(self)
        )

    # ------------------------------------------------------------------
    # Per-cell grids
    # ------------------------------------------------------------------
    def _per_cell_blockwise(
        self,
    ) -> tuple[np.ndarray, np.ndarray, list]:
        """One slab pass assembling the dense per-cell sum/max grids.

        The chunked-mode backend of the per-cell exports, and the
        native-backend fast path in dense mode too (there the single
        slab is the whole key grid and the fused compiled kernel folds
        every NN pair in one C pass).  The *results* are inherently
        ``O(n)`` dense grids (the caller asked for them); what the pass
        avoids is any dense *intermediate*: it walks key slabs, folds
        within-slab NN pairs with
        :func:`repro.engine.chunked.accumulate_block_pairs` (the shared
        pair core of the serial and threaded NN reductions) and handles
        each axis-0 boundary pair against a carried plane.  All updates
        are integer scatter-adds and maxima — order-free — so both grids
        equal the dense path bit-for-bit.  The per-axis ``Λ`` tallies
        fall out of the same pass (boundary pairs are folded into axis
        0), so callers can seed ``lambda_sums`` for free.
        """
        from repro.engine.chunked import accumulate_block_pairs
        from repro.engine.threads import ScratchBuffers

        universe = self.universe
        d, side = universe.d, universe.side
        sums = np.zeros(universe.shape, dtype=np.int64)
        best = np.zeros(universe.shape, dtype=np.int64)
        lambdas = [0] * d
        scratch = ScratchBuffers()
        plane_shape = (1,) + (side,) * (d - 1)
        prev_keys = None
        for lo, hi, slab in self.iter_key_slabs():
            accumulate_block_pairs(
                slab,
                d,
                side,
                sums[lo:hi],
                best[lo:hi],
                lambdas,
                scratch,
                kernels=self.kernels,
            )
            if prev_keys is not None:
                boundary = scratch.take("boundary", plane_shape, np.int64)
                np.subtract(slab[:1], prev_keys, out=boundary)
                np.abs(boundary, out=boundary)
                lambdas[0] += int(boundary.sum())
                sums[lo - 1 : lo] += boundary
                sums[lo : lo + 1] += boundary
                np.maximum(
                    best[lo - 1 : lo], boundary, out=best[lo - 1 : lo]
                )
                np.maximum(
                    best[lo : lo + 1], boundary, out=best[lo : lo + 1]
                )
            prev_keys = np.ascontiguousarray(slab[-1:])
        return sums, best, lambdas

    def _per_cell_grids(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(sums, best)`` grids from the blockwise single pass.

        Both grids come out of one slab walk, so they are computed (and
        cached) together under their usual store keys.  The pass also
        yields the per-axis ``Λ`` sums; in dense mode they are seeded
        into the store under ``lambda_sums`` so a later
        :meth:`lambda_sums` call costs nothing extra.
        """
        sums = self._store.peek("per_cell_sums")
        best = self._store.peek("per_cell_max")
        if sums is None or best is None:
            sums, best, lambdas = self._per_cell_blockwise()
            computed_sums, computed_best = sums, best
            sums = self._store.get_or_compute(
                "per_cell_sums", lambda: computed_sums
            )
            best = self._store.get_or_compute(
                "per_cell_max", lambda: computed_best
            )
            if not self.chunked and self._store.peek("lambda_sums") is None:
                lam = np.array(lambdas, dtype=np.int64)
                self._store.get_or_compute("lambda_sums", lambda: lam)
        return sums, best

    def per_cell_stretch_sums(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-cell ``(Σ_{β∈N(α)} ∆π(α,β), |N(α)|)`` as dense grids.

        Works in chunked mode as well — the grids are assembled slab by
        slab without dense intermediates (see :meth:`_per_cell_blockwise`
        for the parity argument); the returned arrays are inherently
        ``O(n)``.  On the native backend the dense mode takes the same
        blockwise route: the fused compiled kernel folds every NN pair
        of the whole grid in one C pass, replacing ``d`` vectorized
        slice-subtract/scatter rounds, with bit-for-bit equal grids.
        """
        if self.chunked or self.kernels is not None:
            return self._per_cell_grids()[0], self.neighbor_counts()

        def compute() -> np.ndarray:
            sums = np.zeros(self.universe.shape, dtype=np.int64)
            for axis in range(self.universe.d):
                dist = self.axis_pair_curve_distances(axis)
                lo, hi = self.axis_pair_slices(axis)
                sums[lo] += dist
                sums[hi] += dist
            return sums

        sums = self._store.get_or_compute("per_cell_sums", compute)
        return sums, self.neighbor_counts()

    def per_cell_avg_stretch(self) -> np.ndarray:
        """Dense grid of ``δ^avg_π(α)`` (Definition 1).

        On a degenerate universe (``side == 1``: no NN pairs) the
        per-cell average over the empty neighbor set is defined as 0.
        """
        sums, counts = self.per_cell_stretch_sums()
        if self.universe.side < 2:
            return self._store.get_or_compute(
                "per_cell_avg",
                lambda: np.zeros(self.universe.shape, dtype=np.float64),
            )
        return self._store.get_or_compute(
            "per_cell_avg", lambda: sums / counts
        )

    def per_cell_max_stretch(self) -> np.ndarray:
        """Dense grid of ``δ^max_π(α)`` (Definition 3; 0 for side == 1).

        Available in chunked mode via the slab-wise assembly (integer
        maxima are order-free, so the grid matches the dense path
        bit-for-bit); the result is inherently ``O(n)``.  The native
        backend routes the dense mode through the same fused pass (see
        :meth:`per_cell_stretch_sums`).
        """
        if self.chunked or self.kernels is not None:
            return self._per_cell_grids()[1]

        def compute() -> np.ndarray:
            best = np.zeros(self.universe.shape, dtype=np.int64)
            for axis in range(self.universe.d):
                dist = self.axis_pair_curve_distances(axis)
                lo, hi = self.axis_pair_slices(axis)
                np.maximum(best[lo], dist, out=best[lo])
                np.maximum(best[hi], dist, out=best[hi])
            return best

        return self._store.get_or_compute("per_cell_max", compute)

    def nn_distance_values(self) -> np.ndarray:
        """Flat ``∆π`` over all unordered NN pairs (each once).

        Empty (not an error) on degenerate universes with no NN pairs.
        In chunked mode the per-axis distance arrays are assembled slab
        by slab in the dense enumeration order (within-slab pairs land
        at their dense offsets; axis-0 boundary pairs are filled from
        the carried plane), so the concatenation is bit-for-bit the
        dense array.  The result is inherently ``O(n·d)``.
        """
        if self.universe.side < 2:
            empty = np.empty(0, dtype=np.int64)
            empty.flags.writeable = False
            return empty

        def compute() -> np.ndarray:
            if self.chunked:
                return self._nn_values_blockwise()
            parts = [
                self.axis_pair_curve_distances(axis).reshape(-1)
                for axis in range(self.universe.d)
            ]
            return np.concatenate(parts)

        return self._store.get_or_compute("nn_values", compute)

    def _nn_values_blockwise(self) -> np.ndarray:
        """Chunked assembly behind :meth:`nn_distance_values`.

        Allocation-free per block (R004): the flat result is allocated
        once up front and every per-axis slab distance lands in a
        reshaped *view* of it through ``subtract``/``abs`` with
        ``out=`` targets, so the slab walk does zero allocator traffic
        no matter how many blocks stream through.  The axis-0 boundary
        carry plane lives in a :class:`ScratchBuffers` slot reused
        across slabs.  The per-axis segments occupy the same flat
        offsets the dense path's ``concatenate`` would give them, so
        the result stays bit-for-bit the dense array.
        """
        from repro.engine.chunked import slab_axis_slices
        from repro.engine.threads import ScratchBuffers

        universe = self.universe
        d, side = universe.d, universe.side
        per_axis = (side - 1) * side ** (d - 1)
        # The one sanctioned allocation: the O(n·d) result itself,
        # made before the slab walk starts.
        # repro: allow[R004] — single up-front result, not per-block
        values = np.empty(d * per_axis, dtype=np.int64)
        parts = []
        for axis in range(d):
            shape = tuple(
                side - 1 if i == axis else side for i in range(d)
            )
            parts.append(
                values[axis * per_axis : (axis + 1) * per_axis].reshape(
                    shape
                )
            )
        scratch = ScratchBuffers()
        plane_shape = (1,) + (side,) * (d - 1)
        prev_keys = None
        for lo, hi, slab in self.iter_key_slabs():
            for axis in range(1, d):
                lo_s, hi_s = slab_axis_slices(d, side, axis)
                out = parts[axis][lo:hi]
                np.subtract(slab[hi_s], slab[lo_s], out=out)
                np.abs(out, out=out)
            if hi - lo > 1:
                out = parts[0][lo : hi - 1]
                np.subtract(slab[1:], slab[:-1], out=out)
                np.abs(out, out=out)
            if prev_keys is not None:
                out = parts[0][lo - 1 : lo]
                np.subtract(slab[:1], prev_keys, out=out)
                np.abs(out, out=out)
            else:
                prev_keys = scratch.take(
                    "nn_values_carry", plane_shape, np.int64
                )
            np.copyto(prev_keys, slab[-1:])
        return values

    # ------------------------------------------------------------------
    # Scalar metrics
    # ------------------------------------------------------------------
    def lambda_sums(self) -> np.ndarray:
        """``[Λ_1(π), …, Λ_d(π)]`` (Lemma 5 per-dimension totals).

        Zeros on degenerate universes (no NN pairs to sum over).
        """
        if self.universe.side < 2:
            zeros = np.zeros(self.universe.d, dtype=np.int64)
            zeros.flags.writeable = False
            return zeros
        if self.threaded:

            def compute() -> np.ndarray:
                return np.array(
                    self._threaded_nn_stats()["lambdas"], dtype=np.int64
                )

            return self._store.get_or_compute("lambda_sums", compute)
        if self.chunked:

            def compute() -> np.ndarray:
                return np.array(
                    self._chunked_nn_stats()["lambdas"], dtype=np.int64
                )

            return self._store.get_or_compute("lambda_sums", compute)
        if self.kernels is not None:
            # Native dense path: the fused per-cell pass tallies the
            # per-axis sums as it folds the pairs and seeds them into
            # the store.  If the seed was evicted, fall through to the
            # per-axis assembly below (identical values).
            self._per_cell_grids()
            seeded = self._store.peek("lambda_sums")
            if seeded is not None:
                return seeded

        def compute() -> np.ndarray:
            return np.array(
                [
                    int(self.axis_pair_curve_distances(axis).sum())
                    for axis in range(self.universe.d)
                ],
                dtype=np.int64,
            )

        return self._store.get_or_compute("lambda_sums", compute)

    def davg(self) -> float:
        """``D^avg(π)`` (Definition 2), exact.

        0.0 on degenerate universes (the average over each empty
        neighbor set is defined as 0).
        """
        if self.universe.side < 2:
            return 0.0
        if self.threaded:
            return self._scalar(
                ("davg",), lambda: self._threaded_nn_stats()["davg"]
            )
        if self.chunked:
            return self._scalar(
                ("davg",), lambda: self._chunked_nn_stats()["davg"]
            )
        return self._scalar(
            ("davg",), lambda: float(self.per_cell_avg_stretch().mean())
        )

    def dmax(self) -> float:
        """``D^max(π)`` (Definition 4), exact; 0.0 when side == 1."""
        if self.universe.side < 2:
            return 0.0
        if self.threaded:
            return self._scalar(
                ("dmax",), lambda: self._threaded_nn_stats()["dmax"]
            )
        if self.chunked:
            return self._scalar(
                ("dmax",), lambda: self._chunked_nn_stats()["dmax"]
            )
        return self._scalar(
            ("dmax",), lambda: float(self.per_cell_max_stretch().mean())
        )

    def nn_mean(self) -> float:
        """Mean ``∆π`` over all NN pairs (0.0 when there are none)."""
        if self.universe.side < 2:
            return 0.0
        if self.threaded:
            from repro.grid.neighbors import nn_pair_count

            return self._scalar(
                ("nn_mean",),
                lambda: float(self._threaded_nn_stats()["nn_sum"])
                / nn_pair_count(self.universe),
            )
        if self.chunked:
            from repro.grid.neighbors import nn_pair_count

            return self._scalar(
                ("nn_mean",),
                lambda: float(self._chunked_nn_stats()["nn_sum"])
                / nn_pair_count(self.universe),
            )
        if self.kernels is not None:
            # Native dense path: the exact NN-pair sum is Σ_i Λ_i from
            # the fused pass; dividing by the pair count equals the
            # NumPy mean bit-for-bit (float64 pairwise summation of
            # int64 values is exact while the total stays below 2^53,
            # so both paths divide the same exact sum by the same
            # count).
            from repro.grid.neighbors import nn_pair_count

            return self._scalar(
                ("nn_mean",),
                lambda: float(int(self.lambda_sums().sum()))
                / nn_pair_count(self.universe),
            )
        return self._scalar(
            ("nn_mean",), lambda: float(self.nn_distance_values().mean())
        )

    def lower_bound(self) -> float:
        """Theorem 1 lower bound on ``D^avg``; 0.0 for the 1-cell grid."""
        if self.universe.n < 2:
            return 0.0
        return self._scalar(
            ("lower_bound",),
            lambda: davg_lower_bound(self.universe.n, self.universe.d),
        )

    def davg_ratio(self) -> float:
        """``D^avg / LB`` — the paper's optimality ratio.

        Defined as 1.0 on the 1-cell universe, where measured value and
        bound are both trivially 0.
        """
        bound = self.lower_bound()
        if bound == 0.0:
            return 1.0 if self.davg() == 0.0 else float("inf")
        return self.davg() / bound

    def window_dilation(self, window: int, metric: str = "manhattan"):
        """Max grid distance of a curve step of exactly ``window``.

        The Gotsman–Lindenbaum reverse metric; works in both modes
        (block-wise in chunked mode, block-parallel when
        ``threads > 1``) and returns 0 on the 1-cell universe, where
        no step exists.
        """
        if metric not in ("manhattan", "euclidean"):
            raise ValueError("metric must be 'manhattan' or 'euclidean'")
        if self.universe.n < 2:
            return 0 if metric == "manhattan" else 0.0
        if window < 1 or window >= self.universe.n:
            raise ValueError(
                f"window must be in [1, n), got {window}"
            )
        if self.threaded:
            from repro.engine.threads import threaded_window_max

            return self._scalar(
                ("window_dilation", window, metric),
                lambda: threaded_window_max(self, window, metric),
            )
        if not self.chunked:
            dist = self.window_shift_distances(window, metric)
            return int(dist.max()) if metric == "manhattan" else float(
                dist.max()
            )

        def compute():
            from repro.grid.metrics import euclidean, manhattan

            fn = manhattan if metric == "manhattan" else euclidean
            kernels = self.kernels
            best = None
            for _, _, a, b in self.iter_window_pairs(window):
                if kernels is not None:
                    # Fused C max (integer distances; the euclidean
                    # variant takes one sqrt of the max squared sum, a
                    # monotone map — bit-identical to max-of-sqrts).
                    block_best = kernels.window_max(a, b, metric)
                else:
                    block_best = fn(a, b).max()
                best = (
                    block_best
                    if best is None
                    else max(best, block_best)
                )
            return int(best) if metric == "manhattan" else float(best)

        return self._scalar(("window_dilation", window, metric), compute)

    # ------------------------------------------------------------------
    # All-pairs stretch (Section V-B)
    # ------------------------------------------------------------------
    def allpairs_exact(
        self, metric: str = "manhattan", chunk: int = 1024
    ) -> float:
        """Exact ``str_{avg,m}(π)``, memoized per grid metric.

        0.0 on the 1-cell universe (average over zero pairs).
        """
        if self.universe.n < 2:
            return 0.0
        return self._scalar(
            ("allpairs_exact", metric),
            lambda: average_allpairs_stretch_exact(
                self.curve,
                metric,
                chunk,
                scheduler=self.scheduler if self.threaded else None,
            ),
        )

    def allpairs_sampled(
        self,
        n_pairs: int = 100_000,
        metric: str = "manhattan",
        seed: int = 0,
    ) -> AllPairsEstimate:
        """Sampled ``str_{avg,m}(π)``, memoized per (budget, metric, seed)."""
        if self.universe.n < 2:
            return AllPairsEstimate(
                mean=0.0, stderr=0.0, n_pairs=0, metric=metric
            )
        return self._scalar(
            ("allpairs_sampled", n_pairs, metric, seed),
            lambda: average_allpairs_stretch_sampled(
                self.curve,
                n_pairs,
                metric,
                seed,
                scheduler=self.scheduler if self.threaded else None,
            ),
        )

    # ------------------------------------------------------------------
    # Lemma 5 decomposition
    # ------------------------------------------------------------------
    def gij_decomposition(
        self, axis: int
    ) -> dict[int, tuple[int, np.ndarray]]:
        """Split ``G_{axis+1}`` into the Lemma 5 groups ``G_{i,j}``.

        Works in both modes: the chunked path walks key slabs and
        groups each block's pair distances by the trailing-ones index
        of the pair's coordinate along ``axis``, producing counts and
        value arrays identical to the dense decomposition (group
        membership depends only on that coordinate, and block order
        preserves the dense C-order value enumeration).  Note the
        *result* is inherently ``O(n)`` — it partitions every NN pair
        along the axis — so decomposing a beyond-memory universe still
        needs a consumer that reduces the groups streamwise.
        """
        if not 0 <= axis < self.universe.d:
            raise ValueError(
                f"axis must be in [0, {self.universe.d}), got {axis}"
            )
        if self.chunked:
            return self._scalar(
                ("gij", axis), lambda: self._gij_blockwise(axis)
            )
        # Late import: core.stretch imports this module for its wrappers.
        from repro.core.stretch import trailing_ones

        def compute() -> dict[int, tuple[int, np.ndarray]]:
            universe = self.universe
            k = universe.k  # requires power-of-two side, as in the paper
            dist = self.axis_pair_curve_distances(axis)
            shape = [1] * universe.d
            shape[axis] = universe.side - 1
            kappa = np.arange(universe.side - 1, dtype=np.int64).reshape(
                shape
            )
            kappa = np.broadcast_to(kappa, dist.shape)
            groups = trailing_ones(kappa) + 1  # j index, 1-based
            out: dict[int, tuple[int, np.ndarray]] = {}
            flat_groups = groups.reshape(-1)
            flat_dist = dist.reshape(-1)
            for j in range(1, k + 1):
                mask = flat_groups == j
                out[j] = (int(mask.sum()), flat_dist[mask])
            return out

        return self._scalar(("gij", axis), compute)

    def _gij_blockwise(
        self, axis: int
    ) -> dict[int, tuple[int, np.ndarray]]:
        """Block-wise Lemma 5 decomposition over key slabs.

        Axis-0 pairs span consecutive planes (the boundary pair of
        each slab is handled via a one-plane carry, exactly like the
        NN reduction); pairs along higher axes live entirely inside a
        slab.  Values are appended in slab order, which equals the
        dense path's C-order enumeration.
        """
        from repro.core.stretch import trailing_ones
        from repro.engine.chunked import slab_axis_slices

        universe = self.universe
        k = universe.k  # requires power-of-two side, as in the paper
        d, side = universe.d, universe.side
        groups = trailing_ones(np.arange(max(side - 1, 0), dtype=np.int64)) + 1
        parts: dict[int, list] = {j: [] for j in range(1, k + 1)}
        if axis == 0:
            prev = None
            for lo, hi, slab in self.iter_key_slabs():
                if prev is not None:
                    j0 = int(groups[lo - 1])
                    parts[j0].append(np.abs(slab[:1] - prev).reshape(-1))
                if hi - lo > 1:
                    dist0 = np.abs(slab[1:] - slab[:-1])
                    in_slab = groups[lo : hi - 1]
                    for j in range(1, k + 1):
                        picked = np.compress(in_slab == j, dist0, axis=0)
                        if picked.size:
                            parts[j].append(picked.reshape(-1))
                prev = np.ascontiguousarray(slab[-1:])
        else:
            lo_s, hi_s = slab_axis_slices(d, side, axis)
            for _, _, slab in self.iter_key_slabs():
                dist = np.abs(slab[hi_s] - slab[lo_s])
                for j in range(1, k + 1):
                    picked = np.compress(groups == j, dist, axis=axis)
                    if picked.size:
                        parts[j].append(picked.reshape(-1))
        out: dict[int, tuple[int, np.ndarray]] = {}
        for j in range(1, k + 1):
            values = (
                np.concatenate(parts[j])
                if parts[j]
                else np.empty(0, dtype=np.int64)
            )
            out[j] = (int(values.size), values)
        return out

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def stretch_report(
        self,
        include_allpairs: bool = False,
        allpairs_samples: int = 50_000,
        seed: int = 0,
    ):
        """Full :class:`repro.core.summary.StretchReport` off the cache."""
        from repro.core.summary import stretch_report

        return stretch_report(
            self.curve,
            include_allpairs=include_allpairs,
            allpairs_samples=allpairs_samples,
            seed=seed,
            context=self,
        )


def get_context(
    curve: Union[SpaceFillingCurve, MetricContext],
) -> MetricContext:
    """The shared :class:`MetricContext` of ``curve`` (created lazily).

    Also the coercion point of the whole downstream stack: every
    function in :mod:`repro.analysis` and :mod:`repro.apps` accepts
    either a bare curve or an existing context and calls this first, so
    passing an already-built context (e.g. one obtained from a
    :class:`repro.engine.ContextPool`) is a no-op that reuses its cache.

    The legacy free functions route through this, so repeated metric
    calls on the same curve reuse intermediates no matter which API
    layer computed them first.  The context is stored on the curve
    object itself, so its cached intermediates live and die with the
    curve (the curve↔context reference cycle is ordinary gc fodder —
    a registry keyed by curves would pin them forever instead).

    The shared context always uses :data:`DEFAULT_CACHE_BYTES`; for a
    custom budget (or ``max_bytes=0`` to disable caching), construct a
    private :class:`MetricContext` directly.
    """
    if isinstance(curve, MetricContext):
        return curve
    ctx = getattr(curve, "_metric_context", None)
    if ctx is None:
        ctx = MetricContext(curve, max_bytes=DEFAULT_CACHE_BYTES)
        curve._metric_context = ctx
    return ctx
