"""The metric engine: one cached compute core per (curve, universe).

Every exact stretch metric (Definitions 1–4, Lemma 5 groups, all-pairs
stretch) consumes the same handful of intermediates:

* the dense **key grid** ``π(α)`` (one ``O(n)`` curve evaluation),
* the per-axis **pair curve-distance arrays** ``∆π`` over ``G_{i}``
  (one ``O(n)`` slice-subtract per axis),
* the **neighbor-count grid** ``|N(α)|``,
* the derived per-cell sum / max grids,
* the **inverse permutation** (rank grid), the rank-ordered flat key
  array, and the **windowed curve-shift distance arrays** consumed by
  the analysis and application layers.

Historically each free function in :mod:`repro.core.stretch` rebuilt
these from scratch, so a full :func:`repro.core.summary.stretch_report`
paid for the axis distance arrays four times over.  A
:class:`MetricContext` materializes each intermediate **at most once**,
holds it in a memory-bounded LRU store, and exposes every metric as a
method that reuses the shared state.  The legacy free functions now
delegate here through :func:`get_context`, so existing call sites get
the caching for free.

Cached arrays are returned **read-only** (``writeable=False``): callers
share the cache, so in-place mutation would silently corrupt every later
metric.  Copy first if you need a scratch buffer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.core.allpairs import (
    AllPairsEstimate,
    average_allpairs_stretch_exact,
    average_allpairs_stretch_sampled,
)
from repro.core.lower_bounds import davg_lower_bound
from repro.curves.base import SpaceFillingCurve
from repro.grid.neighbors import axis_pair_index_arrays, neighbor_count_grid

__all__ = [
    "CacheStats",
    "MetricContext",
    "get_context",
    "DEFAULT_CACHE_BYTES",
]

#: Default per-context budget for cached intermediate arrays (256 MiB).
#: Generous enough to hold the full intermediate set of a ~10M-cell
#: universe; pass ``max_bytes=0`` to disable caching entirely.
DEFAULT_CACHE_BYTES = 256 * 2**20


@dataclass
class CacheStats:
    """Counters for the intermediate store (test + tuning hooks)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: How many times each intermediate's compute function actually ran.
    computes: Dict[str, int] = field(default_factory=dict)
    #: How many times an intermediate was *derived* from another context
    #: (cheap array transform of a base curve's cache) instead of
    #: materialized from scratch; see :class:`repro.engine.ContextPool`.
    derived: Dict[str, int] = field(default_factory=dict)

    def compute_count(self, key: str) -> int:
        """Times the named intermediate was materialized from scratch."""
        return self.computes.get(key, 0)

    def derived_count(self, key: str) -> int:
        """Times the named intermediate was derived from a base context."""
        return self.derived.get(key, 0)

    @property
    def total_computes(self) -> int:
        """Total from-scratch materializations across all intermediates."""
        return sum(self.computes.values())

    @property
    def total_derived(self) -> int:
        """Total derivations across all intermediates."""
        return sum(self.derived.values())

    @property
    def hit_rate(self) -> float:
        """``hits / (hits + misses)``; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @classmethod
    def aggregate(cls, parts: "Iterable[CacheStats]") -> "CacheStats":
        """Sum the counters of several stores into one summary."""
        out = cls()
        for part in parts:
            out.hits += part.hits
            out.misses += part.misses
            out.evictions += part.evictions
            for key, count in part.computes.items():
                out.computes[key] = out.computes.get(key, 0) + count
            for key, count in part.derived.items():
                out.derived[key] = out.derived.get(key, 0) + count
        return out

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.1%}, "
            f"computes={self.total_computes}, "
            f"derived={self.total_derived}, "
            f"evictions={self.evictions})"
        )


class _BoundedStore:
    """LRU array store bounded by total ``nbytes``.

    ``max_bytes=None`` means unbounded; ``max_bytes=0`` disables storage
    (every lookup recomputes) — useful for benchmarking the uncached
    path.  Stored arrays are frozen (``writeable=False``) because they
    are shared across all metrics of the context.
    """

    def __init__(self, max_bytes: Optional[int]) -> None:
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._items: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0

    @property
    def nbytes(self) -> int:
        """Total bytes currently held."""
        return self._bytes

    def get_or_compute(
        self,
        key: str,
        compute: Callable[[], np.ndarray],
        freeze: bool = True,
        derive: Optional[Callable[[], np.ndarray]] = None,
    ) -> np.ndarray:
        if key in self._items:
            self.stats.hits += 1
            self._items.move_to_end(key)
            return self._items[key]
        self.stats.misses += 1
        if derive is not None:
            value = np.asarray(derive())
            self.stats.derived[key] = self.stats.derived.get(key, 0) + 1
        else:
            value = np.asarray(compute())
            self.stats.computes[key] = self.stats.computes.get(key, 0) + 1
        if freeze:
            value.flags.writeable = False
        if self.max_bytes != 0:
            self._items[key] = value
            self._bytes += value.nbytes
            self._evict()
        return value

    def _evict(self) -> None:
        if self.max_bytes is None:
            return
        # Never evict the most-recently-inserted entry: an oversized
        # single array is simply not retained after being handed out.
        while self._bytes > self.max_bytes and len(self._items) > 1:
            _, dropped = self._items.popitem(last=False)
            self._bytes -= dropped.nbytes
            self.stats.evictions += 1
        if self._bytes > self.max_bytes and self._items:
            _, dropped = self._items.popitem(last=False)
            self._bytes -= dropped.nbytes
            self.stats.evictions += 1

    def clear(self) -> None:
        self._items.clear()
        self._bytes = 0


class MetricContext:
    """Cached metric engine for one curve on its universe.

    All metric methods are exact and bit-for-bit identical to the legacy
    free functions in :mod:`repro.core`; they differ only in sharing the
    intermediates.  Scalar results (``davg``, all-pairs values, …) are
    memoized unconditionally; array intermediates live in a
    memory-bounded LRU store (see :data:`DEFAULT_CACHE_BYTES`).

    >>> from repro import Universe, ZCurve
    >>> from repro.engine import MetricContext
    >>> ctx = MetricContext(ZCurve(Universe.power_of_two(d=2, k=3)))
    >>> ctx.davg() >= ctx.lower_bound()
    True
    """

    def __init__(
        self,
        curve: SpaceFillingCurve,
        max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
        universe_store: Optional[_BoundedStore] = None,
    ) -> None:
        self.curve = curve
        self.universe = curve.universe
        self._store = _BoundedStore(max_bytes)
        #: Optional store shared by every context of the same universe
        #: (wired by :class:`repro.engine.ContextPool`); holds
        #: curve-independent intermediates such as ``neighbor_counts``.
        self._universe_store = universe_store
        #: Intermediate key → zero-arg factory deriving the array cheaply
        #: from another curve's context (wired by the pool for
        #: transform-derived curves).  Derived arrays are bit-for-bit
        #: identical to from-scratch computation; only the cost differs.
        self._derivations: Dict[str, Callable[[], np.ndarray]] = {}
        self._scalars: Dict[Tuple, object] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Hit/miss/compute counters of the intermediate store."""
        return self._store.stats

    @property
    def cache_bytes(self) -> int:
        """Bytes of intermediates currently cached."""
        return self._store.nbytes

    def clear_cache(self) -> None:
        """Drop every cached intermediate and memoized scalar."""
        self._store.clear()
        self._scalars.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricContext({self.curve!r})"

    def _require_neighbors(self) -> None:
        if self.universe.side < 2:
            raise ValueError(
                "stretch metrics need side >= 2 (no nearest neighbors "
                "otherwise)"
            )

    def _scalar(self, key: Tuple, compute: Callable[[], object]) -> object:
        if key not in self._scalars:
            self._scalars[key] = compute()
        return self._scalars[key]

    def _cached(
        self, key: str, compute: Callable[[], np.ndarray], freeze: bool = True
    ) -> np.ndarray:
        """Store lookup honoring any pool-installed derivation rule."""
        return self._store.get_or_compute(
            key, compute, freeze=freeze, derive=self._derivations.get(key)
        )

    # ------------------------------------------------------------------
    # Shared intermediates
    # ------------------------------------------------------------------
    def key_grid(self) -> np.ndarray:
        """The curve's dense key grid (built once per curve).

        Not frozen: the array is the curve's own cache, which predates
        the engine and stays writable — freezing it here would flip the
        curve's public ``key_grid()`` read-only as a side effect.
        """
        return self._cached("key_grid", self.curve.key_grid, freeze=False)

    def order(self) -> np.ndarray:
        """Cells in curve order (cached on the curve itself)."""
        return self.curve.order()

    def flat_keys(self) -> np.ndarray:
        """Keys in cell-rank order: ``flat_keys()[rank(α)] = π(α)``.

        The rank order is the simple-curve enumeration (axis 0 fastest),
        matching :meth:`repro.grid.universe.Universe.all_coords`.
        """
        return self._cached(
            "flat_keys",
            lambda: self.key_grid().reshape(-1, order="F"),
        )

    def inverse_permutation(self) -> np.ndarray:
        """The rank grid ``π^{-1}`` as ranks: ``inv[π(α)] = rank(α)``.

        ``rank_to_coords(inv[keys], universe)`` recovers coordinates for
        any key array — the cached inverse the range-query index and the
        window metrics build on.
        """

        def compute() -> np.ndarray:
            inverse = np.empty(self.universe.n, dtype=np.int64)
            inverse[self.flat_keys()] = np.arange(
                self.universe.n, dtype=np.int64
            )
            return inverse

        return self._cached("inverse_perm", compute)

    def axis_pair_slices(self, axis: int) -> tuple:
        """``(lo, hi)`` slicing tuples over the NN pairs of ``G_{axis+1}``.

        Memoized; downstream consumers (partitioning, halo exchange)
        take these from the context instead of rebuilding the pair
        enumeration themselves.
        """
        if not 0 <= axis < self.universe.d:
            raise ValueError(
                f"axis must be in [0, {self.universe.d}), got {axis}"
            )
        return self._scalar(
            ("axis_slices", axis),
            lambda: axis_pair_index_arrays(self.universe, axis),
        )

    def axis_pair_curve_distances(self, axis: int) -> np.ndarray:
        """``∆π`` over the NN pairs of ``G_{axis+1}`` (cached per axis)."""
        if not 0 <= axis < self.universe.d:
            raise ValueError(
                f"axis must be in [0, {self.universe.d}), got {axis}"
            )

        def compute() -> np.ndarray:
            grid = self.key_grid()
            lo, hi = self.axis_pair_slices(axis)
            return np.abs(grid[hi] - grid[lo])

        return self._cached(f"axis_dist[{axis}]", compute)

    def window_shift_distances(
        self, window: int, metric: str = "manhattan"
    ) -> np.ndarray:
        """Grid distances of all curve steps of size ``window`` (cached).

        Entry ``t`` is ``∆(π^{-1}(t), π^{-1}(t+window))`` in the chosen
        grid metric — the array behind the Gotsman–Lindenbaum window
        dilation metrics in :mod:`repro.analysis.locality`.
        """
        if window < 1 or window >= self.universe.n:
            raise ValueError(f"window must be in [1, n), got {window}")
        if metric not in ("manhattan", "euclidean"):
            raise ValueError("metric must be 'manhattan' or 'euclidean'")

        def compute() -> np.ndarray:
            from repro.grid.metrics import euclidean, manhattan

            path = self.order()
            a, b = path[:-window], path[window:]
            return manhattan(a, b) if metric == "manhattan" else euclidean(a, b)

        return self._cached(f"win_dist[{window},{metric}]", compute)

    def neighbor_counts(self) -> np.ndarray:
        """Dense ``|N(α)|`` grid (cached; curve-independent).

        When the context belongs to a :class:`repro.engine.ContextPool`,
        this lives in the pool's per-universe store so every curve of
        the universe shares one copy.
        """
        store = (
            self._universe_store
            if self._universe_store is not None
            else self._store
        )
        return store.get_or_compute(
            "neighbor_counts", lambda: neighbor_count_grid(self.universe)
        )

    # ------------------------------------------------------------------
    # Per-cell grids
    # ------------------------------------------------------------------
    def per_cell_stretch_sums(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-cell ``(Σ_{β∈N(α)} ∆π(α,β), |N(α)|)`` as dense grids."""
        self._require_neighbors()

        def compute() -> np.ndarray:
            sums = np.zeros(self.universe.shape, dtype=np.int64)
            for axis in range(self.universe.d):
                dist = self.axis_pair_curve_distances(axis)
                lo, hi = self.axis_pair_slices(axis)
                sums[lo] += dist
                sums[hi] += dist
            return sums

        sums = self._store.get_or_compute("per_cell_sums", compute)
        return sums, self.neighbor_counts()

    def per_cell_avg_stretch(self) -> np.ndarray:
        """Dense grid of ``δ^avg_π(α)`` (Definition 1)."""
        sums, counts = self.per_cell_stretch_sums()
        return self._store.get_or_compute(
            "per_cell_avg", lambda: sums / counts
        )

    def per_cell_max_stretch(self) -> np.ndarray:
        """Dense grid of ``δ^max_π(α)`` (Definition 3)."""
        self._require_neighbors()

        def compute() -> np.ndarray:
            best = np.zeros(self.universe.shape, dtype=np.int64)
            for axis in range(self.universe.d):
                dist = self.axis_pair_curve_distances(axis)
                lo, hi = self.axis_pair_slices(axis)
                np.maximum(best[lo], dist, out=best[lo])
                np.maximum(best[hi], dist, out=best[hi])
            return best

        return self._store.get_or_compute("per_cell_max", compute)

    def nn_distance_values(self) -> np.ndarray:
        """Flat ``∆π`` over all unordered NN pairs (each once)."""
        self._require_neighbors()

        def compute() -> np.ndarray:
            parts = [
                self.axis_pair_curve_distances(axis).reshape(-1)
                for axis in range(self.universe.d)
            ]
            return np.concatenate(parts)

        return self._store.get_or_compute("nn_values", compute)

    # ------------------------------------------------------------------
    # Scalar metrics
    # ------------------------------------------------------------------
    def lambda_sums(self) -> np.ndarray:
        """``[Λ_1(π), …, Λ_d(π)]`` (Lemma 5 per-dimension totals)."""
        self._require_neighbors()

        def compute() -> np.ndarray:
            return np.array(
                [
                    int(self.axis_pair_curve_distances(axis).sum())
                    for axis in range(self.universe.d)
                ],
                dtype=np.int64,
            )

        return self._store.get_or_compute("lambda_sums", compute)

    def davg(self) -> float:
        """``D^avg(π)`` (Definition 2), exact."""
        return self._scalar(
            ("davg",), lambda: float(self.per_cell_avg_stretch().mean())
        )

    def dmax(self) -> float:
        """``D^max(π)`` (Definition 4), exact."""
        return self._scalar(
            ("dmax",), lambda: float(self.per_cell_max_stretch().mean())
        )

    def lower_bound(self) -> float:
        """Theorem 1 lower bound on ``D^avg`` for this universe."""
        return self._scalar(
            ("lower_bound",),
            lambda: davg_lower_bound(self.universe.n, self.universe.d),
        )

    def davg_ratio(self) -> float:
        """``D^avg / LB`` — the paper's optimality ratio."""
        return self.davg() / self.lower_bound()

    # ------------------------------------------------------------------
    # All-pairs stretch (Section V-B)
    # ------------------------------------------------------------------
    def allpairs_exact(
        self, metric: str = "manhattan", chunk: int = 1024
    ) -> float:
        """Exact ``str_{avg,m}(π)``, memoized per grid metric."""
        return self._scalar(
            ("allpairs_exact", metric),
            lambda: average_allpairs_stretch_exact(self.curve, metric, chunk),
        )

    def allpairs_sampled(
        self,
        n_pairs: int = 100_000,
        metric: str = "manhattan",
        seed: int = 0,
    ) -> AllPairsEstimate:
        """Sampled ``str_{avg,m}(π)``, memoized per (budget, metric, seed)."""
        return self._scalar(
            ("allpairs_sampled", n_pairs, metric, seed),
            lambda: average_allpairs_stretch_sampled(
                self.curve, n_pairs, metric, seed
            ),
        )

    # ------------------------------------------------------------------
    # Lemma 5 decomposition
    # ------------------------------------------------------------------
    def gij_decomposition(
        self, axis: int
    ) -> dict[int, tuple[int, np.ndarray]]:
        """Split ``G_{axis+1}`` into the Lemma 5 groups ``G_{i,j}``."""
        # Late import: core.stretch imports this module for its wrappers.
        from repro.core.stretch import trailing_ones

        def compute() -> dict[int, tuple[int, np.ndarray]]:
            universe = self.universe
            k = universe.k  # requires power-of-two side, as in the paper
            dist = self.axis_pair_curve_distances(axis)
            shape = [1] * universe.d
            shape[axis] = universe.side - 1
            kappa = np.arange(universe.side - 1, dtype=np.int64).reshape(
                shape
            )
            kappa = np.broadcast_to(kappa, dist.shape)
            groups = trailing_ones(kappa) + 1  # j index, 1-based
            out: dict[int, tuple[int, np.ndarray]] = {}
            flat_groups = groups.reshape(-1)
            flat_dist = dist.reshape(-1)
            for j in range(1, k + 1):
                mask = flat_groups == j
                out[j] = (int(mask.sum()), flat_dist[mask])
            return out

        return self._scalar(("gij", axis), compute)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def stretch_report(
        self,
        include_allpairs: bool = False,
        allpairs_samples: int = 50_000,
        seed: int = 0,
    ):
        """Full :class:`repro.core.summary.StretchReport` off the cache."""
        from repro.core.summary import stretch_report

        return stretch_report(
            self.curve,
            include_allpairs=include_allpairs,
            allpairs_samples=allpairs_samples,
            seed=seed,
            context=self,
        )


def get_context(
    curve: Union[SpaceFillingCurve, MetricContext],
) -> MetricContext:
    """The shared :class:`MetricContext` of ``curve`` (created lazily).

    Also the coercion point of the whole downstream stack: every
    function in :mod:`repro.analysis` and :mod:`repro.apps` accepts
    either a bare curve or an existing context and calls this first, so
    passing an already-built context (e.g. one obtained from a
    :class:`repro.engine.ContextPool`) is a no-op that reuses its cache.

    The legacy free functions route through this, so repeated metric
    calls on the same curve reuse intermediates no matter which API
    layer computed them first.  The context is stored on the curve
    object itself, so its cached intermediates live and die with the
    curve (the curve↔context reference cycle is ordinary gc fodder —
    a registry keyed by curves would pin them forever instead).

    The shared context always uses :data:`DEFAULT_CACHE_BYTES`; for a
    custom budget (or ``max_bytes=0`` to disable caching), construct a
    private :class:`MetricContext` directly.
    """
    if isinstance(curve, MetricContext):
        return curve
    ctx = getattr(curve, "_metric_context", None)
    if ctx is None:
        ctx = MetricContext(curve, max_bytes=DEFAULT_CACHE_BYTES)
        curve._metric_context = ctx
    return ctx
