"""Incremental metric maintenance for dynamic point populations.

Every other workload in the repo evaluates a *static* grid: the curve
is fixed, every cell is occupied, and the metrics are closed-form
reductions over the whole universe.  A time-stepped simulation (the
Warren–Salmon motivation seeded in :mod:`repro.apps.resort` and
:mod:`repro.apps.nbody`) is the opposite shape — points arrive, move
and leave a few at a time — and recomputing the population metrics
from scratch after every batch is O(N) work for an O(k) change.

:class:`DynamicUniverse` owns a point population over an existing
:class:`repro.engine.MetricContext` and maintains the population
metrics **incrementally** under batches of k moves in O(k·d) work:

* **D^avg** — the mean curve-distance over occupied nearest-neighbor
  cell pairs — is kept as two integers, ``stretch_sum`` (int64 Σ ∆π
  over occupied NN edges) and ``edge_count``.  A move touches at most
  ``2·2d`` edges (those incident to the vacated and the newly occupied
  cell), so the integer deltas are O(d) per op; the single float
  division happens in Python at query time.  Integer addition is
  order-free, so the incremental sums are **bit-for-bit equal** to a
  from-scratch recompute — :meth:`recompute` asserts ``==``, never
  approximate equality (the engine-wide parity doctrine).
* **Dilation** — the max Manhattan distance between occupied cells
  ``window`` apart in curve-key order — lives in a bucketed window-max
  structure: each key-range bucket holds the max over pairs whose left
  endpoint falls in the bucket, an insert/delete invalidates only the
  O(window) pairs whose left endpoint index shifts, and dirty buckets
  are repaired lazily at query time.  Integer maxima are order-free,
  so parity is again exact.
* **Partition loads** — points per equal-key-range part
  (``part = key · parts // n``, the ``apps.partition`` equal-count
  split applied to keys) — are per-part integer counters.

Construction is pool-aware: pass a :class:`repro.engine.ContextPool`
and the universe's cached key grids and neighbor structures are shared
with every other consumer of the pool (the serve mode's sessions ride
on the service's pools this way).  Move encoding goes through the
``curve.keys_of`` batch codec — one native-backend call per batch, not
one per op.

Online **curve re-selection**: when the relative drift of the
incremental D^avg from its bulk-load baseline crosses
``reselect_threshold``, the population is re-evaluated under the
candidate curve specs (a pooled :func:`repro.core.optimal.select_curve`
pass over the *same* point set) and re-keyed onto the winner.  See
``docs/dynamic.md`` for the delta model and the re-selection policy.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.optimal import population_stretch, select_curve
from repro.engine.context import MetricContext, get_context
from repro.engine.pool import ContextPool

__all__ = [
    "DynamicMetrics",
    "DynamicUniverse",
    "ReselectionEvent",
]

#: Bucket count ceiling for the dilation window-max structure.  The
#: bucket *width* in key space is ``max(1, n // _DILATION_BUCKETS)``,
#: so repairing one dirty bucket scans O(occupied / buckets) pairs.
#: Buckets are stored sparsely (only buckets holding a pair's left
#: endpoint exist), so a fine grain costs no memory on sparse
#: populations while keeping per-repair scans near O(window).
_DILATION_BUCKETS = 16384

#: Default candidate specs for online re-selection; specs that cannot
#: be constructed on the session's universe are skipped, mirroring the
#: sweep planner's non-strict behavior.
DEFAULT_CANDIDATES = ("z", "gray", "hilbert", "snake", "simple")


@dataclass(frozen=True)
class DynamicMetrics:
    """One snapshot of the population aggregates.

    All integer fields are Python ints and ``davg`` is the single
    Python float division ``stretch_sum / edge_count`` (0.0 when there
    are no occupied NN edges), so snapshots from the incremental path
    and from :meth:`DynamicUniverse.recompute` compare with ``==``.
    """

    n_points: int
    n_cells: int
    edge_count: int
    stretch_sum: int
    davg: float
    dilation: int
    loads: Tuple[int, ...]


@dataclass(frozen=True)
class ReselectionEvent:
    """One online re-selection pass (threshold crossing)."""

    step: int
    drift: float
    from_spec: str
    to_spec: str
    #: ``spec -> population D^avg`` for every evaluated candidate.
    scores: Dict[str, float] = field(compare=False)
    switched: bool = False


class DynamicUniverse:
    """A mutable point population with incrementally maintained metrics.

    Parameters
    ----------
    curve:
        The ordering curve, its :class:`~repro.engine.MetricContext`,
        or a curve spec string (requires ``universe=``).
    pool:
        Optional :class:`~repro.engine.ContextPool`; contexts (current
        curve and re-selection candidates) resolve through it so cached
        key grids are shared.  Created lazily when omitted.
    parts:
        Partition count for the per-part load counters.
    window:
        Dilation window over occupied cells in key order (default 1:
        consecutive occupied cells).
    reselect_threshold:
        Relative D^avg drift that triggers :meth:`reselect` during
        :meth:`apply`; ``None`` disables automatic re-selection.
    candidates:
        Curve spec strings evaluated by :meth:`reselect`.
    """

    def __init__(
        self,
        curve,
        *,
        universe=None,
        pool: Optional[ContextPool] = None,
        parts: int = 8,
        window: int = 1,
        reselect_threshold: Optional[float] = None,
        candidates: Optional[Sequence[str]] = None,
    ) -> None:
        if parts < 1:
            raise ValueError("parts must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        if isinstance(curve, str):
            if universe is None:
                raise ValueError("spec-string construction needs universe=")
            from repro.engine.sweep import CurveSpec

            spec = CurveSpec.parse(curve)
            curve = spec.make(universe)
            self.spec = spec.label
        else:
            self.spec = getattr(
                getattr(curve, "curve", curve), "name", str(curve)
            )
        self._pool = pool
        if pool is not None and not isinstance(curve, MetricContext):
            self.ctx = pool.get(curve)
        else:
            self.ctx = get_context(curve)
        self.universe = self.ctx.universe
        self.parts = int(parts)
        self.window = int(window)
        self.reselect_threshold = reselect_threshold
        self.candidates: Tuple[str, ...] = tuple(
            candidates if candidates is not None else DEFAULT_CANDIDATES
        )
        #: Completed :meth:`apply` batches.
        self.steps = 0
        #: Every re-selection pass, in order.
        self.reselections: List[ReselectionEvent] = []

        d, side = self.universe.d, self.universe.side
        #: Simple-curve rank strides (axis 0 fastest, the
        #: ``Universe.all_coords`` enumeration order), as Python ints.
        self._strides = [side**axis for axis in range(d)]
        self._bucket_width = max(1, self.universe.n // _DILATION_BUCKETS)

        # Point storage, indexed by pid (ids are never reused).
        self._pos = np.empty((0, d), dtype=np.int64)
        self._keys = np.empty(0, dtype=np.int64)
        self._alive = np.empty(0, dtype=bool)
        self._next_id = 0
        self._count = 0

        # Cell-level occupancy: simple rank -> [point count, curve key];
        # curve key -> coordinate tuple for occupied cells.
        self._occ: Dict[int, List[int]] = {}
        self._cell_coords: Dict[int, Tuple[int, ...]] = {}
        #: Occupied cell keys, sorted (the dilation pair order).
        self._occ_keys: List[int] = []
        #: Particle order: (key, pid) sorted — ties broken by pid, which
        #: is exactly ``np.argsort(keys, kind="stable")`` over pid-ordered
        #: arrays (the resort/nbody rank contract).
        self._sorted: List[Tuple[int, int]] = []

        # Incremental aggregates (Python ints: order-free, overflow-free).
        self._stretch_sum = 0
        self._edge_count = 0
        self._loads = [0] * self.parts
        self._bucket_max: Dict[int, int] = {}
        self._dirty_buckets: set = set()
        self._baseline_davg = 0.0
        #: Pids created by the most recent batch (bulk_load/apply).
        self._last_pids = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def n_cells(self) -> int:
        """Occupied cells (a cell may hold many points)."""
        return len(self._occ)

    def positions(self) -> np.ndarray:
        """Alive positions in pid order, ``(m, d)`` (a fresh array)."""
        live = self._alive[: self._next_id]
        return self._pos[: self._next_id][live].copy()

    def pids(self) -> np.ndarray:
        """Alive pids in pid order."""
        return np.nonzero(self._alive[: self._next_id])[0].astype(np.int64)

    def keys_by_pid(self) -> np.ndarray:
        """Curve keys indexed by pid (dead slots undefined; fresh array)."""
        return self._keys[: self._next_id].copy()

    def particle_ranks(self) -> np.ndarray:
        """Array-slot rank per pid in the (key, pid)-sorted order.

        ``-1`` for dead pids.  Equal to the stable-argsort inverse
        permutation the static resort path computes.
        """
        ranks = np.full(self._next_id, -1, dtype=np.int64)
        for rank, (_, pid) in enumerate(self._sorted):
            ranks[pid] = rank
        return ranks

    def sorted_keys(self) -> np.ndarray:
        """Alive keys in (key, pid) order — the curve-sorted store."""
        return np.array([key for key, _ in self._sorted], dtype=np.int64)

    def sorted_pids(self) -> np.ndarray:
        """Alive pids in (key, pid) order."""
        return np.array([pid for _, pid in self._sorted], dtype=np.int64)

    def sorted_positions(self) -> np.ndarray:
        """Alive positions in (key, pid) order, ``(m, d)``."""
        if not self._sorted:
            return np.empty((0, self.universe.d), dtype=np.int64)
        return self._pos[self.sorted_pids()]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def bulk_load(self, positions: np.ndarray) -> np.ndarray:
        """Insert many points at once; returns their pids.

        On an empty universe this takes a fully vectorized path — one
        ``keys_of`` batch encode, one lexsort, one unique — producing
        aggregates identical to (because computed the same way as) the
        from-scratch reference; afterwards the structures are exactly
        what op-by-op inserts would have built.
        """
        pos = self.universe.validate_coords(positions)
        if pos.ndim != 2:
            raise ValueError("positions must be a (m, d) array")
        if len(pos) == 0:
            return np.empty(0, dtype=np.int64)
        if self._count:
            self.apply(
                [("insert", tuple(row)) for row in pos.tolist()],
                _reselect=False,
            )
            return self._last_pids
        keys = self.ctx.curve.keys_of(pos, backend=self.ctx.backend)
        m = len(pos)
        self._grow(m)
        self._pos[:m] = pos
        self._keys[:m] = keys
        self._alive[:m] = True
        self._next_id = m
        self._count = m

        pids = np.arange(m, dtype=np.int64)
        order = np.lexsort((pids, keys))
        self._sorted = list(
            zip(keys[order].tolist(), pids[order].tolist())
        )

        ranks = pos @ np.asarray(self._strides, dtype=np.int64)
        cell_ranks, first, counts = np.unique(
            ranks, return_index=True, return_counts=True
        )
        cell_keys = keys[first]
        cell_pos = pos[first]
        for rank, count, key, row in zip(
            cell_ranks.tolist(),
            counts.tolist(),
            cell_keys.tolist(),
            cell_pos.tolist(),
        ):
            self._occ[rank] = [count, key]
            self._cell_coords[key] = tuple(row)
        self._occ_keys = sorted(self._cell_coords)
        self._dirty_buckets.update(
            key // self._bucket_width for key in self._occ_keys
        )

        stretch = population_stretch(
            self.ctx.curve,
            pos,
            backend=self.ctx.backend,
            kernels=self.ctx.kernels,
        )
        self._stretch_sum = stretch.stretch_sum
        self._edge_count = stretch.edge_count
        part_idx = keys * self.parts // self.universe.n
        loads = np.bincount(part_idx, minlength=self.parts)
        self._loads = [int(v) for v in loads]
        self._baseline_davg = self._davg()
        self._last_pids = pids
        return pids

    def apply(self, moves: Sequence, *, _reselect: bool = True) -> DynamicMetrics:
        """Apply one batch of ops and return the updated metrics.

        ``moves`` is a sequence of ``("insert", coords)``,
        ``("delete", pid)`` and ``("move", pid, coords)`` tuples,
        applied in order (duplicate targets compose sequentially; an
        empty batch is a no-op step).  All new coordinates are encoded
        in **one** ``curve.keys_of`` batch call; the per-op structure
        repair is O(d) dict/bisect work, so a batch of k ops costs
        O(k·d) plus O(k log m) order maintenance.
        """
        ops, new_keys = self._encode_batch(moves)
        heavy = len(ops) * 4 > self._count + 16
        inserted: List[int] = []
        key_cursor = 0
        for op in ops:
            kind = op[0]
            if kind == "insert":
                coords = op[1]
                key = new_keys[key_cursor]
                key_cursor += 1
                pid = self._next_id
                self._grow(pid + 1)
                self._pos[pid] = coords
                self._keys[pid] = key
                self._alive[pid] = True
                self._next_id = pid + 1
                self._count += 1
                self._add_point(key, coords)
                if not heavy:
                    insort(self._sorted, (key, pid))
                inserted.append(pid)
            elif kind == "delete":
                pid = op[1]
                # Re-checked here: an earlier op in this batch may have
                # deleted the target the pre-pass saw alive.
                self._check_alive(pid)
                key = int(self._keys[pid])
                coords = tuple(self._pos[pid].tolist())
                self._alive[pid] = False
                self._count -= 1
                self._remove_point(key, coords)
                if not heavy:
                    del self._sorted[
                        bisect_left(self._sorted, (key, pid))
                    ]
            else:  # move
                pid, coords = op[1], op[2]
                self._check_alive(pid)
                key = new_keys[key_cursor]
                key_cursor += 1
                old_key = int(self._keys[pid])
                old_coords = tuple(self._pos[pid].tolist())
                self._remove_point(old_key, old_coords)
                self._pos[pid] = coords
                self._keys[pid] = key
                self._add_point(key, coords)
                if not heavy:
                    del self._sorted[
                        bisect_left(self._sorted, (old_key, pid))
                    ]
                    insort(self._sorted, (key, pid))
        if heavy:
            self._rebuild_sorted()
        self._last_pids = np.array(inserted, dtype=np.int64)
        self.steps += 1
        if (
            _reselect
            and self.reselect_threshold is not None
            and self.drift() > self.reselect_threshold
        ):
            self.reselect()
        return self.metrics()

    def _encode_batch(self, moves: Sequence):
        """Validate ops and batch-encode every new coordinate."""
        ops = []
        coords_batch: List[Tuple[int, ...]] = []
        for op in moves:
            if not op or op[0] not in ("insert", "delete", "move"):
                raise ValueError(f"unknown op {op!r}")
            kind = op[0]
            if kind == "delete":
                pid = int(op[1])
                self._check_alive(pid)
                ops.append(("delete", pid))
                continue
            coords = tuple(int(c) for c in (op[1] if kind == "insert" else op[2]))
            if len(coords) != self.universe.d or not all(
                0 <= c < self.universe.side for c in coords
            ):
                raise ValueError(
                    f"coords {coords} outside the {self.universe.d}-d "
                    f"side-{self.universe.side} universe"
                )
            if kind == "insert":
                ops.append(("insert", coords))
            else:
                pid = int(op[1])
                self._check_alive(pid)
                ops.append(("move", pid, coords))
            coords_batch.append(coords)
        if coords_batch:
            encoded = self.ctx.curve.keys_of(
                np.asarray(coords_batch, dtype=np.int64),
                backend=self.ctx.backend,
            )
            new_keys = encoded.tolist()
        else:
            new_keys = []
        return ops, new_keys

    def _check_alive(self, pid: int) -> None:
        if not (0 <= pid < self._next_id) or not self._alive[pid]:
            raise KeyError(f"no live point with id {pid}")

    def _grow(self, capacity: int) -> None:
        if capacity <= len(self._keys):
            return
        new_cap = max(capacity, 2 * len(self._keys), 16)
        pos = np.empty((new_cap, self.universe.d), dtype=np.int64)
        keys = np.empty(new_cap, dtype=np.int64)
        alive = np.zeros(new_cap, dtype=bool)
        pos[: self._next_id] = self._pos[: self._next_id]
        keys[: self._next_id] = self._keys[: self._next_id]
        alive[: self._next_id] = self._alive[: self._next_id]
        self._pos, self._keys, self._alive = pos, keys, alive

    def _rebuild_sorted(self) -> None:
        live = np.nonzero(self._alive[: self._next_id])[0]
        keys = self._keys[live]
        order = np.lexsort((live, keys))
        self._sorted = list(
            zip(keys[order].tolist(), live[order].tolist())
        )

    # -- cell-level bookkeeping ----------------------------------------
    def _add_point(self, key: int, coords: Tuple[int, ...]) -> None:
        self._loads[key * self.parts // self.universe.n] += 1
        rank = sum(c * s for c, s in zip(coords, self._strides))
        entry = self._occ.get(rank)
        if entry is not None:
            entry[0] += 1
            return
        self._occ[rank] = [1, key]
        self._cell_coords[key] = coords
        # New occupied cell: add its edges to every occupied neighbor.
        for nrank, in_bounds in self._neighbor_ranks(rank, coords):
            if not in_bounds:
                continue
            nentry = self._occ.get(nrank)
            if nentry is not None:
                self._stretch_sum += abs(key - nentry[1])
                self._edge_count += 1
        pos = bisect_left(self._occ_keys, key)
        self._occ_keys.insert(pos, key)
        self._dirty_window(pos)

    def _remove_point(self, key: int, coords: Tuple[int, ...]) -> None:
        self._loads[key * self.parts // self.universe.n] -= 1
        rank = sum(c * s for c, s in zip(coords, self._strides))
        entry = self._occ[rank]
        entry[0] -= 1
        if entry[0]:
            return
        del self._occ[rank]
        for nrank, in_bounds in self._neighbor_ranks(rank, coords):
            if not in_bounds:
                continue
            nentry = self._occ.get(nrank)
            if nentry is not None:
                self._stretch_sum -= abs(key - nentry[1])
                self._edge_count -= 1
        pos = bisect_left(self._occ_keys, key)
        self._dirty_window(pos)
        del self._occ_keys[pos]
        del self._cell_coords[key]

    def _neighbor_ranks(self, rank: int, coords: Tuple[int, ...]):
        side = self.universe.side
        for axis, stride in enumerate(self._strides):
            c = coords[axis]
            yield rank - stride, c > 0
            yield rank + stride, c + 1 < side

    def _dirty_window(self, pos: int) -> None:
        """Mark the buckets of the lefts whose window pair changed.

        A mutation at sorted position ``pos`` changes exactly the pairs
        whose left endpoint sits at index ``pos - window .. pos`` (the
        mutated key itself plus its ``window`` predecessors), so those
        keys' buckets are the invalidation set — O(window) marks.
        """
        keys = self._occ_keys
        for i in range(max(0, pos - self.window), min(pos + 1, len(keys))):
            self._dirty_buckets.add(keys[i] // self._bucket_width)

    def _repair_dilation(self) -> int:
        keys = self._occ_keys
        coords = self._cell_coords
        w = self.window
        width = self._bucket_width
        last_left = len(keys) - w
        for bucket in self._dirty_buckets:
            lo = bisect_left(keys, bucket * width)
            hi = bisect_left(keys, (bucket + 1) * width)
            if hi > last_left:
                hi = last_left
            best = -1
            for i in range(lo, hi):
                a = coords[keys[i]]
                b = coords[keys[i + w]]
                dist = 0
                for x, y in zip(a, b):
                    dist += x - y if x >= y else y - x
                if dist > best:
                    best = dist
            if best >= 0:
                self._bucket_max[bucket] = best
            else:
                self._bucket_max.pop(bucket, None)
        self._dirty_buckets.clear()
        return max(self._bucket_max.values(), default=0)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _davg(self) -> float:
        # The only float op: one Python division over the int aggregates.
        if not self._edge_count:
            return 0.0
        return self._stretch_sum / self._edge_count

    def metrics(self) -> DynamicMetrics:
        """The current aggregates from the incremental state."""
        return DynamicMetrics(
            n_points=self._count,
            n_cells=len(self._occ),
            edge_count=self._edge_count,
            stretch_sum=self._stretch_sum,
            davg=self._davg(),
            dilation=self._repair_dilation(),
            loads=tuple(self._loads),
        )

    def recompute(self) -> DynamicMetrics:
        """Full from-scratch recompute of every aggregate (O(m·d)).

        The parity reference: after any move sequence,
        ``self.metrics() == self.recompute()`` holds bit-for-bit — the
        integer aggregates are order-free sums/maxima over the same
        edge/pair sets and the float division is the same operation on
        the same ints.
        """
        pos = self.positions()
        m = len(pos)
        if m == 0:
            return DynamicMetrics(
                n_points=0,
                n_cells=0,
                edge_count=0,
                stretch_sum=0,
                davg=0.0,
                dilation=0,
                loads=(0,) * self.parts,
            )
        keys = self.ctx.curve.keys_of(pos, backend=self.ctx.backend)
        stretch = population_stretch(
            self.ctx.curve,
            pos,
            backend=self.ctx.backend,
            kernels=self.ctx.kernels,
        )
        ranks = pos @ np.asarray(self._strides, dtype=np.int64)
        _, first = np.unique(ranks, return_index=True)
        cell_keys = keys[first]
        cell_pos = pos[first]
        order = np.argsort(cell_keys, kind="stable")
        sorted_pos = cell_pos[order]
        w = self.window
        if len(sorted_pos) > w:
            dilation = int(
                np.abs(sorted_pos[w:] - sorted_pos[:-w])
                .sum(axis=1)
                .max()
            )
        else:
            dilation = 0
        part_idx = keys * self.parts // self.universe.n
        loads = np.bincount(part_idx, minlength=self.parts)
        return DynamicMetrics(
            n_points=m,
            n_cells=len(cell_keys),
            edge_count=stretch.edge_count,
            stretch_sum=stretch.stretch_sum,
            davg=stretch.davg,
            dilation=dilation,
            loads=tuple(int(v) for v in loads),
        )

    # ------------------------------------------------------------------
    # Drift + online re-selection
    # ------------------------------------------------------------------
    def drift(self) -> float:
        """Relative D^avg drift from the bulk-load / last-reselect baseline."""
        base = self._baseline_davg
        cur = self._davg()
        if base == 0.0:
            # No meaningful baseline yet (empty population or no edges
            # at bulk-load); drift is defined once a baseline exists.
            return 0.0
        return abs(cur - base) / base

    def _pool_or_create(self) -> ContextPool:
        if self._pool is None:
            self._pool = ContextPool(backend=self.ctx.backend)
        return self._pool

    def reselect(
        self, candidates: Optional[Sequence[str]] = None
    ) -> ReselectionEvent:
        """Pooled re-evaluation of the candidate curves; re-key if beaten.

        Evaluates the population D^avg under every constructible
        candidate spec through the shared pool (cached grids are
        reused), switches to the best candidate when it is *strictly*
        better than the current curve, and resets the drift baseline
        either way so one crossing triggers one pass.
        """
        from repro.engine.sweep import CurveSpec

        pool = self._pool_or_create()
        pos = self.positions()
        specs = tuple(candidates if candidates is not None else self.candidates)
        labels = [self.spec]
        contexts = {self.spec: self.ctx}
        for text in specs:
            try:
                spec = CurveSpec.parse(text)
                if spec.label in contexts:
                    continue
                ctx = pool.get(spec.make(self.universe))
            except (ValueError, KeyError, NotImplementedError):
                continue  # inapplicable candidate, like a non-strict sweep
            contexts[spec.label] = ctx
            labels.append(spec.label)
        # The pooled evaluation: every candidate context comes from the
        # shared pool, so cached key grids are reused across passes.
        best, davgs = select_curve(
            [contexts[label] for label in labels], pos
        )
        scores = dict(zip(labels, davgs))
        best_label = labels[best]
        drift = self.drift()
        switched = best_label != self.spec
        event = ReselectionEvent(
            step=self.steps,
            drift=drift,
            from_spec=self.spec,
            to_spec=best_label if switched else self.spec,
            scores=dict(scores),
            switched=switched,
        )
        if switched:
            self._rebase(contexts[best_label], best_label)
        self._baseline_davg = self._davg()
        self.reselections.append(event)
        return event

    def _rebase(self, ctx: MetricContext, label: str) -> None:
        """Re-key the whole population onto a new curve (O(m·d))."""
        self.ctx = ctx
        self.spec = label
        live = np.nonzero(self._alive[: self._next_id])[0]
        pos = self._pos[live]
        keys = ctx.curve.keys_of(pos, backend=ctx.backend)
        self._keys[live] = keys
        self._occ.clear()
        self._cell_coords.clear()
        self._occ_keys = []
        self._bucket_max.clear()
        self._dirty_buckets.clear()
        self._stretch_sum = 0
        self._edge_count = 0
        self._loads = [0] * self.parts
        ranks = pos @ np.asarray(self._strides, dtype=np.int64)
        cell_ranks, first, counts = np.unique(
            ranks, return_index=True, return_counts=True
        )
        for rank, count, key, row in zip(
            cell_ranks.tolist(),
            counts.tolist(),
            keys[first].tolist(),
            pos[first].tolist(),
        ):
            self._occ[rank] = [count, key]
            self._cell_coords[key] = tuple(row)
        self._occ_keys = sorted(self._cell_coords)
        self._dirty_buckets.update(
            key // self._bucket_width for key in self._occ_keys
        )
        stretch = population_stretch(
            ctx.curve, pos, backend=ctx.backend, kernels=ctx.kernels
        )
        self._stretch_sum = stretch.stretch_sum
        self._edge_count = stretch.edge_count
        part_idx = keys * self.parts // self.universe.n
        self._loads = [
            int(v) for v in np.bincount(part_idx, minlength=self.parts)
        ]
        self._rebuild_sorted()
