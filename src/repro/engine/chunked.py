"""Block-streaming helpers behind the engine's chunked execution mode.

A chunked :class:`repro.engine.MetricContext` never materializes a dense
``(side,)*d`` array.  The key space is walked in fixed-size blocks in
one of three orders, each serving a different consumer:

* **grid slabs** along axis 0 (C order) — the unit of the NN-pair
  reductions (``D^avg``, ``D^max``, ``Λ_i``, partition edge cuts).  A
  slab is ``planes × side^{d-1}`` cells; only the last hyperplane of
  the previous slab is carried across a slab boundary, so working
  memory is ``O(block)``.
* **rank blocks** (simple-curve order) — the ``flat_keys`` stream.
* **key blocks** (curve order) — the inverse-permutation and
  window-shift streams.

Bit-for-bit parity with the dense path is engineered, not hoped for:

* integer reductions (``Λ`` sums, maxima, edge cuts, cluster counts)
  are order-independent, so any block partition gives the dense value;
* integer *means* (``D^max``, ``nn_mean``) agree with ``np.mean``
  because every partial sum of integer-valued float64s below ``2^53``
  is exact, making NumPy's summation order immaterial;
* the one genuinely order-sensitive reduction — the float mean behind
  ``D^avg`` — replicates NumPy's pairwise summation exactly:
  :func:`pairwise_sum_stream` splits the logical array at the offsets
  ``np.add.reduce`` uses (half, rounded down to a multiple of 8) and
  reduces aligned segments with ``np.add.reduce`` itself, so the
  chunked path performs the identical sequence of float additions
  while buffering only ``O(leaf)`` values.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_CELLS",
    "pairwise_sum_stream",
    "slab_neighbor_counts",
    "slab_axis_slices",
    "accumulate_block_pairs",
    "nn_block_reduction",
]

#: Default block size (cells) when chunked mode is auto-selected.
DEFAULT_CHUNK_CELLS = 1 << 20

#: Largest segment handed to one ``np.add.reduce`` call by
#: :func:`pairwise_sum_stream`; bounds the stream's buffer.
_PW_LEAF = 1 << 15


class _BlockCursor:
    """Sequential float64 reader over a stream of array blocks."""

    def __init__(self, blocks: Iterable[np.ndarray]) -> None:
        self._blocks = iter(blocks)
        self._buffer: List[np.ndarray] = []
        self._available = 0

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` values as one contiguous float64 array."""
        while self._available < count:
            block = np.asarray(next(self._blocks), dtype=np.float64)
            flat = block.reshape(-1)
            if flat.size:
                self._buffer.append(flat)
                self._available += flat.size
        if len(self._buffer) == 1 and self._buffer[0].size == count:
            out = self._buffer.pop()
            self._available = 0
            return out
        joined = np.concatenate(self._buffer)
        out, rest = joined[:count], joined[count:]
        self._buffer = [rest] if rest.size else []
        self._available = rest.size
        return out


def pairwise_sum_stream(
    blocks: Iterable[np.ndarray], total: int, leaf: int = _PW_LEAF
) -> float:
    """``np.add.reduce`` over a streamed array, bit-for-bit.

    ``blocks`` yields consecutive pieces (any sizes) of a logical
    float64 array of ``total`` elements.  The reduction recurses with
    NumPy's own pairwise split rule (``n2 = n//2`` rounded down to a
    multiple of 8, applied while ``n`` exceeds the leaf size) and
    reduces each aligned segment with one ``np.add.reduce`` call, which
    performs the same operations the segment would see inside a single
    full-array reduction.  The result therefore equals
    ``np.add.reduce(np.concatenate(blocks))`` exactly while holding at
    most ``O(leaf + block)`` values.
    """
    if total == 0:
        return 0.0
    cursor = _BlockCursor(blocks)
    leaf = max(int(leaf), 8)

    def reduce(count: int):
        if count <= leaf:
            return np.add.reduce(cursor.take(count))
        half = count // 2
        half -= half % 8
        return reduce(half) + reduce(count - half)

    return float(reduce(total))


def slab_neighbor_counts(
    universe, lo: int, hi: int, out: np.ndarray = None, kernels=None
) -> np.ndarray:
    """``|N(α)|`` for the cells with ``x_0 ∈ [lo, hi)``, as a slab.

    Equals ``neighbor_count_grid(universe)[lo:hi]`` for ``side >= 2``
    without materializing the dense grid.  Boundary cells are handled
    by decrementing the edge hyperplanes in place, so the kernel is
    allocation-free when ``out`` (a reusable int64 buffer of the slab
    shape) is supplied.  ``kernels`` (a loaded
    :class:`repro.engine.native.NativeKernels`) computes the identical
    integers in one compiled pass.
    """
    d, side = universe.d, universe.side
    shape = (hi - lo,) + (side,) * (d - 1)
    if out is None:
        # repro: allow[R004] — documented fallback for callers outside
        # the block loop that supply no reusable out= buffer
        counts = np.empty(shape, dtype=np.int64)
    else:
        if out.shape != shape:
            raise ValueError(
                f"out has shape {out.shape}, expected {shape}"
            )
        counts = out
    if kernels is not None and counts.flags["C_CONTIGUOUS"]:
        return kernels.neighbor_counts(d, side, lo, hi, counts)
    counts[...] = 2 * d
    if lo == 0:
        counts[:1] -= 1
    if hi == side:
        counts[-1:] -= 1
    for axis in range(1, d):
        first = tuple(
            slice(0, 1) if i == axis else slice(None) for i in range(d)
        )
        last = tuple(
            slice(side - 1, side) if i == axis else slice(None)
            for i in range(d)
        )
        counts[first] -= 1
        counts[last] -= 1
    return counts


def slab_axis_slices(d: int, side: int, axis: int) -> Tuple[tuple, tuple]:
    """Slab slicing tuples for the NN pairs along grid ``axis >= 1``.

    Applied to a slab from
    :meth:`repro.engine.MetricContext.iter_key_slabs`, ``slab[lo]`` and
    ``slab[hi]`` are the aligned endpoints of every within-slab pair
    along ``axis`` (axis-0 pairs instead span consecutive planes and
    slab boundaries).
    """
    lo = tuple(
        slice(0, side - 1) if i == axis else slice(None) for i in range(d)
    )
    hi = tuple(
        slice(1, side) if i == axis else slice(None) for i in range(d)
    )
    return lo, hi


def accumulate_block_pairs(
    body: np.ndarray,
    d: int,
    side: int,
    sums: np.ndarray,
    best: np.ndarray,
    lambdas: list,
    scratch,
    kernels=None,
) -> None:
    """Fold every *within-block* NN pair of ``body`` into the partials.

    ``body`` is a block of key planes (shape ``(t,) + (side,)*(d-1)``);
    pairs along axes >= 1 and interior axis-0 pairs (both endpoints in
    the block) update the per-cell ``sums``/``best`` grids and the
    per-axis ``lambdas`` totals in place.  Boundary axis-0 pairs (one
    endpoint outside the block) are the caller's job — the serial
    reduction handles them with its carry, the threaded kernel with
    its adjacent boundary planes — so this single ufunc chain is the
    shared core of both, and a change here keeps them bit-for-bit
    aligned by construction.  Distance temporaries live in ``scratch``
    (a :class:`repro.engine.threads.ScratchBuffers`).  When ``kernels``
    (a loaded :class:`repro.engine.native.NativeKernels`) is given and
    the arrays are contiguous, the whole fold runs as one compiled
    pass — pure int64 arithmetic either way, so the partials are
    bit-for-bit identical.
    """
    if (
        kernels is not None
        and body.flags["C_CONTIGUOUS"]
        and sums.flags["C_CONTIGUOUS"]
        and best.flags["C_CONTIGUOUS"]
    ):
        kernels.nn_block_pairs(body, side, d, sums, best, lambdas)
        return
    for axis in range(1, d):
        lo_s, hi_s = slab_axis_slices(d, side, axis)
        dist = scratch.take("pair_dist", body[hi_s].shape, np.int64)
        np.subtract(body[hi_s], body[lo_s], out=dist)
        np.abs(dist, out=dist)
        lambdas[axis] += int(dist.sum())
        sums[lo_s] += dist
        sums[hi_s] += dist
        np.maximum(best[lo_s], dist, out=best[lo_s])
        np.maximum(best[hi_s], dist, out=best[hi_s])
    if body.shape[0] > 1:
        dist0 = scratch.take("pair_dist", body[1:].shape, np.int64)
        np.subtract(body[1:], body[:-1], out=dist0)
        np.abs(dist0, out=dist0)
        lambdas[0] += int(dist0.sum())
        sums[:-1] += dist0
        sums[1:] += dist0
        np.maximum(best[:-1], dist0, out=best[:-1])
        np.maximum(best[1:], dist0, out=best[1:])


def nn_block_reduction(ctx) -> dict:
    """All NN-stretch scalars of ``ctx`` in one pass over key slabs.

    Returns ``{"davg", "dmax", "lambdas", "nn_sum"}`` with values
    bit-for-bit equal to the dense metric methods (see the module
    docstring for why).  Requires ``side >= 2``; the degenerate cases
    are handled by the calling metric methods.
    """
    # Lazy import: threads.py imports this module at its top level.
    from repro.engine.threads import ScratchBuffers

    universe = ctx.universe
    d, side, n = universe.d, universe.side, universe.n
    lambdas = [0] * d
    state = {"max_total": 0}
    scratch = ScratchBuffers()

    def avg_planes() -> Iterator[np.ndarray]:
        """Per-cell average-stretch values, streamed in C order.

        Every plane of per-cell sums is finalized once all its pair
        contributions arrived: planes ``[lo, hi-1)`` of a slab within
        the slab, the last plane when the next slab (or the end of the
        grid) supplies the axis-0 boundary pairs.  All integer state
        (sums, maxima, distances, the boundary-plane carry) lives in
        reused scratch buffers; the only steady-state allocations are
        the yielded float planes, which the pairwise-sum cursor may
        hold across iterations and therefore cannot be recycled.
        """
        plane_shape = None
        prev_keys = None
        pending_sums = None
        pending_max = None
        pending_x0 = -1
        for lo, hi, slab in ctx.iter_key_slabs():
            thickness = hi - lo
            sums = scratch.take("sums", slab.shape, np.int64)
            sums[...] = 0
            best = scratch.take("best", slab.shape, np.int64)
            best[...] = 0
            accumulate_block_pairs(
                slab, d, side, sums, best, lambdas, scratch,
                kernels=ctx.kernels,
            )
            if plane_shape is None:
                plane_shape = (1,) + slab.shape[1:]
            if prev_keys is not None:
                boundary = scratch.take("boundary", plane_shape, np.int64)
                np.subtract(slab[:1], prev_keys, out=boundary)
                np.abs(boundary, out=boundary)
                lambdas[0] += int(boundary.sum())
                sums[:1] += boundary
                np.maximum(best[:1], boundary, out=best[:1])
                pending_sums += boundary
                np.maximum(pending_max, boundary, out=pending_max)
                counts = slab_neighbor_counts(
                    universe,
                    pending_x0,
                    pending_x0 + 1,
                    out=scratch.take("plane_counts", plane_shape, np.int64),
                    kernels=ctx.kernels,
                )
                state["max_total"] += int(pending_max.sum())
                yield (pending_sums / counts).reshape(-1)
            if thickness > 1:
                counts = slab_neighbor_counts(
                    universe,
                    lo,
                    hi - 1,
                    out=scratch.take(
                        "counts", sums[:-1].shape, np.int64
                    ),
                    kernels=ctx.kernels,
                )
                state["max_total"] += int(best[:-1].sum())
                yield (sums[:-1] / counts).reshape(-1)
            if prev_keys is None:
                prev_keys = scratch.take("prev_keys", plane_shape, np.int64)
                pending_sums = scratch.take(
                    "pending_sums", plane_shape, np.int64
                )
                pending_max = scratch.take(
                    "pending_max", plane_shape, np.int64
                )
            np.copyto(prev_keys, slab[-1:])
            np.copyto(pending_sums, sums[-1:])
            np.copyto(pending_max, best[-1:])
            pending_x0 = hi - 1
        if pending_sums is not None:
            counts = slab_neighbor_counts(
                universe,
                pending_x0,
                pending_x0 + 1,
                out=scratch.take("plane_counts", plane_shape, np.int64),
            )
            state["max_total"] += int(pending_max.sum())
            yield (pending_sums / counts).reshape(-1)

    davg = pairwise_sum_stream(avg_planes(), n) / n
    return {
        "davg": davg,
        "dmax": float(state["max_total"]) / n,
        "lambdas": tuple(lambdas),
        "nn_sum": sum(lambdas),
    }
