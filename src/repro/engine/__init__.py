"""The metric engine: cached per-curve compute contexts + declarative sweeps.

* :mod:`repro.engine.context` — :class:`MetricContext`, one memory-bounded
  cached compute core per (curve, universe); every stretch metric as a
  method over shared intermediates, plus the inverse-permutation /
  flat-key / windowed-shift arrays the analysis and app layers consume.
  ``chunk_cells=...`` switches the context into **chunked mode**: state
  is produced as iterators of fixed-size blocks (LRU-cached under the
  same ``max_bytes`` budget) and every metric reduces block-wise with
  values bit-for-bit equal to the dense path — the door to universes
  whose dense ``(side,)*d`` arrays would not fit the budget.
* :mod:`repro.engine.chunked` — the block-streaming machinery
  (``pairwise_sum_stream`` replicating NumPy's summation order, the
  one-pass NN reduction, per-slab neighbor counts).
* :mod:`repro.engine.threads` — :class:`BlockScheduler`, fanning the
  block iterators of one context out over a thread pool (the NumPy
  block kernels release the GIL) with per-thread scratch buffers and
  an order-preserving merge, so threaded results stay bit-for-bit
  identical to the serial paths; ``MetricContext(threads=N)`` /
  ``Sweep(threads="auto")`` switch it on.
* :mod:`repro.engine.pool` — :class:`ContextPool`, sharing one context
  per *canonical curve spec* of a universe and deriving transform
  curves' arrays (dense) or blocks (chunked) from their inner curve's
  cache.
* :mod:`repro.engine.native` — the compiled kernel backend: C
  implementations of the hot block paths (NN pair fold, neighbor
  counts, window maxima, batch curve encode/decode) built on demand
  with the system compiler, loaded via ``ctypes``, and degrading
  gracefully to the NumPy kernels when no compiler exists.
  ``backend="numpy"|"native"|"auto"`` on :class:`MetricContext` /
  :class:`ContextPool` / :class:`Sweep` selects it; values are
  bit-for-bit identical across backends.
* :mod:`repro.engine.shm` — :class:`SharedGridStore`, shared-memory
  segments holding one grid set (key grid, flat keys, inverse
  permutation, neighbor counts) per canonical spec, published by a
  process sweep's parent and attached by its workers as zero-copy
  read-only views (counted in :attr:`CacheStats.shared`).
* :mod:`repro.engine.store` — :class:`GridStore`, the *persistent*
  tier: content-addressed ``.npy`` artifacts (format-version + dtype/
  shape/SHA-256 headers, temp-file + atomic-rename publish) memory-
  mapped read-only across processes, slotted into the resolution order
  as shared → **mmap** → derived → compute (counted in
  :attr:`CacheStats.mmap`) and doubling as the out-of-core spill
  target for chunked table-backed curves.  ``store_dir=`` on
  :class:`MetricContext` / :class:`ContextPool` / :class:`Sweep`
  (``repro sweep/serve --store``) wires it in.
* :mod:`repro.engine.sweep` — :class:`Sweep`, the declarative
  curve × universe × metric runner (curve/metric spec strings with
  plan-time parameter validation, capability-based applicability,
  pooled execution, process parallelism with shared-memory grids and
  aggregated worker cache stats, spec-keyed dedup of identical cells,
  automatic chunked-mode selection via ``chunk_cells`` /
  ``max_bytes``) behind ``survey()`` and the CLI, and the pluggable
  :data:`METRICS` registry where new metrics land.
"""

from repro.engine.chunked import DEFAULT_CHUNK_CELLS
from repro.engine.dynamic import (
    DynamicMetrics,
    DynamicUniverse,
    ReselectionEvent,
)
from repro.engine.context import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    MetricContext,
    get_context,
)
from repro.engine.pool import (
    ContextPool,
    chunked_transform_derivations,
    transform_derivations,
)
from repro.engine.shm import (
    SHARED_KINDS,
    SharedGridStore,
    shared_key,
    universe_key,
)
from repro.engine.store import (
    FORMAT_VERSION,
    GridStore,
    canonical_key,
    render_key,
)
from repro.engine.threads import (
    BlockScheduler,
    ScratchBuffers,
    resolve_threads,
)
from repro.engine.sweep import (
    METRICS,
    CurveSpec,
    MetricEntry,
    MetricSpec,
    SkippedCell,
    Sweep,
    SweepRecord,
    SweepResult,
    parse_curve_spec,
    parse_metric_spec,
    register_metric,
)

__all__ = [
    "MetricContext",
    "CacheStats",
    "get_context",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_CHUNK_CELLS",
    "BlockScheduler",
    "ScratchBuffers",
    "resolve_threads",
    "ContextPool",
    "DynamicMetrics",
    "DynamicUniverse",
    "ReselectionEvent",
    "transform_derivations",
    "chunked_transform_derivations",
    "SHARED_KINDS",
    "SharedGridStore",
    "shared_key",
    "universe_key",
    "GridStore",
    "FORMAT_VERSION",
    "canonical_key",
    "render_key",
    "Sweep",
    "SweepRecord",
    "SweepResult",
    "SkippedCell",
    "CurveSpec",
    "MetricSpec",
    "MetricEntry",
    "parse_curve_spec",
    "parse_metric_spec",
    "METRICS",
    "register_metric",
]
