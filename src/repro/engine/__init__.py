"""The metric engine: cached per-curve compute contexts + declarative sweeps.

* :mod:`repro.engine.context` — :class:`MetricContext`, one memory-bounded
  cached compute core per (curve, universe); every stretch metric as a
  method over shared intermediates, plus the inverse-permutation /
  flat-key / windowed-shift arrays the analysis and app layers consume.
* :mod:`repro.engine.pool` — :class:`ContextPool`, sharing contexts
  across curves of a universe and deriving transform curves' arrays
  from their inner curve's cache.
* :mod:`repro.engine.sweep` — :class:`Sweep`, the declarative
  curve × universe × metric runner (curve/metric spec strings,
  capability-based applicability, pooled execution, optional process
  parallelism) behind ``survey()`` and the CLI, and the pluggable
  :data:`METRICS` registry where new metrics land.
"""

from repro.engine.context import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    MetricContext,
    get_context,
)
from repro.engine.pool import ContextPool, transform_derivations
from repro.engine.sweep import (
    METRICS,
    CurveSpec,
    MetricEntry,
    MetricSpec,
    SkippedCell,
    Sweep,
    SweepRecord,
    SweepResult,
    parse_curve_spec,
    parse_metric_spec,
    register_metric,
)

__all__ = [
    "MetricContext",
    "CacheStats",
    "get_context",
    "DEFAULT_CACHE_BYTES",
    "ContextPool",
    "transform_derivations",
    "Sweep",
    "SweepRecord",
    "SweepResult",
    "SkippedCell",
    "CurveSpec",
    "MetricSpec",
    "MetricEntry",
    "parse_curve_spec",
    "parse_metric_spec",
    "METRICS",
    "register_metric",
]
