"""The metric engine: cached per-curve compute contexts + declarative sweeps.

* :mod:`repro.engine.context` — :class:`MetricContext`, one memory-bounded
  cached compute core per (curve, universe); every stretch metric as a
  method over shared intermediates.
* :mod:`repro.engine.sweep` — :class:`Sweep`, the declarative
  curve × universe × metric runner (curve-spec strings, capability-based
  applicability, optional process parallelism) behind ``survey()`` and
  the CLI.
"""

from repro.engine.context import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    MetricContext,
    get_context,
)
from repro.engine.sweep import (
    METRICS,
    CurveSpec,
    SkippedCell,
    Sweep,
    SweepRecord,
    SweepResult,
    parse_curve_spec,
    register_metric,
)

__all__ = [
    "MetricContext",
    "CacheStats",
    "get_context",
    "DEFAULT_CACHE_BYTES",
    "Sweep",
    "SweepRecord",
    "SweepResult",
    "SkippedCell",
    "CurveSpec",
    "parse_curve_spec",
    "METRICS",
    "register_metric",
]
