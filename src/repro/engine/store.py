"""Persistent grid store: content-addressed, memory-mapped artifacts.

Every other tier of the cache hierarchy dies with the process — the
LRU store, the :class:`repro.engine.pool.ContextPool`, the
shared-memory segments of :mod:`repro.engine.shm`.  The
:class:`GridStore` promotes the hierarchy to disk: one ``.npy``-backed
artifact per ``(spec key, kind)`` entry, written once and memory-mapped
read-only by every later process, so a sweep rerun (or a ``repro
serve`` restart) resolves its key grids from the page cache instead of
re-evaluating curves.  Contexts consult it between the shared-memory
and derivation tiers — resolution order **shared → mmap → derived →
compute** — and resolutions are counted in
:attr:`repro.engine.CacheStats.mmap`.

Keys are the process-stable :func:`repro.engine.shm.shared_key`
renderings (instance-keyed curves return ``None`` there and are
store-exempt), serialized by :func:`canonical_key` — an injective,
length-prefixed rendering — and addressed on disk through
:func:`render_key`, a filesystem-safe ``slug-sha256`` directory name.

Durability contract (what the crash/corruption test harness asserts):

* **Atomic publish** — payload and header are written to ``tmp/`` and
  ``os.replace``\\ d into place, payload first, header last.  The
  header rename is the commit point: readers require a valid header,
  so a writer killed at *any* instant leaves either the old state or
  the complete new entry, never a torn artifact.
* **Checksummed reads** — :meth:`get` verifies the header's format
  version, dtype, shape and the payload's SHA-256 before handing out a
  mapping.  Truncation, bit flips, stale formats and header mismatches
  are all treated as a cache miss: the entry is quarantined and the
  caller recomputes (and rewrites) it.  A corrupt store can cost time,
  never correctness.
* **Best-effort writes** — :meth:`put` swallows ``OSError`` (full or
  read-only disk) and reports it in :attr:`counters`; persistence is
  an optimization, so a failing disk degrades to the compute path.

>>> import numpy as np, shutil, tempfile
>>> root = tempfile.mkdtemp()
>>> store = GridStore(root)
>>> store.put(("demo",), "key_grid", np.arange(4, dtype=np.int64))
True
>>> twin = GridStore(root)   # a later process reopening the store
>>> view = twin.get(("demo",), "key_grid")
>>> bool((view == np.arange(4)).all()) and not view.flags.writeable
True
>>> twin.get(("demo",), "flat_keys") is None   # absent kind -> compute
True
>>> shutil.rmtree(root)
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import signal
import threading
import uuid
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

__all__ = [
    "FORMAT_VERSION",
    "GridStore",
    "canonical_key",
    "render_key",
    "store_dir_from_env",
]

#: On-disk header format version.  Bump on any incompatible layout
#: change: readers treat a mismatched version as a miss (the entry is
#: quarantined and rewritten), so old stores degrade to cold caches
#: instead of serving misinterpreted bytes.
FORMAT_VERSION = 1

#: Environment variable naming a default store directory for the CLI
#: (``repro sweep/serve --store`` override it; ``repro doctor`` reports
#: it).  The engine itself never reads it — tests stay hermetic.
STORE_ENV = "REPRO_STORE"

#: Crash-injection hook for the consistency test harness: when this
#: variable names one of the publish failpoints (``before-temp``,
#: ``after-temp``, ``before-rename``, ``before-commit``), the writer
#: SIGKILLs itself at that exact point.  Two env lookups per publish;
#: unset (the only production state) they cost nothing measurable.
CRASH_ENV = "REPRO_STORE_CRASH"

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")
_KIND_RE = re.compile(r"^[A-Za-z0-9._-]+$")
_HASH_CHUNK = 1 << 20


def _crash_point(point: str) -> None:
    """SIGKILL the process if the harness armed this failpoint."""
    if os.environ.get(CRASH_ENV) == point:
        os.kill(os.getpid(), signal.SIGKILL)


def canonical_key(key: object) -> str:
    """``key`` rendered as an injective, process-stable string.

    The domain is the value space of
    :func:`repro.engine.shm.shared_key`: ``None``, ``bool``, ``int``,
    ``float``, ``str`` and tuples thereof.  Distinct keys always render
    distinctly — scalars carry a type tag, strings are length-prefixed
    (netstring style, so embedded ``,)(`` cannot forge structure), and
    tuples parenthesize — which is what makes the on-disk address of
    :func:`render_key` collision-free across curve specs.

    >>> canonical_key(("universe", 2, 64))
    '(s8:universe,i2,i64)'
    >>> canonical_key(1) != canonical_key(True) != canonical_key("1")
    True
    """
    if key is None:
        return "~"
    if isinstance(key, bool):  # before int: bool subclasses int
        return "T" if key else "F"
    if isinstance(key, int):
        return f"i{key}"
    if isinstance(key, float):
        # repr round-trips float64 exactly and is stable across
        # processes, unlike hash()-derived renderings.
        return f"f{key!r}"
    if isinstance(key, str):
        return f"s{len(key.encode('utf-8'))}:{key}"
    if isinstance(key, tuple):
        return "(" + ",".join(canonical_key(part) for part in key) + ")"
    raise TypeError(
        f"store keys are tuples of str/int/float/bool/None, "
        f"got {type(key).__name__}"
    )


def _slug(key: object) -> str:
    """Short human-readable prefix for an entry directory name."""
    if (
        isinstance(key, tuple)
        and len(key) == 3
        and key[0] == "universe"
        and isinstance(key[1], int)
        and isinstance(key[2], int)
    ):
        return f"universe-{key[1]}x{key[2]}"

    def strings(part: object) -> Iterator[str]:
        if isinstance(part, str):
            yield part
        elif isinstance(part, tuple):
            for item in part:
                yield from strings(item)

    for text in strings(key):
        if "." in text:  # a qualified type name from shm._stable
            tail = _SLUG_RE.sub("-", text.rsplit(".", 1)[1]).strip("-")
            if tail:
                return tail.lower()[:40]
    return "entry"


def render_key(key: object) -> str:
    """Filesystem-safe directory name addressing ``key``.

    ``<slug>-<sha256 of canonical_key(key)>`` — stable across
    processes (no ``id()``/``hash()`` state), injective because the
    pre-hash rendering is (see :func:`canonical_key`), and matching
    ``[A-Za-z0-9._-]+`` so it is portable across filesystems.

    >>> name = render_key(("universe", 2, 64))
    >>> name.startswith("universe-2x64-") and len(name) < 128
    True
    >>> render_key(("universe", 2, 64)) == render_key(("universe", 2, 64))
    True
    """
    canon = canonical_key(key)
    digest = hashlib.sha256(canon.encode("utf-8")).hexdigest()
    return f"{_slug(key)}-{digest}"


def store_dir_from_env() -> Optional[str]:
    """The :data:`STORE_ENV` default store directory, or ``None``."""
    value = os.environ.get(STORE_ENV, "").strip()
    return value or None


class GridStore:
    """Content-addressed ``.npy`` artifacts under one root directory.

    Layout::

        root/
          tmp/                  in-flight writes (never read)
          quarantine/           rejected artifacts, kept for forensics
          <slug>-<sha256>/      one directory per spec key
              <kind>.npy        payload (NumPy format, memory-mapped)
              <kind>.json       header: format/dtype/shape/sha256

    A store object is cheap (no I/O until first use) and **thread-safe**:
    counters and the per-process verification memo mutate under a lock,
    while payload I/O runs outside it.  Concurrent writers of one entry
    are benign — publishes are atomic renames of identical bytes (every
    artifact is deterministic), so last-write-wins is a no-op.

    Unlike :class:`repro.engine.shm.SharedGridStore` there is no
    owner/attached split and no cleanup obligation: entries persist by
    design, and a store directory can be deleted wholesale between runs.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._tmp = self.root / "tmp"
        self._quarantine = self.root / "quarantine"
        #: Lifetime I/O counters of this store object (``gets``,
        #: ``hits``, ``misses``, ``puts``, ``put_skipped``,
        #: ``rejected``, ``quarantined``, ``io_errors``).
        self.counters: Dict[str, int] = {}
        #: ``payload path -> (size, mtime_ns)`` of entries this process
        #: already checksummed, so repeated ``get``\\ s of a hot entry
        #: pay the SHA-256 once; a rewritten or truncated file changes
        #: its stat signature and is re-verified.
        self._verified: Dict[str, Tuple[int, int]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridStore({str(self.root)!r})"

    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def stats(self) -> Dict[str, int]:
        """Snapshot of :attr:`counters` (JSON-ready)."""
        with self._lock:
            return dict(self.counters)

    def entries(self) -> list:
        """Header metadata of every committed entry (doctor surface)."""
        out = []
        if not self.root.is_dir():
            return out
        for entry_dir in sorted(self.root.iterdir()):
            if not entry_dir.is_dir() or entry_dir.name in (
                "tmp",
                "quarantine",
            ):
                continue
            for meta_path in sorted(entry_dir.glob("*.json")):
                meta = self._read_meta(meta_path)
                if meta is None:
                    continue
                out.append(
                    {
                        "dir": entry_dir.name,
                        "kind": meta.get("kind", meta_path.stem),
                        "key": meta.get("key", ""),
                        "dtype": meta.get("dtype", "?"),
                        "shape": tuple(meta.get("shape", ())),
                        "nbytes": int(meta.get("nbytes", 0)),
                    }
                )
        return out

    @property
    def nbytes(self) -> int:
        """Total payload bytes across committed entries."""
        return sum(entry["nbytes"] for entry in self.entries())

    def quarantined_count(self) -> int:
        """Number of artifacts parked in ``quarantine/``."""
        if not self._quarantine.is_dir():
            return 0
        return sum(1 for _ in self._quarantine.iterdir())

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @staticmethod
    def _check_kind(kind: str) -> None:
        if not _KIND_RE.match(kind):
            raise ValueError(
                f"store kind {kind!r} must match [A-Za-z0-9._-]+"
            )

    def _paths(self, spec_key: tuple, kind: str) -> Tuple[Path, Path]:
        entry_dir = self.root / render_key(spec_key)
        return entry_dir / f"{kind}.npy", entry_dir / f"{kind}.json"

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def get(self, spec_key: Optional[tuple], kind: str) -> Optional[np.ndarray]:
        """Verified read-only memmap of an entry, or ``None`` (a miss).

        Every rejection path — missing files, unparsable or stale
        header, dtype/shape mismatch, checksum failure — quarantines
        the artifact and returns ``None``, so callers fall through to
        compute and :meth:`put` repairs the entry with fresh bytes.
        """
        if spec_key is None:
            return None
        self._check_kind(kind)
        self._count("gets")
        payload, meta_path = self._paths(spec_key, kind)
        meta = self._load_valid_meta(meta_path, payload, kind)
        if meta is None:
            self._count("misses")
            return None
        try:
            array = np.load(payload, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError):
            self._reject(payload, meta_path)
            self._count("misses")
            return None
        if (
            array.dtype.str != meta["dtype"]
            or tuple(array.shape) != tuple(meta["shape"])
        ):
            # The .npy header disagrees with the committed header: one
            # of them was tampered with or half-written.
            del array
            self._reject(payload, meta_path)
            self._count("misses")
            return None
        if not self._checksum_ok(payload, meta["sha256"]):
            del array
            self._reject(payload, meta_path)
            self._count("misses")
            return None
        self._count("hits")
        return array

    def contains(self, spec_key: Optional[tuple], kind: str) -> bool:
        """Whether a committed, plausibly-valid entry exists (cheap).

        Checks header validity and payload size only — the checksum is
        deferred to :meth:`get`, which is the boundary that must never
        serve wrong bytes.
        """
        if spec_key is None:
            return False
        self._check_kind(kind)
        payload, meta_path = self._paths(spec_key, kind)
        return self._load_valid_meta(meta_path, payload, kind) is not None

    def _read_meta(self, meta_path: Path) -> Optional[dict]:
        try:
            with open(meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    def _load_valid_meta(
        self, meta_path: Path, payload: Path, kind: str
    ) -> Optional[dict]:
        """Parse + structurally validate a header, quarantining junk."""
        if not meta_path.exists():
            return None
        meta = self._read_meta(meta_path)
        if meta is None:
            self._reject(payload, meta_path)
            return None
        ok = (
            meta.get("format") == FORMAT_VERSION
            and meta.get("kind") == kind
            and isinstance(meta.get("dtype"), str)
            and isinstance(meta.get("shape"), list)
            and isinstance(meta.get("sha256"), str)
            and isinstance(meta.get("nbytes"), int)
        )
        if not ok:
            self._reject(payload, meta_path)
            return None
        try:
            size = payload.stat().st_size
        except OSError:
            self._reject(payload, meta_path)
            return None
        if size != meta["nbytes"]:  # truncated or torn payload
            self._reject(payload, meta_path)
            return None
        return meta

    def _checksum_ok(self, payload: Path, expected: str) -> bool:
        try:
            stat = payload.stat()
            signature = (stat.st_size, stat.st_mtime_ns)
            with self._lock:
                if self._verified.get(str(payload)) == signature:
                    return True
            digest = hashlib.sha256()
            with open(payload, "rb") as fh:
                while True:
                    block = fh.read(_HASH_CHUNK)
                    if not block:
                        break
                    digest.update(block)
        except OSError:
            return False
        if digest.hexdigest() != expected:
            return False
        with self._lock:
            self._verified[str(payload)] = signature
        return True

    def _reject(self, payload: Path, meta_path: Path) -> None:
        """Quarantine a rejected artifact pair (best effort)."""
        self._count("rejected")
        for path in (payload, meta_path):
            if not path.exists():
                continue
            with self._lock:
                self._verified.pop(str(path), None)
            try:
                self._quarantine.mkdir(parents=True, exist_ok=True)
                target = self._quarantine / (
                    f"{path.parent.name}.{path.name}.{uuid.uuid4().hex[:8]}"
                )
                os.replace(path, target)
                self._count("quarantined")
            except OSError:
                self._count("io_errors")

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------
    def put(
        self, spec_key: Optional[tuple], kind: str, array: np.ndarray
    ) -> bool:
        """Atomically publish ``array``; ``True`` if bytes were written.

        ``False`` means the entry already exists intact (the common
        warm-path no-op), the key is instance-scoped (``None``), or the
        filesystem failed — counted under ``io_errors`` and otherwise
        ignored, because a broken disk must degrade to the compute
        path, not crash a sweep.
        """
        if spec_key is None:
            return False
        self._check_kind(kind)
        arr = np.asarray(array)
        payload, meta_path = self._paths(spec_key, kind)
        if self._load_valid_meta(meta_path, payload, kind) is not None:
            self._count("put_skipped")
            return False
        try:
            self._publish(spec_key, kind, arr, payload, meta_path)
        except OSError:
            self._count("io_errors")
            return False
        self._count("puts")
        return True

    def _publish(
        self,
        spec_key: tuple,
        kind: str,
        arr: np.ndarray,
        payload: Path,
        meta_path: Path,
    ) -> None:
        """The atomic publish protocol (see the module docstring)."""
        _crash_point("before-temp")
        self._tmp.mkdir(parents=True, exist_ok=True)
        token = f"{kind}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        tmp_payload = self._tmp / f"{token}.npy"
        tmp_meta = self._tmp / f"{token}.json"
        try:
            with open(tmp_payload, "wb") as fh:
                np.lib.format.write_array(fh, arr, allow_pickle=False)
                fh.flush()
                os.fsync(fh.fileno())
            digest = hashlib.sha256()
            with open(tmp_payload, "rb") as fh:
                while True:
                    block = fh.read(_HASH_CHUNK)
                    if not block:
                        break
                    digest.update(block)
            _crash_point("after-temp")
            meta = {
                "format": FORMAT_VERSION,
                "kind": kind,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "nbytes": tmp_payload.stat().st_size,
                "sha256": digest.hexdigest(),
                "key": canonical_key(spec_key),
            }
            with open(tmp_meta, "w", encoding="utf-8") as fh:
                json.dump(meta, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            payload.parent.mkdir(parents=True, exist_ok=True)
            _crash_point("before-rename")
            os.replace(tmp_payload, payload)
            # The commit point: a reader only believes an entry whose
            # header exists and matches, so dying between these two
            # renames leaves an invisible (and reclaimable) payload.
            _crash_point("before-commit")
            os.replace(tmp_meta, meta_path)
            self._fsync_dir(payload.parent)
        finally:
            for leftover in (tmp_payload, tmp_meta):
                try:
                    leftover.unlink()
                except OSError:
                    pass

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clean(self) -> Dict[str, int]:
        """Quarantine publish debris; safe any time, returns counts.

        Two kinds of debris can survive a killed writer: files left in
        ``tmp/`` (never visible to readers, but they accumulate) and
        *orphan payloads* — a ``.npy`` whose writer died between the
        payload and header renames, so no header commits it.  Both are
        moved to ``quarantine/``.  Live entries are untouched, so
        running this concurrently with readers is safe; concurrent
        *writers* may see their in-flight temp swept, which the publish
        protocol already tolerates (the rename simply fails and the
        write is retried by the next compute).
        """
        swept = {"tmp": 0, "orphans": 0}
        if self._tmp.is_dir():
            for path in sorted(self._tmp.iterdir()):
                self._quarantine.mkdir(parents=True, exist_ok=True)
                try:
                    os.replace(
                        path,
                        self._quarantine
                        / f"tmp.{path.name}.{uuid.uuid4().hex[:8]}",
                    )
                    swept["tmp"] += 1
                    self._count("quarantined")
                except OSError:
                    self._count("io_errors")
        if self.root.is_dir():
            for entry_dir in sorted(self.root.iterdir()):
                if not entry_dir.is_dir() or entry_dir.name in (
                    "tmp",
                    "quarantine",
                ):
                    continue
                for payload in sorted(entry_dir.glob("*.npy")):
                    if payload.with_suffix(".json").exists():
                        continue
                    self._quarantine.mkdir(parents=True, exist_ok=True)
                    try:
                        os.replace(
                            payload,
                            self._quarantine
                            / (
                                f"{entry_dir.name}.{payload.name}"
                                f".{uuid.uuid4().hex[:8]}"
                            ),
                        )
                        swept["orphans"] += 1
                        self._count("quarantined")
                    except OSError:
                        self._count("io_errors")
        return swept
