"""The native compiled kernel backend: build, load, dispatch.

The hot block paths of the metric engine — the NN pair fold, slab
neighbor counts, window block maxima, and the registry curves'
encode/decode — have C implementations in ``native_kernels.c`` (shipped
in-tree next to this module).  The first use on a machine compiles them
with the system C compiler into a shared library cached under a
``sha256(source + compiler)`` key, so rebuilds happen only when the
source or toolchain changes; the library is loaded through ``ctypes``
and degrades gracefully to the NumPy kernels when no compiler exists.

Backend selection (``resolve_backend``) accepts ``"numpy"``,
``"native"`` and ``"auto"``: ``auto`` uses the native kernels whenever
they are available, ``native`` additionally warns **once** per process
when they are not (and still falls back — a missing compiler must never
change results, only speed).  ``REPRO_NATIVE=0`` forces the NumPy path;
``REPRO_NATIVE_CC`` overrides the compiler; ``REPRO_NATIVE_CACHE``
relocates the build cache.  ``repro doctor`` renders :func:`build_info`.

**Sanitized builds.**  ``REPRO_NATIVE_SANITIZE=address,undefined``
compiles the kernels with ``-fsanitize=address,undefined -g
-fno-omit-frame-pointer`` so the CI parity job (and any developer) can
run the full native test suite under ASan+UBSan.  The sanitizer config
is part of the build-cache key: clean and instrumented ``.so``\\ s live
in sibling cache directories and never overwrite each other.  Because
the interpreter itself is uninstrumented, ASan runs need
``LD_PRELOAD=$(gcc -print-file-name=libasan.so)`` and
``ASAN_OPTIONS=detect_leaks=0`` — ``docs/static-analysis.md`` has the
recipe, ``repro doctor`` reports the mode and both cache dirs.

Only stdlib + NumPy are imported at module level: this module is
imported lazily from both the curves and engine layers, and importing
either here would cycle.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import re
import shutil
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = [
    "BACKENDS",
    "available",
    "build_info",
    "cache_dir",
    "compiler_path",
    "encoder_for",
    "load_kernels",
    "native_disabled",
    "reset_for_tests",
    "reset_warned",
    "resolve_backend",
    "sanitize_flags",
    "sanitize_spec",
    "sanitizer_supported",
    "unavailable_reason",
    "warned_once",
    "NativeKernels",
]

#: The backend values every ``backend=`` knob accepts.
BACKENDS = ("numpy", "native", "auto")

_SOURCE = Path(__file__).with_name("native_kernels.c")

_lock = threading.Lock()
_kernels: Optional["NativeKernels"] = None
_load_attempted = False
_load_error: Optional[str] = None
_warned_unavailable = False

_i64_array = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_i64 = ctypes.c_int64

#: Sentinel distinguishing "use the env config" from an explicit None.
_UNSET = object()

#: Memoized `compiler supports -fsanitize=<spec>` probes, keyed
#: (compiler, spec) — probing runs the compiler once.
_sanitize_probes: dict = {}


def native_disabled() -> bool:
    """True when ``REPRO_NATIVE=0`` forces the NumPy path."""
    return os.environ.get("REPRO_NATIVE", "") == "0"


def compiler_path() -> Optional[str]:
    """Resolved path of the C compiler, or ``None`` when absent.

    ``REPRO_NATIVE_CC`` (a name or path looked up on ``PATH``) wins;
    otherwise the first of ``cc``/``gcc``/``clang`` found.
    """
    override = os.environ.get("REPRO_NATIVE_CC")
    if override:
        return shutil.which(override)
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def cache_dir() -> Path:
    """Per-machine build cache root (``REPRO_NATIVE_CACHE`` overrides)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-sfc"


_SANITIZE_TOKEN = re.compile(r"^[a-z][a-z-]*$")


def sanitize_spec() -> Optional[str]:
    """Normalized ``REPRO_NATIVE_SANITIZE`` value, or ``None`` when off.

    The value is a comma-separated ``-fsanitize`` list
    (``address,undefined``); tokens are deduplicated and sorted so
    ``undefined,address`` keys the same build cache.  Empty or ``0``
    disables.  Tokens are restricted to ``[a-z-]`` — the value is
    spliced into a compiler command line, so anything fancier is
    rejected loudly rather than executed.
    """
    raw = os.environ.get("REPRO_NATIVE_SANITIZE", "").strip()
    if not raw or raw == "0":
        return None
    tokens = sorted({part.strip() for part in raw.split(",") if part.strip()})
    for token in tokens:
        if not _SANITIZE_TOKEN.match(token):
            raise ValueError(
                f"invalid REPRO_NATIVE_SANITIZE token {token!r}: expected "
                "a comma-separated -fsanitize list like 'address,undefined'"
            )
    return ",".join(tokens)


def sanitize_flags(spec: Optional[str] = None) -> list:
    """Extra compiler flags for ``spec`` (default: the env setting)."""
    if spec is None:
        spec = sanitize_spec()
    if spec is None:
        return []
    return [f"-fsanitize={spec}", "-g", "-fno-omit-frame-pointer"]


def _build_dir(cc: str, spec: Optional[str] = _UNSET) -> Path:
    """Cache dir for one (source, compiler, sanitizer-config) triple.

    The sanitizer spec is both hashed and appended to the directory
    name, so clean and instrumented builds coexist and a human can tell
    them apart in the cache.
    """
    if spec is _UNSET:
        spec = sanitize_spec()
    digest = hashlib.sha256()
    digest.update(_SOURCE.read_bytes())
    digest.update(cc.encode())
    stem = ""
    if spec is not None:
        digest.update(spec.encode())
        stem = "-" + spec.replace(",", "-")
    return cache_dir() / (digest.hexdigest()[:16] + stem)


def _build(cc: str) -> Path:
    """Compile the kernels into the cache (idempotent, atomic publish)."""
    out_dir = _build_dir(cc)
    so_path = out_dir / "repro_kernels.so"
    if so_path.exists():
        return so_path
    out_dir.mkdir(parents=True, exist_ok=True)
    tmp = out_dir / f"repro_kernels.tmp.{os.getpid()}.so"
    cmd = [cc, "-O2", "-fPIC", "-shared"]
    cmd += sanitize_flags()
    cmd += ["-o", str(tmp), str(_SOURCE)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    (out_dir / "build.log").write_text(
        "$ " + " ".join(cmd) + "\n" + proc.stdout + proc.stderr
        + f"exit status {proc.returncode}\n"
    )
    if proc.returncode != 0:
        tmp.unlink(missing_ok=True)
        raise RuntimeError(
            f"native kernel build failed (see {out_dir / 'build.log'})"
        )
    # Atomic rename: concurrent builders race benignly to the same path.
    os.replace(tmp, so_path)
    return so_path


class NativeKernels:
    """ctypes facade over the compiled kernel library.

    Every method takes/returns int64 NumPy arrays that must be
    C-contiguous (the dispatch sites check before calling).  The C
    calls release the GIL, so they compose with the engine's
    thread-parallel block scheduler.
    """

    def __init__(self, so_path: Path) -> None:
        self.so_path = so_path
        lib = ctypes.CDLL(str(so_path))
        lib.repro_nn_block_pairs.argtypes = [
            _i64_array, _i64, _i64, _i64, _i64_array, _i64_array, _i64_array
        ]
        lib.repro_nn_block_pairs.restype = None
        lib.repro_neighbor_counts.argtypes = [
            _i64, _i64, _i64, _i64, _i64_array
        ]
        lib.repro_neighbor_counts.restype = None
        for name in ("repro_window_max_manhattan",
                     "repro_window_max_euclidean_sq"):
            fn = getattr(lib, name)
            fn.argtypes = [_i64_array, _i64_array, _i64, _i64]
            fn.restype = _i64
        lib.repro_delta_fold.argtypes = [_i64_array, _i64_array, _i64]
        lib.repro_delta_fold.restype = _i64
        for name in ("repro_z_encode", "repro_z_decode",
                     "repro_gray_encode", "repro_gray_decode",
                     "repro_hilbert_encode", "repro_hilbert_decode",
                     "repro_snake_encode", "repro_snake_decode"):
            fn = getattr(lib, name)
            fn.argtypes = [_i64_array, _i64, _i64, _i64, _i64_array]
            fn.restype = None
        self._lib = lib

    # -- block reductions ----------------------------------------------
    def nn_block_pairs(
        self,
        body: np.ndarray,
        side: int,
        d: int,
        sums: np.ndarray,
        best: np.ndarray,
        lambdas: list,
    ) -> None:
        """Fused within-slab NN pair fold (accumulate_block_pairs)."""
        lam = np.zeros(d, dtype=np.int64)
        self._lib.repro_nn_block_pairs(
            body, body.shape[0], side, d, sums, best, lam
        )
        for axis in range(d):
            lambdas[axis] += int(lam[axis])

    def neighbor_counts(
        self, d: int, side: int, lo: int, hi: int, out: np.ndarray
    ) -> np.ndarray:
        self._lib.repro_neighbor_counts(d, side, lo, hi, out)
        return out

    # -- window maxima -------------------------------------------------
    def window_max(
        self, a: np.ndarray, b: np.ndarray, metric: str
    ) -> float:
        """max distance over paired coordinate rows, as NumPy would."""
        m, d = a.shape
        if metric == "manhattan":
            return float(
                self._lib.repro_window_max_manhattan(a, b, m, d)
            )
        best_sq = self._lib.repro_window_max_euclidean_sq(a, b, m, d)
        return float(np.sqrt(np.float64(best_sq)))

    # -- delta fold ----------------------------------------------------
    def delta_fold(self, a: np.ndarray, b: np.ndarray) -> int:
        """``Σ |a_i − b_i|`` over paired int64 key arrays (one C pass).

        The edge-delta fold of population-stretch evaluation
        (:func:`repro.core.optimal.delta_fold` dispatches here when the
        kernels are loaded); bit-for-bit equal to the NumPy reduction
        because int64 addition is order-free.
        """
        if a.shape != b.shape:
            raise ValueError("delta_fold needs equal-length key arrays")
        return int(self._lib.repro_delta_fold(a, b, a.size))

    # -- curve encode/decode -------------------------------------------
    def _codec(self, stem: str, arg: int):
        encode = getattr(self._lib, f"repro_{stem}_encode")
        decode = getattr(self._lib, f"repro_{stem}_decode")

        def encode_fn(coords: np.ndarray) -> np.ndarray:
            flat = np.ascontiguousarray(coords, dtype=np.int64)
            m = flat.size // flat.shape[-1]
            keys = np.empty(coords.shape[:-1], dtype=np.int64)
            encode(flat, m, flat.shape[-1], arg, keys)
            return keys

        def decode_fn(keys: np.ndarray, d: int) -> np.ndarray:
            flat = np.ascontiguousarray(keys, dtype=np.int64)
            coords = np.empty(keys.shape + (d,), dtype=np.int64)
            decode(flat, flat.size, d, arg, coords)
            return coords

        return encode_fn, decode_fn


class _Codec:
    """Batch encoder/decoder of one curve family on one universe."""

    def __init__(self, encode_fn, decode_fn, d: int) -> None:
        self._encode = encode_fn
        self._decode = decode_fn
        self._d = d

    def encode(self, coords: np.ndarray) -> np.ndarray:
        return self._encode(coords)

    def decode(self, keys: np.ndarray) -> np.ndarray:
        return self._decode(keys, self._d)


def load_kernels() -> Optional[NativeKernels]:
    """The process-wide kernel library, building it on first use.

    Returns ``None`` when disabled, no compiler exists, or the build
    failed; the failure reason is memoized for :func:`build_info` and
    the warn-once message.
    """
    global _kernels, _load_attempted, _load_error
    if native_disabled():
        return None
    with _lock:
        if _load_attempted:
            return _kernels
        _load_attempted = True
        cc = compiler_path()
        if cc is None:
            _load_error = (
                "no C compiler found (checked $REPRO_NATIVE_CC, cc, "
                "gcc, clang)"
            )
            return None
        try:
            _kernels = NativeKernels(_build(cc))
        except (OSError, RuntimeError) as exc:
            _load_error = str(exc)
            _kernels = None
        return _kernels


def available() -> bool:
    """True iff the native backend can serve this process."""
    return load_kernels() is not None


def unavailable_reason() -> Optional[str]:
    """Why the native backend is off (``None`` when it is on)."""
    if native_disabled():
        return "REPRO_NATIVE=0 forces the NumPy backend"
    if load_kernels() is not None:
        return None
    return _load_error


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a ``backend=`` knob to the backend that will serve.

    ``"numpy"`` and an unavailable native library resolve to
    ``"numpy"``; ``"native"``/``"auto"`` resolve to ``"native"`` when
    the kernels load.  An explicit ``"native"`` request that cannot be
    honored warns once per process (never per cell) and falls back —
    values are identical either way.
    """
    global _warned_unavailable
    if backend is None:
        backend = "auto"
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {list(BACKENDS)}, got {backend!r}"
        )
    if backend == "numpy":
        return "numpy"
    if available():
        return "native"
    if backend == "native" and not _warned_unavailable:
        _warned_unavailable = True
        warnings.warn(
            "backend='native' requested but the compiled kernels are "
            f"unavailable ({unavailable_reason()}); falling back to "
            "the NumPy backend (identical results; run `repro doctor` "
            "to diagnose)",
            RuntimeWarning,
            stacklevel=2,
        )
    return "numpy"


def encoder_for(curve) -> Optional[_Codec]:
    """A native batch codec for ``curve``, or ``None`` if unsupported.

    Covers the four analytically-coded registry families (Z, Gray,
    Hilbert, snake).  Universes the NumPy implementations reject
    (``k*d > 62``) or degenerate ones (``side=1``) return ``None`` so
    the NumPy path keeps raising/handling them consistently.
    """
    kernels = load_kernels()
    if kernels is None:
        return None
    from repro.curves.gray import GrayCurve
    from repro.curves.hilbert import HilbertCurve
    from repro.curves.snake import SnakeCurve
    from repro.curves.zcurve import ZCurve

    universe = curve.universe
    d, side = universe.d, universe.side
    if type(curve) is SnakeCurve:
        if side < 2 or universe.n > 2**62:
            return None
        encode_fn, decode_fn = kernels._codec("snake", side)
        return _Codec(encode_fn, decode_fn, d)
    # Exact types only: a subclass may change the mapping.
    stem = {ZCurve: "z", GrayCurve: "gray", HilbertCurve: "hilbert"}.get(
        type(curve)
    )
    if stem is not None:
        try:
            k = universe.k
        except ValueError:
            return None
        if k < 1 or k * d > 62:
            return None
        encode_fn, decode_fn = kernels._codec(stem, k)
        return _Codec(encode_fn, decode_fn, d)
    return None


def sanitizer_supported(
    spec: str = "address,undefined", cc: Optional[str] = None
) -> Optional[bool]:
    """Whether the host compiler accepts ``-fsanitize=<spec>``.

    Probes with one tiny test compile (memoized per compiler+spec);
    ``None`` when there is no compiler to ask.  ``repro doctor`` uses
    this so CI logs show *why* a sanitized leg would or would not run.
    """
    if cc is None:
        cc = compiler_path()
    if cc is None:
        return None
    key = (cc, spec)
    cached = _sanitize_probes.get(key)
    if cached is not None:
        return cached
    with tempfile.TemporaryDirectory(prefix="repro-sanprobe-") as tmp:
        src = Path(tmp) / "probe.c"
        src.write_text("int repro_sanitize_probe(void) { return 0; }\n")
        cmd = (
            [cc, "-fPIC", "-shared"]
            + sanitize_flags(spec)
            + ["-o", str(Path(tmp) / "probe.so"), str(src)]
        )
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=60
            )
            supported = proc.returncode == 0
        except (OSError, subprocess.TimeoutExpired):
            supported = False
    _sanitize_probes[key] = supported
    return supported


def build_info() -> dict:
    """Everything ``repro doctor`` reports about the native backend."""
    cc = compiler_path()
    spec = sanitize_spec()
    info = {
        "disabled": native_disabled(),
        "compiler": cc,
        "available": available(),
        "reason": unavailable_reason(),
        "cache_dir": str(cache_dir()),
        "so_path": None,
        "build_log": None,
        "sanitize": spec,
        "sanitize_supported": None,
        "clean_dir": None,
        "sanitized_dir": None,
    }
    if cc is not None:
        info["sanitize_supported"] = sanitizer_supported(
            spec or "address,undefined", cc=cc
        )
        info["clean_dir"] = str(_build_dir(cc, spec=None))
        # The dir a sanitized build would use: the active spec, or the
        # documented default mode when sanitizing is currently off.
        info["sanitized_dir"] = str(
            _build_dir(cc, spec=spec or "address,undefined")
        )
    kernels = _kernels
    if kernels is not None:
        info["so_path"] = str(kernels.so_path)
        info["build_log"] = str(kernels.so_path.parent / "build.log")
    elif cc is not None:
        log = _build_dir(cc) / "build.log"
        if log.exists():
            info["build_log"] = str(log)
    return info


def warned_once() -> bool:
    """Whether the ``backend='native'`` fallback warning has fired."""
    return _warned_unavailable


def reset_warned() -> None:
    """Re-arm the warn-once fallback warning.

    Finer-grained than :func:`reset_for_tests`: the (possibly
    expensive) load attempt stays memoized, only the warning state is
    forgotten.  Tests use it so suite ordering can neither mask the
    warning (an earlier test already spent it) nor duplicate it.
    """
    global _warned_unavailable
    with _lock:
        _warned_unavailable = False


def reset_for_tests() -> None:
    """Forget the load attempt and warn-once state (test isolation)."""
    global _kernels, _load_attempted, _load_error, _warned_unavailable
    with _lock:
        _kernels = None
        _load_attempted = False
        _load_error = None
        _warned_unavailable = False
        _sanitize_probes.clear()
