"""Shared-memory grid store: one key-grid set per spec, many processes.

A process-pool sweep (``Sweep(processes=N)``) historically rebuilt every
curve's key grid privately in each worker — the exact redundancy the
paper's shared-structure argument says to exploit: all stretch metrics
of a cell reduce over *one* permutation's key grid.  The
:class:`SharedGridStore` removes it:

* the **parent** computes one grid set per canonical curve spec — the
  dense key grid, the rank-ordered flat keys and the inverse
  permutation — and copies each into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment;
* the **workers** receive the segment manifest through the executor
  initializer and attach **zero-copy read-only NumPy views** instead of
  recomputing; resolutions are counted under
  :attr:`repro.engine.CacheStats.shared`;
* after the sweep the parent **unlinks** every segment (in a
  ``finally``, so segments are reclaimed even when a worker raises or
  dies mid-run).

Entries are keyed by :func:`shared_key` — a process-stable rendering of
:meth:`repro.curves.base.SpaceFillingCurve.cache_key` — so two
separately constructed but equivalent curves (parent's and worker's)
resolve to the same segments.  Instance-keyed curves (explicit
permutation tables, whose identity cannot be re-derived in another
process) return ``None`` from :func:`shared_key` and simply fall back
to local computation.

Attached views index shared pages: a worker never pays the curve
evaluation again, and the grid's memory is mapped once machine-wide
instead of once per worker.

>>> import numpy as np
>>> store = SharedGridStore.create()
>>> store.put(("demo",), "key_grid", np.arange(4, dtype=np.int64))
>>> twin = SharedGridStore.attach(store.manifest())
>>> view = twin.get(("demo",), "key_grid")
>>> bool((view == np.arange(4)).all()) and not view.flags.writeable
True
>>> twin.get(("demo",), "flat_keys") is None   # absent kind -> local compute
True
>>> twin.close(); store.unlink()
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.grid.universe import Universe

__all__ = [
    "SHARED_KINDS",
    "SharedGridStore",
    "shared_key",
    "universe_key",
]

#: The per-spec intermediates a shared store can publish, in publish
#: order.  Each is resolvable by a worker context before local compute:
#: ``key_grid`` (dense ``(side,)*d``), ``flat_keys`` (rank order),
#: ``inverse_perm`` (rank of each key) and ``order`` (cells in curve
#: order, ``(n, d)`` — published only when the sweep runs a windowed
#: metric, since it costs ``d×`` the key grid's bytes).
SHARED_KINDS: Tuple[str, ...] = (
    "key_grid",
    "flat_keys",
    "inverse_perm",
    "order",
)


class _Unshareable(Exception):
    """Raised while stabilizing a cache key that embeds instance state."""


def _stable(part: object) -> object:
    """``part`` of a cache key rendered process-stable, or raise."""
    if isinstance(part, type):
        # Types hash by identity, which differs across interpreter
        # processes under the spawn start method; the qualified name is
        # stable and just as unique.
        return f"{part.__module__}.{part.__qualname__}"
    if isinstance(part, Universe):
        return ("universe", part.d, part.side)
    if isinstance(part, tuple):
        if part and part[0] == "instance":
            # PermutationCurve tables are keyed by id(); another
            # process cannot reproduce the key, so the spec cannot be
            # matched to a published segment.
            raise _Unshareable
        return tuple(_stable(p) for p in part)
    if part is None or isinstance(part, (str, int, float, bool)):
        return part
    raise _Unshareable


def shared_key(curve: SpaceFillingCurve) -> Optional[tuple]:
    """Process-stable store key of ``curve``'s canonical spec.

    ``None`` when the curve is instance-keyed (its
    :meth:`~repro.curves.base.SpaceFillingCurve.cache_key` embeds
    ``id()``-based state a worker process cannot reproduce) — such
    curves are computed locally, never shared.

    >>> from repro import Universe, ZCurve
    >>> u = Universe.power_of_two(d=2, k=2)
    >>> shared_key(ZCurve(u)) == shared_key(ZCurve(u))
    True
    >>> from repro.curves.base import PermutationCurve
    >>> import numpy as np
    >>> table = PermutationCurve(u, order=u.all_coords())
    >>> shared_key(table) is None
    True
    """
    try:
        return _stable(curve.cache_key())  # type: ignore[return-value]
    except _Unshareable:
        return None


def universe_key(universe: Universe) -> tuple:
    """Store key for curve-independent state of ``universe``."""
    return ("universe", universe.d, universe.side)


class SharedGridStore:
    """Keyed shared-memory segments holding read-only NumPy arrays.

    One store has two lives: the **owner** (sweep parent) fills it with
    :meth:`put` and eventually calls :meth:`unlink`; **attached** copies
    (workers) are built from :meth:`manifest` via :meth:`attach` and
    resolve arrays with :meth:`get`.  Entries are keyed by
    ``(spec_key, kind)`` where ``spec_key`` comes from
    :func:`shared_key` / :func:`universe_key` and ``kind`` names the
    intermediate (see :data:`SHARED_KINDS`).

    Lifecycle rules:

    * ``put`` copies the array into a fresh segment exactly once per
      key (re-publishing an existing key raises — aliasing two arrays
      under one key would silently corrupt every attached reader);
    * ``get`` returns a zero-copy read-only view, or ``None`` when the
      key was never published (callers fall back to local compute);
    * ``unlink`` (owner) removes every segment from the system; it is
      idempotent and tolerates segments that already vanished, so a
      ``finally:`` call is always safe;
    * ``close`` (workers) drops this process's handles without touching
      the underlying segments.
    """

    def __init__(
        self,
        manifest: Optional[Dict[tuple, Tuple[str, tuple, str]]] = None,
        owner: bool = False,
    ) -> None:
        #: ``(spec_key, kind) -> (segment_name, shape, dtype_str)``.
        self._entries: Dict[tuple, Tuple[str, tuple, str]] = dict(
            manifest or {}
        )
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._views: Dict[tuple, np.ndarray] = {}
        self.owner = owner
        # Serializes attach/publish/cleanup.  Concurrent `get` calls on
        # the same entry (block-scheduler worker threads of one cell's
        # context) would otherwise attach the segment twice and drop
        # one SharedMemory wrapper — whose __del__ unmaps pages a live
        # view still points at.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls) -> "SharedGridStore":
        """A fresh owning store (the sweep parent's side)."""
        return cls(owner=True)

    @classmethod
    def attach(
        cls, manifest: Dict[tuple, Tuple[str, tuple, str]]
    ) -> "SharedGridStore":
        """A non-owning store resolving a published :meth:`manifest`.

        Segments are attached lazily on first :meth:`get`, so a worker
        only maps the specs its cells actually touch.
        """
        return cls(manifest=manifest, owner=False)

    def manifest(self) -> Dict[tuple, Tuple[str, tuple, str]]:
        """Picklable description of every entry (pass to workers)."""
        with self._lock:
            return dict(self._entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Names of every published segment (test / cleanup hook)."""
        with self._lock:
            return tuple(name for name, _, _ in self._entries.values())

    @property
    def nbytes(self) -> int:
        """Total bytes across all published arrays."""
        with self._lock:
            return sum(
                int(np.prod(shape, dtype=np.int64))
                * np.dtype(dtype).itemsize
                for _, shape, dtype in self._entries.values()
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self.owner else "attached"
        return (
            f"SharedGridStore({role}, {len(self)} entries, "
            f"{self.nbytes / 2**20:.1f} MiB)"
        )

    # ------------------------------------------------------------------
    # Owner side
    # ------------------------------------------------------------------
    def put(self, spec_key: tuple, kind: str, array: np.ndarray) -> None:
        """Copy ``array`` into a new segment under ``(spec_key, kind)``."""
        if not self.owner:
            raise ValueError("only the owning store can publish segments")
        entry_key = (spec_key, kind)
        with self._lock:
            if entry_key in self._entries:
                raise ValueError(
                    f"entry {entry_key!r} is already published"
                )
            arr = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, arr.nbytes)
            )
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=segment.buf
            )
            view[...] = arr
            view.flags.writeable = False
            self._segments[segment.name] = segment
            self._entries[entry_key] = (
                segment.name,
                arr.shape,
                arr.dtype.str,
            )
            self._views[entry_key] = view

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------
    def get(self, spec_key: tuple, kind: str) -> Optional[np.ndarray]:
        """Zero-copy read-only view of an entry, or ``None`` if absent.

        Also returns ``None`` when the manifest names a segment that no
        longer exists (e.g. the parent already unlinked it) — callers
        treat that as a cache miss and compute locally.

        Thread-safe: one store is consulted by every worker thread of
        a cell's block scheduler, and each segment must be attached
        exactly once — a racing second attach would drop one
        ``SharedMemory`` wrapper and unmap pages the surviving view
        still indexes (a segfault, not an exception).
        """
        entry_key = (spec_key, kind)
        with self._lock:
            view = self._views.get(entry_key)
            if view is not None:
                return view
            entry = self._entries.get(entry_key)
            if entry is None:
                return None
            name, shape, dtype = entry
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                return None
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf
            )
            view.flags.writeable = False
            self._segments[name] = segment
            self._views[entry_key] = view
            return view

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's handles; the segments themselves survive.

        A handle whose view is still referenced elsewhere cannot be
        unmapped (the exported buffer pins it); such handles are left
        for process teardown, which is exactly what happens to worker
        processes exiting after a sweep.
        """
        with self._lock:
            self._views.clear()
            for segment in self._segments.values():
                try:
                    segment.close()
                except BufferError:  # a live view pins the mapping
                    pass
            self._segments.clear()

    def unlink(self) -> None:
        """Remove every segment from the system (owner cleanup).

        Safe to call unconditionally in ``finally``: missing segments
        (already unlinked, or never created because publishing failed
        midway) are skipped, and attached readers keep working until
        they drop their mappings — unlink only removes the name.
        """
        with self._lock:
            self._views.clear()
            for name, _, _ in self._entries.values():
                segment = self._segments.pop(name, None)
                if segment is None:
                    try:
                        segment = shared_memory.SharedMemory(name=name)
                    except FileNotFoundError:
                        continue
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - view still alive
                    pass
                try:
                    segment.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._entries.clear()
            self._segments.clear()
