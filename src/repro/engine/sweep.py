"""Declarative curve × universe sweeps over the metric engine.

Every benchmark, example and CLI table in this repo is some flavor of
"for each universe, for each applicable curve, compute these metrics".
:class:`Sweep` makes that loop a declared object::

    Sweep(dims=[2, 3], sides=[16, 32],
          curves=["hilbert", "z", "random:seed=3"],
          metrics=["davg", "dilation:window=16", "partition:parts=8"]).run()

* **Curve specs** are strings ``name[:key=val[,key=val...]]`` parsed
  into registry kwargs (``"random:seed=3"`` →
  ``make_curve("random", u, seed=3)``); see :class:`CurveSpec`.
* **Metric specs** use the same grammar over the :data:`METRICS`
  registry (``"dilation:window=16"``); see :class:`MetricSpec`.  Each
  registered metric is a function of a
  :class:`repro.engine.MetricContext` (plus declared parameters), so
  every metric of a cell shares one cached set of intermediates —
  stretch, clustering, dilation and the application metrics all pull
  from the same context.
* **Applicability** uses the curve registry's capability metadata;
  skipped (universe, curve) cells are reported on the result, and
  ``strict=True`` raises on genuine construction errors.
* Serial sweeps run over a shared :class:`repro.engine.ContextPool`
  (``pooled=False`` opts out), so curve-independent intermediates are
  computed once per universe and transform-derived curves reuse their
  inner curve's arrays; the pool's aggregate
  :class:`repro.engine.CacheStats` land on the result.
* ``processes=N`` fans the (universe, curve) cells out over a process
  pool — each cell is independent, so the sweep parallelizes trivially.
  With ``shared`` on (the ``"auto"`` default), the parent precomputes
  one grid set per canonical curve spec into
  :class:`repro.engine.shm.SharedGridStore` segments and the workers
  attach zero-copy views instead of rebuilding every key grid privately
  (counted in :attr:`repro.engine.CacheStats.shared`); identical cells
  are deduplicated spec-keyed before any work runs.  ``shared=False``
  restores fully private workers — then a warning flags the bypassed
  pooling unless ``pooled=False`` acknowledges it.  Either way each
  worker's cache stats are piped back and aggregated on the result.
* ``chunk_cells`` (or the automatic selection against ``max_bytes``)
  runs cells in the engine's **chunked mode**, so universes whose dense
  ``(side,)*d`` key grid would blow the cache budget still sweep, with
  block-wise metric reductions bit-for-bit equal to the dense path.

:func:`repro.core.summary.survey` is now a thin wrapper over ``Sweep``;
the structured :class:`SweepResult` additionally carries per-metric
value dicts, a ready-to-print table, and the engine cache counters.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.summary import StretchReport, stretch_report
from repro.curves.base import SpaceFillingCurve
from repro.curves.registry import (
    available_curves,
    curve_applicability,
    make_curve,
)
from repro.engine.chunked import DEFAULT_CHUNK_CELLS
from repro.engine.context import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    MetricContext,
)
from repro.engine.pool import ContextPool
from repro.grid.universe import Universe

__all__ = [
    "CurveSpec",
    "MetricSpec",
    "MetricEntry",
    "parse_curve_spec",
    "parse_metric_spec",
    "METRICS",
    "register_metric",
    "Sweep",
    "SweepRecord",
    "SweepResult",
    "SkippedCell",
]


# ----------------------------------------------------------------------
# Spec grammar (shared by curve and metric specs)
# ----------------------------------------------------------------------
def _coerce(text: str) -> object:
    """Parse a spec value: int, then float, then bool, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _render(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse_spec_text(
    spec: str, kind: str
) -> Tuple[str, Tuple[Tuple[str, object], ...]]:
    """Parse ``name[:key=val,...]`` into (name, kwargs tuple)."""
    text = spec.strip()
    if not text:
        raise ValueError(f"empty {kind} spec")
    name, _, tail = text.partition(":")
    name = name.strip()
    if not name:
        raise ValueError(f"{kind} spec {spec!r} has no name")
    kwargs: List[Tuple[str, object]] = []
    if tail:
        for part in tail.split(","):
            key, eq, raw = part.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(
                    f"bad {kind} spec {spec!r}: expected key=value, "
                    f"got {part!r}"
                )
            kwargs.append((key, _coerce(raw.strip())))
    return name, tuple(kwargs)


@dataclass(frozen=True)
class _Spec:
    """A name plus kwargs, round-trippable to ``name:key=val,...``."""

    #: Spec flavor used in error messages ("curve" / "metric").
    _kind = "spec"

    name: str
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def parse(cls, spec):
        if isinstance(spec, cls):
            return spec
        name, kwargs = _parse_spec_text(spec, cls._kind)
        return cls(name=name, kwargs=kwargs)

    @property
    def label(self) -> str:
        """Canonical string form, ``name`` or ``name:key=val,...``."""
        if not self.kwargs:
            return self.name
        tail = ",".join(f"{k}={_render(v)}" for k, v in self.kwargs)
        return f"{self.name}:{tail}"

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class CurveSpec(_Spec):
    """A curve name plus constructor kwargs.

    >>> CurveSpec.parse("random:seed=3")
    CurveSpec(name='random', kwargs=(('seed', 3),))
    >>> str(CurveSpec.parse("random:seed=3"))
    'random:seed=3'
    """

    _kind = "curve"

    def make(self, universe: Universe):
        """Instantiate the spec'd curve on ``universe``."""
        return make_curve(self.name, universe, **dict(self.kwargs))


@dataclass(frozen=True)
class MetricSpec(_Spec):
    """A metric name plus parameters, e.g. ``"dilation:window=16"``.

    >>> MetricSpec.parse("dilation:window=16").kwargs
    (('window', 16),)
    """

    _kind = "metric"

    def bind(self) -> "Callable[[MetricContext], object]":
        """Resolve against :data:`METRICS` into a context function."""
        if self.name not in METRICS:
            raise KeyError(
                f"unknown metrics [{self.label!r}]; "
                f"available: {sorted(METRICS)}"
            )
        return METRICS[self.name].bind(dict(self.kwargs))


def parse_curve_spec(spec: Union[str, CurveSpec]) -> CurveSpec:
    """Parse ``"name:key=val,..."`` into a :class:`CurveSpec`."""
    return CurveSpec.parse(spec)


def parse_metric_spec(spec: Union[str, MetricSpec]) -> MetricSpec:
    """Parse ``"name:key=val,..."`` into a :class:`MetricSpec`."""
    return MetricSpec.parse(spec)


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
MetricFn = Callable[..., object]


@dataclass(frozen=True)
class MetricEntry:
    """One registered sweep metric: function + declared parameters."""

    name: str
    fn: MetricFn
    description: str = ""
    #: Accepted parameters as ``(name, default)`` pairs; metric-spec
    #: kwargs outside this set are rejected at plan time.
    params: Tuple[Tuple[str, object], ...] = ()
    #: Optional value validator (called with the explicit kwargs after
    #: the type checks).  Must raise an actionable ``ValueError`` for
    #: out-of-domain values, so ``"dilation:window=0"`` fails at plan
    #: time instead of deep inside NumPy mid-sweep.
    validate: Optional[Callable[[Dict[str, object]], None]] = None

    @property
    def signature(self) -> str:
        """Human-readable parameter list, e.g. ``"window=1,metric=..."``."""
        return ",".join(f"{k}={_render(v)}" for k, v in self.params)

    def bind(self, kwargs: Dict[str, object]) -> MetricFn:
        """The metric as a one-arg context function with bound params.

        Validates both parameter *names* and *value types* (against each
        declared default), so a bad spec fails at plan time with a clean
        ``ValueError`` instead of mid-sweep with an arbitrary exception.
        """
        allowed = dict(self.params)
        unknown = sorted(set(kwargs) - set(allowed))
        if unknown:
            accepts = self.signature or "no parameters"
            raise ValueError(
                f"metric {self.name!r} got unknown parameter(s) "
                f"{unknown}; accepts {accepts}"
            )
        for key, value in kwargs.items():
            default = allowed[key]
            if isinstance(default, bool):
                ok = isinstance(value, bool)
            elif isinstance(default, float):
                # ints are acceptable where a float is expected
                ok = isinstance(value, (int, float)) and not isinstance(
                    value, bool
                )
            elif isinstance(default, int):
                ok = isinstance(value, int) and not isinstance(value, bool)
            elif isinstance(default, str):
                ok = isinstance(value, str)
            else:
                ok = True
            if not ok:
                raise ValueError(
                    f"metric {self.name!r} parameter {key!r} expects "
                    f"{type(default).__name__} (default {_render(default)}), "
                    f"got {value!r}"
                )
        if self.validate is not None:
            self.validate(dict(kwargs))
        if not kwargs:
            return self.fn
        fn = self.fn
        return lambda ctx: fn(ctx, **kwargs)


#: Declarative metric names → :class:`MetricEntry` (functions of a
#: :class:`MetricContext` plus declared parameters).
METRICS: Dict[str, MetricEntry] = {}


def register_metric(
    name: str,
    fn: Optional[MetricFn] = None,
    *,
    overwrite: bool = False,
    description: str = "",
    params: Sequence[Tuple[str, object]] = (),
    validate: Optional[Callable[[Dict[str, object]], None]] = None,
):
    """Register a sweep metric (direct call or decorator form).

    ``fn`` takes a :class:`MetricContext` plus the keyword parameters
    declared in ``params`` (as ``(name, default)`` pairs).  Policy: new
    metrics land here — as a :class:`MetricContext`-consuming function —
    rather than as free functions in the analysis/apps layers.
    """

    def _register(f: MetricFn) -> MetricFn:
        if not overwrite and name in METRICS:
            raise ValueError(
                f"metric {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        METRICS[name] = MetricEntry(
            name=name,
            fn=f,
            description=description,
            params=tuple(params),
            validate=validate,
        )
        return f

    if fn is None:
        return _register
    _register(fn)
    return None


def _min_validator(metric_name: str, **minimums):
    """A :class:`MetricEntry` validator enforcing per-param minimums."""

    def validate(params: Dict[str, object]) -> None:
        for key, minimum in minimums.items():
            value = params.get(key)
            if value is not None and value < minimum:
                raise ValueError(
                    f"metric {metric_name!r} parameter {key!r} must be "
                    f">= {minimum}, got {value}"
                )

    return validate


def _validate_dilation(params: Dict[str, object]) -> None:
    _min_validator("dilation", window=1)(params)
    metric = params.get("metric")
    if metric is not None and metric not in ("manhattan", "euclidean"):
        raise ValueError(
            "metric 'dilation' parameter 'metric' must be 'manhattan' "
            f"or 'euclidean', got {metric!r}"
        )


def _allpairs_metric(grid_metric: str) -> MetricFn:
    """All-pairs stretch with ``survey()``'s exact/sampled policy."""
    from repro.core.summary import _EXACT_ALLPAIRS_LIMIT

    def fn(ctx: MetricContext) -> float:
        if ctx.universe.n <= _EXACT_ALLPAIRS_LIMIT:
            return ctx.allpairs_exact(grid_metric)
        return ctx.allpairs_sampled(metric=grid_metric).mean

    return fn


def _dilation_metric(ctx: MetricContext, window: int = 1, metric: str = "manhattan"):
    from repro.analysis.locality import window_dilation

    return window_dilation(ctx, window, metric=metric)


def _partition_metric(ctx: MetricContext, parts: int = 8) -> float:
    from repro.apps.partition import partition_quality

    return partition_quality(ctx, parts).cut_fraction


def _clusters_metric(
    ctx: MetricContext, box: int = 4, samples: int = 100, seed: int = 0
) -> float:
    from repro.analysis.clustering import expected_clusters

    return expected_clusters(
        ctx, (box,) * ctx.universe.d, n_samples=samples, seed=seed
    )


def _rangequery_metric(
    ctx: MetricContext,
    box: int = 4,
    samples: int = 50,
    seed: int = 0,
    seek: float = 10.0,
    scan: float = 1.0,
) -> float:
    from repro.apps.rangequery import SFCIndex

    index = SFCIndex(ctx, seek_cost=seek, scan_cost=scan)
    return index.average_query_cost(
        (box,) * ctx.universe.d, n_samples=samples, seed=seed
    )


register_metric(
    "davg", lambda ctx: ctx.davg(),
    description="average-average NN stretch D^avg (Definition 2), exact",
)
register_metric(
    "dmax", lambda ctx: ctx.dmax(),
    description="average-maximum NN stretch D^max (Definition 4), exact",
)
register_metric(
    "lower_bound", lambda ctx: ctx.lower_bound(),
    description="Theorem 1 universal lower bound on D^avg",
)
register_metric(
    "davg_ratio", lambda ctx: ctx.davg_ratio(),
    description="D^avg / lower bound — the paper's optimality ratio",
)
register_metric(
    "lambdas",
    lambda ctx: tuple(int(v) for v in ctx.lambda_sums()),
    description="Lemma 5 per-dimension stretch totals (Λ_1..Λ_d)",
)
register_metric(
    "allpairs_manhattan", _allpairs_metric("manhattan"),
    description="all-pairs stretch, Manhattan (exact ≤4096 cells, else sampled)",
)
register_metric(
    "allpairs_euclidean", _allpairs_metric("euclidean"),
    description="all-pairs stretch, Euclidean (exact ≤4096 cells, else sampled)",
)
register_metric(
    "nn_mean", lambda ctx: ctx.nn_mean(),
    description="mean ∆π over NN pairs (expected key shift of a unit move)",
)
register_metric(
    "dilation", _dilation_metric,
    description="window dilation: max grid distance of a fixed curve-index "
    "step (Gotsman-Lindenbaum reverse metric)",
    params=(("window", 1), ("metric", "manhattan")),
    validate=_validate_dilation,
)
register_metric(
    "partition", _partition_metric,
    description="edge-cut fraction of the p-way contiguous curve partition "
    "(communication fraction)",
    params=(("parts", 8),),
    validate=_min_validator("partition", parts=1),
)
register_metric(
    "clusters", _clusters_metric,
    description="Moon et al. expected cluster count over random cubic boxes",
    params=(("box", 4), ("samples", 100), ("seed", 0)),
    validate=_min_validator("clusters", box=1, samples=1),
)
register_metric(
    "rangequery", _rangequery_metric,
    description="mean seek+scan I/O cost of random cubic box queries",
    params=(
        ("box", 4),
        ("samples", 50),
        ("seed", 0),
        ("seek", 10.0),
        ("scan", 1.0),
    ),
    validate=_min_validator(
        "rangequery", box=1, samples=1, seek=0, scan=0
    ),
)

#: Metric set matching the legacy ``survey()`` columns.
DEFAULT_METRICS: Tuple[str, ...] = (
    "davg",
    "dmax",
    "lower_bound",
    "davg_ratio",
    "lambdas",
)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRecord:
    """One computed (universe, curve) cell of a sweep."""

    spec: str
    curve_name: str
    d: int
    side: int
    n: int
    values: Dict[str, object]
    report: Optional[StretchReport] = None

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table formatting."""
        row: Dict[str, object] = {
            "curve": self.spec,
            "d": self.d,
            "side": self.side,
            "n": self.n,
        }
        row.update(self.values)
        return row


@dataclass(frozen=True)
class SkippedCell:
    """A (universe, curve) cell the sweep did not compute, and why."""

    spec: str
    d: int
    side: int
    reason: str


@dataclass(frozen=True)
class SweepResult:
    """Structured output of :meth:`Sweep.run`."""

    records: List[SweepRecord]
    skipped: List[SkippedCell] = field(default_factory=list)
    #: Aggregate engine cache counters of the run.  Process-pool sweeps
    #: pipe each worker's per-cell stats back through the executor and
    #: aggregate them here, so the counters cover every execution mode.
    cache_stats: Optional[CacheStats] = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def reports(self) -> List[StretchReport]:
        """The :class:`StretchReport` of every computed cell."""
        return [r.report for r in self.records if r.report is not None]

    def rows(self) -> List[Dict[str, object]]:
        """Flat metric rows, one per computed cell."""
        return [r.as_row() for r in self.records]

    def to_table(self) -> str:
        """The sweep as a formatted text table."""
        from repro.viz.tables import format_table

        return format_table(self.rows())


# ----------------------------------------------------------------------
# The sweep runner
# ----------------------------------------------------------------------
_Task = Tuple[
    int,
    int,
    str,
    Tuple[str, ...],
    bool,
    bool,
    int,
    int,
    bool,
    Optional[int],
    Optional[int],
    int,
    str,
    Optional[str],
]

#: Metric names whose evaluation walks the curve order / windowed
#: state; a shared-mode process sweep publishes ``order`` for its
#: specs exactly when one of these is requested, so workers attach the
#: curve path zero-copy instead of privately rebuilding the inverse.
_ORDER_METRICS = frozenset({"dilation"})


def _needs_order(metric_texts: Tuple[str, ...]) -> bool:
    """Whether a cell's metric set consumes the curve-order array."""
    return any(
        MetricSpec.parse(text).name in _ORDER_METRICS
        for text in metric_texts
    )


def _run_cell(
    task: _Task,
    pool: Optional[ContextPool] = None,
    stats_sink: Optional[List[CacheStats]] = None,
    shared_store=None,
):
    """Compute one (universe, curve) cell; top-level for pickling."""
    (
        d,
        side,
        spec_text,
        metrics,
        with_report,
        include_allpairs,
        allpairs_samples,
        seed,
        strict,
        chunk_cells,
        max_bytes,
        threads,
        backend,
        store_dir,
    ) = task
    universe = Universe(d=d, side=side)
    spec = CurveSpec.parse(spec_text)
    try:
        curve = spec.make(universe)
    except (ValueError, TypeError) as exc:
        # TypeError covers bad spec kwargs ("z:bogus=1"); one bad cell
        # must not crash the rest of the sweep.
        if strict:
            raise ValueError(
                f"curve {spec.label!r} failed to construct on "
                f"{universe}: {exc}"
            ) from exc
        return SkippedCell(
            spec=spec.label,
            d=d,
            side=side,
            reason=f"construction error: {exc}",
        )
    cell_pool: Optional[ContextPool] = None
    if pool is not None:
        ctx = pool.get(curve)
    elif shared_store is not None:
        # Shared-mode worker: a cell-scoped pool wires this context (and
        # any transform base contexts, created transitively) to the
        # parent-published shared-memory segments.
        cell_pool = ContextPool(
            max_bytes=max_bytes,
            chunk_cells=chunk_cells,
            shared_store=shared_store,
            threads=threads,
            backend=backend,
            store_dir=store_dir,
        )
        ctx = cell_pool.get(curve)
    else:
        ctx = MetricContext(
            curve,
            max_bytes=max_bytes,
            chunk_cells=chunk_cells,
            threads=threads,
            backend=backend,
            store_dir=store_dir,
        )
    if pool is None and cell_pool is None and stats_sink is not None:
        stats_sink.append(ctx.stats)
    # Record which backend actually serves this cell (the *resolved*
    # backend: an unavailable "native" request degrades to "numpy"), so
    # --stats / the serve /stats payload can report it.
    ctx.stats.backends[ctx.backend] = (
        ctx.stats.backends.get(ctx.backend, 0) + 1
    )
    values = {}
    for text in metrics:
        metric_spec = MetricSpec.parse(text)
        values[metric_spec.label] = metric_spec.bind()(ctx)
    report = None
    if with_report:
        report = stretch_report(
            curve,
            include_allpairs=include_allpairs,
            allpairs_samples=allpairs_samples,
            seed=seed,
            context=ctx,
        )
    if cell_pool is not None and stats_sink is not None:
        # Aggregated after the metrics ran so transitively created base
        # contexts (transform derivation) are included.
        stats_sink.append(cell_pool.stats)
    return SweepRecord(
        spec=spec.label,
        curve_name=curve.name,
        d=d,
        side=side,
        n=universe.n,
        values=values,
        report=report,
    )


#: Worker-process handle on the parent's published segments, set by
#: :func:`_worker_attach_shared` through the executor initializer.
_WORKER_SHARED_STORE = None


def _worker_attach_shared(manifest) -> None:
    """Executor initializer: attach the parent's shared-grid manifest."""
    global _WORKER_SHARED_STORE
    from repro.engine.shm import SharedGridStore

    _WORKER_SHARED_STORE = SharedGridStore.attach(manifest)


def _run_cell_with_stats(task: _Task):
    """Process-pool entry point: one cell plus its worker cache stats.

    Returning the per-cell :class:`CacheStats` lets the parent
    aggregate engine counters across workers — without this, process
    sweeps silently reported no cache statistics at all.  When the
    sweep published a :class:`repro.engine.shm.SharedGridStore`, the
    cell resolves grids through it (see :func:`_worker_attach_shared`).
    """
    sink: List[CacheStats] = []
    outcome = _run_cell(
        task, pool=None, stats_sink=sink, shared_store=_WORKER_SHARED_STORE
    )
    stats = CacheStats.aggregate(sink) if sink else CacheStats()
    return outcome, stats


def _publish_shared(
    tasks: List[_Task],
    max_bytes: Optional[int],
    store_dir: Optional[str] = None,
):
    """Precompute one grid set per canonical spec into shared memory.

    Returns ``(store, stats)``: the owning
    :class:`repro.engine.shm.SharedGridStore` and the publishing pool's
    :class:`CacheStats` (folded into the sweep result, so parent-side
    computes and transform derivations stay visible).  Chunked-mode
    cells are skipped — materializing a beyond-budget dense grid in the
    parent would defeat the point of chunking — as are instance-keyed
    specs and cells whose curve fails to construct (the worker will
    report those as skipped).  Publishing reuses a per-universe
    :class:`ContextPool`, so transform curves' grids are *derived* from
    their inner curve's arrays instead of evaluated from scratch.

    Publish policy: **base** specs get the full grid set (key grid,
    flat keys, inverse permutation) — everything a worker would need a
    curve evaluation or an ``O(n)`` scatter to rebuild.  **Transform-
    derived** specs (``curve.inner``) get their key grid only: their
    flat keys / inverse permutation are a single cheap vector op away
    from the published grid, so shipping them too would spend more
    parent time and shared memory than the workers save (workers fall
    back to computing them *from the zero-copy grid view*, never from
    a curve evaluation).  The **curve order** array (``(n, d)``, the
    state behind the windowed dilation metrics) is published exactly
    when a cell requests an order-consuming metric — workers
    historically rebuilt it privately per cell, and unconditional
    publishing would cost ``d×`` the key grid's shared memory on
    sweeps that never touch it.  Consistent with the grid policy, it
    is published under the spec's *innermost base* curve only: a
    transform's order is one vector op away (reverse / reflect /
    column-permute, see
    :func:`repro.engine.pool.transform_derivations`), so workers
    derive it from the base's zero-copy view instead of the parent
    shipping one ``(n, d)`` segment per family member.

    With a ``store_dir`` the publishing pool is additionally wired to
    the persistent :class:`repro.engine.store.GridStore`: a warm parent
    *maps* each grid from disk instead of evaluating curves before
    copying it into shared memory, and a cold parent's computes are
    written through for the next run.
    """
    from repro.engine.shm import SharedGridStore, shared_key, universe_key

    store = SharedGridStore.create()
    stats: List[CacheStats] = []
    pool: Optional[ContextPool] = None
    pool_universe = None
    # One plan shares one metric set, so parse it once per distinct
    # tuple instead of once per (universe, curve) task.
    order_wanted = {
        metric_texts: _needs_order(metric_texts)
        for metric_texts in {task[3] for task in tasks}
    }
    try:
        for task in tasks:
            d, side, spec_text, chunk_cells = task[0], task[1], task[2], task[9]
            if chunk_cells is not None:
                continue
            universe = Universe(d=d, side=side)
            if pool is None or pool_universe != (d, side):
                if pool is not None:
                    stats.append(pool.stats)
                pool = ContextPool(max_bytes=max_bytes, store_dir=store_dir)
                pool_universe = (d, side)
            try:
                curve = CurveSpec.parse(spec_text).make(universe)
            except (ValueError, TypeError):
                continue
            skey = shared_key(curve)
            if skey is None:
                continue
            want_order = order_wanted[task[3]]
            if (skey, "key_grid") not in store:
                ctx = pool.get(curve)
                store.put(skey, "key_grid", ctx.key_grid())
                if not isinstance(
                    getattr(curve, "inner", None), SpaceFillingCurve
                ):
                    store.put(skey, "flat_keys", ctx.flat_keys())
                    store.put(
                        skey, "inverse_perm", ctx.inverse_permutation()
                    )
                ukey = universe_key(universe)
                if (
                    (ukey, "neighbor_counts") not in store
                    and universe.side >= 2
                ):
                    store.put(ukey, "neighbor_counts", ctx.neighbor_counts())
            if want_order:
                # Publish under the innermost base spec: workers
                # derive a transform's order from the base view.
                target = curve
                while isinstance(
                    getattr(target, "inner", None), SpaceFillingCurve
                ):
                    target = target.inner
                okey = shared_key(target)
                if okey is not None and (okey, "order") not in store:
                    store.put(okey, "order", pool.get(target).order())
    except BaseException:
        store.unlink()  # publishing died midway: leak nothing
        raise
    if pool is not None:
        stats.append(pool.stats)
    return store, CacheStats.aggregate(stats)


@dataclass
class Sweep:
    """A declared curve × universe × metric sweep.

    Universes come from the cross product ``dims × sides`` and/or an
    explicit ``universes`` list.  ``curves=None`` selects every
    registered curve applicable to each universe (sorted by name, like
    the legacy ``survey()``); otherwise curves is a list of names or
    ``"name:key=val"`` spec strings, kept in the given order.

    ``metrics`` names entries of :data:`METRICS`, optionally
    parameterized (``"dilation:window=16"``).  ``reports=True``
    additionally builds a full :class:`StretchReport` per cell (sharing
    the cell's cached intermediates, so this costs nothing extra for the
    default metric set).  Serial runs share one
    :class:`repro.engine.ContextPool` per universe (disable with
    ``pooled=False``); ``processes`` > 1 distributes cells over a
    process pool instead, and the workers' cache stats are aggregated
    on the result.

    **Process-pool sharing** (``shared``): with ``"auto"`` (the
    default) or ``True``, a process sweep publishes one grid set per
    canonical curve spec — key grid, flat keys, inverse permutation,
    plus per-universe neighbor counts — into
    :class:`repro.engine.shm.SharedGridStore` segments before the
    executor starts; workers attach zero-copy views instead of
    recomputing (counted under :attr:`CacheStats.shared`), and the
    parent unlinks every segment when the sweep finishes, even on
    worker failure.  Identical (universe, curve, metrics) cells are
    deduplicated before any work runs, in every execution mode.
    ``shared=False`` keeps workers fully private — each cell rebuilds
    its grids, and a warning flags the bypassed pooling unless
    ``pooled=False`` acknowledges it.  Serial sweeps ignore ``shared``
    (the in-process pool already shares everything).

    **Intra-cell threading** (``threads``): each cell's block
    reductions can additionally fan out over a per-context thread pool
    (:mod:`repro.engine.threads`) — the NumPy block kernels release
    the GIL, so this composes with *every* execution mode, including
    process sweeps (``"auto"`` sizes threads-per-cell so
    ``processes × threads <= cores``).  Results stay bit-for-bit
    identical; the worker-thread cache traffic lands in the same
    aggregated :class:`CacheStats`.

    **Memory model**: ``max_bytes`` is each context's LRU budget for
    retained intermediates; ``chunk_cells`` bounds what is materialized
    at once.  With the default ``chunk_cells=None`` the engine's
    chunked mode is auto-selected per universe whenever the dense
    ``(side,)*d`` key grid alone would exceed ``max_bytes``; an
    explicit positive ``chunk_cells`` forces chunked execution with
    that block size, and ``chunk_cells=0`` forces the dense mode.
    Chunked cells never use the shared store — they exist precisely to
    avoid materializing dense ``O(n)`` arrays — and fall back to the
    PR-3 private-context behavior inside workers.

    >>> from repro import Universe
    >>> result = Sweep(universes=[Universe(d=2, side=4)],
    ...                curves=["z", "snake"], metrics=("davg",),
    ...                reports=False).run()
    >>> [r.spec for r in result.records]
    ['z', 'snake']
    >>> result.records[0].values["davg"] > 0
    True
    """

    dims: Optional[Sequence[int]] = None
    sides: Optional[Sequence[int]] = None
    universes: Optional[Sequence[Universe]] = None
    curves: Optional[Sequence[Union[str, CurveSpec]]] = None
    metrics: Sequence[Union[str, MetricSpec]] = DEFAULT_METRICS
    reports: bool = True
    include_allpairs: bool = False
    allpairs_samples: int = 50_000
    seed: int = 0
    strict: bool = False
    processes: Optional[int] = None
    pooled: bool = True
    chunk_cells: Optional[int] = None
    max_bytes: Optional[int] = DEFAULT_CACHE_BYTES
    #: Shared-memory grid store policy for process sweeps: ``"auto"``
    #: (share whenever ``processes`` > 1), ``True`` (same, stated
    #: explicitly) or ``False`` (fully private workers).
    shared: Union[bool, str] = "auto"
    #: Worker threads per cell for block-parallel metric reductions:
    #: ``None`` (serial), a positive int, or ``"auto"`` — which sizes
    #: threads-per-cell so ``processes × threads <= cores`` when a
    #: process pool is also in play, and uses every core otherwise.
    #: Threaded results are bit-for-bit identical to serial runs; see
    #: :mod:`repro.engine.threads`.
    threads: Union[None, int, str] = None
    #: Compute backend for every cell: ``"numpy"``, ``"native"`` (warn
    #: once and fall back when the compiled kernels are unavailable) or
    #: ``"auto"`` (native when available).  Backend choice never
    #: changes values — see :mod:`repro.engine.native`.  The per-cell
    #: resolution is recorded in :attr:`CacheStats.backends`.
    backend: str = "auto"
    #: Directory of a persistent :class:`repro.engine.store.GridStore`
    #: (``repro sweep --store``), or ``None``.  Every execution mode
    #: threads it through: serial pools, shared-mode publishing parents
    #: and process workers all resolve grid intermediates from (and
    #: write them through to) the same on-disk artifacts, counted in
    #: :attr:`CacheStats.mmap`.  Values are bit-for-bit identical with
    #: and without a store; only where the bytes come from changes.
    store_dir: Optional[str] = None

    def resolve_thread_count(self) -> int:
        """The concrete per-cell worker-thread count of this sweep."""
        from repro.engine.threads import resolve_threads

        return resolve_threads(self.threads, processes=self.processes)

    def resolve_chunk_cells(self, universe: Universe) -> Optional[int]:
        """The block size to use for ``universe`` (``None`` = dense).

        Explicit ``chunk_cells`` wins (0 forcing dense); otherwise
        chunked mode is selected exactly when the universe's dense
        int64 key grid would not fit the ``max_bytes`` cache budget,
        with the block scaled so one block's working set (keys, block
        coordinates and reduction temporaries — roughly 64 bytes/cell)
        also fits the budget.
        """
        if self.chunk_cells is not None:
            if self.chunk_cells < 0:
                raise ValueError(
                    "chunk_cells must be >= 0 (0 forces the dense "
                    f"mode), got {self.chunk_cells}"
                )
            return self.chunk_cells if self.chunk_cells > 0 else None
        if self.max_bytes is not None and universe.n * 8 > self.max_bytes:
            scaled = self.max_bytes // 64
            return int(min(DEFAULT_CHUNK_CELLS, max(1024, scaled)))
        return None

    def resolved_universes(self) -> List[Universe]:
        """The universe list the sweep will visit, in order."""
        out: List[Universe] = []
        if self.universes is not None:
            out.extend(self.universes)
        if self.dims is not None or self.sides is not None:
            if self.dims is None or self.sides is None:
                raise ValueError("dims and sides must be given together")
            for d in self.dims:
                for side in self.sides:
                    out.append(Universe(d=d, side=side))
        if not out:
            raise ValueError(
                "empty sweep: provide universes or dims+sides"
            )
        return out

    def _specs_for(self, universe: Universe) -> List[CurveSpec]:
        if self.curves is not None:
            return [CurveSpec.parse(c) for c in self.curves]
        return [CurveSpec(name) for name in available_curves()]

    def _plan(self) -> Tuple[List[_Task], List[SkippedCell]]:
        specs = [MetricSpec.parse(m) for m in self.metrics]
        unknown = [s.label for s in specs if s.name not in METRICS]
        if unknown:
            raise KeyError(
                f"unknown metrics {unknown}; available: {sorted(METRICS)}"
            )
        for spec in specs:  # validate params eagerly, before any work
            spec.bind()
        from repro.engine.native import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {list(BACKENDS)}, "
                f"got {self.backend!r}"
            )
        metric_texts = tuple(s.label for s in specs)
        thread_count = self.resolve_thread_count()
        # Normalized to str (accepts Path) so tasks stay hashable and
        # picklable for the dedup dict and the process executor.
        store_dir = None if self.store_dir is None else str(self.store_dir)
        tasks: List[_Task] = []
        skipped: List[SkippedCell] = []
        for universe in self.resolved_universes():
            for spec in self._specs_for(universe):
                applicable, reason = curve_applicability(
                    spec.name, universe
                )
                if applicable is False:
                    skipped.append(
                        SkippedCell(
                            spec=spec.label,
                            d=universe.d,
                            side=universe.side,
                            reason=reason or "not applicable",
                        )
                    )
                    continue
                tasks.append(
                    (
                        universe.d,
                        universe.side,
                        spec.label,
                        metric_texts,
                        self.reports,
                        self.include_allpairs,
                        self.allpairs_samples,
                        self.seed,
                        self.strict,
                        self.resolve_chunk_cells(universe),
                        self.max_bytes,
                        thread_count,
                        self.backend,
                        store_dir,
                    )
                )
        return tasks, skipped

    def _shared_active(self) -> bool:
        """Whether a process sweep should publish a shared grid store."""
        # Identity checks: 0/1 equal False/True but must not pass as
        # opt-out/opt-in ("shared=0" silently *enabling* sharing was a
        # review catch).
        if not any(self.shared is v for v in (True, False, "auto")):
            raise ValueError(
                'shared must be True, False or "auto", '
                f"got {self.shared!r}"
            )
        return self.shared is not False

    def run(self) -> SweepResult:
        """Execute the sweep and return structured results."""
        tasks, skipped = self._plan()
        # Spec-keyed result reuse: identical (universe, curve, metrics)
        # cells are computed once and their outcome reused positionally.
        unique_tasks = list(dict.fromkeys(tasks))
        cache_stats: Optional[CacheStats] = None
        outcome_of: Dict[_Task, object] = {}
        if self.processes is not None and self.processes > 1 and tasks:
            shared_active = self._shared_active()
            if self.pooled and not shared_active:
                warnings.warn(
                    "Sweep(processes=N, shared=False) cannot share a "
                    "ContextPool across worker processes; each cell "
                    "builds a private context (pass pooled=False to "
                    "acknowledge, or drop shared=False to publish a "
                    "shared grid store)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            store = None
            parent_stats: List[CacheStats] = []
            initializer = None
            initargs = ()
            if shared_active:
                store, publish_stats = _publish_shared(
                    unique_tasks,
                    self.max_bytes,
                    store_dir=(
                        None if self.store_dir is None
                        else str(self.store_dir)
                    ),
                )
                parent_stats.append(publish_stats)
                initializer = _worker_attach_shared
                initargs = (store.manifest(),)
            # fork() in a multi-threaded parent is hazardous (a child
            # inherits lock state from threads it does not have): join
            # any idle block-scheduler workers left by earlier threaded
            # contexts before the executor forks.  Schedulers rebuild
            # their pools lazily on next use.
            from repro.engine.threads import quiesce_schedulers

            quiesce_schedulers()
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.processes, len(unique_tasks)),
                    initializer=initializer,
                    initargs=initargs,
                ) as executor:
                    pairs = list(
                        executor.map(_run_cell_with_stats, unique_tasks)
                    )
            finally:
                # Unlink even when a worker raised or died: shared
                # segments must never outlive the sweep.
                if store is not None:
                    store.unlink()
            outcome_of = {
                task: outcome
                for task, (outcome, _) in zip(unique_tasks, pairs)
            }
            cache_stats = CacheStats.aggregate(
                parent_stats + [stats for _, stats in pairs]
            )
        else:
            self._shared_active()  # validate the value even when unused
            # One pool per universe: cross-curve sharing happens within
            # a universe, and plan order groups cells by universe, so a
            # finished universe's contexts are dead weight — scoping the
            # pool bounds peak memory to one universe's curve set.
            sink: List[CacheStats] = []
            pool: Optional[ContextPool] = None
            pool_universe = None
            for task in unique_tasks:
                if self.pooled and (task[0], task[1]) != pool_universe:
                    if pool is not None:
                        sink.append(pool.stats)
                    pool = ContextPool(
                        max_bytes=self.max_bytes,
                        chunk_cells=task[9],
                        threads=task[11],
                        backend=task[12],
                        store_dir=task[13],
                    )
                    pool_universe = (task[0], task[1])
                outcome_of[task] = _run_cell(
                    task, pool=pool, stats_sink=sink
                )
            if pool is not None:
                sink.append(pool.stats)
            cache_stats = CacheStats.aggregate(sink)
        records: List[SweepRecord] = []
        for task in tasks:
            outcome = outcome_of[task]
            if isinstance(outcome, SkippedCell):
                skipped.append(outcome)
            else:
                records.append(outcome)
        return SweepResult(
            records=records, skipped=skipped, cache_stats=cache_stats
        )
