"""Declarative curve × universe sweeps over the metric engine.

Every benchmark, example and CLI table in this repo is some flavor of
"for each universe, for each applicable curve, compute these metrics".
:class:`Sweep` makes that loop a declared object::

    Sweep(dims=[2, 3], sides=[16, 32],
          curves=["hilbert", "z", "random:seed=3"],
          metrics=["davg", "dmax", "davg_ratio"]).run()

* **Curve specs** are strings ``name[:key=val[,key=val...]]`` parsed
  into registry kwargs (``"random:seed=3"`` →
  ``make_curve("random", u, seed=3)``); see :class:`CurveSpec`.
* **Metrics** are names in the :data:`METRICS` registry, each a function
  of a :class:`repro.engine.MetricContext`, so every metric of a cell
  shares one cached set of intermediates.
* **Applicability** uses the curve registry's capability metadata;
  skipped (universe, curve) cells are reported on the result, and
  ``strict=True`` raises on genuine construction errors.
* ``processes=N`` fans the (universe, curve) cells out over a process
  pool — each cell is independent, so the sweep parallelizes trivially.

:func:`repro.core.summary.survey` is now a thin wrapper over ``Sweep``;
the structured :class:`SweepResult` additionally carries per-metric
value dicts and a ready-to-print table.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.summary import StretchReport, stretch_report
from repro.curves.registry import (
    available_curves,
    curve_applicability,
    make_curve,
)
from repro.engine.context import MetricContext
from repro.grid.universe import Universe

__all__ = [
    "CurveSpec",
    "parse_curve_spec",
    "METRICS",
    "register_metric",
    "Sweep",
    "SweepRecord",
    "SweepResult",
    "SkippedCell",
]


# ----------------------------------------------------------------------
# Curve specs
# ----------------------------------------------------------------------
def _coerce(text: str) -> object:
    """Parse a spec value: int, then float, then bool, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _render(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


@dataclass(frozen=True)
class CurveSpec:
    """A curve name plus constructor kwargs, round-trippable to a string.

    >>> CurveSpec.parse("random:seed=3")
    CurveSpec(name='random', kwargs=(('seed', 3),))
    >>> str(CurveSpec.parse("random:seed=3"))
    'random:seed=3'
    """

    name: str
    kwargs: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def parse(cls, spec: Union[str, "CurveSpec"]) -> "CurveSpec":
        if isinstance(spec, CurveSpec):
            return spec
        text = spec.strip()
        if not text:
            raise ValueError("empty curve spec")
        name, _, tail = text.partition(":")
        name = name.strip()
        if not name:
            raise ValueError(f"curve spec {spec!r} has no name")
        kwargs: List[Tuple[str, object]] = []
        if tail:
            for part in tail.split(","):
                key, eq, raw = part.partition("=")
                key = key.strip()
                if not eq or not key:
                    raise ValueError(
                        f"bad curve spec {spec!r}: expected key=value, "
                        f"got {part!r}"
                    )
                kwargs.append((key, _coerce(raw.strip())))
        return cls(name=name, kwargs=tuple(kwargs))

    def make(self, universe: Universe):
        """Instantiate the spec'd curve on ``universe``."""
        return make_curve(self.name, universe, **dict(self.kwargs))

    @property
    def label(self) -> str:
        """Canonical string form, ``name`` or ``name:key=val,...``."""
        if not self.kwargs:
            return self.name
        tail = ",".join(f"{k}={_render(v)}" for k, v in self.kwargs)
        return f"{self.name}:{tail}"

    def __str__(self) -> str:
        return self.label


def parse_curve_spec(spec: Union[str, CurveSpec]) -> CurveSpec:
    """Parse ``"name:key=val,..."`` into a :class:`CurveSpec`."""
    return CurveSpec.parse(spec)


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
MetricFn = Callable[[MetricContext], object]

#: Declarative metric names → functions of a :class:`MetricContext`.
METRICS: Dict[str, MetricFn] = {}


def register_metric(
    name: str, fn: Optional[MetricFn] = None, *, overwrite: bool = False
):
    """Register a sweep metric (direct call or decorator form)."""

    def _register(f: MetricFn) -> MetricFn:
        if not overwrite and name in METRICS:
            raise ValueError(
                f"metric {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        METRICS[name] = f
        return f

    if fn is None:
        return _register
    _register(fn)
    return None


def _allpairs_metric(grid_metric: str) -> MetricFn:
    """All-pairs stretch with ``survey()``'s exact/sampled policy."""
    from repro.core.summary import _EXACT_ALLPAIRS_LIMIT

    def fn(ctx: MetricContext) -> float:
        if ctx.universe.n <= _EXACT_ALLPAIRS_LIMIT:
            return ctx.allpairs_exact(grid_metric)
        return ctx.allpairs_sampled(metric=grid_metric).mean

    return fn


register_metric("davg", lambda ctx: ctx.davg())
register_metric("dmax", lambda ctx: ctx.dmax())
register_metric("lower_bound", lambda ctx: ctx.lower_bound())
register_metric("davg_ratio", lambda ctx: ctx.davg_ratio())
register_metric(
    "lambdas", lambda ctx: tuple(int(v) for v in ctx.lambda_sums())
)
register_metric("allpairs_manhattan", _allpairs_metric("manhattan"))
register_metric("allpairs_euclidean", _allpairs_metric("euclidean"))
register_metric("nn_mean", lambda ctx: float(ctx.nn_distance_values().mean()))

#: Metric set matching the legacy ``survey()`` columns.
DEFAULT_METRICS: Tuple[str, ...] = (
    "davg",
    "dmax",
    "lower_bound",
    "davg_ratio",
    "lambdas",
)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRecord:
    """One computed (universe, curve) cell of a sweep."""

    spec: str
    curve_name: str
    d: int
    side: int
    n: int
    values: Dict[str, object]
    report: Optional[StretchReport] = None

    def as_row(self) -> Dict[str, object]:
        """Flat dict for table formatting."""
        row: Dict[str, object] = {
            "curve": self.spec,
            "d": self.d,
            "side": self.side,
            "n": self.n,
        }
        row.update(self.values)
        return row


@dataclass(frozen=True)
class SkippedCell:
    """A (universe, curve) cell the sweep did not compute, and why."""

    spec: str
    d: int
    side: int
    reason: str


@dataclass(frozen=True)
class SweepResult:
    """Structured output of :meth:`Sweep.run`."""

    records: List[SweepRecord]
    skipped: List[SkippedCell] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def reports(self) -> List[StretchReport]:
        """The :class:`StretchReport` of every computed cell."""
        return [r.report for r in self.records if r.report is not None]

    def rows(self) -> List[Dict[str, object]]:
        """Flat metric rows, one per computed cell."""
        return [r.as_row() for r in self.records]

    def to_table(self) -> str:
        """The sweep as a formatted text table."""
        from repro.viz.tables import format_table

        return format_table(self.rows())


# ----------------------------------------------------------------------
# The sweep runner
# ----------------------------------------------------------------------
_Task = Tuple[int, int, str, Tuple[str, ...], bool, bool, int, int, bool]


def _run_cell(task: _Task):
    """Compute one (universe, curve) cell; top-level for pickling."""
    (
        d,
        side,
        spec_text,
        metrics,
        with_report,
        include_allpairs,
        allpairs_samples,
        seed,
        strict,
    ) = task
    universe = Universe(d=d, side=side)
    spec = CurveSpec.parse(spec_text)
    try:
        curve = spec.make(universe)
    except (ValueError, TypeError) as exc:
        # TypeError covers bad spec kwargs ("z:bogus=1"); one bad cell
        # must not crash the rest of the sweep.
        if strict:
            raise ValueError(
                f"curve {spec.label!r} failed to construct on "
                f"{universe}: {exc}"
            ) from exc
        return SkippedCell(
            spec=spec.label,
            d=d,
            side=side,
            reason=f"construction error: {exc}",
        )
    ctx = MetricContext(curve)
    values = {name: METRICS[name](ctx) for name in metrics}
    report = None
    if with_report:
        report = stretch_report(
            curve,
            include_allpairs=include_allpairs,
            allpairs_samples=allpairs_samples,
            seed=seed,
            context=ctx,
        )
    return SweepRecord(
        spec=spec.label,
        curve_name=curve.name,
        d=d,
        side=side,
        n=universe.n,
        values=values,
        report=report,
    )


@dataclass
class Sweep:
    """A declared curve × universe × metric sweep.

    Universes come from the cross product ``dims × sides`` and/or an
    explicit ``universes`` list.  ``curves=None`` selects every
    registered curve applicable to each universe (sorted by name, like
    the legacy ``survey()``); otherwise curves is a list of names or
    ``"name:key=val"`` spec strings, kept in the given order.

    ``metrics`` names entries of :data:`METRICS`.  ``reports=True``
    additionally builds a full :class:`StretchReport` per cell (sharing
    the cell's cached intermediates, so this costs nothing extra for the
    default metric set).  ``processes`` > 1 distributes cells over a
    process pool.
    """

    dims: Optional[Sequence[int]] = None
    sides: Optional[Sequence[int]] = None
    universes: Optional[Sequence[Universe]] = None
    curves: Optional[Sequence[Union[str, CurveSpec]]] = None
    metrics: Sequence[str] = DEFAULT_METRICS
    reports: bool = True
    include_allpairs: bool = False
    allpairs_samples: int = 50_000
    seed: int = 0
    strict: bool = False
    processes: Optional[int] = None

    def resolved_universes(self) -> List[Universe]:
        """The universe list the sweep will visit, in order."""
        out: List[Universe] = []
        if self.universes is not None:
            out.extend(self.universes)
        if self.dims is not None or self.sides is not None:
            if self.dims is None or self.sides is None:
                raise ValueError("dims and sides must be given together")
            for d in self.dims:
                for side in self.sides:
                    out.append(Universe(d=d, side=side))
        if not out:
            raise ValueError(
                "empty sweep: provide universes or dims+sides"
            )
        return out

    def _specs_for(self, universe: Universe) -> List[CurveSpec]:
        if self.curves is not None:
            return [CurveSpec.parse(c) for c in self.curves]
        return [CurveSpec(name) for name in available_curves()]

    def _plan(self) -> Tuple[List[_Task], List[SkippedCell]]:
        unknown = [m for m in self.metrics if m not in METRICS]
        if unknown:
            raise KeyError(
                f"unknown metrics {unknown}; available: {sorted(METRICS)}"
            )
        tasks: List[_Task] = []
        skipped: List[SkippedCell] = []
        for universe in self.resolved_universes():
            for spec in self._specs_for(universe):
                applicable, reason = curve_applicability(
                    spec.name, universe
                )
                if applicable is False:
                    skipped.append(
                        SkippedCell(
                            spec=spec.label,
                            d=universe.d,
                            side=universe.side,
                            reason=reason or "not applicable",
                        )
                    )
                    continue
                tasks.append(
                    (
                        universe.d,
                        universe.side,
                        spec.label,
                        tuple(self.metrics),
                        self.reports,
                        self.include_allpairs,
                        self.allpairs_samples,
                        self.seed,
                        self.strict,
                    )
                )
        return tasks, skipped

    def run(self) -> SweepResult:
        """Execute the sweep and return structured results."""
        tasks, skipped = self._plan()
        if self.processes is not None and self.processes > 1 and tasks:
            with ProcessPoolExecutor(
                max_workers=min(self.processes, len(tasks))
            ) as pool:
                outcomes = list(pool.map(_run_cell, tasks))
        else:
            outcomes = [_run_cell(task) for task in tasks]
        records: List[SweepRecord] = []
        for outcome in outcomes:
            if isinstance(outcome, SkippedCell):
                skipped.append(outcome)
            else:
                records.append(outcome)
        return SweepResult(records=records, skipped=skipped)
