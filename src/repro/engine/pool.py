"""The ContextPool: shared metric contexts across curves of a universe.

A :class:`repro.engine.MetricContext` kills redundancy *within* one
curve; a :class:`ContextPool` kills it *across* curves:

* **Universe sharing** — curve-independent intermediates (today the
  neighbor-count grid ``|N(α)|``) live in one per-universe store, so a
  ten-curve sweep of a universe materializes them once instead of ten
  times.
* **Transform derivation** — the curves in
  :mod:`repro.curves.transforms` are grid automorphisms of an inner
  curve, so their key grids and per-axis ``∆π`` arrays are cheap array
  transforms (negate / flip / transpose) of the inner curve's cached
  arrays.  The pool wires those derivation rules into the derived
  curve's context: the arrays produced are **bit-for-bit identical** to
  from-scratch computation, but cost ``O(n)`` array ops instead of a
  full curve evaluation, and are counted under
  :attr:`CacheStats.derived` rather than ``computes``.

:class:`repro.engine.Sweep` runs over a pool by default; the aggregate
:attr:`ContextPool.stats` land on the sweep result (and behind
``repro sweep --stats``).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.engine.context import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    MetricContext,
    _BoundedStore,
)
from repro.grid.universe import Universe

__all__ = [
    "ContextPool",
    "transform_derivations",
    "chunked_transform_derivations",
]


def transform_derivations(
    curve: SpaceFillingCurve, base: MetricContext
) -> Optional[Dict[str, Callable[[], np.ndarray]]]:
    """Derivation rules for a transform-derived ``curve``, or ``None``.

    ``base`` is the context of ``curve.inner``.  Each rule is a zero-arg
    factory producing an intermediate bit-for-bit equal to what the
    derived curve would compute from scratch, but built from the base
    context's cached arrays:

    * :class:`~repro.curves.transforms.ReversedCurve` —
      ``π' = n−1−π`` so ``∆π'`` arrays are *the same objects* as the
      base's; the key grid is an arithmetic complement and the curve
      order is the base order walked backwards.
    * :class:`~repro.curves.transforms.ReflectedCurve` — reflection
      flips the listed axes of the key grid and every pair array, and
      maps the order's coordinates through the same reflection.
    * :class:`~repro.curves.transforms.AxisPermutedCurve` — axis
      relabeling transposes the grids; the pairs along new axis ``i``
      are the base pairs along axis ``perm^{-1}[i]``, transposed; the
      order's coordinate columns are scattered through ``perm``.
    """
    from repro.curves.transforms import (
        AxisPermutedCurve,
        ReflectedCurve,
        ReversedCurve,
    )

    def frozen(array: np.ndarray) -> np.ndarray:
        array.flags.writeable = False
        return array

    universe = curve.universe
    rules: Dict[str, Callable[[], np.ndarray]] = {}
    if isinstance(curve, ReversedCurve):
        rules["key_grid"] = lambda: universe.n - 1 - base.key_grid()
        # π'^{-1}(t) = π^{-1}(n−1−t): the base path, reversed.
        rules["order"] = lambda: frozen(
            np.ascontiguousarray(base.order()[::-1])
        )
        for axis in range(universe.d):
            rules[f"axis_dist[{axis}]"] = (
                lambda a=axis: base.axis_pair_curve_distances(a)
            )
        return rules
    if isinstance(curve, ReflectedCurve):
        axes = tuple(curve.axes)
        if not axes:  # reflecting no axes is the identity transform
            rules["key_grid"] = lambda: base.key_grid().copy()
            rules["order"] = lambda: frozen(base.order().copy())
            for axis in range(universe.d):
                rules[f"axis_dist[{axis}]"] = (
                    lambda a=axis: base.axis_pair_curve_distances(a)
                )
            return rules
        rules["key_grid"] = lambda: np.ascontiguousarray(
            np.flip(base.key_grid(), axis=axes)
        )

        def reflected_order() -> np.ndarray:
            # π'^{-1}(t) = reflect(π^{-1}(t)): same visit order, with
            # the listed coordinate axes mirrored.
            path = base.order().copy()
            for axis in axes:
                path[:, axis] = universe.side - 1 - path[:, axis]
            return frozen(path)

        rules["order"] = reflected_order
        for axis in range(universe.d):
            rules[f"axis_dist[{axis}]"] = lambda a=axis: np.ascontiguousarray(
                np.flip(base.axis_pair_curve_distances(a), axis=axes)
            )
        return rules
    if isinstance(curve, AxisPermutedCurve):
        # grid'[x] = grid[y] with y[k] = x[perm[k]]  ⇔  transpose(inv).
        inv = tuple(int(v) for v in np.argsort(curve.perm))
        perm = tuple(int(v) for v in curve.perm)
        rules["key_grid"] = lambda: np.ascontiguousarray(
            base.key_grid().transpose(inv)
        )

        def permuted_order() -> np.ndarray:
            # coords'[..., perm] = base coords (the wrapper's inverse).
            path = np.empty_like(base.order())
            path[:, perm] = base.order()
            return frozen(path)

        rules["order"] = permuted_order
        for axis in range(universe.d):
            # Bumping new axis i bumps base axis inv[i]: the pair array
            # along i is the base pair array along inv[i], transposed.
            rules[f"axis_dist[{axis}]"] = lambda a=axis: np.ascontiguousarray(
                base.axis_pair_curve_distances(inv[a]).transpose(inv)
            )
        return rules
    return None


def chunked_transform_derivations(
    curve: SpaceFillingCurve, base: MetricContext
) -> Optional[Dict[str, Callable[[int, int], np.ndarray]]]:
    """Per-block derivation rules for a transform curve in chunked mode.

    The chunked analogue of :func:`transform_derivations`: each rule
    maps a block range ``(lo, hi)`` to the derived curve's block, built
    from the inner context's (cached) blocks and bit-for-bit equal to
    direct computation.  Implemented for
    :class:`~repro.curves.transforms.ReversedCurve` (``π' = n−1−π``:
    every block is the arithmetic complement of the base block; inverse
    blocks are mirrored base blocks).  The other transforms need no
    rule — their ``index``/``coords`` delegate to the inner curve on
    transformed coordinates, which is already ``O(block)``.
    """
    from repro.curves.transforms import ReversedCurve

    if not isinstance(curve, ReversedCurve):
        return None
    n = curve.universe.n

    def base_slab(lo: int, hi: int) -> np.ndarray:
        # Canonical spans go through the base LRU (cached, reusable by
        # the base's own reductions); off-partition reads — a threaded
        # kernel's single-plane boundary lookups — bypass it, so the
        # base store never fills with overlapping off-partition keys.
        if (lo, hi) == base._slab_span(lo):
            return base._key_slab(lo, hi)
        return base._key_slab_values(lo, hi)

    return {
        "key_slab": lambda lo, hi: n - 1 - base_slab(lo, hi),
        "key_block": lambda lo, hi: n - 1 - base._key_block(lo, hi),
        "inverse_block": lambda lo, hi: np.ascontiguousarray(
            base._inverse_block(n - hi, n - lo)[::-1]
        ),
    }


class ContextPool:
    """A family of :class:`MetricContext`\\ s with shared state.

    ``get(curve)`` returns the pool's context for the curve's
    *canonical spec* — the key is
    :meth:`repro.curves.base.SpaceFillingCurve.cache_key`
    ``(type, universe, parameters)`` — so two separately instantiated
    but equivalent curves (e.g. two ``ZCurve`` objects on equal
    universes, or two ``RandomCurve(seed=3)``) share one context and
    one cached intermediate set.  Contexts of the same universe
    additionally share one store for curve-independent intermediates,
    and transform-derived curves (``curve.inner``) get derivation rules
    against their inner curve's context (created transitively).
    ``get`` also accepts an existing :class:`MetricContext` and returns
    it unchanged, so the pool composes with the ``get_context``
    coercion used throughout :mod:`repro.analysis` and
    :mod:`repro.apps`.

    ``chunk_cells`` puts every pooled context into the engine's chunked
    mode; transform derivation then happens per block (see
    :func:`chunked_transform_derivations`).

    ``shared_store`` plugs in a :class:`repro.engine.shm.SharedGridStore`
    (typically attached inside a process-sweep worker): dense-mode
    contexts then resolve their key grid, flat keys, inverse permutation
    and neighbor counts as zero-copy views of the parent-published
    segments before falling back to local compute, counted under
    :attr:`repro.engine.CacheStats.shared`.  Chunked contexts ignore the
    store — they exist precisely to avoid dense ``O(n)`` arrays.

    ``store``/``store_dir`` additionally wires every member context to
    one persistent :class:`repro.engine.store.GridStore`: dense
    contexts resolve (and write through) their grid intermediates as
    checksummed on-disk memmaps, counted under
    :attr:`repro.engine.CacheStats.mmap`, and chunked contexts use the
    same artifacts for out-of-core spill (see ``docs/persistence.md``).

    The pool holds strong references to its curves: its lifetime should
    be scoped to a unit of work (one sweep, one report), not global.

    >>> from repro import Universe, ZCurve
    >>> from repro.engine import ContextPool
    >>> pool = ContextPool()
    >>> ctx = pool.get(ZCurve(Universe.power_of_two(d=2, k=3)))
    >>> pool.get(ctx.curve) is ctx
    True
    """

    def __init__(
        self,
        max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
        derive_transforms: bool = True,
        chunk_cells: Optional[int] = None,
        shared_store: Optional[object] = None,
        threads: Union[None, int, str] = None,
        backend: str = "auto",
        store: Optional[object] = None,
        store_dir: Optional[str] = None,
    ) -> None:
        self.max_bytes = max_bytes
        self.derive_transforms = derive_transforms
        self.chunk_cells = chunk_cells
        self.shared_store = shared_store
        #: One persistent :class:`repro.engine.store.GridStore` shared
        #: by every member context (``store_dir`` constructs it), so
        #: per-process verification state and counters aggregate in one
        #: place.  ``None`` leaves contexts purely in-memory.
        if store is None and store_dir is not None:
            from repro.engine.store import GridStore

            store = GridStore(store_dir)
        self.grid_store = store
        #: Worker-thread count handed to every member context (see
        #: :class:`MetricContext`); ``None`` keeps contexts serial.
        self.threads = threads
        #: Compute backend handed to every member context
        #: (``"numpy"``/``"native"``/``"auto"``; see
        #: :mod:`repro.engine.native`).
        self.backend = backend
        #: One scheduler shared by every member context: without it a
        #: threaded multi-curve sweep would hold threads-per-curve
        #: idle OS threads (each context lazily building its own
        #: executor) for the pool's lifetime.
        self._scheduler = None
        self._contexts: Dict[tuple, MetricContext] = {}
        # Strong curve refs: instance-keyed curves (explicit
        # PermutationCurve tables) stay alive with the pool so their
        # contexts remain reachable through `get` for its lifetime.
        self._curves: Dict[tuple, SpaceFillingCurve] = {}
        self._universe_stores: Dict[Universe, _BoundedStore] = {}
        # Reentrant: `get` recurses into itself for transform inners.
        # The pool is hammered concurrently when per-cell contexts run
        # threaded reductions or callers share one pool across threads.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._contexts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            n_contexts = len(self._contexts)
            n_universes = len(self._universe_stores)
        return (
            f"ContextPool({n_contexts} contexts, "
            f"{n_universes} universes, {self.stats!r})"
        )

    def universe_store(self, universe: Universe) -> _BoundedStore:
        """The shared store for curve-independent state of ``universe``."""
        with self._lock:
            store = self._universe_stores.get(universe)
            if store is None:
                store = _BoundedStore(self.max_bytes)
                self._universe_stores[universe] = store
            return store

    def get(
        self, curve: Union[SpaceFillingCurve, MetricContext]
    ) -> MetricContext:
        """The pooled context of ``curve``'s spec (contexts pass through).

        Thread-safe: concurrent callers racing on the same spec get
        the same context object (creation and registration happen
        under the pool lock).
        """
        if isinstance(curve, MetricContext):
            return curve
        key = curve.cache_key()
        with self._lock:
            ctx = self._contexts.get(key)
            if ctx is not None:
                return ctx
            ctx = MetricContext(
                curve,
                max_bytes=self.max_bytes,
                universe_store=self.universe_store(curve.universe),
                chunk_cells=self.chunk_cells,
                threads=self.threads,
                backend=self.backend,
                store=self.grid_store,
            )
            if ctx.threads > 1:
                # All pooled contexts resolve the same thread count,
                # so they can share one scheduler (and its worker
                # threads / per-thread scratch buffers).
                if self._scheduler is None:
                    from repro.engine.threads import BlockScheduler

                    self._scheduler = BlockScheduler(ctx.threads)
                ctx._scheduler = self._scheduler
            if self.shared_store is not None and self.chunk_cells is None:
                self._wire_shared(ctx, curve)
            if self.derive_transforms:
                inner = getattr(curve, "inner", None)
                if isinstance(inner, SpaceFillingCurve):
                    base = self.get(inner)
                    if self.chunk_cells is not None:
                        rules = chunked_transform_derivations(curve, base)
                        if rules:
                            ctx._chunk_derivations.update(rules)
                    else:
                        rules = transform_derivations(curve, base)
                        if rules:
                            ctx._derivations.update(rules)
            self._contexts[key] = ctx
            self._curves[key] = curve
            return ctx

    def _wire_shared(
        self, ctx: MetricContext, curve: SpaceFillingCurve
    ) -> None:
        """Point ``ctx`` at the parent-published shared-memory segments.

        Instance-keyed curves have no process-stable spec key and are
        left on the local compute path; specs the parent did not publish
        resolve to ``None`` at lookup time and likewise fall through.
        """
        from repro.engine.shm import SHARED_KINDS, shared_key, universe_key

        store = self.shared_store
        skey = shared_key(curve)
        if skey is not None:
            for kind in SHARED_KINDS:
                ctx._shared_sources[kind] = (
                    lambda k=skey, kd=kind: store.get(k, kd)
                )
        ukey = universe_key(curve.universe)
        ctx._shared_sources["neighbor_counts"] = (
            lambda: store.get(ukey, "neighbor_counts")
        )

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters over all member contexts + shared stores.

        Snapshots the member lists under the pool lock so a stats read
        racing a concurrent ``get`` cannot observe the registries
        mid-mutation.
        """
        with self._lock:
            contexts = list(self._contexts.values())
            stores = list(self._universe_stores.values())
        return CacheStats.aggregate(
            [ctx.stats for ctx in contexts]
            + [store.stats for store in stores]
        )

    @property
    def cache_bytes(self) -> int:
        """Total bytes held across all member and shared stores."""
        with self._lock:
            contexts = list(self._contexts.values())
            stores = list(self._universe_stores.values())
        return sum(ctx.cache_bytes for ctx in contexts) + sum(
            store.nbytes for store in stores
        )

    def clear(self) -> None:
        """Drop every context, curve reference and shared store."""
        with self._lock:
            self._contexts.clear()
            self._curves.clear()
            self._universe_stores.clear()
