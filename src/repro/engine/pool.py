"""The ContextPool: shared metric contexts across curves of a universe.

A :class:`repro.engine.MetricContext` kills redundancy *within* one
curve; a :class:`ContextPool` kills it *across* curves:

* **Universe sharing** — curve-independent intermediates (today the
  neighbor-count grid ``|N(α)|``) live in one per-universe store, so a
  ten-curve sweep of a universe materializes them once instead of ten
  times.
* **Transform derivation** — the curves in
  :mod:`repro.curves.transforms` are grid automorphisms of an inner
  curve, so their key grids and per-axis ``∆π`` arrays are cheap array
  transforms (negate / flip / transpose) of the inner curve's cached
  arrays.  The pool wires those derivation rules into the derived
  curve's context: the arrays produced are **bit-for-bit identical** to
  from-scratch computation, but cost ``O(n)`` array ops instead of a
  full curve evaluation, and are counted under
  :attr:`CacheStats.derived` rather than ``computes``.

:class:`repro.engine.Sweep` runs over a pool by default; the aggregate
:attr:`ContextPool.stats` land on the sweep result (and behind
``repro sweep --stats``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.engine.context import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    MetricContext,
    _BoundedStore,
)
from repro.grid.universe import Universe

__all__ = [
    "ContextPool",
    "transform_derivations",
    "chunked_transform_derivations",
]


def transform_derivations(
    curve: SpaceFillingCurve, base: MetricContext
) -> Optional[Dict[str, Callable[[], np.ndarray]]]:
    """Derivation rules for a transform-derived ``curve``, or ``None``.

    ``base`` is the context of ``curve.inner``.  Each rule is a zero-arg
    factory producing an intermediate bit-for-bit equal to what the
    derived curve would compute from scratch, but built from the base
    context's cached arrays:

    * :class:`~repro.curves.transforms.ReversedCurve` —
      ``π' = n−1−π`` so ``∆π'`` arrays are *the same objects* as the
      base's; the key grid is an arithmetic complement.
    * :class:`~repro.curves.transforms.ReflectedCurve` — reflection
      flips the listed axes of both the key grid and every pair array.
    * :class:`~repro.curves.transforms.AxisPermutedCurve` — axis
      relabeling transposes the grids; the pairs along new axis ``i``
      are the base pairs along axis ``perm^{-1}[i]``, transposed.
    """
    from repro.curves.transforms import (
        AxisPermutedCurve,
        ReflectedCurve,
        ReversedCurve,
    )

    universe = curve.universe
    rules: Dict[str, Callable[[], np.ndarray]] = {}
    if isinstance(curve, ReversedCurve):
        rules["key_grid"] = lambda: universe.n - 1 - base.key_grid()
        for axis in range(universe.d):
            rules[f"axis_dist[{axis}]"] = (
                lambda a=axis: base.axis_pair_curve_distances(a)
            )
        return rules
    if isinstance(curve, ReflectedCurve):
        axes = tuple(curve.axes)
        if not axes:  # reflecting no axes is the identity transform
            rules["key_grid"] = lambda: base.key_grid().copy()
            for axis in range(universe.d):
                rules[f"axis_dist[{axis}]"] = (
                    lambda a=axis: base.axis_pair_curve_distances(a)
                )
            return rules
        rules["key_grid"] = lambda: np.ascontiguousarray(
            np.flip(base.key_grid(), axis=axes)
        )
        for axis in range(universe.d):
            rules[f"axis_dist[{axis}]"] = lambda a=axis: np.ascontiguousarray(
                np.flip(base.axis_pair_curve_distances(a), axis=axes)
            )
        return rules
    if isinstance(curve, AxisPermutedCurve):
        # grid'[x] = grid[y] with y[k] = x[perm[k]]  ⇔  transpose(inv).
        inv = tuple(int(v) for v in np.argsort(curve.perm))
        rules["key_grid"] = lambda: np.ascontiguousarray(
            base.key_grid().transpose(inv)
        )
        for axis in range(universe.d):
            # Bumping new axis i bumps base axis inv[i]: the pair array
            # along i is the base pair array along inv[i], transposed.
            rules[f"axis_dist[{axis}]"] = lambda a=axis: np.ascontiguousarray(
                base.axis_pair_curve_distances(inv[a]).transpose(inv)
            )
        return rules
    return None


def chunked_transform_derivations(
    curve: SpaceFillingCurve, base: MetricContext
) -> Optional[Dict[str, Callable[[int, int], np.ndarray]]]:
    """Per-block derivation rules for a transform curve in chunked mode.

    The chunked analogue of :func:`transform_derivations`: each rule
    maps a block range ``(lo, hi)`` to the derived curve's block, built
    from the inner context's (cached) blocks and bit-for-bit equal to
    direct computation.  Implemented for
    :class:`~repro.curves.transforms.ReversedCurve` (``π' = n−1−π``:
    every block is the arithmetic complement of the base block; inverse
    blocks are mirrored base blocks).  The other transforms need no
    rule — their ``index``/``coords`` delegate to the inner curve on
    transformed coordinates, which is already ``O(block)``.
    """
    from repro.curves.transforms import ReversedCurve

    if not isinstance(curve, ReversedCurve):
        return None
    n = curve.universe.n
    return {
        "key_slab": lambda lo, hi: n - 1 - base._key_slab(lo, hi),
        "key_block": lambda lo, hi: n - 1 - base._key_block(lo, hi),
        "inverse_block": lambda lo, hi: np.ascontiguousarray(
            base._inverse_block(n - hi, n - lo)[::-1]
        ),
    }


class ContextPool:
    """A family of :class:`MetricContext`\\ s with shared state.

    ``get(curve)`` returns the pool's context for the curve's
    *canonical spec* — the key is
    :meth:`repro.curves.base.SpaceFillingCurve.cache_key`
    ``(type, universe, parameters)`` — so two separately instantiated
    but equivalent curves (e.g. two ``ZCurve`` objects on equal
    universes, or two ``RandomCurve(seed=3)``) share one context and
    one cached intermediate set.  Contexts of the same universe
    additionally share one store for curve-independent intermediates,
    and transform-derived curves (``curve.inner``) get derivation rules
    against their inner curve's context (created transitively).
    ``get`` also accepts an existing :class:`MetricContext` and returns
    it unchanged, so the pool composes with the ``get_context``
    coercion used throughout :mod:`repro.analysis` and
    :mod:`repro.apps`.

    ``chunk_cells`` puts every pooled context into the engine's chunked
    mode; transform derivation then happens per block (see
    :func:`chunked_transform_derivations`).

    ``shared_store`` plugs in a :class:`repro.engine.shm.SharedGridStore`
    (typically attached inside a process-sweep worker): dense-mode
    contexts then resolve their key grid, flat keys, inverse permutation
    and neighbor counts as zero-copy views of the parent-published
    segments before falling back to local compute, counted under
    :attr:`repro.engine.CacheStats.shared`.  Chunked contexts ignore the
    store — they exist precisely to avoid dense ``O(n)`` arrays.

    The pool holds strong references to its curves: its lifetime should
    be scoped to a unit of work (one sweep, one report), not global.

    >>> from repro import Universe, ZCurve
    >>> from repro.engine import ContextPool
    >>> pool = ContextPool()
    >>> ctx = pool.get(ZCurve(Universe.power_of_two(d=2, k=3)))
    >>> pool.get(ctx.curve) is ctx
    True
    """

    def __init__(
        self,
        max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
        derive_transforms: bool = True,
        chunk_cells: Optional[int] = None,
        shared_store: Optional[object] = None,
    ) -> None:
        self.max_bytes = max_bytes
        self.derive_transforms = derive_transforms
        self.chunk_cells = chunk_cells
        self.shared_store = shared_store
        self._contexts: Dict[tuple, MetricContext] = {}
        # Strong curve refs: PermutationCurve cache keys embed id(), so
        # the referenced objects must outlive the pool's key map.
        self._curves: Dict[tuple, SpaceFillingCurve] = {}
        self._universe_stores: Dict[Universe, _BoundedStore] = {}

    def __len__(self) -> int:
        return len(self._contexts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContextPool({len(self._contexts)} contexts, "
            f"{len(self._universe_stores)} universes, {self.stats!r})"
        )

    def universe_store(self, universe: Universe) -> _BoundedStore:
        """The shared store for curve-independent state of ``universe``."""
        store = self._universe_stores.get(universe)
        if store is None:
            store = _BoundedStore(self.max_bytes)
            self._universe_stores[universe] = store
        return store

    def get(
        self, curve: Union[SpaceFillingCurve, MetricContext]
    ) -> MetricContext:
        """The pooled context of ``curve``'s spec (contexts pass through)."""
        if isinstance(curve, MetricContext):
            return curve
        key = curve.cache_key()
        ctx = self._contexts.get(key)
        if ctx is not None:
            return ctx
        ctx = MetricContext(
            curve,
            max_bytes=self.max_bytes,
            universe_store=self.universe_store(curve.universe),
            chunk_cells=self.chunk_cells,
        )
        if self.shared_store is not None and self.chunk_cells is None:
            self._wire_shared(ctx, curve)
        if self.derive_transforms:
            inner = getattr(curve, "inner", None)
            if isinstance(inner, SpaceFillingCurve):
                base = self.get(inner)
                if self.chunk_cells is not None:
                    rules = chunked_transform_derivations(curve, base)
                    if rules:
                        ctx._chunk_derivations.update(rules)
                else:
                    rules = transform_derivations(curve, base)
                    if rules:
                        ctx._derivations.update(rules)
        self._contexts[key] = ctx
        self._curves[key] = curve
        return ctx

    def _wire_shared(
        self, ctx: MetricContext, curve: SpaceFillingCurve
    ) -> None:
        """Point ``ctx`` at the parent-published shared-memory segments.

        Instance-keyed curves have no process-stable spec key and are
        left on the local compute path; specs the parent did not publish
        resolve to ``None`` at lookup time and likewise fall through.
        """
        from repro.engine.shm import SHARED_KINDS, shared_key, universe_key

        store = self.shared_store
        skey = shared_key(curve)
        if skey is not None:
            for kind in SHARED_KINDS:
                ctx._shared_sources[kind] = (
                    lambda k=skey, kd=kind: store.get(k, kd)
                )
        ukey = universe_key(curve.universe)
        ctx._shared_sources["neighbor_counts"] = (
            lambda: store.get(ukey, "neighbor_counts")
        )

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters over all member contexts + shared stores."""
        return CacheStats.aggregate(
            [ctx.stats for ctx in self._contexts.values()]
            + [store.stats for store in self._universe_stores.values()]
        )

    @property
    def cache_bytes(self) -> int:
        """Total bytes held across all member and shared stores."""
        return sum(
            ctx.cache_bytes for ctx in self._contexts.values()
        ) + sum(store.nbytes for store in self._universe_stores.values())

    def clear(self) -> None:
        """Drop every context, curve reference and shared store."""
        self._contexts.clear()
        self._curves.clear()
        self._universe_stores.clear()
