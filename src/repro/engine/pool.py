"""The ContextPool: shared metric contexts across curves of a universe.

A :class:`repro.engine.MetricContext` kills redundancy *within* one
curve; a :class:`ContextPool` kills it *across* curves:

* **Universe sharing** — curve-independent intermediates (today the
  neighbor-count grid ``|N(α)|``) live in one per-universe store, so a
  ten-curve sweep of a universe materializes them once instead of ten
  times.
* **Transform derivation** — the curves in
  :mod:`repro.curves.transforms` are grid automorphisms of an inner
  curve, so their key grids and per-axis ``∆π`` arrays are cheap array
  transforms (negate / flip / transpose) of the inner curve's cached
  arrays.  The pool wires those derivation rules into the derived
  curve's context: the arrays produced are **bit-for-bit identical** to
  from-scratch computation, but cost ``O(n)`` array ops instead of a
  full curve evaluation, and are counted under
  :attr:`CacheStats.derived` rather than ``computes``.

:class:`repro.engine.Sweep` runs over a pool by default; the aggregate
:attr:`ContextPool.stats` land on the sweep result (and behind
``repro sweep --stats``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.engine.context import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    MetricContext,
    _BoundedStore,
)
from repro.grid.universe import Universe

__all__ = ["ContextPool", "transform_derivations"]


def transform_derivations(
    curve: SpaceFillingCurve, base: MetricContext
) -> Optional[Dict[str, Callable[[], np.ndarray]]]:
    """Derivation rules for a transform-derived ``curve``, or ``None``.

    ``base`` is the context of ``curve.inner``.  Each rule is a zero-arg
    factory producing an intermediate bit-for-bit equal to what the
    derived curve would compute from scratch, but built from the base
    context's cached arrays:

    * :class:`~repro.curves.transforms.ReversedCurve` —
      ``π' = n−1−π`` so ``∆π'`` arrays are *the same objects* as the
      base's; the key grid is an arithmetic complement.
    * :class:`~repro.curves.transforms.ReflectedCurve` — reflection
      flips the listed axes of both the key grid and every pair array.
    * :class:`~repro.curves.transforms.AxisPermutedCurve` — axis
      relabeling transposes the grids; the pairs along new axis ``i``
      are the base pairs along axis ``perm^{-1}[i]``, transposed.
    """
    from repro.curves.transforms import (
        AxisPermutedCurve,
        ReflectedCurve,
        ReversedCurve,
    )

    universe = curve.universe
    rules: Dict[str, Callable[[], np.ndarray]] = {}
    if isinstance(curve, ReversedCurve):
        rules["key_grid"] = lambda: universe.n - 1 - base.key_grid()
        for axis in range(universe.d):
            rules[f"axis_dist[{axis}]"] = (
                lambda a=axis: base.axis_pair_curve_distances(a)
            )
        return rules
    if isinstance(curve, ReflectedCurve):
        axes = tuple(curve.axes)
        if not axes:  # reflecting no axes is the identity transform
            rules["key_grid"] = lambda: base.key_grid().copy()
            for axis in range(universe.d):
                rules[f"axis_dist[{axis}]"] = (
                    lambda a=axis: base.axis_pair_curve_distances(a)
                )
            return rules
        rules["key_grid"] = lambda: np.ascontiguousarray(
            np.flip(base.key_grid(), axis=axes)
        )
        for axis in range(universe.d):
            rules[f"axis_dist[{axis}]"] = lambda a=axis: np.ascontiguousarray(
                np.flip(base.axis_pair_curve_distances(a), axis=axes)
            )
        return rules
    if isinstance(curve, AxisPermutedCurve):
        # grid'[x] = grid[y] with y[k] = x[perm[k]]  ⇔  transpose(inv).
        inv = tuple(int(v) for v in np.argsort(curve.perm))
        rules["key_grid"] = lambda: np.ascontiguousarray(
            base.key_grid().transpose(inv)
        )
        for axis in range(universe.d):
            # Bumping new axis i bumps base axis inv[i]: the pair array
            # along i is the base pair array along inv[i], transposed.
            rules[f"axis_dist[{axis}]"] = lambda a=axis: np.ascontiguousarray(
                base.axis_pair_curve_distances(inv[a]).transpose(inv)
            )
        return rules
    return None


class ContextPool:
    """A family of :class:`MetricContext`\\ s with shared state.

    ``get(curve)`` returns the pool's context for that curve object,
    creating it on first sight.  Contexts of the same universe share one
    store for curve-independent intermediates, and transform-derived
    curves (``curve.inner``) get derivation rules against their inner
    curve's context (created transitively).  ``get`` also accepts an
    existing :class:`MetricContext` and returns it unchanged, so the
    pool composes with the ``get_context`` coercion used throughout
    :mod:`repro.analysis` and :mod:`repro.apps`.

    The pool holds strong references to its curves: its lifetime should
    be scoped to a unit of work (one sweep, one report), not global.

    >>> from repro import Universe, ZCurve
    >>> from repro.engine import ContextPool
    >>> pool = ContextPool()
    >>> ctx = pool.get(ZCurve(Universe.power_of_two(d=2, k=3)))
    >>> pool.get(ctx.curve) is ctx
    True
    """

    def __init__(
        self,
        max_bytes: Optional[int] = DEFAULT_CACHE_BYTES,
        derive_transforms: bool = True,
    ) -> None:
        self.max_bytes = max_bytes
        self.derive_transforms = derive_transforms
        self._contexts: Dict[int, MetricContext] = {}
        # Strong curve refs: keep id() keys stable for the pool's life.
        self._curves: Dict[int, SpaceFillingCurve] = {}
        self._universe_stores: Dict[Universe, _BoundedStore] = {}

    def __len__(self) -> int:
        return len(self._contexts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContextPool({len(self._contexts)} contexts, "
            f"{len(self._universe_stores)} universes, {self.stats!r})"
        )

    def universe_store(self, universe: Universe) -> _BoundedStore:
        """The shared store for curve-independent state of ``universe``."""
        store = self._universe_stores.get(universe)
        if store is None:
            store = _BoundedStore(self.max_bytes)
            self._universe_stores[universe] = store
        return store

    def get(
        self, curve: Union[SpaceFillingCurve, MetricContext]
    ) -> MetricContext:
        """The pooled context of ``curve`` (contexts pass through)."""
        if isinstance(curve, MetricContext):
            return curve
        ctx = self._contexts.get(id(curve))
        if ctx is not None:
            return ctx
        ctx = MetricContext(
            curve,
            max_bytes=self.max_bytes,
            universe_store=self.universe_store(curve.universe),
        )
        if self.derive_transforms:
            inner = getattr(curve, "inner", None)
            if isinstance(inner, SpaceFillingCurve):
                rules = transform_derivations(curve, self.get(inner))
                if rules:
                    ctx._derivations.update(rules)
        self._contexts[id(curve)] = ctx
        self._curves[id(curve)] = curve
        return ctx

    @property
    def stats(self) -> CacheStats:
        """Aggregate counters over all member contexts + shared stores."""
        return CacheStats.aggregate(
            [ctx.stats for ctx in self._contexts.values()]
            + [store.stats for store in self._universe_stores.values()]
        )

    @property
    def cache_bytes(self) -> int:
        """Total bytes held across all member and shared stores."""
        return sum(
            ctx.cache_bytes for ctx in self._contexts.values()
        ) + sum(store.nbytes for store in self._universe_stores.values())

    def clear(self) -> None:
        """Drop every context, curve reference and shared store."""
        self._contexts.clear()
        self._curves.clear()
        self._universe_stores.clear()
