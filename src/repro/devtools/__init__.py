"""Developer tooling: the ``repro check`` invariant lint engine.

The engine's correctness story rests on a handful of hand-enforced
invariants — float reductions must stream through
``pairwise_sum_stream``, lock-guarded state must stay behind its lock,
cached arrays must come back read-only, hot block kernels must not
allocate.  This package checks them mechanically with a zero-dependency
stdlib-``ast`` lint framework (:mod:`repro.devtools.lint`) hosting the
project rules in :mod:`repro.devtools.rules`.

Run it as ``repro check`` (or ``python -m repro check``); see
``docs/static-analysis.md`` for the rule catalogue and suppression
policy.
"""

from repro.devtools.lint import (
    LINT_VERSION,
    Finding,
    LintRule,
    format_json,
    format_text,
    lint_paths,
)
from repro.devtools.rules import all_rules

__all__ = [
    "LINT_VERSION",
    "Finding",
    "LintRule",
    "all_rules",
    "format_json",
    "format_text",
    "lint_paths",
]
