"""The lint framework behind ``repro check``.

Zero-dependency (stdlib only, by design: the checker must run on the
bare CI legs that have no NumPy).  It walks ``.py`` files, parses them
with :mod:`ast`, runs every applicable :class:`LintRule` and filters
findings through ``# repro: allow[RULE]`` suppression comments.

Pieces
------
* :class:`Finding` — one structured violation (``rule``, ``path``,
  ``line``, ``col``, ``message``) with a clickable ``path:line``
  rendering and a JSON round trip.
* :class:`LintRule` — per-rule visitor base class.  Rules declare a
  ``scope`` of path patterns (suffix-matched, so the same rule works on
  ``src/repro/engine/chunked.py`` and a bare ``chunked.py``); scoping
  can be overridden with ``force=True`` so fixture tests can aim any
  rule at any file.
* :func:`suppressed_lines` — tokenize-based comment scan.  A
  ``# repro: allow[R001]`` (or ``allow[R001,R003]``) comment suppresses
  matching findings on its own line; when the comment stands alone on a
  line, it suppresses the next code line below it (comment blocks and
  blank lines are skipped over) instead.
* :func:`lint_paths` / :func:`format_text` / :func:`format_json` — the
  API the CLI uses.

Suppressions are an audit trail, not an escape hatch: policy (see
``docs/static-analysis.md``) is that every ``allow`` carries a reason
after the bracket.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import asdict, dataclass
from pathlib import Path, PurePath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "LINT_VERSION",
    "Finding",
    "LintRule",
    "format_json",
    "format_text",
    "iter_python_files",
    "lint_paths",
    "suppressed_lines",
]

#: Version of the lint framework + rule set, surfaced by ``repro
#: doctor`` and embedded in ``--format=json`` output so CI artifacts
#: are comparable across revisions.  Bump when rule semantics change.
LINT_VERSION = "1"

#: Rule id reserved for files the checker cannot parse.
PARSE_RULE_ID = "PARSE"

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """``path:line`` — the clickable prefix of the text rendering."""
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            rule=payload["rule"],
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload["col"]),
            message=payload["message"],
        )


def path_matches(path: object, pattern: str) -> bool:
    """Suffix-match ``pattern`` against a posix-normalized ``path``.

    ``engine/chunked.py`` matches ``src/repro/engine/chunked.py``,
    ``/abs/engine/chunked.py`` and ``engine/chunked.py`` itself, but
    not ``tests/engine/chunked_fixtures.py``.
    """
    posix = PurePath(str(path)).as_posix()
    return posix == pattern or posix.endswith("/" + pattern)


class LintRule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`,
    returning findings for one parsed module.  ``scope`` limits which
    files the rule sees by default; the framework applies a rule to a
    file when any scope pattern suffix-matches it (or always, under
    ``force=True``).
    """

    rule_id: str = "R000"
    title: str = ""
    rationale: str = ""
    version: int = 1
    #: Path patterns (see :func:`path_matches`) the rule applies to.
    scope: Sequence[str] = ()

    def applies_to(self, path: object) -> bool:
        return any(path_matches(path, pattern) for pattern in self.scope)

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def describe(self) -> dict:
        return {
            "rule": self.rule_id,
            "title": self.title,
            "version": self.version,
            "scope": list(self.scope),
        }


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed there.

    Built from ``# repro: allow[R001]`` comments via :mod:`tokenize`
    (so ``allow`` text inside string literals never counts).  A
    trailing comment suppresses its own line; a comment alone on a line
    suppresses the next code line (skipping over the rest of the
    comment block and blank lines), which is how multi-line statements
    and long explanations are annotated.
    """
    suppressed: Dict[int, Set[str]] = {}
    lines = source.splitlines()

    def next_code_line(after: int) -> int:
        """First 1-based line > ``after`` that is not blank/comment."""
        for index in range(after, len(lines)):
            stripped = lines[index].strip()
            if stripped and not stripped.startswith("#"):
                return index + 1
        return after

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            rules = {
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            }
            line = tok.start[0]
            before = tok.line[: tok.start[1]]
            target = next_code_line(line) if not before.strip() else line
            suppressed.setdefault(target, set()).update(rules)
    except tokenize.TokenError:
        pass
    return suppressed


def iter_python_files(paths: Iterable[object]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (dirs recursed, sorted;
    hidden directories and ``__pycache__`` skipped)."""
    seen: Set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for path in candidates:
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in path.parts[1:]  # allow a leading "./" or "../"
            ):
                continue
            if path.suffix != ".py" or path in seen:
                continue
            seen.add(path)
            yield path


def lint_source(
    source: str,
    path: str,
    rules: Sequence[LintRule],
    force: bool = False,
) -> List[Finding]:
    """Run ``rules`` over one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_RULE_ID,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        if force or rule.applies_to(path):
            findings.extend(rule.check(tree, path))
    if not findings:
        return []
    allow = suppressed_lines(source)
    kept = [f for f in findings if f.rule not in allow.get(f.line, ())]
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def lint_paths(
    paths: Iterable[object],
    rules: Optional[Sequence[LintRule]] = None,
    force: bool = False,
) -> List[Finding]:
    """Lint every python file under ``paths`` with ``rules``.

    ``rules=None`` uses the full registered rule set.  ``force=True``
    disregards rule scopes — fixture tests use it to aim a rule at a
    file outside its declared scope.
    """
    if rules is None:
        from repro.devtools.rules import all_rules

        rules = all_rules()
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, str(path), rules, force=force))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def format_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding."""
    lines = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def format_json(
    findings: Sequence[Finding],
    rules: Optional[Sequence[LintRule]] = None,
) -> str:
    """Machine-readable report: framework version, rule catalogue,
    findings.  Round-trips through :meth:`Finding.from_dict`."""
    payload = {
        "version": LINT_VERSION,
        "rules": [rule.describe() for rule in rules or ()],
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2)
