"""R003 — public engine methods return read-only arrays.

``MetricContext`` and ``SharedGridStore`` hand the *same* cached
ndarray to every caller (that is the whole point of the bounded store
and the shared-memory grids).  One in-place mutation by any consumer
would corrupt every other consumer's results — silently, because the
values stay plausible.  The engine's contract is therefore that every
array crossing the public boundary is frozen:
``arr.setflags(write=False)`` / ``arr.flags.writeable = False``, or a
value produced by a store call that freezes on insert
(``get_or_compute``/``peek``/``_cached``).

The rule classifies each ``return`` expression of a public method by
provenance:

* **frozen** — store calls without ``freeze=False``, names the method
  froze via ``setflags``/``flags.writeable``, calls through ``self.``
  (the callee is checked at its own definition), tuple elements
  thereof;
* **mutable** — allocating NumPy constructors (``np.empty`` & co.),
  ``.copy()``/``.astype()`` results, and store calls that *opt out*
  with ``freeze=False``;
* everything else — unknown, and deliberately not flagged: scalar
  metrics (``davg``) return plain floats, and a rule that cried wolf
  on those would be suppressed into uselessness.

Only mutable returns are findings.  Generators are skipped (their
yields feed internal folds, not the public array contract).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.devtools.lint import Finding, LintRule
from repro.devtools.rules._common import (
    is_constant,
    is_np_attr,
    is_self_attr,
    keyword_value,
    numpy_aliases,
    walk_skipping_functions,
)

#: np.<name> calls that allocate a fresh writable array.
ALLOCATORS = frozenset(
    {
        "empty", "zeros", "ones", "full", "array", "asarray",
        "ascontiguousarray", "arange", "linspace", "concatenate",
        "stack", "vstack", "hstack", "copy", "empty_like", "zeros_like",
        "ones_like", "full_like", "meshgrid", "ndarray", "tile",
        "repeat",
    }
)

#: Store entry points that freeze on insert (unless freeze=False).
_FREEZING_CALLS = frozenset({"_cached", "get_or_compute", "peek"})

#: Classes whose public surface promises read-only arrays.
CLASSES = frozenset({"MetricContext", "SharedGridStore", "GridStore"})

_OK, _MUTABLE, _UNKNOWN = "ok", "mutable", "unknown"


class ReadonlyReturnsRule(LintRule):
    rule_id = "R003"
    title = "public method returns a writable array"
    rationale = (
        "cached arrays are shared across every caller; a writable "
        "return invites an in-place edit that silently corrupts all "
        "later reads"
    )
    version = 1
    scope = ("engine/context.py", "engine/shm.py", "engine/store.py")

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        self._aliases = numpy_aliases(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name not in CLASSES:
                continue
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name.startswith("_"):
                    continue
                self._check_method(item, path, findings)
        return findings

    def _check_method(
        self, fn: ast.AST, path: str, findings: List[Finding]
    ) -> None:
        own_body = list(walk_skipping_functions(fn.body))
        if any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in own_body):
            return  # generator: yields feed folds, not the array contract
        frozen = self._frozen_names(own_body)
        provenance = self._name_provenance(own_body, frozen)
        for node in own_body:
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for expr, reason in self._mutable_parts(
                node.value, frozen, provenance
            ):
                findings.append(
                    self.finding(
                        path,
                        node,
                        f"returns a writable array ({reason}); freeze it "
                        "with arr.setflags(write=False) or return the "
                        "store's frozen copy",
                    )
                )

    # -- provenance -----------------------------------------------------
    @staticmethod
    def _frozen_names(own_body) -> Set[str]:
        """Names frozen via ``x.flags.writeable = False`` or
        ``x.setflags(write=False)`` anywhere in the method."""
        frozen: Set[str] = set()
        for node in own_body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "writeable"
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "flags"
                        and isinstance(target.value.value, ast.Name)
                        and is_constant(node.value, False)
                    ):
                        frozen.add(target.value.value.id)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "setflags"
                    and isinstance(func.value, ast.Name)
                    and is_constant(keyword_value(node, "write"), False)
                ):
                    frozen.add(func.value.id)
        return frozen

    def _name_provenance(
        self, own_body, frozen: Set[str]
    ) -> Dict[str, str]:
        """Worst-case classification of each locally assigned name."""
        provenance: Dict[str, str] = {}
        for node in own_body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                verdict = self._classify(node.value, frozen, provenance)
                previous = provenance.get(target.id)
                if verdict == _MUTABLE or previous == _MUTABLE:
                    provenance[target.id] = _MUTABLE
                elif verdict == _OK and previous in (None, _OK):
                    provenance[target.id] = _OK
                else:
                    provenance[target.id] = _UNKNOWN
        for name in frozen:  # an explicit freeze overrides provenance
            provenance[name] = _OK
        return provenance

    def _classify(
        self,
        expr: ast.AST,
        frozen: Set[str],
        provenance: Dict[str, str],
    ) -> str:
        if isinstance(expr, ast.Name):
            if expr.id in frozen:
                return _OK
            return provenance.get(expr.id, _UNKNOWN)
        if isinstance(expr, ast.Call):
            return self._classify_call(expr)
        if isinstance(expr, ast.Subscript):
            # element/slice of a trusted producer stays trusted only
            # for indexing a tuple result; a slice of a frozen array is
            # frozen anyway, so propagate the base verdict.
            return self._classify(expr.value, frozen, provenance)
        if isinstance(expr, ast.Constant):
            return _OK
        return _UNKNOWN

    def _classify_call(self, call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _FREEZING_CALLS:
                freeze = keyword_value(call, "freeze")
                if is_constant(freeze, False):
                    return _MUTABLE
                return _OK
            if is_self_attr(func):
                return _OK  # checked at its own definition
            if is_np_attr(func, self._aliases, ALLOCATORS):
                return _MUTABLE
            if func.attr in ("copy", "astype") :
                return _MUTABLE
        return _UNKNOWN

    def _mutable_parts(
        self,
        expr: ast.AST,
        frozen: Set[str],
        provenance: Dict[str, str],
    ):
        """Yield ``(node, reason)`` for each mutable component of a
        return expression (tuples checked element-wise)."""
        if isinstance(expr, ast.Tuple):
            for element in expr.elts:
                yield from self._mutable_parts(element, frozen, provenance)
            return
        verdict = self._classify(expr, frozen, provenance)
        if verdict != _MUTABLE:
            return
        reason = self._reason(expr, provenance)
        yield expr, reason

    def _reason(
        self, expr: ast.AST, provenance: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Attribute):
                if func.attr in _FREEZING_CALLS:
                    return f"{func.attr}(..., freeze=False) opts out of the store's freeze"
                return f"fresh allocation via .{func.attr}(...)"
        if isinstance(expr, ast.Name):
            return f"'{expr.id}' was assigned a fresh writable array and never frozen"
        return "mutable provenance"
