"""Shared AST helpers for the repro lint rules (stdlib only)."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

#: Module-level spellings of a float dtype (``np.float64`` etc.).
FLOAT_DTYPE_ATTRS = frozenset(
    {"float64", "float32", "float16", "double", "single", "longdouble"}
)


def numpy_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the ``numpy`` package.

    Covers ``import numpy``, ``import numpy as np`` and nothing fancier
    — the engine imports NumPy exactly one way, and a rule that guesses
    beyond what it can see would lie about locations.
    """
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "numpy":
                    aliases.add(item.asname or "numpy")
    return aliases


def math_fsum_names(tree: ast.Module) -> Set[str]:
    """Expressions that resolve to ``math.fsum`` (dotted or imported)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == "math":
                    names.add(f"{item.asname or 'math'}.fsum")
        elif isinstance(node, ast.ImportFrom) and node.module == "math":
            for item in node.names:
                if item.name == "fsum":
                    names.add(item.asname or "fsum")
    return names


def is_np_attr(
    node: ast.AST, aliases: Set[str], names: frozenset
) -> bool:
    """True for ``np.<name>`` where ``<name>`` is in ``names``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr in names
        and isinstance(node.value, ast.Name)
        and node.value.id in aliases
    )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for pure attribute chains rooted at a Name, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def keyword_value(call: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def is_constant(node: Optional[ast.AST], value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


def is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    """True for ``self.<attr>`` (any attribute when ``attr`` is None)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def walk_skipping_functions(body) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function bodies.

    Used when a property (taint, lock state) does not transfer into a
    nested ``def``/``lambda`` and the nested scope is analyzed on its
    own terms.
    """
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
