"""The repro invariant rules, one module per rule.

Each rule pins one hand-enforced engine invariant to a machine check;
``docs/static-analysis.md`` carries the catalogue with the full *why*.
"""

from typing import List

from repro.devtools.lint import LintRule
from repro.devtools.rules.allocation_free import AllocationFreeRule
from repro.devtools.rules.float_determinism import FloatDeterminismRule
from repro.devtools.rules.lock_discipline import LockDisciplineRule
from repro.devtools.rules.readonly_returns import ReadonlyReturnsRule

__all__ = ["all_rules", "rules_by_id"]

_RULE_CLASSES = (
    FloatDeterminismRule,
    LockDisciplineRule,
    ReadonlyReturnsRule,
    AllocationFreeRule,
)


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, in R-number order."""
    return [cls() for cls in _RULE_CLASSES]


def rules_by_id(ids) -> List[LintRule]:
    """The subset of rules named by ``ids`` (e.g. ``["R001"]``).

    Unknown ids raise ``ValueError`` so a typoed ``--rules`` filter
    fails loudly instead of silently checking nothing.
    """
    rules = {rule.rule_id: rule for rule in all_rules()}
    missing = [rid for rid in ids if rid not in rules]
    if missing:
        raise ValueError(
            f"unknown lint rule(s) {missing}; known: {sorted(rules)}"
        )
    return [rules[rid] for rid in ids]
