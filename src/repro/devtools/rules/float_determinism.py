"""R001 — float accumulation must stream through ``pairwise_sum_stream``.

The engine's block paths (``engine/chunked.py``, ``engine/threads.py``)
promise results *bit-for-bit equal* to the dense reference.  For float
reductions that only holds when partial sums replicate NumPy's pairwise
summation tree exactly — which is what ``pairwise_sum_stream`` does.
Any ad-hoc float accumulation (``np.sum``/``np.mean`` over a whole
array, ``math.fsum``, a bare ``+=`` running total) imposes a different
association order and silently breaks the contract, so this rule flags
it at the accumulation site.

What stays legal on purpose:

* integer accumulation — association order cannot change an exact sum,
  and the block kernels fold int64 partials all over;
* axis-wise reductions (``arr.sum(axis=-1, out=...)``): those are
  element-wise folds of a fixed small width, not streaming
  accumulations, and NumPy evaluates them identically on every path;
* ``np.add.reduce`` — the primitive ``pairwise_sum_stream`` itself is
  built on.

The rule infers float-ness structurally (float literals, true
division, ``dtype=np.float64`` arguments, ``np.sqrt``/``.astype``
results, ``scratch.take(..., np.float64)``) and stays silent when it
cannot tell: a false "not bit-for-bit" claim would train people to
ignore the checker.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.devtools.lint import Finding, LintRule
from repro.devtools.rules._common import (
    FLOAT_DTYPE_ATTRS,
    dotted_name,
    is_np_attr,
    keyword_value,
    math_fsum_names,
    numpy_aliases,
    walk_skipping_functions,
)

#: np.<attr> calls whose result is float regardless of inputs.
_FLOAT_PRODUCERS = frozenset(
    {"sqrt", "divide", "true_divide", "mean", "average", "var", "std"}
) | FLOAT_DTYPE_ATTRS

#: Reduction method names that accumulate over a whole array.
_REDUCERS = frozenset({"sum", "mean"})

#: ndarray attributes that are integers even on float arrays.
_INT_ATTRS = frozenset({"size", "shape", "ndim", "nbytes", "itemsize"})


class FloatDeterminismRule(LintRule):
    rule_id = "R001"
    title = "float accumulation outside pairwise_sum_stream"
    rationale = (
        "block/threaded float reductions must replicate NumPy pairwise "
        "summation via pairwise_sum_stream or results stop being "
        "bit-for-bit equal to the dense path"
    )
    version = 1
    scope = ("engine/chunked.py", "engine/threads.py")

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        self._aliases = numpy_aliases(tree)
        self._fsums = math_fsum_names(tree)
        findings: List[Finding] = []
        for fn in self._outer_functions(tree):
            self._scan_function(fn, set(), path, findings)
        return findings

    # -- structure ------------------------------------------------------
    @staticmethod
    def _outer_functions(tree: ast.Module):
        """Functions not nested inside another function (classes are
        transparent); nested defs are visited by :meth:`_scan_function`
        with their enclosing taint environment."""
        stack = list(tree.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node
            elif isinstance(node, ast.ClassDef):
                stack.extend(node.body)

    def _scan_function(
        self,
        fn: ast.AST,
        inherited: Set[str],
        path: str,
        findings: List[Finding],
    ) -> None:
        tainted = self._float_names(fn, inherited)
        nested = []
        for node in walk_skipping_functions(fn.body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.append(node)
                continue
            if isinstance(node, ast.Call):
                self._check_call(node, tainted, path, findings)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, ast.Add
            ):
                self._check_augadd(node, tainted, path, findings)
        for inner in nested:
            self._scan_function(inner, tainted, path, findings)

    # -- float inference ------------------------------------------------
    def _float_names(self, fn: ast.AST, inherited: Set[str]) -> Set[str]:
        """Names bound to float-valued expressions, to a fixpoint."""
        tainted = set(inherited)
        assigns = [
            node
            for node in walk_skipping_functions(fn.body)
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
        ]
        for _ in range(4):
            grew = False
            for node in assigns:
                value = node.value
                if value is None or not self._is_float(value, tainted):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id not in tainted
                    ):
                        tainted.add(target.id)
                        grew = True
            if not grew:
                break
        return tainted

    def _is_float(self, node: ast.AST, tainted: Set[str]) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._is_float(node.left, tainted) or self._is_float(
                node.right, tainted
            )
        if isinstance(node, ast.UnaryOp):
            return self._is_float(node.operand, tainted)
        if isinstance(node, ast.IfExp):
            return self._is_float(node.body, tainted) or self._is_float(
                node.orelse, tainted
            )
        if isinstance(node, (ast.Subscript, ast.Starred)):
            return self._is_float(node.value, tainted)
        if isinstance(node, ast.Attribute):
            if is_np_attr(node, self._aliases, FLOAT_DTYPE_ATTRS):
                return True
            if node.attr in _INT_ATTRS:
                return False
            return self._is_float(node.value, tainted)
        if isinstance(node, ast.Call):
            return self._call_is_float(node, tainted)
        return False

    def _call_is_float(self, call: ast.Call, tainted: Set[str]) -> bool:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if is_np_attr(func, self._aliases, _FLOAT_PRODUCERS):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr == "mean":
                return True
            if func.attr == "astype" and any(
                self._is_float_dtype(arg) for arg in call.args
            ):
                return True
            if self._is_float(func.value, tainted) and func.attr in (
                "reshape",
                "ravel",
                "view",
                "take",
                "max",
                "min",
                "sum",
            ):
                return True
        dtype = keyword_value(call, "dtype")
        if dtype is not None and self._is_float_dtype(dtype):
            return True
        # scratch.take("tag", shape, np.float64)-style positional dtypes.
        return any(self._is_float_dtype(arg) for arg in call.args)

    def _is_float_dtype(self, node: ast.AST) -> bool:
        if is_np_attr(node, self._aliases, FLOAT_DTYPE_ATTRS):
            return True
        if isinstance(node, ast.Name) and node.id == "float":
            return True
        return isinstance(node, ast.Constant) and isinstance(
            node.value, str
        ) and node.value.startswith("float")

    # -- violations -----------------------------------------------------
    def _check_call(
        self,
        call: ast.Call,
        tainted: Set[str],
        path: str,
        findings: List[Finding],
    ) -> None:
        func = call.func
        name = dotted_name(func)
        if name is not None and name in self._fsums:
            findings.append(
                self.finding(
                    path,
                    call,
                    "math.fsum uses exact summation, which is *not* "
                    "NumPy's pairwise order; stream the values through "
                    "pairwise_sum_stream instead",
                )
            )
            return
        if not isinstance(func, ast.Attribute) or func.attr not in _REDUCERS:
            return
        axis = keyword_value(call, "axis")
        if axis is not None and not (
            isinstance(axis, ast.Constant) and axis.value is None
        ):
            return  # fixed-width axis fold, identical on every path
        receiver = func.value
        if isinstance(receiver, ast.Name) and receiver.id in self._aliases:
            # np.sum(x) / np.mean(x): positional axis (2nd arg) exempts.
            if len(call.args) >= 2:
                return
            findings.append(
                self.finding(
                    path,
                    call,
                    f"np.{func.attr} collapses the whole array in one "
                    "reduction; block paths must accumulate floats with "
                    "pairwise_sum_stream to stay bit-for-bit with dense",
                )
            )
            return
        if call.args:  # arr.sum(-1): positional axis, fixed-width fold
            return
        if self._is_float(receiver, tainted):
            findings.append(
                self.finding(
                    path,
                    call,
                    f".{func.attr}() over a float array accumulates "
                    "outside pairwise_sum_stream; the partial order will "
                    "not match the dense reference",
                )
            )

    def _check_augadd(
        self,
        node: ast.AugAssign,
        tainted: Set[str],
        path: str,
        findings: List[Finding],
    ) -> None:
        target_float = self._is_float(node.target, tainted)
        value_float = self._is_float(node.value, tainted)
        if target_float or value_float:
            findings.append(
                self.finding(
                    path,
                    node,
                    "float '+=' running total imposes left-to-right "
                    "association; fold the blocks through "
                    "pairwise_sum_stream instead",
                )
            )
