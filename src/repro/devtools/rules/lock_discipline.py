"""R002 — lock-guarded attributes stay behind their lock.

PR 5's concurrency hardening fixed a real segfault whose root cause
was exactly this class of bug: state shared between threads (or
processes attached to shared memory) touched outside the lock that
guards it.  The guard registry below declares, per class, which
attributes are protected by which ``self.<lock>``; the rule flags any
``self.<attr>`` read or write in a method body that is not lexically
inside ``with self.<lock>:``.

The analysis is lexical on purpose: it cannot prove the absence of
races, but it *can* prove that every touch point sits inside a lock
block, which is the discipline the engine actually maintains.  Three
escapes keep it honest:

* ``__init__`` is exempt — no other thread can hold a reference yet;
* ``held_methods`` are helpers documented as "caller holds the lock"
  (``_BoundedStore._evict`` runs inside ``get_or_compute``'s critical
  section);
* nested functions and lambdas are treated as *not* holding the lock
  even when defined inside a ``with`` block — they may run later, on
  another thread (this is exactly how the PR 5 segfault escaped
  review).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.devtools.lint import Finding, LintRule
from repro.devtools.rules._common import is_self_attr


@dataclass(frozen=True)
class GuardSpec:
    """Which attributes of one class are guarded by which lock."""

    lock: str
    attrs: FrozenSet[str]
    held_methods: FrozenSet[str] = field(default_factory=frozenset)


#: The engine's lock-guarded state, by class name.  Extend this when a
#: new class grows a ``_lock``; the registry *is* the documentation of
#: the locking contract.
GUARDS: Dict[str, GuardSpec] = {
    "_BoundedStore": GuardSpec(
        lock="_lock",
        attrs=frozenset({"_items", "_views", "_bytes", "stats"}),
        held_methods=frozenset({"_evict"}),
    ),
    "ContextPool": GuardSpec(
        lock="_lock",
        attrs=frozenset(
            {"_contexts", "_curves", "_universe_stores", "_scheduler"}
        ),
        held_methods=frozenset({"_wire_shared"}),
    ),
    "MetricContext": GuardSpec(
        lock="_scalar_lock",
        attrs=frozenset({"_scalars"}),
    ),
    "SharedGridStore": GuardSpec(
        lock="_lock",
        attrs=frozenset({"_entries", "_segments", "_views"}),
    ),
    "GridStore": GuardSpec(
        lock="_lock",
        attrs=frozenset({"counters", "_verified"}),
    ),
}


class LockDisciplineRule(LintRule):
    rule_id = "R002"
    title = "guarded attribute touched outside its lock"
    rationale = (
        "state declared lock-guarded in the guard registry must only "
        "be read or written inside 'with self.<lock>:' — the PR 5 "
        "segfault came from exactly this bug class"
    )
    version = 1
    scope = (
        "engine/context.py",
        "engine/pool.py",
        "engine/shm.py",
        "engine/store.py",
    )

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            spec = GUARDS.get(node.name)
            if spec is None:
                continue
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name == "__init__" or item.name in spec.held_methods:
                    continue
                visitor = _MethodVisitor(self, spec, path, node.name)
                for stmt in item.body:
                    visitor.visit(stmt)
                findings.extend(visitor.findings)
        return findings


class _MethodVisitor(ast.NodeVisitor):
    """Track lexical ``with self.<lock>`` depth through one method."""

    def __init__(
        self,
        rule: LockDisciplineRule,
        spec: GuardSpec,
        path: str,
        cls: str,
    ) -> None:
        self._rule = rule
        self._spec = spec
        self._path = path
        self._cls = cls
        self._depth = 0
        self.findings: List[Finding] = []

    def _is_lock_item(self, item: ast.withitem) -> bool:
        return is_self_attr(item.context_expr, self._spec.lock)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        takes_lock = any(self._is_lock_item(item) for item in node.items)
        for item in node.items:  # the lock expression itself is exempt
            if not self._is_lock_item(item):
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if takes_lock:
            self._depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if takes_lock:
            self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_deferred(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_deferred(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_deferred(node)

    def _visit_deferred(self, node) -> None:
        # A closure may outlive the critical section it was defined in:
        # analyze its body as if the lock were NOT held.
        saved, self._depth = self._depth, 0
        self.generic_visit(node)
        self._depth = saved

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            is_self_attr(node)
            and node.attr in self._spec.attrs
            and self._depth == 0
        ):
            self.findings.append(
                self._rule.finding(
                    self._path,
                    node,
                    f"{self._cls}.{node.attr} is guarded by "
                    f"self.{self._spec.lock} but touched outside "
                    f"'with self.{self._spec.lock}:'",
                )
            )
        self.generic_visit(node)
