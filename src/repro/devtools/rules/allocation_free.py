"""R004 — the declared hot kernels may not allocate.

PR 5 made the block kernels allocation-free: every temporary comes
from per-thread ``ScratchBuffers.take`` (or an ``out=`` parameter), so
steady-state block streaming does zero allocator traffic regardless of
block count.  That property is what lets a chunked sweep of a
beyond-RAM grid run at a flat memory ceiling and keeps the threaded
scheduler from serializing on the allocator.

It is also trivially easy to regress: one innocent ``np.zeros`` inside
a per-block loop re-introduces an allocation *per block per thread*
and nothing fails — throughput just sags.  This rule pins the
invariant to a declared hot-kernel set and flags any allocating NumPy
constructor (or ``.copy()``/``.astype()``) inside those functions,
nested helpers included.

``scratch.take(tag, shape, dtype)`` is the sanctioned allocator —
it reuses a keyed buffer after the first block — and ufuncs with
``out=`` targets are what the kernels are built from; neither is
flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List

from repro.devtools.lint import Finding, LintRule, path_matches
from repro.devtools.rules._common import is_np_attr, numpy_aliases
from repro.devtools.rules.readonly_returns import ALLOCATORS

#: The allocation-free contract, by file: these functions (PR 5 block
#: kernels) run once per block per thread and must only use scratch.
HOT_KERNELS: Dict[str, FrozenSet[str]] = {
    "engine/chunked.py": frozenset(
        {
            "slab_neighbor_counts",
            "accumulate_block_pairs",
            "nn_block_reduction",
        }
    ),
    "engine/threads.py": frozenset(
        {"_nn_range_kernel", "_block_max_distance"}
    ),
    "engine/context.py": frozenset({"_nn_values_blockwise"}),
}



class AllocationFreeRule(LintRule):
    rule_id = "R004"
    title = "allocation inside an allocation-free hot kernel"
    rationale = (
        "the PR 5 block kernels run once per block per thread; any "
        "NumPy constructor there re-introduces per-block allocator "
        "traffic that the scratch-buffer design exists to eliminate"
    )
    version = 1
    scope = tuple(HOT_KERNELS)

    def check(self, tree: ast.Module, path: str) -> List[Finding]:
        aliases = numpy_aliases(tree)
        names = self._kernel_names(path)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            if (
                not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                or node.name not in names
            ):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Call):
                    continue
                func = inner.func
                if is_np_attr(func, aliases, ALLOCATORS):
                    findings.append(
                        self.finding(
                            path,
                            inner,
                            f"np.{func.attr} allocates inside hot kernel "
                            f"'{node.name}'; take the buffer from "
                            "scratch.take(...) or accept it as out=",
                        )
                    )
                elif isinstance(func, ast.Attribute) and (
                    func.attr == "astype"
                    or (
                        func.attr == "copy"
                        and not inner.args
                        and not inner.keywords
                    )
                ):
                    findings.append(
                        self.finding(
                            path,
                            inner,
                            f".{func.attr}() allocates inside hot kernel "
                            f"'{node.name}'; copy into a scratch buffer "
                            "with np.copyto(scratch.take(...), src)",
                        )
                    )
        return findings

    @staticmethod
    def _kernel_names(path: str) -> FrozenSet[str]:
        """The declared kernel set for ``path``; when the path matches
        no registry entry (a fixture run under ``force=True``), every
        declared kernel name applies."""
        for pattern, names in HOT_KERNELS.items():
            if path_matches(path, pattern):
                return names
        return frozenset().union(*HOT_KERNELS.values())
