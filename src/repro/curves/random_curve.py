"""Uniformly random bijections.

The paper's SFC definition is *any* bijection, so a uniformly random
permutation of the cells is a legitimate SFC — and a vital baseline: its
expected NN-stretch is ≈ n/3 (the mean |key difference| of two uniform
keys), far above the ``Θ(n^{1−1/d})`` of structured curves, while Theorem
1's lower bound must still hold for every sampled instance.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import PermutationCurve
from repro.grid.universe import Universe

__all__ = ["RandomCurve", "expected_random_nn_stretch"]


def expected_random_nn_stretch(n: int) -> float:
    """Expected ``∆π`` of a fixed pair under a uniform random bijection.

    Two distinct uniform keys from ``{0,…,n−1}`` have
    ``E|key_1 − key_2| = (n+1)/3`` — the benchmark value a random curve's
    ``D^avg`` concentrates around.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    return (n + 1) / 3.0


class RandomCurve(PermutationCurve):
    """Seeded uniformly-random bijection ``U → {0,…,n−1}``."""

    name = "random"

    def __init__(self, universe: Universe, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        keys = rng.permutation(universe.n).astype(np.int64)
        grid = np.ascontiguousarray(
            keys.reshape(universe.shape, order="F")
        )
        super().__init__(universe, key_grid=grid, name=self.name)
        self.seed = seed

    def _cache_token(self) -> object:
        # The seed pins the permutation down, so equal-seed instances
        # on equal universes can share one metric context.
        return ("seed", int(self.seed))
