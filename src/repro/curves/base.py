"""Space-filling-curve base classes.

An SFC (Section III) is a bijection ``π : U → {0, 1, ..., n−1}``.  The
:class:`SpaceFillingCurve` interface exposes it in both directions,
vectorized:

* ``index(coords)`` — the paper's ``π(α)`` ("key" of a cell);
* ``coords(index)`` — the inverse ``π^{-1}``;
* ``key_grid()``    — a dense ``(side,)*d`` array of keys, the workhorse
  representation for the exact stretch metrics;
* ``order()``       — the cells listed in curve order (a (n, d) array).

Subclasses implement ``_index_impl`` (and optionally ``_coords_impl``);
the base class handles validation, caching of the key grid, and a generic
inverse via argsort when no analytic inverse exists.
"""

from __future__ import annotations

import abc
import itertools
import threading
from typing import Optional

import numpy as np

from repro.grid.coords import coords_to_rank, rank_to_coords
from repro.grid.universe import Universe

__all__ = ["SpaceFillingCurve", "PermutationCurve", "check_bijection"]


class SpaceFillingCurve(abc.ABC):
    """Abstract base class for SFCs over a :class:`Universe`.

    Parameters
    ----------
    universe:
        The grid the curve fills.  Subclasses may restrict admissible
        universes (e.g. power-of-two side for bitwise curves).
    """

    #: Short machine name, overridden per subclass (used by the registry).
    name: str = "abstract"

    def __init__(self, universe: Universe) -> None:
        self.universe = universe
        self._key_grid_cache: Optional[np.ndarray] = None
        self._inverse_cache: Optional[np.ndarray] = None
        self._order_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Core mapping
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        """Vectorized key computation for validated int64 coords ``(..., d)``."""

    def index(self, coords: np.ndarray) -> np.ndarray:
        """``π(α)``: keys for coordinates of shape ``(..., d)``."""
        arr = self.universe.validate_coords(coords)
        return np.asarray(self._index_impl(arr), dtype=np.int64)

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        """Inverse mapping; default uses a cached argsort-based table."""
        if self._inverse_cache is None:
            keys = self.key_grid().reshape(-1, order="F")
            inverse = np.empty(self.universe.n, dtype=np.int64)
            inverse[keys] = np.arange(self.universe.n, dtype=np.int64)
            self._inverse_cache = inverse
        ranks = self._inverse_cache[index]
        return rank_to_coords(ranks, self.universe)

    def coords(self, index: np.ndarray) -> np.ndarray:
        """``π^{-1}(key)``: coordinates for keys of shape ``(...,)``."""
        arr = self.universe.validate_ranks(index)
        return np.asarray(self._coords_impl(arr), dtype=np.int64)

    # ------------------------------------------------------------------
    # Batch encode/decode (the app/engine hot path)
    # ------------------------------------------------------------------
    def keys_of(
        self, points: np.ndarray, backend: str = "auto"
    ) -> np.ndarray:
        """Batch ``π``: keys for millions of points in one call.

        Identical values to :meth:`index` (which stays the pure-NumPy
        reference); ``backend="auto"``/``"native"`` additionally route
        the analytically-coded curve families through the compiled
        kernels of :mod:`repro.engine.native` when available.  Curves
        without a native codec fall back to the NumPy implementation
        transparently.
        """
        arr = self.universe.validate_coords(points)
        codec = self._native_codec(backend)
        if codec is not None:
            return codec.encode(arr)
        return np.asarray(self._index_impl(arr), dtype=np.int64)

    def coords_of(
        self, keys: np.ndarray, backend: str = "auto"
    ) -> np.ndarray:
        """Batch ``π^{-1}``: the inverse of :meth:`keys_of`."""
        arr = self.universe.validate_ranks(keys)
        codec = self._native_codec(backend)
        if codec is not None:
            return codec.decode(arr)
        return np.asarray(self._coords_impl(arr), dtype=np.int64)

    def _native_codec(self, backend: str):
        """The native codec serving ``backend``, or ``None``."""
        if backend == "numpy":
            return None
        from repro.engine import native

        if native.resolve_backend(backend) != "native":
            return None
        return native.encoder_for(self)

    # ------------------------------------------------------------------
    # Dense representations
    # ------------------------------------------------------------------
    def key_grid(self) -> np.ndarray:
        """Dense ``(side,)*d`` int64 array: ``key_grid[tuple(α)] = π(α)``.

        Cached; this is the input to every exact stretch computation.
        """
        if self._key_grid_cache is None:
            coords = self.universe.all_coords()
            keys = self.index(coords)
            # keys are in rank (Fortran) order; reshape accordingly.  The
            # F-ordered reshape may be a view of `keys`, so materialize a
            # C-contiguous copy for cache friendliness downstream.
            grid = np.ascontiguousarray(
                keys.reshape(self.universe.shape, order="F")
            )
            self._key_grid_cache = grid
        return self._key_grid_cache

    def order(self) -> np.ndarray:
        """Cells in curve order: ``order()[j]`` is ``π^{-1}(j)``, shape (n, d).

        Cached (it runs the full inverse, ``O(n)`` with the inverse
        table); the returned array is shared and read-only — copy
        before mutating.
        """
        if self._order_cache is None:
            path = self.coords(np.arange(self.universe.n, dtype=np.int64))
            path.flags.writeable = False
            self._order_cache = path
        return self._order_cache

    # ------------------------------------------------------------------
    # Distances & checks
    # ------------------------------------------------------------------
    def curve_distance(self, alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
        """``∆π(α, β) = |π(α) − π(β)|`` (Section III), vectorized."""
        return np.abs(self.index(alpha) - self.index(beta))

    def is_bijection(self) -> bool:
        """Exhaustively verify the SFC is a bijection onto ``{0,…,n−1}``."""
        return check_bijection(self.key_grid(), self.universe.n)

    def is_continuous(self) -> bool:
        """True iff consecutive keys are always grid nearest neighbors.

        The paper's definition allows discontinuous ("self-intersecting")
        curves; classical curves like Hilbert satisfy this, Z does not.
        """
        path = self.order()
        steps = np.abs(np.diff(path, axis=0)).sum(axis=1)
        return bool(np.all(steps == 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(d={self.universe.d}, "
            f"side={self.universe.side})"
        )

    # ------------------------------------------------------------------
    # Canonical identity (context sharing)
    # ------------------------------------------------------------------
    def cache_key(self) -> tuple:
        """Hashable identity of the mapping ``π`` this curve realizes.

        Two curves with equal cache keys are guaranteed to map every
        cell to the same key, so shared infrastructure (notably
        :class:`repro.engine.ContextPool`) can serve them from one
        :class:`repro.engine.MetricContext`.  The key is
        ``(type, universe, token)``; parameterized subclasses fold their
        constructor state in via :meth:`_cache_token`.
        """
        return (type(self), self.universe, self._cache_token())

    def _cache_token(self) -> object:
        """Constructor state distinguishing otherwise-equal instances.

        ``None`` for deterministic parameter-free curves (the type and
        universe pin the mapping down).  Subclasses with parameters
        (seeds, reflected axes, axis permutations, explicit tables)
        must override this; returning a token that collides across
        genuinely different mappings would silently alias their caches.
        """
        return None


def check_bijection(key_grid: np.ndarray, n: int) -> bool:
    """True iff the flattened key grid is a permutation of ``0..n−1``."""
    flat = np.asarray(key_grid).reshape(-1)
    if flat.size != n:
        return False
    seen = np.zeros(n, dtype=bool)
    if flat.min(initial=0) < 0 or flat.max(initial=0) >= n:
        return False
    seen[flat] = True
    return bool(seen.all())


#: Process-wide source of never-reused instance tokens for
#: instance-keyed curves.  ``id()`` was used historically, but ids are
#: recycled: a table curve garbage-collected while a ContextPool still
#: held its context could alias a *new* table allocated at the same
#: address, silently serving it the dead curve's cached metrics.  A
#: monotonic counter can never collide.
_INSTANCE_TOKENS = itertools.count()
_INSTANCE_TOKEN_LOCK = threading.Lock()


def _next_instance_token() -> int:
    with _INSTANCE_TOKEN_LOCK:
        return next(_INSTANCE_TOKENS)


class PermutationCurve(SpaceFillingCurve):
    """An SFC given by an explicit key grid or cell order.

    This realizes the paper's fully general definition: *any* bijection is
    an SFC.  Used for the Figure 1 curves, random bijections, and curves
    built by recursive construction (Peano, spiral) where the natural
    output is the visit order rather than a formula.
    """

    name = "permutation"

    def __init__(
        self,
        universe: Universe,
        key_grid: Optional[np.ndarray] = None,
        order: Optional[np.ndarray] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(universe)
        self._instance_token = _next_instance_token()
        if (key_grid is None) == (order is None):
            raise ValueError("provide exactly one of key_grid or order")
        if key_grid is not None:
            grid = np.asarray(key_grid, dtype=np.int64)
            if grid.shape != universe.shape:
                raise ValueError(
                    f"key grid shape {grid.shape} != universe {universe.shape}"
                )
        else:
            cells = universe.validate_coords(order)
            if cells.shape != (universe.n, universe.d):
                raise ValueError(
                    f"order shape {cells.shape} != ({universe.n}, {universe.d})"
                )
            ranks = coords_to_rank(cells, universe)
            flat = np.empty(universe.n, dtype=np.int64)
            flat[ranks] = np.arange(universe.n, dtype=np.int64)
            grid = np.ascontiguousarray(
                flat.reshape(universe.shape, order="F")
            )
        if not check_bijection(grid, universe.n):
            raise ValueError("supplied mapping is not a bijection onto 0..n-1")
        self._key_grid_cache = grid
        if name is not None:
            self.name = name

    #: Deterministic subclasses (mapping fully determined by type +
    #: universe) set this True to re-enable context sharing across
    #: instances; raw permutation tables stay instance-keyed because
    #: proving two tables equal would cost an O(n) comparison.
    _deterministic = False

    def _cache_token(self) -> object:
        # The token is a never-reused counter, not id(): an id can be
        # recycled after gc, aliasing two different tables in any
        # cache that outlives the first curve (the ContextPool holds
        # contexts keyed by this token for its whole lifetime).
        if self._deterministic:
            return None
        return ("instance", self._instance_token)

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        grid = self.key_grid()
        flat = grid.reshape(-1, order="F")
        ranks = coords_to_rank(coords, self.universe)
        return flat[ranks]
