"""The Gray-code curve (Faloutsos 1986, 1988).

Cells are visited in the order whose *reflected binary Gray code* equals
the bit-interleaved coordinates: ``π(x) = gray^{-1}(interleave(x))``.
Consecutive keys then differ in exactly one interleaved bit, i.e. in one
bit of one coordinate — a weaker continuity notion than grid adjacency
(a single-bit coordinate change can jump more than one cell).

One of the three classical curves compared in the paper's related work
(Chen & Chang 2005); included in the A1 ablation.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.curves.zcurve import deinterleave_bits, interleave_bits
from repro.grid.universe import Universe

__all__ = ["GrayCurve", "gray_encode", "gray_decode"]


def gray_encode(values: np.ndarray) -> np.ndarray:
    """Reflected binary Gray code ``g(v) = v ^ (v >> 1)``, vectorized."""
    arr = np.asarray(values, dtype=np.int64)
    return arr ^ (arr >> 1)


def gray_decode(codes: np.ndarray) -> np.ndarray:
    """Inverse Gray code via prefix XOR (``O(log bits)`` shifts)."""
    arr = np.asarray(codes, dtype=np.int64).copy()
    shift = 1
    while shift < 64:
        arr ^= arr >> shift
        shift <<= 1
    return arr


class GrayCurve(SpaceFillingCurve):
    """Gray-code curve; requires ``side = 2^k``."""

    name = "gray"

    def __init__(self, universe: Universe) -> None:
        super().__init__(universe)
        self._k = universe.k

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        return gray_decode(interleave_bits(coords, self._k))

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        return deinterleave_bits(
            gray_encode(index), self.universe.d, self._k
        )
