"""The worked curves of Figure 1, and helpers for user-supplied bijections.

Figure 1 shows a 2×2 grid with cells labelled::

        A   C          coordinates (x, y), y upward:
        D   B          A=(0,1)  C=(1,1)  D=(0,0)  B=(1,0)

* ``π1`` orders the cells  C, A, B, D  (a self-avoiding "hook") and has
  ``D^avg(π1) = 1.5``, ``D^max(π1) = 2``.
* ``π2`` orders the cells  A, B, C, D  (self-intersecting — allowed by the
  paper's bijection definition) and has ``D^avg(π2) = 2``,
  ``D^max(π2) = 2.5``.

These exact values are reproduced by bench E1.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import PermutationCurve
from repro.grid.universe import Universe

__all__ = [
    "FIGURE1_CELLS",
    "figure1_pi1",
    "figure1_pi2",
    "curve_from_visit_labels",
]

#: Cell label -> (x, y) coordinates used in Figure 1.
FIGURE1_CELLS: dict[str, tuple[int, int]] = {
    "A": (0, 1),
    "B": (1, 0),
    "C": (1, 1),
    "D": (0, 0),
}


def curve_from_visit_labels(labels: str, name: str) -> PermutationCurve:
    """Build a 2×2 curve from a visit sequence such as ``"CABD"``."""
    if sorted(labels.upper()) != ["A", "B", "C", "D"]:
        raise ValueError(f"labels must be a permutation of ABCD, got {labels!r}")
    universe = Universe(d=2, side=2)
    order = np.asarray(
        [FIGURE1_CELLS[label] for label in labels.upper()], dtype=np.int64
    )
    return PermutationCurve(universe, order=order, name=name)


def figure1_pi1() -> PermutationCurve:
    """The left curve of Figure 1 (visits C, A, B, D)."""
    return curve_from_visit_labels("CABD", name="figure1-pi1")


def figure1_pi2() -> PermutationCurve:
    """The right curve of Figure 1 (visits A, B, C, D; self-intersecting)."""
    return curve_from_visit_labels("ABCD", name="figure1-pi2")
