"""Name → curve factory registry used by the CLI, benches and examples.

A factory takes a :class:`Universe` and keyword arguments and returns a
curve.  Registrations carry optional :class:`CurveCapabilities` metadata
(supported dimensions / admissible side bases), so
:func:`curves_for_universe` and the sweep engine can decide
applicability *declaratively* instead of instantiating every curve and
catching ``ValueError``.  For curves with declared capabilities, a
``ValueError`` raised during construction on a universe the capabilities
accept is a genuine bug, not "curve not applicable" — ``strict=True``
surfaces it.

Registration guards against accidental overwrites (pass
``overwrite=True`` to replace deliberately) and supports a decorator
form::

    @register_curve("mycurve", dims=(2,), side_bases=(2,))
    class MyCurve(SpaceFillingCurve):
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.curves.base import SpaceFillingCurve
from repro.curves.diagonal import DiagonalCurve
from repro.curves.gray import GrayCurve
from repro.curves.hilbert import HilbertCurve
from repro.curves.moore import MooreCurve
from repro.curves.peano import PeanoCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.simple import SimpleCurve
from repro.curves.snake import SnakeCurve
from repro.curves.spiral import SpiralCurve
from repro.curves.zcurve import ZCurve
from repro.grid.universe import Universe

__all__ = [
    "CurveCapabilities",
    "register_curve",
    "make_curve",
    "available_curves",
    "curve_is_hidden",
    "curve_capabilities",
    "curve_applicability",
    "curves_for_universe",
]

CurveFactory = Callable[..., SpaceFillingCurve]


def _is_power_of(value: int, base: int) -> bool:
    if value < 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


@dataclass(frozen=True)
class CurveCapabilities:
    """Declarative universe support of a registered curve.

    ``dims=None`` means any dimension; ``side_bases=None`` means any
    side length, otherwise the side must be a power of one of the listed
    bases (e.g. ``(2,)`` for bitwise curves, ``(3,)`` for Peano).
    """

    dims: Optional[tuple[int, ...]] = None
    side_bases: Optional[tuple[int, ...]] = None
    min_side: int = 1

    def why_not(self, universe: Universe) -> Optional[str]:
        """Reason ``universe`` is unsupported, or ``None`` if it is."""
        if self.dims is not None and universe.d not in self.dims:
            return f"supports d in {self.dims}, got d={universe.d}"
        if universe.side < self.min_side:
            return f"needs side >= {self.min_side}, got {universe.side}"
        if self.side_bases is not None and not any(
            _is_power_of(universe.side, base) for base in self.side_bases
        ):
            bases = " or ".join(f"{b}^m" for b in self.side_bases)
            return f"needs side = {bases}, got {universe.side}"
        return None

    def supports(self, universe: Universe) -> bool:
        """True iff the curve is declared applicable to ``universe``."""
        return self.why_not(universe) is None


@dataclass(frozen=True)
class _Entry:
    factory: CurveFactory
    capabilities: Optional[CurveCapabilities]
    hidden: bool = False


_REGISTRY: Dict[str, _Entry] = {}


def register_curve(
    name: str,
    factory: Optional[CurveFactory] = None,
    *,
    overwrite: bool = False,
    capabilities: Optional[CurveCapabilities] = None,
    dims: Optional[Iterable[int]] = None,
    side_bases: Optional[Iterable[int]] = None,
    min_side: int = 1,
    hidden: bool = False,
):
    """Register a curve factory under ``name``.

    Callable both directly (``register_curve("z", ZCurve)``) and as a
    decorator (``@register_curve("z")``).  Re-registering an existing
    name raises ``ValueError`` unless ``overwrite=True`` — silent
    replacement has bitten before.

    Capabilities may be given as a :class:`CurveCapabilities` or through
    the ``dims`` / ``side_bases`` / ``min_side`` shorthands; omitting
    all of them registers the curve with *unknown* capabilities, for
    which applicability falls back to instantiate-and-catch.

    ``hidden=True`` keeps the name resolvable by :func:`make_curve`
    (and therefore usable in explicit sweep specs) without listing it
    in :func:`available_curves` — used for the transform wrappers,
    which only make sense with an explicit ``inner=...`` argument and
    would otherwise pollute every curves=None sweep.
    """
    if capabilities is None and (
        dims is not None or side_bases is not None or min_side != 1
    ):
        capabilities = CurveCapabilities(
            dims=tuple(dims) if dims is not None else None,
            side_bases=tuple(side_bases) if side_bases is not None else None,
            min_side=min_side,
        )

    def _register(fac: CurveFactory) -> CurveFactory:
        if not overwrite and name in _REGISTRY:
            raise ValueError(
                f"curve {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        _REGISTRY[name] = _Entry(fac, capabilities, hidden)
        return fac

    if factory is None:
        return _register
    _register(factory)
    return None


def available_curves(include_hidden: bool = False) -> list[str]:
    """Sorted names of registered curves (hidden wrappers opt-in)."""
    return sorted(
        name
        for name, entry in _REGISTRY.items()
        if include_hidden or not entry.hidden
    )


def curve_is_hidden(name: str) -> bool:
    """True when ``name`` is registered but kept out of default listings."""
    return _require(name).hidden


def curve_capabilities(name: str) -> Optional[CurveCapabilities]:
    """Declared capabilities of ``name`` (``None`` if unknown)."""
    return _require(name).capabilities


def _require(name: str) -> _Entry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown curve {name!r}; available: {available_curves()}"
        ) from None


def make_curve(name: str, universe: Universe, **kwargs) -> SpaceFillingCurve:
    """Instantiate the named curve on ``universe``.

    Raises
    ------
    KeyError
        For unknown names (message lists the registry).
    ValueError
        If the curve does not support the universe.
    """
    return _require(name).factory(universe, **kwargs)


def curve_applicability(
    name: str, universe: Universe
) -> tuple[Optional[bool], Optional[str]]:
    """Declared applicability of ``name`` to ``universe``.

    Returns ``(True, None)`` when the capabilities accept the universe,
    ``(False, reason)`` when they reject it, and ``(None, None)`` when
    the registration carries no capability metadata (caller must fall
    back to instantiate-and-catch).
    """
    caps = _require(name).capabilities
    if caps is None:
        return None, None
    reason = caps.why_not(universe)
    return (reason is None), reason


def curves_for_universe(
    universe: Universe,
    names: Iterable[str] | None = None,
    strict: bool = False,
    skipped: Optional[Dict[str, str]] = None,
) -> dict[str, SpaceFillingCurve]:
    """All registered curves instantiable on ``universe``, by name.

    Capability-declared inapplicability (wrong dimension, wrong side
    base) always skips the curve quietly.  A ``ValueError`` raised by a
    factory *despite* passing the capability check — or by a factory with
    no declared capabilities — marks the curve skipped by default and
    raises when ``strict=True``, so genuine construction bugs cannot
    hide behind the applicability filter.

    Pass a dict as ``skipped`` to receive ``{name: reason}`` for every
    curve left out.
    """
    selected = list(names) if names is not None else available_curves()
    out: dict[str, SpaceFillingCurve] = {}
    for name in selected:
        applicable, reason = curve_applicability(name, universe)
        if applicable is False:
            if skipped is not None:
                skipped[name] = reason or "not applicable"
            continue
        try:
            out[name] = make_curve(name, universe)
        except ValueError as exc:
            if strict:
                raise ValueError(
                    f"curve {name!r} failed to construct on {universe} "
                    f"despite {'declared capabilities' if applicable else 'no capability metadata'}: {exc}"
                ) from exc
            if skipped is not None:
                skipped[name] = f"construction error: {exc}"
            continue
    return out


# ----------------------------------------------------------------------
# Transform wrappers (hidden: resolvable by explicit spec only)
# ----------------------------------------------------------------------
def _inner_curve(universe: Universe, inner) -> SpaceFillingCurve:
    """Resolve a nested ``inner`` spec (``"hilbert"``, ``"random:seed=3"``).

    Nested specs reuse the sweep grammar; because the *outer* spec is
    split on commas first, a nested spec may carry at most one
    ``key=value`` pair of its own.
    """
    from repro.engine.sweep import CurveSpec  # late: sweep imports us

    return CurveSpec.parse(str(inner)).make(universe)


def _axis_list(value) -> list[int]:
    """Parse an axis list given as an int (``0``) or string (``"0-1"``)."""
    if isinstance(value, int):
        return [value]
    return [int(part) for part in str(value).split("-") if part != ""]


def _reversed_factory(universe: Universe, inner="z") -> SpaceFillingCurve:
    """Traverse the inner curve backwards: ``pi'(x) = n - 1 - pi(x)``."""
    from repro.curves.transforms import ReversedCurve

    return ReversedCurve(_inner_curve(universe, inner))


def _reflected_factory(
    universe: Universe, inner="z", axes=0
) -> SpaceFillingCurve:
    """Reflect the listed grid axes (``"0-1"`` or a single int) first."""
    from repro.curves.transforms import ReflectedCurve

    return ReflectedCurve(
        _inner_curve(universe, inner), axes=_axis_list(axes)
    )


def _axisperm_factory(
    universe: Universe, inner="z", perm="1-0"
) -> SpaceFillingCurve:
    """Relabel grid axes by the listed permutation (e.g. ``"1-0"``)."""
    from repro.curves.transforms import AxisPermutedCurve

    return AxisPermutedCurve(
        _inner_curve(universe, inner), perm=_axis_list(perm)
    )


register_curve("z", ZCurve, side_bases=(2,))
register_curve("simple", SimpleCurve, capabilities=CurveCapabilities())
register_curve("snake", SnakeCurve, capabilities=CurveCapabilities())
register_curve("gray", GrayCurve, side_bases=(2,))
register_curve("hilbert", HilbertCurve, side_bases=(2,))
register_curve("diagonal", DiagonalCurve, capabilities=CurveCapabilities())
register_curve("spiral", SpiralCurve, dims=(2,))
register_curve("peano", PeanoCurve, dims=(2,), side_bases=(3,))
register_curve("moore", MooreCurve, dims=(2,), side_bases=(2,), min_side=2)
register_curve("random", RandomCurve, capabilities=CurveCapabilities())
register_curve("reversed", _reversed_factory, hidden=True)
register_curve("reflected", _reflected_factory, hidden=True)
register_curve("axisperm", _axisperm_factory, hidden=True)
