"""Name → curve factory registry used by the CLI, benches and examples.

A factory takes a :class:`Universe` and keyword arguments and returns a
curve; factories raise ``ValueError`` for unsupported universes (wrong
side base or dimension), which :func:`curves_for_universe` uses to select
the applicable zoo for a given grid.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.curves.base import SpaceFillingCurve
from repro.curves.diagonal import DiagonalCurve
from repro.curves.gray import GrayCurve
from repro.curves.hilbert import HilbertCurve
from repro.curves.moore import MooreCurve
from repro.curves.peano import PeanoCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.simple import SimpleCurve
from repro.curves.snake import SnakeCurve
from repro.curves.spiral import SpiralCurve
from repro.curves.zcurve import ZCurve
from repro.grid.universe import Universe

__all__ = [
    "register_curve",
    "make_curve",
    "available_curves",
    "curves_for_universe",
]

CurveFactory = Callable[..., SpaceFillingCurve]

_REGISTRY: dict[str, CurveFactory] = {}


def register_curve(name: str, factory: CurveFactory) -> None:
    """Register a curve factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_curves() -> list[str]:
    """Sorted names of all registered curves."""
    return sorted(_REGISTRY)


def make_curve(name: str, universe: Universe, **kwargs) -> SpaceFillingCurve:
    """Instantiate the named curve on ``universe``.

    Raises
    ------
    KeyError
        For unknown names (message lists the registry).
    ValueError
        If the curve does not support the universe.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown curve {name!r}; available: {available_curves()}"
        ) from None
    return factory(universe, **kwargs)


def curves_for_universe(
    universe: Universe, names: Iterable[str] | None = None
) -> dict[str, SpaceFillingCurve]:
    """All registered curves instantiable on ``universe``, by name."""
    selected = list(names) if names is not None else available_curves()
    out: dict[str, SpaceFillingCurve] = {}
    for name in selected:
        try:
            out[name] = make_curve(name, universe)
        except ValueError:
            continue
    return out


register_curve("z", ZCurve)
register_curve("simple", SimpleCurve)
register_curve("snake", SnakeCurve)
register_curve("gray", GrayCurve)
register_curve("hilbert", HilbertCurve)
register_curve("diagonal", DiagonalCurve)
register_curve("spiral", SpiralCurve)
register_curve("peano", PeanoCurve)
register_curve("moore", MooreCurve)
register_curve("random", RandomCurve)
