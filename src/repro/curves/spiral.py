"""2-D inward spiral ("onion") curve.

Visits the outer ring of the grid counter-clockwise starting at the
origin corner, then recurses inward.  Continuous for every side (each
ring ends adjacent to the next ring's start); a classical ordering with
locality characteristics very different from recursive curves.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import PermutationCurve
from repro.grid.universe import Universe

__all__ = ["SpiralCurve", "spiral_order"]


def spiral_order(side: int) -> np.ndarray:
    """Visit order of the inward spiral on a ``side × side`` grid."""
    if side < 1:
        raise ValueError(f"side must be >= 1, got {side}")
    cells: list[tuple[int, int]] = []
    for ring in range((side + 1) // 2):
        hi = side - 1 - ring
        if ring == hi:
            cells.append((ring, ring))
            continue
        # Bottom edge: left -> right.
        for x in range(ring, hi + 1):
            cells.append((x, ring))
        # Right edge: bottom -> top.
        for y in range(ring + 1, hi + 1):
            cells.append((hi, y))
        # Top edge: right -> left.
        for x in range(hi - 1, ring - 1, -1):
            cells.append((x, hi))
        # Left edge: top -> bottom, stopping above the ring start so the
        # walk ends adjacent to the next ring's start (ring+1, ring+1).
        for y in range(hi - 1, ring, -1):
            cells.append((ring, y))
    return np.asarray(cells, dtype=np.int64)


class SpiralCurve(PermutationCurve):
    """Inward spiral; requires ``d == 2``, any side."""

    name = "spiral"
    _deterministic = True  # mapping pinned by type + universe

    def __init__(self, universe: Universe) -> None:
        if universe.d != 2:
            raise ValueError("SpiralCurve is implemented for d == 2 only")
        super().__init__(
            universe, order=spiral_order(universe.side), name=self.name
        )
