"""Curve transforms: axis permutations, reflections, index reversal.

Section IV-B remarks that "different Z curves are possible by taking the
dimensions in a different order during interleaving, but these are all
equivalent … for the metrics that we consider."  These wrappers make that
remark testable: each produces a new SFC from an existing one, and the
invariance of every stretch metric under them is asserted in the tests
and the E12 bench.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.grid.universe import Universe

__all__ = ["AxisPermutedCurve", "ReflectedCurve", "ReversedCurve"]


class AxisPermutedCurve(SpaceFillingCurve):
    """Relabel grid dimensions before applying the inner curve.

    ``π'(x) = π(x ∘ perm)``: coordinate axis ``i`` of the new curve feeds
    axis ``perm[i]`` of the inner curve.  Because the grid is a cube and
    the neighbor structure is axis-symmetric, all stretch metrics are
    invariant.
    """

    def __init__(
        self, inner: SpaceFillingCurve, perm: Sequence[int]
    ) -> None:
        super().__init__(inner.universe)
        perm_arr = np.asarray(perm, dtype=np.int64)
        if sorted(perm_arr.tolist()) != list(range(inner.universe.d)):
            raise ValueError(
                f"perm must be a permutation of 0..{inner.universe.d - 1}"
            )
        self.inner = inner
        self.perm = perm_arr
        self.name = f"{inner.name}-perm{''.join(map(str, perm_arr.tolist()))}"

    def _cache_token(self) -> object:
        return ("perm", tuple(int(v) for v in self.perm), self.inner.cache_key())

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        return self.inner.index(coords[..., self.perm])

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        inner_coords = self.inner.coords(index)
        out = np.empty_like(inner_coords)
        out[..., self.perm] = inner_coords
        return out

    def keys_of(self, points, backend: str = "auto") -> np.ndarray:
        arr = self.universe.validate_coords(points)
        return self.inner.keys_of(arr[..., self.perm], backend=backend)

    def coords_of(self, keys, backend: str = "auto") -> np.ndarray:
        inner_coords = self.inner.coords_of(keys, backend=backend)
        out = np.empty_like(inner_coords)
        out[..., self.perm] = inner_coords
        return out


class ReflectedCurve(SpaceFillingCurve):
    """Reflect selected axes (``x_i → side − 1 − x_i``) before indexing.

    Reflections are grid automorphisms, so stretch metrics are invariant.
    """

    def __init__(
        self, inner: SpaceFillingCurve, axes: Sequence[int]
    ) -> None:
        super().__init__(inner.universe)
        axes_list = sorted(set(int(a) for a in axes))
        if axes_list and not (
            0 <= axes_list[0] and axes_list[-1] < inner.universe.d
        ):
            raise ValueError(f"axes must lie in [0, {inner.universe.d})")
        self.inner = inner
        self.axes = axes_list
        self.name = f"{inner.name}-reflect{''.join(map(str, axes_list))}"

    def _cache_token(self) -> object:
        return ("reflect", tuple(self.axes), self.inner.cache_key())

    def _reflect(self, coords: np.ndarray) -> np.ndarray:
        out = coords.copy()
        for axis in self.axes:
            out[..., axis] = self.universe.side - 1 - out[..., axis]
        return out

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        return self.inner.index(self._reflect(coords))

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        return self._reflect(self.inner.coords(index))

    def keys_of(self, points, backend: str = "auto") -> np.ndarray:
        arr = self.universe.validate_coords(points)
        return self.inner.keys_of(self._reflect(arr), backend=backend)

    def coords_of(self, keys, backend: str = "auto") -> np.ndarray:
        return self._reflect(self.inner.coords_of(keys, backend=backend))


class ReversedCurve(SpaceFillingCurve):
    """Traverse the inner curve backwards: ``π'(x) = n − 1 − π(x)``.

    ``|π'(α) − π'(β)| = |π(α) − π(β)|`` identically, so every metric is
    exactly preserved — the strongest invariance case.
    """

    def __init__(self, inner: SpaceFillingCurve) -> None:
        super().__init__(inner.universe)
        self.inner = inner
        self.name = f"{inner.name}-reversed"

    def _cache_token(self) -> object:
        return ("reversed", self.inner.cache_key())

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        return self.universe.n - 1 - self.inner.index(coords)

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        return self.inner.coords(self.universe.n - 1 - index)

    def keys_of(self, points, backend: str = "auto") -> np.ndarray:
        return self.universe.n - 1 - self.inner.keys_of(
            points, backend=backend
        )

    def coords_of(self, keys, backend: str = "auto") -> np.ndarray:
        arr = self.universe.validate_ranks(keys)
        return self.inner.coords_of(
            self.universe.n - 1 - arr, backend=backend
        )
