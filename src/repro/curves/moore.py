"""The 2-D Moore curve — a *closed* Hilbert loop.

Four order-(k−1) Hilbert curves arranged around the square: the two
left quadrants rotated 90° counter-clockwise (flowing upward), the two
right quadrants rotated 90° clockwise (flowing downward).  The result
is a Hamiltonian *cycle*: the last cell is grid-adjacent to the first,
which matters for ring-style decompositions (no worst seam).

With ``H`` the order-(k−1) Hilbert visit order on side ``s = 2^{k−1}``
(start ``(0,0)``, end ``(s−1,0)``):

    ``M_k = [ CCW(H),  CCW(H)+(0,s),  CW(H)+(s,s),  CW(H)+(s,0) ]``

where ``CCW(x,y) = (s−1−y, x)`` and ``CW(x,y) = (y, s−1−x)``.
Continuity at the three interior joints and closedness of the loop are
verified by tests.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import PermutationCurve
from repro.curves.hilbert2d import hilbert2d_order
from repro.grid.universe import Universe

__all__ = ["MooreCurve", "moore_order"]


def moore_order(k: int) -> np.ndarray:
    """Visit order of the order-k Moore curve, shape ``(4^k, 2)``."""
    if k < 1:
        raise ValueError(f"Moore curve needs k >= 1, got {k}")
    sub = hilbert2d_order(k - 1)
    s = 1 << (k - 1)
    ccw = np.stack([s - 1 - sub[:, 1], sub[:, 0]], axis=1)
    cw = np.stack([sub[:, 1], s - 1 - sub[:, 0]], axis=1)
    quadrants = [
        ccw,
        ccw + np.array([0, s]),
        cw + np.array([s, s]),
        cw + np.array([s, 0]),
    ]
    return np.concatenate(quadrants)


class MooreCurve(PermutationCurve):
    """Closed Hilbert loop; requires ``d == 2`` and ``side = 2^k, k>=1``."""

    name = "moore"
    _deterministic = True  # mapping pinned by type + universe

    def __init__(self, universe: Universe) -> None:
        if universe.d != 2:
            raise ValueError("MooreCurve is implemented for d == 2 only")
        k = universe.k
        super().__init__(universe, order=moore_order(k), name=self.name)

    def is_closed(self) -> bool:
        """True iff the last visited cell is grid-adjacent to the first."""
        path = self.order()
        return int(np.abs(path[-1] - path[0]).sum()) == 1
