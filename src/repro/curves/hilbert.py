"""The d-dimensional Hilbert curve, via Skilling's transpose algorithm.

Skilling (2004), "Programming the Hilbert curve", AIP Conf. Proc. 707.
The algorithm converts between grid coordinates and the "transpose" form
of the Hilbert integer with O(d·k) bit operations, fully vectorizable.
The transpose form is turned into a single integer with the same bit
interleaving as the Z curve (axis 0 most significant within each group).

The Hilbert curve is continuous (consecutive keys are grid nearest
neighbors — verified by test) and is the subject of the paper's first
open question: its average NN-stretch is conjectured near-optimal; our A1
ablation measures it.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.curves.zcurve import deinterleave_bits, interleave_bits
from repro.grid.universe import Universe

__all__ = ["HilbertCurve", "axes_to_transpose", "transpose_to_axes"]


def axes_to_transpose(coords: np.ndarray, k: int) -> np.ndarray:
    """Convert grid coordinates ``(..., d)`` to Hilbert transpose form.

    Vectorized port of Skilling's ``AxestoTranspose``: the scalar
    branches become masked XOR updates (a masked lane receives an XOR
    with 0, i.e. a no-op).
    """
    X = np.asarray(coords, dtype=np.int64).copy()
    d = X.shape[-1]
    if k == 0:
        return X
    M = np.int64(1) << (k - 1)
    # Inverse undo excess work.
    Q = M
    while Q > 1:
        P = Q - 1
        for i in range(d):
            mask = (X[..., i] & Q) != 0
            X[..., 0] ^= np.where(mask, P, 0)
            t = np.where(mask, 0, (X[..., 0] ^ X[..., i]) & P)
            X[..., 0] ^= t
            X[..., i] ^= t
        Q >>= 1
    # Gray encode.
    for i in range(1, d):
        X[..., i] ^= X[..., i - 1]
    t = np.zeros(X.shape[:-1], dtype=np.int64)
    Q = M
    while Q > 1:
        t ^= np.where((X[..., d - 1] & Q) != 0, Q - 1, 0)
        Q >>= 1
    X ^= t[..., None]
    return X


def transpose_to_axes(transpose: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`axes_to_transpose` (Skilling's ``TransposetoAxes``)."""
    X = np.asarray(transpose, dtype=np.int64).copy()
    d = X.shape[-1]
    if k == 0:
        return X
    N = np.int64(2) << (k - 1)
    # Gray decode by H ^ (H/2).
    t = X[..., d - 1] >> 1
    for i in range(d - 1, 0, -1):
        X[..., i] ^= X[..., i - 1]
    X[..., 0] ^= t
    # Undo excess work.
    Q = np.int64(2)
    while Q != N:
        P = Q - 1
        for i in range(d - 1, -1, -1):
            mask = (X[..., i] & Q) != 0
            X[..., 0] ^= np.where(mask, P, 0)
            t2 = np.where(mask, 0, (X[..., 0] ^ X[..., i]) & P)
            X[..., 0] ^= t2
            X[..., i] ^= t2
        Q <<= 1
    return X


class HilbertCurve(SpaceFillingCurve):
    """d-dimensional Hilbert curve; requires ``side = 2^k``."""

    name = "hilbert"

    def __init__(self, universe: Universe) -> None:
        super().__init__(universe)
        self._k = universe.k

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        return interleave_bits(axes_to_transpose(coords, self._k), self._k)

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        transpose = deinterleave_bits(index, self.universe.d, self._k)
        return transpose_to_axes(transpose, self._k)
