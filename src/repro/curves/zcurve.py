"""The d-dimensional Z curve (Morton order) of Section IV-B.

The key of cell ``x = (x_1, …, x_d)`` is the binary number

    ``x^1_1 x^1_2 ⋯ x^1_d  x^2_1 ⋯ x^2_d  ⋯  x^k_1 ⋯ x^k_d``

where ``x^j_i`` is the j-th **most** significant bit of coordinate
``x_i`` — coordinate bits are interleaved with dimension 1 taking the most
significant slot inside each group.  The paper's worked example
``Z(101, 010, 011) = 100011101`` (d = 3, k = 3) pins the layout down and
is verified in the tests.

Bit position arithmetic: coordinate bit ``b`` (LSB = 0) of dimension
``i+1`` (array axis ``i``) lands at key bit ``b·d + (d − 1 − i)``.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.grid.universe import Universe

__all__ = ["ZCurve", "interleave_bits", "deinterleave_bits"]


def interleave_bits(coords: np.ndarray, k: int) -> np.ndarray:
    """Interleave k-bit coordinates ``(..., d)`` into Morton keys.

    Dimension at axis 0 occupies the most significant bit within each
    group of d bits (the paper's layout).
    """
    arr = np.asarray(coords, dtype=np.int64)
    d = arr.shape[-1]
    if k * d > 62:
        raise ValueError(f"key width k*d = {k * d} exceeds int64 range")
    keys = np.zeros(arr.shape[:-1], dtype=np.int64)
    for b in range(k):
        for i in range(d):
            bit = (arr[..., i] >> b) & 1
            keys |= bit << (b * d + (d - 1 - i))
    return keys


def deinterleave_bits(keys: np.ndarray, d: int, k: int) -> np.ndarray:
    """Inverse of :func:`interleave_bits`; returns coords ``(..., d)``."""
    arr = np.asarray(keys, dtype=np.int64)
    coords = np.zeros(arr.shape + (d,), dtype=np.int64)
    for b in range(k):
        for i in range(d):
            bit = (arr >> (b * d + (d - 1 - i))) & 1
            coords[..., i] |= bit << b
    return coords


class ZCurve(SpaceFillingCurve):
    """Morton / Z-order curve; requires ``side = 2^k``.

    Theorem 2: ``D^avg(Z) ~ n^{1−1/d}/d`` — within a factor 1.5 of the
    Theorem 1 lower bound for every dimension d.
    """

    name = "z"

    def __init__(self, universe: Universe) -> None:
        super().__init__(universe)
        self._k = universe.k  # raises for non power-of-two sides

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        return interleave_bits(coords, self._k)

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        return deinterleave_bits(index, self.universe.d, self._k)
