"""Space filling curves.

The paper defines an SFC as *any* bijection ``π : U → {0, …, n−1}``
(Section III) — a strictly larger class than the non-self-intersecting
curves usually studied, which makes the lower bounds stronger.  This
package implements the paper's two analyzed curves (Z and simple) plus a
zoo of classical curves used as baselines and for the open questions in
Section VI (notably the Hilbert curve).
"""

from repro.curves.base import (
    PermutationCurve,
    SpaceFillingCurve,
    check_bijection,
)
from repro.curves.zcurve import ZCurve, interleave_bits, deinterleave_bits
from repro.curves.simple import SimpleCurve
from repro.curves.snake import SnakeCurve
from repro.curves.gray import GrayCurve, gray_encode, gray_decode
from repro.curves.hilbert import HilbertCurve
from repro.curves.hilbert2d import RecursiveHilbert2D
from repro.curves.moore import MooreCurve
from repro.curves.peano import PeanoCurve
from repro.curves.diagonal import DiagonalCurve
from repro.curves.spiral import SpiralCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.explicit import figure1_pi1, figure1_pi2
from repro.curves.transforms import (
    AxisPermutedCurve,
    ReflectedCurve,
    ReversedCurve,
)
from repro.curves.registry import (
    available_curves,
    curves_for_universe,
    make_curve,
    register_curve,
)

__all__ = [
    "SpaceFillingCurve",
    "PermutationCurve",
    "check_bijection",
    "ZCurve",
    "interleave_bits",
    "deinterleave_bits",
    "SimpleCurve",
    "SnakeCurve",
    "GrayCurve",
    "gray_encode",
    "gray_decode",
    "HilbertCurve",
    "RecursiveHilbert2D",
    "MooreCurve",
    "PeanoCurve",
    "DiagonalCurve",
    "SpiralCurve",
    "RandomCurve",
    "figure1_pi1",
    "figure1_pi2",
    "AxisPermutedCurve",
    "ReflectedCurve",
    "ReversedCurve",
    "available_curves",
    "curves_for_universe",
    "make_curve",
    "register_curve",
]
