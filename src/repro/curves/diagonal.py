"""Diagonal (anti-chain) enumeration curve.

Cells are visited in order of increasing coordinate sum, ties broken
lexicographically (last axis most significant).  A classical ordering for
dense triangular storage; its NN-stretch is poor because within-diagonal
neighbors can be assigned distant keys — a useful contrast curve in the
A1 ablation.  Valid for any ``d`` and side.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import PermutationCurve
from repro.grid.universe import Universe

__all__ = ["DiagonalCurve"]


class DiagonalCurve(PermutationCurve):
    """Anti-diagonal sweep curve."""

    name = "diagonal"
    _deterministic = True  # mapping pinned by type + universe

    def __init__(self, universe: Universe) -> None:
        cells = universe.all_coords()
        sums = cells.sum(axis=1)
        # lexsort: last key is primary -> order by (sum, x_d, ..., x_1).
        sort_keys = tuple(cells[:, i] for i in range(universe.d)) + (sums,)
        visit = np.lexsort(sort_keys)
        super().__init__(universe, order=cells[visit], name=self.name)
