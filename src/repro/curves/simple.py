"""The paper's "simple curve" ``S`` (Section IV-C, Eq. 8, Figure 4).

``S(α) = Σ_{i=1}^{d} x_i · side^{i−1}`` — plain row-major order with the
paper's dimension 1 least significant.  Theorem 3 shows this trivial
curve matches the Z curve's average-average NN-stretch asymptotically,
and Proposition 2 computes its average-maximum NN-stretch exactly
(``n^{1−1/d}``, i.e. worse than average-average by a factor d).
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.grid.coords import coords_to_rank, rank_to_coords
from repro.grid.universe import Universe

__all__ = ["SimpleCurve"]


class SimpleCurve(SpaceFillingCurve):
    """Row-major ("simple") curve ``S``; valid for any side."""

    name = "simple"

    def __init__(self, universe: Universe) -> None:
        super().__init__(universe)

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        return coords_to_rank(coords, self.universe)

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        return rank_to_coords(index, self.universe)

    def axis_step(self, axis: int) -> int:
        """``∆_S`` between any two neighbors along ``axis``: ``side**axis``.

        The key property exploited by Theorem 3 / Proposition 2: the curve
        distance of an axis-i neighbor pair is position independent.
        """
        if not 0 <= axis < self.universe.d:
            raise ValueError(f"axis must be in [0, {self.universe.d})")
        return self.universe.side**axis
