"""Independent recursive construction of the 2-D Hilbert curve.

Cross-validation for :mod:`repro.curves.hilbert` (Skilling's bitwise
algorithm): the classic four-quadrant recursion

    ``H_k = [ Tr(H_{k−1}),  H_{k−1}+(0,s),  H_{k−1}+(s,s),
              AntiTr(H_{k−1})+(s,0) ]``

with ``Tr`` the main-diagonal reflection (x↔y) and ``AntiTr`` the
anti-diagonal reflection ``(x,y) → (s−1−y, s−1−x)``.  The two
implementations may differ by a grid symmetry, under which every
stretch metric is invariant — the tests assert metric equality and
search the dihedral group for an exact match.
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import PermutationCurve
from repro.grid.universe import Universe

__all__ = ["RecursiveHilbert2D", "hilbert2d_order"]


def hilbert2d_order(k: int) -> np.ndarray:
    """Visit order of the order-k 2-D Hilbert curve, shape ``(4^k, 2)``."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    order = np.zeros((1, 2), dtype=np.int64)
    side = 1
    for _ in range(k):
        # Quadrant A (bottom-left): reflect across the main diagonal.
        a = order[:, ::-1].copy()
        # Quadrant B (top-left): translate up.
        b = order + np.array([0, side])
        # Quadrant C (top-right): translate up-right.
        c = order + np.array([side, side])
        # Quadrant D (bottom-right): reflect across the anti-diagonal,
        # then translate right.
        d = np.stack(
            [side - 1 - order[:, 1] + side, side - 1 - order[:, 0]],
            axis=1,
        )
        order = np.concatenate([a, b, c, d])
        side *= 2
    return order


class RecursiveHilbert2D(PermutationCurve):
    """2-D Hilbert curve built by quadrant recursion; side must be 2^k."""

    name = "hilbert2d-recursive"
    _deterministic = True  # mapping pinned by type + universe

    def __init__(self, universe: Universe) -> None:
        if universe.d != 2:
            raise ValueError("RecursiveHilbert2D requires d == 2")
        k = universe.k  # raises for non powers of two
        super().__init__(
            universe, order=hilbert2d_order(k), name=self.name
        )
