"""Boustrophedon (snake / serpentine) curve.

The continuous cousin of the simple curve: identical digit weights, but
each digit's direction alternates with the parity of the more significant
digits, so consecutive keys are always grid neighbors.  A natural baseline
for the ablation study — it fixes the simple curve's discontinuity while
keeping its stretch behaviour.

For any side ``s``: the emitted digit of axis ``i`` is ``x_i`` when the
sum of the *higher original coordinates* ``Σ_{j>i} x_j`` is even, and the
reflection ``s − 1 − x_i`` when it is odd — each slab of the grid is
traversed in the direction opposite to its neighboring slabs, which makes
consecutive keys grid-adjacent in every dimension (verified by test).
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.grid.universe import Universe

__all__ = ["SnakeCurve"]


class SnakeCurve(SpaceFillingCurve):
    """Serpentine scan; continuous for every side and dimension."""

    name = "snake"

    def __init__(self, universe: Universe) -> None:
        super().__init__(universe)

    def _index_impl(self, coords: np.ndarray) -> np.ndarray:
        side = self.universe.side
        d = self.universe.d
        keys = np.zeros(coords.shape[:-1], dtype=np.int64)
        # Process from the most significant axis down; the direction of
        # axis i flips with the parity of the sum of the original higher
        # coordinates x_{i+1} + ... + x_d.
        parity = np.zeros(coords.shape[:-1], dtype=np.int64)
        weight = side ** (d - 1)
        for axis in range(d - 1, -1, -1):
            digit = coords[..., axis]
            eff = np.where(parity % 2 == 0, digit, side - 1 - digit)
            keys += eff * weight
            parity += digit
            weight //= side
        return keys

    def _coords_impl(self, index: np.ndarray) -> np.ndarray:
        side = self.universe.side
        d = self.universe.d
        idx = np.asarray(index, dtype=np.int64)
        out = np.empty(idx.shape + (d,), dtype=np.int64)
        parity = np.zeros(idx.shape, dtype=np.int64)
        weight = side ** (d - 1)
        rest = idx
        for axis in range(d - 1, -1, -1):
            eff = rest // weight
            rest = rest % weight
            digit = np.where(parity % 2 == 0, eff, side - 1 - eff)
            out[..., axis] = digit
            parity += digit
            weight //= side
        return out
