"""The 2-D Peano curve on grids of side ``3^k``.

Included to demonstrate the framework is not tied to the paper's
``side = 2^k`` assumption: every metric is defined for any bijection.
Constructed by the classical recursion — the grid splits into 3×3 blocks
visited in a serpentine of columns, with the sub-curve in block
``(p, q)`` reflected in x iff ``q`` is odd and in y iff ``p`` is odd,
which makes consecutive blocks meet at adjacent cells (continuity is
verified by test).
"""

from __future__ import annotations

import numpy as np

from repro.curves.base import PermutationCurve
from repro.grid.universe import Universe

__all__ = ["PeanoCurve", "peano_order"]


def peano_order(k: int) -> np.ndarray:
    """Visit order of the 2-D Peano curve on the ``3^k × 3^k`` grid.

    Returns an ``(9^k, 2)`` array; row ``j`` is the j-th visited cell.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    order = np.zeros((1, 2), dtype=np.int64)
    side = 1
    for _ in range(k):
        blocks = []
        for p in range(3):
            q_range = range(3) if p % 2 == 0 else range(2, -1, -1)
            for q in q_range:
                sub = order.copy()
                if q % 2 == 1:
                    sub[:, 0] = side - 1 - sub[:, 0]
                if p % 2 == 1:
                    sub[:, 1] = side - 1 - sub[:, 1]
                sub[:, 0] += p * side
                sub[:, 1] += q * side
                blocks.append(sub)
        order = np.concatenate(blocks)
        side *= 3
    return order


class PeanoCurve(PermutationCurve):
    """Peano curve; requires ``d == 2`` and ``side = 3^k``."""

    name = "peano"
    _deterministic = True  # mapping pinned by type + universe

    def __init__(self, universe: Universe) -> None:
        if universe.d != 2:
            raise ValueError("PeanoCurve is implemented for d == 2 only")
        side = universe.side
        k = 0
        while 3**k < side:
            k += 1
        if 3**k != side:
            raise ValueError(f"side={side} is not a power of three")
        super().__init__(universe, order=peano_order(k), name=self.name)
