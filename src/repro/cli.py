"""Command-line interface: ``repro-sfc`` / ``python -m repro``.

Subcommands
-----------
* ``survey``    — stretch metrics for every applicable curve on a grid.
* ``sweep``     — declarative curve × universe × metric sweep
  (``--dims 2,3 --sides 8,16 --curves z,random:seed=3
  --metrics davg,dilation:window=16,partition:parts=8``).
* ``metrics``   — list the registered sweep metrics (name, params,
  description), i.e. everything ``sweep --metrics`` accepts.
* ``curves``    — list the registered curves with their declared
  capabilities (supported dims / side bases).
* ``bounds``    — the paper's lower bounds and closed forms for a grid.
* ``render``    — ASCII render of a 2-D curve (Figures 3/4 style).
* ``partition`` — domain-decomposition quality across curves.
* ``certificate`` — execute Theorem 1's proof chain on one curve.
* ``profile``   — stretch conditioned on grid distance, per curve.
* ``optimal``   — adversarial search for a better curve (bound probe).
* ``export``    — save a curve's key grid to a portable ``.npz``.
* ``doctor``    — one-screen host report: native-backend availability
  (compiler, cached ``.so``, build log), sanitizer build mode, usable
  cores/threads, shared-memory status, and the static-analysis
  surface.
* ``check``     — run the invariant lint rules (R001–R004) over the
  source tree; exits 1 on findings (``--format=json`` for CI).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.asymptotics import davg_z_limit
from repro.core.decomposition import theorem1_certificate
from repro.core.lower_bounds import (
    allpairs_euclidean_lower_bound,
    allpairs_manhattan_lower_bound,
    davg_lower_bound,
)
from repro.curves.registry import available_curves, make_curve
from repro.engine.store import store_dir_from_env
from repro.engine.sweep import METRICS, DEFAULT_METRICS, Sweep
from repro.grid.universe import Universe
from repro.viz.ascii_art import render_key_grid, render_path
from repro.viz.tables import format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sfc",
        description="SFC proximity-preservation analysis (IPDPS 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("-d", type=int, default=2, help="dimensions (default 2)")
        p.add_argument(
            "--side", type=int, default=8, help="cells per axis (default 8)"
        )

    p_survey = sub.add_parser("survey", help="stretch metrics for all curves")
    add_grid_args(p_survey)
    p_survey.add_argument(
        "--allpairs",
        action="store_true",
        help="include all-pairs stretch columns",
    )

    def csv_ints(text: str) -> list[int]:
        return [int(part) for part in text.split(",") if part.strip()]

    def csv_specs(text: str) -> list[str]:
        """Split a spec list on commas, keeping multi-parameter specs whole.

        Spec parameters are comma-separated too
        (``reflected:inner=hilbert,axes=0``), so a chunk starting with
        ``key=`` cannot open a new spec — names never contain ``=``, and
        in a fresh spec any ``=`` follows the ``name:`` prefix — and is
        rejoined to the spec before it.  The value may itself contain a
        colon (``inner=random:seed=3``), so the test is whether ``=``
        appears before the first ``:``, not whether ``:`` is absent.
        """

        def continues_previous(part: str) -> bool:
            eq, colon = part.find("="), part.find(":")
            return eq != -1 and (colon == -1 or eq < colon)

        specs: list[str] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if specs and continues_previous(part):
                specs[-1] += f",{part}"
            else:
                specs.append(part)
        return specs

    p_sweep = sub.add_parser(
        "sweep",
        help="declarative curve x universe x metric sweep",
        description=(
            "Declarative curve x universe x metric sweep over the "
            "metric engine.  Execution modes are auto-selected: the "
            "engine switches to chunked (block-streaming) execution "
            "for any universe whose dense key grid would exceed the "
            "cache budget, and process sweeps (--processes N) publish "
            "one shared-memory grid set per curve spec so workers "
            "attach zero-copy views instead of recomputing "
            "(--no-shared opts out).  --threads N additionally "
            "parallelizes each cell's block reductions over worker "
            "threads, bit-for-bit identical to serial."
        ),
    )
    p_sweep.add_argument(
        "--dims", type=csv_ints, default=[2], help="dimensions, e.g. 2,3"
    )
    p_sweep.add_argument(
        "--sides", type=csv_ints, default=[8], help="sides, e.g. 8,16"
    )
    p_sweep.add_argument(
        "--curves",
        type=csv_specs,
        default=None,
        help="curve specs, e.g. z,hilbert,random:seed=3 (default: all)",
    )
    p_sweep.add_argument(
        "--metrics",
        type=csv_specs,
        default=list(DEFAULT_METRICS),
        help=f"metric names among {sorted(METRICS)}",
    )
    p_sweep.add_argument(
        "--allpairs", action="store_true", help="include all-pairs columns"
    )
    p_sweep.add_argument(
        "--processes",
        type=int,
        default=None,
        help="fan cells out over N worker processes (grids are shared "
        "through shared memory unless --no-shared is given)",
    )

    def threads_spec(text: str):
        return text if text == "auto" else int(text)

    p_sweep.add_argument(
        "--threads",
        type=threads_spec,
        default=None,
        metavar="N|auto",
        help="worker threads per cell for block-parallel metric "
        "reductions (results bit-for-bit identical to serial); "
        "'auto' sizes threads so processes x threads <= cores",
    )
    p_sweep.add_argument(
        "--backend",
        choices=("numpy", "native", "auto"),
        default="auto",
        help="compute backend for the hot block kernels: 'native' uses "
        "the compiled C kernels (built on demand, cached per machine), "
        "'numpy' forces the pure-NumPy reference, 'auto' (default) "
        "picks native when available; results are bit-for-bit "
        "identical either way",
    )
    p_sweep.add_argument(
        "--shared",
        dest="shared",
        action="store_true",
        default=None,
        help="force the shared-memory grid store for process sweeps "
        "(default: used automatically whenever --processes > 1)",
    )
    p_sweep.add_argument(
        "--no-shared",
        dest="shared",
        action="store_false",
        help="disable the shared-memory grid store; every worker "
        "rebuilds its key grids privately",
    )
    p_sweep.add_argument(
        "--strict",
        action="store_true",
        help="raise on curve construction errors instead of skipping",
    )
    p_sweep.add_argument(
        "--stats",
        action="store_true",
        help="print aggregate engine cache statistics after the table",
    )
    p_sweep.add_argument(
        "--no-pool",
        action="store_true",
        help="disable the shared ContextPool (per-cell contexts)",
    )
    p_sweep.add_argument(
        "--chunk-cells",
        type=int,
        default=None,
        metavar="N",
        help="run the engine in chunked mode with N cells per block "
        "(0 forces dense; default: auto-select chunked when the dense "
        "key grid would exceed the cache budget; chunked cells never "
        "use the shared grid store)",
    )
    p_sweep.add_argument(
        "--store",
        default=store_dir_from_env(),
        metavar="DIR",
        help="persistent grid-store directory: computed key grids are "
        "written through as checksummed .npy artifacts and later runs "
        "memory-map them instead of recomputing (bit-for-bit "
        "identical; counted as 'mmap' under --stats); chunked cells "
        "spill table-backed grids there to stream beyond the cache "
        "budget (default: $REPRO_STORE when set)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="persistent sweep service over HTTP/JSON",
        description=(
            "Long-lived sweep service: POST /sweep accepts the repro "
            "sweep grammar and returns JSON records bit-for-bit "
            "identical to the CLI; the server keeps one ContextPool "
            "and shared-memory grid store alive across requests, "
            "dedups concurrent identical cells and micro-batches "
            "bursts.  GET /stats exposes engine cache counters, "
            "GET /healthz liveness.  See docs/serving.md."
        ),
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8842,
        help="TCP port (0 binds an ephemeral port; the bound address "
        "is printed on startup)",
    )
    p_serve.add_argument(
        "--hot-set",
        default="",
        metavar="SPEC@DxS[;...]",
        help="curve/universe pairs warmed at startup, e.g. "
        "'hilbert@2x64;random:seed=3@2x64' (';'-separated because "
        "curve specs may contain commas)",
    )
    p_serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="bound on concurrently in-flight canonical cells; "
        "requests over the bound get 429 (default 64)",
    )
    p_serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="micro-batch collection window in milliseconds "
        "(default 5)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="S",
        help="default per-request timeout in seconds (requests may "
        "override with timeout_s)",
    )
    p_serve.add_argument(
        "--max-request-mib",
        type=float,
        default=1024.0,
        metavar="MIB",
        help="reject requests whose cells' estimated engine state "
        "exceeds this many MiB (0 disables; default 1024)",
    )
    p_serve.add_argument(
        "--threads",
        type=threads_spec,
        default=None,
        metavar="N|auto",
        help="default worker threads per cell for requests that do "
        "not choose their own",
    )
    p_serve.add_argument(
        "--backend",
        choices=("numpy", "native", "auto"),
        default="auto",
        help="default compute backend for requests that do not choose "
        "their own (see 'sweep --backend')",
    )
    p_serve.add_argument(
        "--store",
        default=store_dir_from_env(),
        metavar="DIR",
        help="persistent grid-store directory: the warm start maps "
        "previously computed hot-set grids from disk and fresh "
        "computes are written through, so a restarted server comes "
        "back warm (default: $REPRO_STORE when set)",
    )

    p_dyn = sub.add_parser(
        "dynamic",
        help="incremental metric engine under a live move workload",
        description=(
            "Bulk-load a random point population onto a curve, then "
            "drive batches of insert/move/delete ops through the "
            "incremental DynamicUniverse engine (O(k*d) per batch of "
            "k ops) and report the maintained population metrics.  "
            "--verify asserts bit-for-bit parity of the incremental "
            "aggregates against a full recompute after every batch; "
            "--reselect-threshold turns on online curve re-selection.  "
            "See docs/dynamic.md."
        ),
    )
    p_dyn.add_argument("-d", type=int, default=2, help="dimensions")
    p_dyn.add_argument("--side", type=int, default=64, help="cells per side")
    p_dyn.add_argument(
        "--curve", default="hilbert", help="starting curve spec"
    )
    p_dyn.add_argument(
        "--points",
        type=int,
        default=2000,
        metavar="N",
        help="points bulk-loaded at start (default 2000)",
    )
    p_dyn.add_argument(
        "--steps",
        type=int,
        default=10,
        metavar="T",
        help="move batches applied (default 10)",
    )
    p_dyn.add_argument(
        "--batch",
        type=int,
        default=64,
        metavar="K",
        help="ops per batch (default 64)",
    )
    p_dyn.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    p_dyn.add_argument(
        "--parts",
        type=int,
        default=8,
        metavar="P",
        help="partition count for the per-part load counters",
    )
    p_dyn.add_argument(
        "--window",
        type=int,
        default=1,
        metavar="W",
        help="dilation window over occupied cells in key order",
    )
    p_dyn.add_argument(
        "--verify",
        action="store_true",
        help="assert incremental == recompute parity after every batch",
    )
    p_dyn.add_argument(
        "--reselect-threshold",
        type=float,
        default=None,
        metavar="R",
        help="relative D^avg drift that triggers online curve "
        "re-selection (off by default)",
    )
    p_dyn.add_argument(
        "--candidates",
        type=csv_specs,
        default=None,
        metavar="SPECS",
        help="comma-separated candidate curve specs for re-selection",
    )
    p_dyn.add_argument(
        "--backend",
        choices=("numpy", "native", "auto"),
        default="auto",
        help="compute backend for key encoding and recompute passes",
    )

    p_doctor = sub.add_parser(
        "doctor",
        help="host report: native backend, cores/threads, shared memory",
        description=(
            "One-screen report of what the engine can use on this "
            "host: native compiled-kernel backend availability "
            "(compiler, cached .so, build log path), sanitizer build "
            "mode (REPRO_NATIVE_SANITIZE, -fsanitize support, "
            "clean-vs-sanitized cache dirs), usable CPU cores and the "
            "resolved thread default, shared-memory segment support, "
            "the persistent artifact store, and the static-analysis "
            "rule surface behind 'repro check'."
        ),
    )
    p_doctor.add_argument(
        "--store",
        default=store_dir_from_env(),
        metavar="DIR",
        help="report on this persistent grid-store directory "
        "(entries, bytes, quarantined artifacts; default: "
        "$REPRO_STORE when set)",
    )

    p_check = sub.add_parser(
        "check",
        help="run the invariant lint rules over the source tree",
        description=(
            "Static analysis of the engine's hand-enforced invariants: "
            "R001 float determinism (block reductions stream through "
            "pairwise_sum_stream), R002 lock discipline (guarded "
            "attributes stay behind their lock), R003 read-only "
            "returns (public methods freeze shared arrays), R004 "
            "allocation-free hot kernels.  Exits 1 when findings "
            "remain after '# repro: allow[RULE]' suppressions; see "
            "docs/static-analysis.md."
        ),
    )
    p_check.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed "
        "repro package source)",
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="findings as 'path:line:col: RULE message' lines (text, "
        "default) or a machine-readable report (json)",
    )
    p_check.add_argument(
        "--rules",
        type=csv_specs,
        default=None,
        metavar="R001,R003",
        help="run only these rule ids (default: all)",
    )
    p_check.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    p_metrics = sub.add_parser(
        "metrics", help="list registered sweep metrics (name, params, description)"
    )
    p_metrics.add_argument(
        "--markdown",
        action="store_true",
        help="emit the Markdown reference page (docs/reference/metrics.md)",
    )

    p_curves = sub.add_parser(
        "curves", help="list registered curves and their capabilities"
    )
    p_curves.add_argument(
        "--markdown",
        action="store_true",
        help="emit the Markdown reference page (docs/reference/curves.md)",
    )

    p_bounds = sub.add_parser("bounds", help="paper lower bounds for a grid")
    add_grid_args(p_bounds)

    p_render = sub.add_parser("render", help="ASCII render of a 2-D curve")
    add_grid_args(p_render)
    p_render.add_argument(
        "--curve",
        default="z",
        choices=available_curves(),
        help="curve name (default z)",
    )
    p_render.add_argument(
        "--path", action="store_true", help="render step arrows, not keys"
    )

    p_part = sub.add_parser("partition", help="domain decomposition quality")
    add_grid_args(p_part)
    p_part.add_argument(
        "--parts", type=int, default=8, help="number of processors"
    )

    p_cert = sub.add_parser(
        "certificate", help="Theorem 1 proof chain on one curve"
    )
    add_grid_args(p_cert)
    p_cert.add_argument("--curve", default="z", choices=available_curves())

    p_profile = sub.add_parser(
        "profile", help="stretch profile E[dpi/d | d=r] per curve"
    )
    add_grid_args(p_profile)
    p_profile.add_argument(
        "--curve", default="z", choices=available_curves()
    )

    p_opt = sub.add_parser(
        "optimal", help="hill-climb search for a lower-D^avg bijection"
    )
    add_grid_args(p_opt)
    p_opt.add_argument("--iterations", type=int, default=20_000)
    p_opt.add_argument("--seed", type=int, default=0)

    p_export = sub.add_parser(
        "export", help="save a curve's key grid to .npz"
    )
    add_grid_args(p_export)
    p_export.add_argument("--curve", default="z", choices=available_curves())
    p_export.add_argument("--out", required=True, help="output path")

    p_heat = sub.add_parser(
        "heatmap", help="ASCII heat map of per-cell stretch (2-D)"
    )
    add_grid_args(p_heat)
    p_heat.add_argument("--curve", default="z", choices=available_curves())

    return parser


def _cmd_survey(args: argparse.Namespace) -> int:
    universe = Universe(d=args.d, side=args.side)
    result = Sweep(
        universes=[universe],
        metrics=(),
        include_allpairs=args.allpairs,
    ).run()
    print(f"# {universe}")
    print(format_table([r.as_row() for r in result.reports]))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    metrics = tuple(args.metrics)
    if args.allpairs:
        metrics += ("allpairs_manhattan", "allpairs_euclidean")
    shared = "auto" if args.shared is None else args.shared
    # A --no-shared process sweep cannot pool; the CLI user made no
    # pooling choice to warn about, so opt out explicitly instead of
    # surfacing the API-level RuntimeWarning (whose remedy names a
    # Python kwarg).  With the shared store active, worker contexts do
    # resolve through shared state, so pooling stays on.
    pooled = not args.no_pool
    if (
        args.processes is not None
        and args.processes > 1
        and shared is False
    ):
        pooled = False
    result = Sweep(
        dims=args.dims,
        sides=args.sides,
        curves=args.curves,
        metrics=metrics,
        reports=False,
        processes=args.processes,
        strict=args.strict,
        pooled=pooled,
        chunk_cells=args.chunk_cells,
        shared=shared,
        threads=args.threads,
        backend=args.backend,
        store_dir=args.store,
    ).run()
    print(f"# sweep over dims={args.dims} sides={args.sides}")
    print(result.to_table())
    if result.skipped:
        print()
        for cell in result.skipped:
            print(
                f"skipped {cell.spec} on d={cell.d} side={cell.side}: "
                f"{cell.reason}"
            )
    if args.stats:
        print()
        if result.cache_stats is None:
            print("engine cache: unavailable (process-pool sweep)")
        else:
            print(f"engine cache: {result.cache_stats!r}")
            if result.cache_stats.backends:
                served = ", ".join(
                    f"{name}={count}"
                    for name, count in sorted(
                        result.cache_stats.backends.items()
                    )
                )
                print(f"cells by backend: {served}")
    return 0


_GENERATED_BANNER = (
    "<!-- Auto-generated by `python -m repro {command} --markdown`; "
    "do not edit by hand.  CI regenerates this file and fails on "
    "drift. -->"
)


def _markdown_table(headers: list[str], rows: list[list[str]]) -> str:
    """A GitHub-flavored Markdown table (cells pipe-escaped)."""
    def esc(cell: object) -> str:
        return str(cell).replace("|", "\\|")

    lines = [
        "| " + " | ".join(esc(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    lines += [
        "| " + " | ".join(esc(c) for c in row) + " |" for row in rows
    ]
    return "\n".join(lines)


def _cmd_metrics(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(METRICS):
        entry = METRICS[name]
        rows.append(
            {
                "metric": name,
                "params": entry.signature or "-",
                "description": entry.description or "-",
            }
        )
    if args.markdown:
        print("# Sweep metric reference")
        print()
        print(_GENERATED_BANNER.format(command="metrics"))
        print()
        print(
            "Every metric is a function of a `MetricContext` registered "
            "in `repro.engine.sweep.METRICS`; parameterize it in sweep "
            "specs as `name:key=val,...` (e.g. `dilation:window=16`). "
            "Out-of-domain parameter values fail at plan time."
        )
        print()
        print(
            _markdown_table(
                ["metric", "parameters (defaults)", "description"],
                [
                    [f"`{r['metric']}`", f"`{r['params']}`", r["description"]]
                    for r in rows
                ],
            )
        )
        return 0
    print("# registered sweep metrics (use as --metrics name:key=val,...)")
    print(format_table(rows))
    return 0


def _curve_doc(name: str) -> str:
    """First docstring line of the registered factory (class or function)."""
    import inspect

    from repro.curves.registry import _require

    doc = inspect.getdoc(_require(name).factory) or ""
    first = doc.splitlines()[0].strip() if doc else ""
    return first or "-"


def _curve_rows() -> list[dict[str, object]]:
    from repro.curves.registry import curve_capabilities

    rows = []
    for name in available_curves():
        caps = curve_capabilities(name)
        if caps is None:
            dims = side = "unknown"
            min_side = "?"
        else:
            dims = (
                ",".join(str(d) for d in caps.dims)
                if caps.dims is not None
                else "any"
            )
            side = (
                " or ".join(f"{b}^m" for b in caps.side_bases)
                if caps.side_bases is not None
                else "any"
            )
            min_side = caps.min_side
        rows.append(
            {"curve": name, "dims": dims, "side": side, "min_side": min_side}
        )
    return rows


def _cmd_curves(args: argparse.Namespace) -> int:
    import inspect

    from repro.curves.registry import _require, curve_is_hidden

    rows = _curve_rows()
    if args.markdown:
        print("# Curve reference")
        print()
        print(_GENERATED_BANNER.format(command="curves"))
        print()
        print(
            "Curves registered in `repro.curves.registry`; instantiate "
            "with `make_curve(name, universe, **kwargs)` or reference "
            "them in sweep specs as `name:key=val,...` "
            "(e.g. `random:seed=3`)."
        )
        print()
        md_rows = []
        for row in rows:
            name = str(row["curve"])
            factory = _require(name).factory
            init = factory.__init__ if inspect.isclass(factory) else factory
            params = [
                f"{p.name}={p.default!r}"
                for p in inspect.signature(init).parameters.values()
                if p.name not in ("self", "universe")
                and p.kind is not inspect.Parameter.VAR_KEYWORD
                and p.default is not inspect.Parameter.empty
            ]
            md_rows.append(
                [
                    f"`{name}`",
                    row["dims"],
                    row["side"],
                    row["min_side"],
                    f"`{','.join(params)}`" if params else "-",
                    _curve_doc(name),
                ]
            )
        print(
            _markdown_table(
                [
                    "curve",
                    "dims",
                    "side",
                    "min side",
                    "parameters (defaults)",
                    "description",
                ],
                md_rows,
            )
        )
        print()
        print("## Transform wrappers")
        print()
        print(
            "Hidden registrations (not part of `curves=None` sweeps): "
            "each wraps an `inner` curve spec and is metric-invariant "
            "by the paper's Section IV-B argument.  Nested `inner` "
            "specs may carry one parameter of their own "
            "(`reversed:inner=random:seed=3`)."
        )
        print()
        wrapper_rows = []
        for name in available_curves(include_hidden=True):
            if not curve_is_hidden(name):
                continue
            factory = _require(name).factory
            params = [
                f"{p.name}={p.default!r}"
                for p in inspect.signature(factory).parameters.values()
                if p.name != "universe"
                and p.default is not inspect.Parameter.empty
            ]
            wrapper_rows.append(
                [
                    f"`{name}`",
                    f"`{','.join(params)}`" if params else "-",
                    _curve_doc(name),
                ]
            )
        print(
            _markdown_table(
                ["wrapper", "parameters (defaults)", "description"],
                wrapper_rows,
            )
        )
        return 0
    print("# registered curves and declared capabilities")
    print(format_table(rows))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    universe = Universe(d=args.d, side=args.side)
    n, d = universe.n, universe.d
    rows = [
        {
            "quantity": "Theorem 1 lower bound on D^avg (and D^max)",
            "value": davg_lower_bound(n, d),
        },
        {
            "quantity": "Theorem 2/3 asymptote n^(1-1/d)/d",
            "value": davg_z_limit(n, d),
        },
        {
            "quantity": "Prop 3 all-pairs LB (Manhattan)",
            "value": allpairs_manhattan_lower_bound(n, d),
        },
        {
            "quantity": "Prop 3 all-pairs LB (Euclidean)",
            "value": allpairs_euclidean_lower_bound(n, d),
        },
    ]
    print(f"# {universe}")
    print(format_table(rows))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    universe = Universe(d=args.d, side=args.side)
    curve = make_curve(args.curve, universe)
    print(f"# {curve.name} on {universe}")
    print(render_path(curve) if args.path else render_key_grid(curve))
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.apps.partition import partition_quality
    from repro.curves.registry import curves_for_universe
    from repro.engine.pool import ContextPool

    universe = Universe(d=args.d, side=args.side)
    pool = ContextPool()
    rows = []
    for name, curve in curves_for_universe(universe).items():
        q = partition_quality(pool.get(curve), args.parts)
        rows.append(
            {
                "curve": name,
                "parts": q.n_parts,
                "imbalance": q.imbalance,
                "edge_cut": q.edge_cut,
                "cut_frac": q.cut_fraction,
            }
        )
    rows.sort(key=lambda r: r["cut_frac"])
    print(f"# {universe}, {args.parts} parts")
    print(format_table(rows))
    return 0


def _cmd_certificate(args: argparse.Namespace) -> int:
    universe = Universe(d=args.d, side=args.side)
    curve = make_curve(args.curve, universe)
    cert = theorem1_certificate(curve)
    print(f"# Theorem 1 proof chain on {curve.name}, {universe}")
    rows = [
        {"quantity": "S_A' (Lemma 2, exact)", "value": cert.sa_prime},
        {"quantity": "sum_NN Dpi (measured)", "value": cert.nn_sum},
        {"quantity": "Lemma 4 edge bound", "value": cert.lemma4_edge_bound},
        {"quantity": "inequality (4) RHS", "value": cert.inequality4_rhs},
        {"quantity": "inequality (4) holds", "value": cert.inequality4_holds},
        {"quantity": "D^avg (measured)", "value": cert.davg},
        {"quantity": "Theorem 1 bound", "value": cert.theorem1_bound},
        {"quantity": "Theorem 1 holds", "value": cert.theorem1_holds},
    ]
    print(format_table(rows))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.profile import stretch_profile_exact

    universe = Universe(d=args.d, side=args.side)
    curve = make_curve(args.curve, universe)
    profile = stretch_profile_exact(curve)
    rows = [{"r": r, "E[dpi/d | d=r]": v} for r, v in sorted(profile.items())]
    print(f"# stretch profile of {curve.name} on {universe}")
    print(format_table(rows))
    return 0


def _cmd_optimal(args: argparse.Namespace) -> int:
    from repro.core.optimal import local_search

    universe = Universe(d=args.d, side=args.side)
    result = local_search(
        universe, iterations=args.iterations, seed=args.seed
    )
    bound = davg_lower_bound(universe.n, universe.d)
    rows = [
        {"quantity": "start D^avg (simple curve)", "value": result.start_davg},
        {"quantity": "best D^avg found", "value": result.davg},
        {"quantity": "Theorem 1 bound", "value": bound},
        {"quantity": "best / bound", "value": result.davg / bound},
        {"quantity": "improvements", "value": result.improvements},
    ]
    print(f"# adversarial search on {universe} ({args.iterations} steps)")
    print(format_table(rows))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, parse_hot_set, run

    config = ServeConfig(
        host=args.host,
        port=args.port,
        hot_set=parse_hot_set(args.hot_set),
        max_inflight=args.max_inflight,
        batch_window_s=args.batch_window_ms / 1000.0,
        timeout_s=args.timeout,
        max_request_bytes=(
            None
            if args.max_request_mib == 0
            else int(args.max_request_mib * 2**20)
        ),
        threads=args.threads,
        backend=args.backend,
        store_dir=args.store,
    )
    return run(config)


def _cmd_dynamic(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.engine.dynamic import DynamicUniverse
    from repro.engine.pool import ContextPool

    if args.points < 0 or args.steps < 0 or args.batch < 1:
        raise ValueError("need points >= 0, steps >= 0, batch >= 1")
    universe = Universe(d=args.d, side=args.side)
    pool = ContextPool(backend=args.backend)
    dyn = DynamicUniverse(
        args.curve,
        universe=universe,
        pool=pool,
        parts=args.parts,
        window=args.window,
        reselect_threshold=args.reselect_threshold,
        candidates=args.candidates,
    )
    rng = np.random.default_rng(args.seed)
    start = time.perf_counter()
    dyn.bulk_load(
        rng.integers(
            0, args.side, size=(args.points, args.d), dtype=np.int64
        )
    )
    load_s = time.perf_counter() - start
    snapshot = dyn.metrics()
    print(f"# repro dynamic — {dyn.spec} on {universe}")
    print(
        f"bulk-load: {len(dyn)} points in {load_s * 1e3:.1f} ms "
        f"(D^avg {snapshot.davg:.4f}, dilation {snapshot.dilation}, "
        f"{snapshot.n_cells} cells)"
    )
    total_ops = 0
    start = time.perf_counter()
    for step in range(args.steps):
        moves = []
        used: set = set()
        pids = dyn.pids()
        for _ in range(args.batch):
            roll = rng.random()
            target = None
            if roll >= 0.25 and len(pids):
                candidate = int(pids[int(rng.integers(0, len(pids)))])
                if candidate not in used:
                    target = candidate
                    used.add(candidate)
            if target is None:
                coords = rng.integers(0, args.side, size=args.d)
                moves.append(("insert", tuple(int(c) for c in coords)))
            elif roll < 0.5:
                moves.append(("delete", target))
            else:
                coords = rng.integers(0, args.side, size=args.d)
                moves.append(
                    ("move", target, tuple(int(c) for c in coords))
                )
        metrics = dyn.apply(moves)
        total_ops += len(moves)
        if args.verify and metrics != dyn.recompute():
            print(
                f"error: incremental/recompute parity violated at "
                f"step {step + 1}",
                file=sys.stderr,
            )
            return 1
        print(
            f"step {step + 1:>3}: {len(moves)} ops -> "
            f"{metrics.n_points} points, D^avg {metrics.davg:.4f}, "
            f"dilation {metrics.dilation}, drift {dyn.drift():.3f}"
        )
    elapsed = time.perf_counter() - start
    if args.steps:
        rate = total_ops / elapsed if elapsed > 0 else float("inf")
        print(
            f"applied {total_ops} ops in {args.steps} batches "
            f"({elapsed * 1e3:.1f} ms, {rate:,.0f} ops/s incremental)"
        )
    if args.verify:
        print("parity: incremental == recompute at every step")
    for event in dyn.reselections:
        scores = ", ".join(
            f"{spec}={davg:.4f}" for spec, davg in event.scores.items()
        )
        action = (
            f"switched {event.from_spec} -> {event.to_spec}"
            if event.switched
            else f"kept {event.from_spec}"
        )
        print(
            f"reselect @ step {event.step}: drift {event.drift:.3f}, "
            f"{action} ({scores})"
        )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io import save_curve

    universe = Universe(d=args.d, side=args.side)
    curve = make_curve(args.curve, universe)
    path = save_curve(curve, args.out)
    print(f"saved {curve.name} on {universe} to {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import repro
    from pathlib import Path

    from repro.devtools import (
        LINT_VERSION,
        format_json,
        format_text,
        lint_paths,
    )
    from repro.devtools.rules import all_rules, rules_by_id

    rules = all_rules() if args.rules is None else rules_by_id(args.rules)
    if args.list_rules:
        print(f"# repro check — rule catalogue (framework v{LINT_VERSION})")
        for rule in rules:
            print(f"  {rule.rule_id}  {rule.title}")
            print(f"        scope: {', '.join(rule.scope)}")
            print(f"        why:   {rule.rationale}")
        return 0
    paths = args.paths or [Path(repro.__file__).resolve().parent]
    findings = lint_paths(paths, rules=rules)
    if args.format == "json":
        print(format_json(findings, rules=rules))
    else:
        print(format_text(findings))
    return 1 if findings else 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    import os

    from repro.engine import native
    from repro.engine.threads import resolve_threads

    info = native.build_info()
    print("# repro doctor — host capability report")
    print()
    print("[native backend]")
    status = "available" if info["available"] else "unavailable"
    print(f"  status:    {status}")
    if not info["available"]:
        print(f"  reason:    {info['reason']}")
    print(
        f"  disabled:  {'yes (REPRO_NATIVE=0)' if info['disabled'] else 'no'}"
    )
    print(f"  compiler:  {info['compiler'] or 'none found (cc/gcc/clang)'}")
    print(f"  cache dir: {info['cache_dir']}")
    so_path = info["so_path"]
    built = so_path is not None and os.path.exists(so_path)
    print(f"  kernels:   {so_path or 'n/a'}{'' if built else ' (not built)'}")
    log = info["build_log"]
    if log is not None and os.path.exists(log):
        print(f"  build log: {log}")
    print()
    print("[sanitizer builds]")
    mode = info["sanitize"]
    print(f"  REPRO_NATIVE_SANITIZE: {mode or '(off)'}")
    supported = info["sanitize_supported"]
    if supported is None:
        print("  -fsanitize support:    unknown (no compiler)")
    else:
        print(
            f"  -fsanitize support:    "
            f"{'yes' if supported else 'NO (probe compile failed)'}"
        )
    if info["clean_dir"] is not None:
        print(f"  clean cache:     {info['clean_dir']}")
        print(f"  sanitized cache: {info['sanitized_dir']}")
    print()
    print("[static analysis]")
    from repro.devtools import LINT_VERSION
    from repro.devtools.rules import all_rules

    rules = all_rules()
    ids = ", ".join(rule.rule_id for rule in rules)
    print(f"  lint rules: {len(rules)} ({ids}), framework v{LINT_VERSION}")
    print("  run:        repro check [--format=json] [--list-rules]")
    print()
    print("[cores and threads]")
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable = os.cpu_count() or 1
    print(f"  usable cores:     {usable}")
    print(f"  threads ('auto'): {resolve_threads('auto')}")
    print()
    print("[artifact store]")
    from repro.engine.store import FORMAT_VERSION, GridStore

    print(f"  format version: {FORMAT_VERSION}")
    if args.store is None:
        print("  directory:      (not configured; pass --store or set "
              "$REPRO_STORE)")
    else:
        store = GridStore(args.store)
        entries = store.entries()
        print(f"  directory:      {store.root}")
        print(f"  entries:        {len(entries)}")
        print(f"  payload bytes:  {store.nbytes}")
        print(f"  quarantined:    {store.quarantined_count()}")
    print()
    print("[shared memory]")
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=64)
        seg.close()
        seg.unlink()
        print("  segments:  usable (create/attach/unlink ok)")
    except Exception as exc:  # pragma: no cover - host-specific
        print(f"  segments:  UNAVAILABLE ({exc})")
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        leftovers = [
            name
            for name in os.listdir(shm_dir)
            if name.startswith("psm_")
        ]
        print(f"  /dev/shm psm_ segments: {len(leftovers)}")
    return 0


def _cmd_heatmap(args: argparse.Namespace) -> int:
    from repro.viz.heatmap import stretch_heatmap

    universe = Universe(d=args.d, side=args.side)
    curve = make_curve(args.curve, universe)
    print(f"# per-cell delta^avg of {curve.name} on {universe}")
    print(stretch_heatmap(curve))
    return 0


_COMMANDS = {
    "survey": _cmd_survey,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "dynamic": _cmd_dynamic,
    "metrics": _cmd_metrics,
    "curves": _cmd_curves,
    "bounds": _cmd_bounds,
    "render": _cmd_render,
    "partition": _cmd_partition,
    "certificate": _cmd_certificate,
    "profile": _cmd_profile,
    "optimal": _cmd_optimal,
    "export": _cmd_export,
    "heatmap": _cmd_heatmap,
    "doctor": _cmd_doctor,
    "check": _cmd_check,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
