"""SFC-based parallel domain decomposition.

The classic HPC use of SFCs: order the cells (or their work weights)
along the curve and cut the order into ``p`` contiguous segments, one per
processor.  Quality measures:

* **load imbalance** — ``max part weight / mean part weight``;
* **edge cut** — number of grid NN pairs whose endpoints land in
  different parts (proxy for communication volume).  A curve with small
  NN-stretch keeps neighbors in the same segment, so the stretch metrics
  of the paper directly control this cost (bench A3).

Curve-consuming entry points accept a curve or a
:class:`repro.engine.MetricContext`; the key grid comes from the
context's cache.  ``"partition:parts=8"`` is also a registered sweep
metric (:data:`repro.engine.METRICS`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.context import get_context
from repro.grid.neighbors import axis_pair_index_arrays

__all__ = [
    "part_surface_counts",
    "mean_surface_to_volume",
    "partition_by_curve",
    "load_imbalance",
    "edge_cut",
    "PartitionQuality",
    "partition_quality",
]


def partition_by_curve(
    curve,
    n_parts: int,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Assign every cell to one of ``n_parts`` contiguous curve segments.

    Parameters
    ----------
    curve:
        The ordering SFC (or its :class:`repro.engine.MetricContext`).
    n_parts:
        Number of processors; must satisfy ``1 <= n_parts <= n``.
    weights:
        Optional per-cell non-negative work weights (dense grid shape).
        Cuts are placed greedily so each prefix reaches its proportional
        share — the standard 1-D chains-on-chains heuristic used by SFC
        partitioners.  Uniform weights give equal-count segments.

    Returns
    -------
    Dense grid of part labels in ``[0, n_parts)``.

    Works on chunked contexts too: the label grid is assembled slab by
    slab off the block key iterator (and, for weighted cuts, the curve-
    order weight array is scattered slab by slab), so no dense *key*
    grid is built.  The labels — like the weights — are inherently
    ``O(n)``; asking for the label grid is asking for a dense array.
    The per-element operations match the dense path exactly, so the
    result is bit-for-bit identical.
    """
    ctx = get_context(curve)
    universe = ctx.universe
    n = universe.n
    if not 1 <= n_parts <= n:
        raise ValueError(f"n_parts must be in [1, {n}], got {n_parts}")
    labels_along_curve = _labels_along_curve(ctx, n_parts, weights)
    labels = np.empty(universe.shape, dtype=np.int64)
    if ctx.chunked:
        for lo, hi, slab in ctx.iter_key_slabs():
            labels[lo:hi] = labels_along_curve[slab]
    else:
        keys = ctx.key_grid()
        labels.reshape(-1)[:] = labels_along_curve[keys.reshape(-1)]
    return labels


def _labels_along_curve(
    ctx, n_parts: int, weights: np.ndarray | None
) -> np.ndarray:
    """Part label of each curve position (the 1-D cut of the order).

    The weighted scatter (grid weights → curve-order weights) runs off
    the dense key grid or, on a chunked context, slab by slab; either
    way every element lands at the same position with the same value,
    and the cumulative-sum cut math is shared, so both modes produce
    the identical label array.
    """
    universe = ctx.universe
    n = universe.n
    equal_count = (np.arange(n, dtype=np.int64) * n_parts) // n
    if weights is None:
        # Equal-count split of the curve order.
        return equal_count
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != universe.shape:
        raise ValueError(
            f"weights shape {w.shape} != universe {universe.shape}"
        )
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    order_weights = np.empty(n, dtype=np.float64)
    if ctx.chunked:
        for lo, hi, slab in ctx.iter_key_slabs():
            order_weights[slab.reshape(-1)] = w[lo:hi].reshape(-1)
    else:
        order_weights[ctx.key_grid().reshape(-1)] = w.reshape(-1)
    cumulative = np.cumsum(order_weights)
    total = cumulative[-1]
    if total <= 0:
        return equal_count
    # Cell j goes to the part whose quota its prefix mass hits; use
    # the midpoint convention (w_j/2) so single heavy cells do not
    # all pile into the last part.
    mids = cumulative - order_weights / 2.0
    return np.minimum(
        (mids / total * n_parts).astype(np.int64), n_parts - 1
    )


def load_imbalance(
    labels: np.ndarray, n_parts: int, weights: np.ndarray | None = None
) -> float:
    """``max part load / mean part load`` (1.0 = perfect balance)."""
    lab = np.asarray(labels, dtype=np.int64).reshape(-1)
    if weights is None:
        loads = np.bincount(lab, minlength=n_parts).astype(np.float64)
    else:
        loads = np.bincount(
            lab,
            weights=np.asarray(weights, dtype=np.float64).reshape(-1),
            minlength=n_parts,
        )
    mean = loads.sum() / n_parts
    if mean == 0:
        raise ValueError("total load is zero")
    return float(loads.max() / mean)


def edge_cut(universe, labels: np.ndarray) -> int:
    """Number of grid NN pairs whose endpoints have different labels."""
    lab = np.asarray(labels)
    if lab.shape != universe.shape:
        raise ValueError(
            f"labels shape {lab.shape} != universe {universe.shape}"
        )
    cut = 0
    for axis in range(universe.d):
        lo, hi = axis_pair_index_arrays(universe, axis)
        cut += int((lab[lo] != lab[hi]).sum())
    return cut


def part_surface_counts(universe, labels: np.ndarray) -> np.ndarray:
    """Per-part count of NN pairs with exactly one endpoint in the part.

    The "surface" of each part in the grid graph; with the part volume
    this gives the surface-to-volume ratio, the classic compactness
    measure for SFC partitions (lower = more cube-like parts).
    """
    lab = np.asarray(labels)
    if lab.shape != universe.shape:
        raise ValueError(
            f"labels shape {lab.shape} != universe {universe.shape}"
        )
    n_parts = int(lab.max()) + 1
    surface = np.zeros(n_parts, dtype=np.int64)
    for axis in range(universe.d):
        lo, hi = axis_pair_index_arrays(universe, axis)
        a = lab[lo].reshape(-1)
        b = lab[hi].reshape(-1)
        crossing = a != b
        surface += np.bincount(a[crossing], minlength=n_parts)
        surface += np.bincount(b[crossing], minlength=n_parts)
    return surface


def mean_surface_to_volume(universe, labels: np.ndarray) -> float:
    """Mean over parts of (boundary NN pairs) / (cells in part)."""
    lab = np.asarray(labels)
    surface = part_surface_counts(universe, lab)
    volumes = np.bincount(lab.reshape(-1), minlength=surface.size)
    if np.any(volumes == 0):
        raise ValueError("every part must be non-empty")
    return float((surface / volumes).mean())


@dataclass(frozen=True)
class PartitionQuality:
    """Quality summary of one SFC partition."""

    curve_name: str
    n_parts: int
    imbalance: float
    edge_cut: int
    total_nn_pairs: int

    @property
    def cut_fraction(self) -> float:
        """Fraction of NN pairs crossing parts (communication fraction).

        0.0 on degenerate universes with no NN pairs at all.
        """
        if self.total_nn_pairs == 0:
            return 0.0
        return self.edge_cut / self.total_nn_pairs


def _uniform_part_sizes(n: int, n_parts: int) -> np.ndarray:
    """Cell counts of the equal-count curve split, without labels.

    Part ``p`` holds the curve positions ``j`` with
    ``(j * n_parts) // n == p``, i.e. ``ceil(p·n/n_parts) <= j <
    ceil((p+1)·n/n_parts)`` — the same counts ``np.bincount`` reports
    for the dense label grid.
    """
    bounds = (
        np.arange(n_parts + 1, dtype=np.int64) * n + n_parts - 1
    ) // n_parts
    return np.diff(bounds)


def _edge_cut_chunked(ctx, n_parts: int) -> int:
    """Equal-count-split edge cut via key slabs (no dense labels).

    The part of a cell is ``(key * n_parts) // n`` — exactly the label
    the dense path assigns — so counting label mismatches across the
    slab-wise NN pairs reproduces :func:`edge_cut` bit-for-bit while
    holding one slab (plus a carried boundary plane) at a time.
    """
    from repro.engine.chunked import slab_axis_slices

    universe = ctx.universe
    d, side, n = universe.d, universe.side, universe.n
    cut = 0
    prev_labels = None
    for lo, hi, slab in ctx.iter_key_slabs():
        labels = (slab * n_parts) // n
        for axis in range(1, d):
            sel_lo, sel_hi = slab_axis_slices(d, side, axis)
            cut += int((labels[sel_lo] != labels[sel_hi]).sum())
        if hi - lo > 1:
            cut += int((labels[1:] != labels[:-1]).sum())
        if prev_labels is not None:
            cut += int((labels[:1] != prev_labels).sum())
        prev_labels = labels[-1:].copy()
    return cut


def partition_quality(
    curve,
    n_parts: int,
    weights: np.ndarray | None = None,
) -> PartitionQuality:
    """Partition by ``curve`` and summarize balance and communication.

    Chunked contexts are fully supported.  The uniform (unweighted)
    split never touches a dense array: balance comes from the
    closed-form part sizes and the edge cut from a block-wise sweep.
    A weighted cut assembles the label grid slab by slab (the weights
    are an ``O(n)`` dense input already, so the matching ``O(n)``
    labels add no asymptotic cost) and scores it with the dense
    helpers — the full-array ``np.bincount``/comparison reductions —
    so the weighted quality is bit-for-bit the dense-mode result.
    """
    from repro.grid.neighbors import nn_pair_count

    ctx = get_context(curve)
    if ctx.chunked and weights is None:
        universe = ctx.universe
        n = universe.n
        if not 1 <= n_parts <= n:
            raise ValueError(
                f"n_parts must be in [1, {n}], got {n_parts}"
            )
        loads = _uniform_part_sizes(n, n_parts).astype(np.float64)
        mean = loads.sum() / n_parts
        return PartitionQuality(
            curve_name=ctx.curve.name,
            n_parts=n_parts,
            imbalance=float(loads.max() / mean),
            edge_cut=_edge_cut_chunked(ctx, n_parts),
            total_nn_pairs=nn_pair_count(universe),
        )
    labels = partition_by_curve(ctx, n_parts, weights)
    return PartitionQuality(
        curve_name=ctx.curve.name,
        n_parts=n_parts,
        imbalance=load_imbalance(labels, n_parts, weights),
        edge_cut=edge_cut(ctx.universe, labels),
        total_nn_pairs=nn_pair_count(ctx.universe),
    )
