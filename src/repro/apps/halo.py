"""Halo (ghost-cell) exchange on SFC partitions.

The communication phase of a stencil code: every worker owns a curve
segment of cells and each step must fetch the grid neighbors it does
not own ("ghost cells") from their owners.  The exchange cost has two
parts the curve quality controls:

* **volume** — total ghost cells transferred (= directed cut pairs,
  deduplicated per (owner, requester, cell));
* **messages** — number of (sender, receiver) pairs with any traffic:
  compact parts talk to few neighbors, fragmented parts to many.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.partition import partition_by_curve
from repro.engine.context import get_context

__all__ = ["HaloExchange", "halo_exchange"]


@dataclass(frozen=True)
class HaloExchange:
    """Cost summary of one halo exchange round."""

    curve_name: str
    n_parts: int
    ghost_cells: int
    messages: int
    max_partners: int

    @property
    def mean_partners(self) -> float:
        """Average communication partners per worker."""
        return self.messages / self.n_parts


def halo_exchange(
    curve,
    n_parts: int,
    weights: np.ndarray | None = None,
) -> HaloExchange:
    """Partition by ``curve`` and tally the halo-exchange cost.

    ``curve`` may be a curve or a :class:`repro.engine.MetricContext`;
    the key grid and NN pair enumeration come from the context.

    A ghost transfer is a (sender, receiver, cell) triple: receiver
    owns a cell whose neighbor `cell` is owned by sender.  A cell sent
    to the same receiver for several of its neighbors counts once.
    """
    ctx = get_context(curve)
    universe = ctx.universe
    labels = partition_by_curve(ctx, n_parts, weights)
    keys = ctx.key_grid()

    # Collect directed (sender_part, receiver_part, sender_cell_key)
    # triples for every cut NN pair, in both directions.
    senders = []
    receivers = []
    cells = []
    for axis in range(universe.d):
        lo, hi = ctx.axis_pair_slices(axis)
        a_lab = labels[lo].reshape(-1)
        b_lab = labels[hi].reshape(-1)
        a_key = keys[lo].reshape(-1)
        b_key = keys[hi].reshape(-1)
        cut = a_lab != b_lab
        # a's cell is ghost for b's owner, and vice versa.
        senders.append(a_lab[cut])
        receivers.append(b_lab[cut])
        cells.append(a_key[cut])
        senders.append(b_lab[cut])
        receivers.append(a_lab[cut])
        cells.append(b_key[cut])
    if senders:
        sender = np.concatenate(senders)
        receiver = np.concatenate(receivers)
        cell = np.concatenate(cells)
    else:  # pragma: no cover - d >= 1 always has pairs for side >= 2
        sender = receiver = cell = np.empty(0, dtype=np.int64)

    # Deduplicate (sender, receiver, cell) triples.
    triples = (sender.astype(np.int64) * n_parts + receiver) * np.int64(
        universe.n
    ) + cell
    unique_triples = np.unique(triples)
    ghost_cells = int(unique_triples.size)

    # Message matrix: unique (sender, receiver) pairs.
    pair_ids = np.unique(sender * np.int64(n_parts) + receiver)
    messages = int(pair_ids.size)
    partner_counts = np.bincount(
        (pair_ids // n_parts).astype(np.int64), minlength=n_parts
    )
    return HaloExchange(
        curve_name=ctx.curve.name,
        n_parts=n_parts,
        ghost_cells=ghost_cells,
        messages=messages,
        max_partners=int(partner_counts.max()) if messages else 0,
    )
