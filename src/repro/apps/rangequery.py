"""Secondary-memory range-query substrate (Faloutsos motivation).

Multi-dimensional records laid out on disk in SFC order; a rectangular
query reads the curve-index runs covering the box.  The I/O cost model is
the standard one for sequential devices:

    ``cost = seek_cost · (#runs) + scan_cost · (cells read)``

The number of runs is exactly the Moon et al. clustering number; the
scan volume is the box volume (runs are exact covers, no over-read).
Bench A5 compares curves under this model.

The index is backed by a :class:`repro.engine.MetricContext` (a bare
curve is coerced): box keys come from the cached key grid and run
contents from the cached inverse permutation, so repeated queries do no
curve evaluation at all.  ``"rangequery:box=4"`` is also a registered
sweep metric (:data:`repro.engine.METRICS`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.clustering import box_keys
from repro.engine.context import get_context
from repro.grid.coords import rank_to_coords

__all__ = ["SFCIndex", "QueryCost"]


@dataclass(frozen=True)
class QueryCost:
    """I/O cost of one rectangular query."""

    runs: int
    cells_read: int
    seek_cost: float
    scan_cost: float

    @property
    def total(self) -> float:
        return self.seek_cost * self.runs + self.scan_cost * self.cells_read


class SFCIndex:
    """An SFC-ordered index over all grid cells.

    Records are identified with cells; the index answers rectangular
    queries with the exact list of curve-key runs covering the box.
    Accepts a curve or an existing :class:`repro.engine.MetricContext`.
    """

    def __init__(
        self,
        curve,
        seek_cost: float = 10.0,
        scan_cost: float = 1.0,
    ) -> None:
        if seek_cost < 0 or scan_cost < 0:
            raise ValueError("costs must be non-negative")
        self._ctx = get_context(curve)
        self.curve = self._ctx.curve
        self.seek_cost = seek_cost
        self.scan_cost = scan_cost

    def query_runs(
        self, lo: Sequence[int], hi: Sequence[int]
    ) -> list[tuple[int, int]]:
        """Inclusive key runs ``[(start, end), …]`` covering box ``[lo, hi)``."""
        keys = box_keys(self._ctx, lo, hi)
        # Vectorized run extraction: a run ends wherever the sorted key
        # stream jumps by more than one.
        breaks = np.flatnonzero(np.diff(keys) > 1)
        starts = keys[np.concatenate(([0], breaks + 1))]
        ends = keys[np.concatenate((breaks, [keys.size - 1]))]
        return [
            (int(a), int(b)) for a, b in zip(starts.tolist(), ends.tolist())
        ]

    def query_cells(
        self, lo: Sequence[int], hi: Sequence[int]
    ) -> np.ndarray:
        """Coordinates retrieved by the runs (sorted by key) — must equal
        the box contents; verified against the brute-force oracle in
        tests."""
        runs = self.query_runs(lo, hi)
        keys = np.concatenate(
            [np.arange(a, b + 1, dtype=np.int64) for a, b in runs]
        )
        if self._ctx.chunked:
            # No dense inverse in chunked mode; invert the run's keys
            # directly (O(cells read) for analytically invertible curves).
            return self._ctx.curve.coords_of(keys, backend=self._ctx.backend)
        ranks = self._ctx.inverse_permutation()[keys]
        return rank_to_coords(ranks, self._ctx.universe)

    def query_cost(
        self, lo: Sequence[int], hi: Sequence[int]
    ) -> QueryCost:
        """I/O cost of the box query under the seek+scan model."""
        runs = self.query_runs(lo, hi)
        cells = sum(b - a + 1 for a, b in runs)
        return QueryCost(
            runs=len(runs),
            cells_read=cells,
            seek_cost=self.seek_cost,
            scan_cost=self.scan_cost,
        )

    def average_query_cost(
        self,
        box_shape: Sequence[int],
        n_samples: int = 100,
        seed: int = 0,
    ) -> float:
        """Mean total cost over uniformly placed boxes of a fixed shape.

        On a threaded context the per-box costs are evaluated on the
        context's scheduler; partial costs are merged in submission
        order — the serial loop's order — so the float accumulation
        performs the identical addition sequence and the threaded
        average is bit-for-bit the serial one.
        """
        from repro.analysis.sampling import sample_rectangles

        universe = self._ctx.universe
        boxes = sample_rectangles(
            universe.side, universe.d, box_shape, n_samples, seed
        )
        tasks = [
            (lambda lo=lo, hi=hi: self.query_cost(lo, hi).total)
            for lo, hi in boxes
        ]
        if self._ctx.threaded:
            from repro.engine.threads import prepare_box_reads

            prepare_box_reads(self._ctx)
            results = self._ctx.scheduler.imap(tasks)
        else:
            results = (fn() for fn in tasks)
        total = 0.0
        for value in results:
            total += value
        return total / n_samples
