"""N-body style nearest-neighbor substrate (Warren & Salmon motivation).

The paper argues NN-stretch is the right metric because "the dominant
interactions are the ones between nearest neighbors".  This substrate
makes that concrete: particles sit on grid cells, are stored sorted by
curve key (the hashed-octree layout), and neighbor interactions are
evaluated by scanning a ±window in curve order.

* :func:`neighbor_recall` — the fraction of true grid-NN interactions a
  window of half-width ``w`` captures; equals ``P(∆π ≤ w)`` over NN
  pairs, i.e. one minus the NN-distance CCDF.
* :func:`sweep_cost` — candidates examined per particle vs interactions
  found, the efficiency trade-off a smaller stretch improves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.distribution import window_for_recall
from repro.curves.base import SpaceFillingCurve
from repro.engine.context import get_context
from repro.grid.metrics import manhattan

__all__ = [
    "ParticleStore",
    "neighbor_recall",
    "sweep_cost",
    "NeighborSweepResult",
]


class ParticleStore:
    """Particles on grid cells, stored in curve order.

    The store rides on a :class:`repro.engine.dynamic.DynamicUniverse`
    (exposed as :attr:`dynamic`): construction is one bulk load, and
    :meth:`apply_moves` mutates the ensemble incrementally — O(k·d)
    for k ops — while keeping :attr:`positions`/:attr:`keys` in the
    maintained (key, pid) order, which is exactly the historical
    ``np.argsort(keys, kind="stable")`` layout.

    Parameters
    ----------
    curve:
        The ordering SFC (or its :class:`repro.engine.MetricContext`).
    positions:
        ``(m, d)`` integer cell coordinates (multiple particles may share
        a cell).
    """

    def __init__(self, curve, positions: np.ndarray) -> None:
        from repro.engine.dynamic import DynamicUniverse

        ctx = get_context(curve)
        self.curve = ctx.curve
        pos = ctx.universe.validate_coords(positions)
        if pos.ndim != 2:
            raise ValueError("positions must be a (m, d) array")
        #: The incremental engine owning the population.
        self.dynamic = DynamicUniverse(ctx)
        self.dynamic.bulk_load(pos)
        self._refresh()

    def _refresh(self) -> None:
        self.positions = self.dynamic.sorted_positions()
        self.keys = self.dynamic.sorted_keys()

    def pids(self) -> np.ndarray:
        """Particle ids in store (curve) order, aligned with
        :attr:`positions` rows — the handles :meth:`apply_moves` takes."""
        return self.dynamic.sorted_pids()

    def apply_moves(self, moves):
        """Apply one ``DynamicUniverse`` move batch and re-sync the store.

        ``moves`` is a sequence of ``("insert", coords)``,
        ``("delete", pid)`` and ``("move", pid, coords)`` tuples; the
        population metrics are maintained incrementally and the updated
        :class:`~repro.engine.dynamic.DynamicMetrics` is returned.
        """
        metrics = self.dynamic.apply(moves)
        self._refresh()
        return metrics

    def __len__(self) -> int:
        return self.positions.shape[0]

    @classmethod
    def uniform_random(
        cls,
        curve,
        n_particles: int,
        seed: int = 0,
    ) -> "ParticleStore":
        """Particles uniform over cells (with replacement)."""
        ctx = get_context(curve)
        rng = np.random.default_rng(seed)
        pos = rng.integers(
            0,
            ctx.universe.side,
            size=(n_particles, ctx.universe.d),
            dtype=np.int64,
        )
        return cls(ctx, pos)

    def window_candidates(self, index: int, window: int) -> np.ndarray:
        """Indices of particles within ±``window`` array slots of particle ``index``.

        The store is key-sorted, so an array-slot window is the curve
        window of the hashed-octree sweep.
        """
        if not 0 <= index < len(self):
            raise IndexError(index)
        lo = max(index - window, 0)
        hi = min(index + window + 1, len(self))
        out = np.arange(lo, hi)
        return out[out != index]

    def true_grid_neighbors(self, index: int) -> np.ndarray:
        """Indices of particles at Manhattan distance exactly 1."""
        me = self.positions[index]
        dist = manhattan(self.positions, me)
        mask = dist == 1
        return np.nonzero(mask)[0]


def neighbor_recall(curve: SpaceFillingCurve, window: int) -> float:
    """Fraction of grid NN pairs with ``∆π ≤ window`` (cell-level, exact).

    This is the recall of a curve-window neighbor search when every cell
    holds one particle; it ties the stretch *distribution* directly to an
    application guarantee.
    """
    if window < 0:
        raise ValueError("window must be >= 0")
    values = get_context(curve).nn_distance_values()
    return float((values <= window).sum()) / values.size


@dataclass(frozen=True)
class NeighborSweepResult:
    """Cost/quality of one windowed neighbor sweep over a particle set."""

    curve_name: str
    window: int
    n_particles: int
    candidates_examined: int
    interactions_found: int
    interactions_true: int

    @property
    def recall(self) -> float:
        if self.interactions_true == 0:
            return 1.0
        return self.interactions_found / self.interactions_true

    @property
    def efficiency(self) -> float:
        """Found interactions per examined candidate (higher = better)."""
        if self.candidates_examined == 0:
            return 0.0
        return self.interactions_found / self.candidates_examined


def sweep_cost(
    store: ParticleStore, window: int
) -> NeighborSweepResult:
    """Run a windowed NN sweep over the whole store and tally costs.

    An interaction is a particle pair at Manhattan distance 1 (ordered
    pairs counted once per endpoint's sweep, then halved).
    """
    if window < 0:
        raise ValueError("window must be >= 0")
    m = len(store)
    found = 0
    examined = 0
    for i in range(m):
        cands = store.window_candidates(i, window)
        examined += cands.size
        if cands.size:
            dist = manhattan(store.positions[cands], store.positions[i])
            found += int((dist == 1).sum())
    # True interaction count: ordered NN pairs among particles.
    true_pairs = 0
    for i in range(m):
        true_pairs += store.true_grid_neighbors(i).size
    return NeighborSweepResult(
        curve_name=store.curve.name,
        window=window,
        n_particles=m,
        candidates_examined=examined,
        interactions_found=found // 1,
        interactions_true=true_pairs,
    )


def window_for_target_recall(
    curve: SpaceFillingCurve, recall: float
) -> int:
    """Smallest curve window achieving the target cell-level recall."""
    return window_for_recall(curve, recall)
