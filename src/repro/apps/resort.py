"""Dynamic workloads: re-sorting drifting particles in curve order.

In time-stepped simulations (the Warren–Salmon motivation), particles
move a little each step and the SFC-sorted array must be repaired.
The repair cost is governed by how far a *unit grid move* displaces a
particle's key — which is exactly the NN curve-distance distribution
the paper studies:

    E[key displacement of a unit move] = mean ∆π over NN pairs.

:func:`drift_step_cost` simulates the process and measures both key
displacement and *rank* displacement (the number of array slots a
particle must travel — the actual resort work for insertion-style
repair).  The simulation rides on
:class:`repro.engine.dynamic.DynamicUniverse`: each step is one move
batch, keys come from the incremental store instead of re-encoding the
whole ensemble, and ranks from the maintained (key, pid) order —
values bit-for-bit identical to the historical full
re-encode + stable-argsort loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.curves.base import SpaceFillingCurve
from repro.engine.context import get_context

__all__ = [
    "expected_unit_move_key_displacement",
    "drift_step_cost",
    "DriftCost",
]


def expected_unit_move_key_displacement(curve: SpaceFillingCurve) -> float:
    """Mean ``∆π`` over NN pairs = expected key shift of a random unit
    move from a uniformly random cell (each NN edge equally likely)."""
    return float(get_context(curve).nn_distance_values().mean())


@dataclass(frozen=True)
class DriftCost:
    """Per-step resort cost of a drifting particle ensemble."""

    curve_name: str
    n_particles: int
    steps: int
    mean_key_displacement: float
    mean_rank_displacement: float
    max_rank_displacement: int


def drift_step_cost(
    curve,
    n_particles: int = 1000,
    steps: int = 10,
    seed: int = 0,
) -> DriftCost:
    """Simulate random unit drift and measure resort work per step.

    ``curve`` may be a curve or a :class:`repro.engine.MetricContext`;
    the ensemble lives in a :class:`~repro.engine.dynamic.DynamicUniverse`
    whose incremental (key, pid) order supplies both key and rank
    arrays.  Particle keys are encoded once per *move batch* (only the
    movers), not once per step per particle; ranks come from the
    maintained order, which reproduces ``np.argsort(keys,
    kind="stable")`` exactly, so every reported number matches the
    historical full-re-encode loop bit for bit.

    Each step every particle moves to a uniformly chosen grid neighbor
    (staying put if the move would leave the box).  After each step the
    key array is re-sorted; rank displacement is the total distance
    particles travel in the sorted array.
    """
    from repro.engine.dynamic import DynamicUniverse

    if n_particles < 1 or steps < 1:
        raise ValueError("need n_particles >= 1 and steps >= 1")
    ctx = get_context(curve)
    universe = ctx.universe
    rng = np.random.default_rng(seed)
    positions = rng.integers(
        0, universe.side, size=(n_particles, universe.d), dtype=np.int64
    )
    dyn = DynamicUniverse(ctx)
    dyn.bulk_load(positions)
    total_key = 0.0
    total_rank = 0.0
    worst_rank = 0
    for _ in range(steps):
        keys_before = dyn.keys_by_pid()
        ranks_before = dyn.particle_ranks()

        axes = rng.integers(0, universe.d, size=n_particles)
        signs = rng.choice(np.array([-1, 1]), size=n_particles)
        moved = positions.copy()
        moved[np.arange(n_particles), axes] += signs
        in_bounds = universe.contains(moved)
        positions = np.where(in_bounds[:, None], moved, positions)

        movers = np.nonzero(in_bounds)[0]
        dyn.apply(
            [
                ("move", int(pid), tuple(positions[pid].tolist()))
                for pid in movers
            ]
        )
        keys_after = dyn.keys_by_pid()
        ranks_after = dyn.particle_ranks()

        key_shift = np.abs(keys_after - keys_before)
        rank_shift = np.abs(ranks_after - ranks_before)
        total_key += float(key_shift.mean())
        total_rank += float(rank_shift.mean())
        worst_rank = max(worst_rank, int(rank_shift.max()))
    return DriftCost(
        curve_name=ctx.curve.name,
        n_particles=n_particles,
        steps=steps,
        mean_key_displacement=total_key / steps,
        mean_rank_displacement=total_rank / steps,
        max_rank_displacement=worst_rank,
    )
