"""Application substrates for the paper's motivating workloads (Section I).

The paper motivates SFC stretch through three application families; each
gets a small exact substrate so stretch can be connected to end-to-end
costs:

* :mod:`repro.apps.partition` — parallel domain decomposition
  (Aluru & Sevilgen; Pilkington & Baden; Parashar & Browne).
* :mod:`repro.apps.nbody` — nearest-neighbor interactions in N-body
  style simulations (Warren & Salmon).
* :mod:`repro.apps.rangequery` — multi-dimensional data in secondary
  memory / databases (Faloutsos; Orenstein & Merrett).
"""

from repro.apps.halo import HaloExchange, halo_exchange
from repro.apps.nbody import (
    NeighborSweepResult,
    ParticleStore,
    neighbor_recall,
    sweep_cost,
)
from repro.apps.partition import (
    PartitionQuality,
    edge_cut,
    load_imbalance,
    partition_by_curve,
    partition_quality,
)
from repro.apps.rangequery import (
    QueryCost,
    SFCIndex,
)
from repro.apps.resort import (
    DriftCost,
    drift_step_cost,
    expected_unit_move_key_displacement,
)

__all__ = [
    "partition_by_curve",
    "load_imbalance",
    "edge_cut",
    "partition_quality",
    "PartitionQuality",
    "ParticleStore",
    "neighbor_recall",
    "sweep_cost",
    "NeighborSweepResult",
    "SFCIndex",
    "QueryCost",
    "HaloExchange",
    "halo_exchange",
    "DriftCost",
    "drift_step_cost",
    "expected_unit_move_key_displacement",
]
