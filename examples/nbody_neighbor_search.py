#!/usr/bin/env python
"""N-body nearest-neighbor sweeps over SFC-sorted particles.

The paper motivates NN-stretch through N-body simulations (Warren &
Salmon's hashed octree): particles are stored sorted by curve key and
short-range interactions are found by scanning a window in curve order.
The NN-stretch distribution tells you *exactly* which window you need:

    recall(w) = P(∆π ≤ w over grid-NN pairs)

This example measures, per curve, the window needed for 90/99/100%
neighbor recall and the cost/recall trade-off of real particle sweeps.

Run:  python examples/nbody_neighbor_search.py
"""

from repro import Universe
from repro.analysis.distribution import window_for_recall
from repro.apps.nbody import ParticleStore, neighbor_recall, sweep_cost
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table


def main() -> None:
    universe = Universe.power_of_two(d=2, k=5)  # 32x32 cells
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "gray", "simple", "random"]
    )

    print(f"Universe {universe}: windows needed for target recall\n")
    rows = []
    for name, curve in zoo.items():
        rows.append(
            {
                "curve": name,
                "w(90%)": window_for_recall(curve, 0.90),
                "w(99%)": window_for_recall(curve, 0.99),
                "w(100%)": window_for_recall(curve, 1.00),
                "recall@8": neighbor_recall(curve, 8),
            }
        )
    rows.sort(key=lambda r: r["w(99%)"])
    print(format_table(rows))

    # A concrete sweep: 400 particles, window 12.
    print("\nParticle sweep (400 uniform particles, window 12):\n")
    rows = []
    for name, curve in zoo.items():
        store = ParticleStore.uniform_random(curve, 400, seed=42)
        result = sweep_cost(store, window=12)
        rows.append(
            {
                "curve": name,
                "recall": result.recall,
                "candidates": result.candidates_examined,
                "found": result.interactions_found,
                "efficiency": result.efficiency,
            }
        )
    rows.sort(key=lambda r: -r["recall"])
    print(format_table(rows))

    print(
        "\nCurves with smaller NN-stretch reach the same recall with"
        "\nsmaller windows — fewer candidates per particle per step."
    )


if __name__ == "__main__":
    main()
