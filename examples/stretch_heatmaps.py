#!/usr/bin/env python
"""Gallery: the spatial structure of the per-cell stretch.

Renders δ^avg_π as an ASCII heat map for each 2-D curve on a 32x32
grid.  The pictures explain the numbers: the simple curve's perfectly
flat interior (Theorem 3's `U_1`), the Z curve's hierarchical seams
(bright crosses at block boundaries — the G_{i,j} groups of Lemma 5),
the Hilbert curve's fractal hot spots, and the featureless white noise
of a random bijection.

Run:  python examples/stretch_heatmaps.py
"""

from repro import Universe
from repro.analysis.dispersion import stretch_dispersion
from repro.curves.registry import curves_for_universe
from repro.viz.heatmap import stretch_heatmap


def main() -> None:
    universe = Universe.power_of_two(d=2, k=5)
    zoo = curves_for_universe(
        universe, names=["simple", "z", "hilbert", "moore", "random"]
    )
    for name, curve in zoo.items():
        disp = stretch_dispersion(curve)
        print(f"== {name} ==")
        print(
            f"mean δ^avg = {disp.mean:.2f}   std = {disp.std:.2f}   "
            f"gini = {disp.gini:.3f}   q99 = {disp.q99:.1f}"
        )
        print(stretch_heatmap(curve))
        print()

    print(
        "Reading guide: darker = higher per-cell stretch.  The Z curve's\n"
        "bright seams sit exactly where coordinate bits carry (Lemma 5's\n"
        "G_{i,j} groups with large j); the simple curve is flat because\n"
        "every interior cell pays the same (n-1)/(d(side-1)) (Theorem 3)."
    )


if __name__ == "__main__":
    main()
