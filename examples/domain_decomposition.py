#!/usr/bin/env python
"""Parallel domain decomposition with SFCs (the paper's HPC motivation).

A 3-D computational domain (32x32x32 before weighting) is distributed
over 16 workers by cutting each curve into contiguous, equally weighted
segments.  We compare curves on:

* load imbalance (max part load / mean), and
* edge cut — grid-neighbor pairs split across workers, i.e. the
  communication volume of a halo exchange.

A non-uniform workload (a hot Gaussian blob, as in adaptive mesh codes)
shows the weighted partitioner in action.

Run:  python examples/domain_decomposition.py
"""

import numpy as np

from repro import Universe
from repro.apps.partition import partition_quality
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table


def gaussian_blob_weights(universe: Universe) -> np.ndarray:
    """Work density peaked at the domain center (e.g. AMR refinement)."""
    grids = universe.coordinate_grids()
    center = (universe.side - 1) / 2.0
    r2 = sum((g - center) ** 2 for g in grids)
    sigma2 = (universe.side / 4.0) ** 2
    return 1.0 + 20.0 * np.exp(-r2 / (2 * sigma2))


def main() -> None:
    universe = Universe.power_of_two(d=3, k=4)  # 32^3 = 32768 cells
    n_workers = 16
    print(f"Domain {universe}, {n_workers} workers\n")

    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "gray", "snake", "simple", "random"]
    )

    print("== Uniform workload ==")
    rows = []
    for name, curve in zoo.items():
        q = partition_quality(curve, n_workers)
        rows.append(
            {
                "curve": name,
                "imbalance": q.imbalance,
                "edge_cut": q.edge_cut,
                "cut_fraction": q.cut_fraction,
            }
        )
    rows.sort(key=lambda r: r["edge_cut"])
    print(format_table(rows))

    print("\n== Gaussian hot-spot workload (weighted cuts) ==")
    weights = gaussian_blob_weights(universe)
    rows = []
    for name, curve in zoo.items():
        q = partition_quality(curve, n_workers, weights)
        rows.append(
            {
                "curve": name,
                "imbalance": q.imbalance,
                "edge_cut": q.edge_cut,
                "cut_fraction": q.cut_fraction,
            }
        )
    rows.sort(key=lambda r: r["edge_cut"])
    print(format_table(rows))

    print(
        "\nLocality-preserving curves (Hilbert/Z) cut a small fraction of"
        "\nneighbor pairs; the random bijection cuts nearly all of them —"
        "\nthe end-to-end payoff of small NN-stretch."
    )


if __name__ == "__main__":
    main()
