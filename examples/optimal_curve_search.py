#!/usr/bin/env python
"""Can any curve beat Theorem 1?  An adversarial search.

Section VI's open question asks whether the gap between the lower
bound (2/3d)·n^{1-1/d} and the Z curve's (1/d)·n^{1-1/d} can be
closed.  We attack from both sides:

* exhaustively, on tiny grids, finding the TRUE optimal bijection;
* by hill climbing from the Z curve on 8x8 and 16x16 grids.

The search never crosses the bound (it cannot — the bound is a
theorem), and how close it gets measures the bound's empirical slack.

Run:  python examples/optimal_curve_search.py
"""

from repro import Universe, ZCurve, average_average_nn_stretch, davg_lower_bound
from repro.core.optimal import exhaustive_optimum, local_search
from repro.viz.tables import format_table


def main() -> None:
    print("== Ground truth: exhaustive search over ALL bijections ==\n")
    rows = []
    for universe in (
        Universe(d=2, side=2),
        Universe(d=3, side=2),
        Universe(d=2, side=3),
    ):
        opt = exhaustive_optimum(universe)
        bound = davg_lower_bound(universe.n, universe.d)
        rows.append(
            {
                "universe": f"{universe.side}^{universe.d}",
                "bijections": opt.n_evaluated,
                "optimal Davg": opt.davg,
                "Thm1 bound": bound,
                "optimal/bound": opt.davg / bound,
            }
        )
    print(format_table(rows))

    print("\n== Hill climbing from the Z curve ==\n")
    rows = []
    for k in (2, 3, 4):
        universe = Universe.power_of_two(d=2, k=k)
        z = ZCurve(universe)
        z_davg = average_average_nn_stretch(z)
        result = local_search(
            universe,
            start_keys=z.key_grid().reshape(-1, order="F"),
            iterations=30_000,
            seed=0,
        )
        bound = davg_lower_bound(universe.n, universe.d)
        rows.append(
            {
                "side": universe.side,
                "Davg(Z)": z_davg,
                "best found": result.davg,
                "improvement %": 100 * (1 - result.davg / z_davg),
                "bound": bound,
                "best/bound": result.davg / bound,
            }
        )
    print(format_table(rows))

    print(
        "\nThe optimizer shaves only a few percent off the Z curve and"
        "\nnever approaches the bound closer than ~1.5x at scale —"
        "\nconsistent with the conjecture that Theorem 1's constant,"
        "\nnot the Z curve, is what has slack."
    )


if __name__ == "__main__":
    main()
