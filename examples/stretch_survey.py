#!/usr/bin/env python
"""Full stretch survey: reproduce the paper's headline numbers yourself.

Sweeps dimensions d = 2, 3, 4 and grid sizes, printing for every curve
the exact D^avg, D^max, the Theorem 1 lower bound and the optimality
ratio — the table form of Theorems 1–3 and the 1.5-factor observation.

Run:  python examples/stretch_survey.py
"""

from repro import Universe
from repro.core.asymptotics import davg_z_limit
from repro.core.summary import survey
from repro.viz.tables import format_table


def main() -> None:
    sweeps = [
        (2, (3, 4, 5, 6)),
        (3, (2, 3, 4)),
        (4, (1, 2, 3)),
    ]
    for d, ks in sweeps:
        print(f"===== d = {d} =====")
        for k in ks:
            universe = Universe.power_of_two(d=d, k=k)
            reports = survey(
                universe, names=["z", "simple", "snake", "gray", "hilbert"]
            )
            rows = [r.as_row() for r in reports]
            for row in rows:
                row["asym n^(1-1/d)/d"] = davg_z_limit(universe.n, d)
                del row["str_M"], row["str_E"]
            rows.sort(key=lambda r: r["Davg"])
            print(f"\n-- side {universe.side} (n = {universe.n}) --")
            print(format_table(rows))
        print()

    print(
        "Observations (match the paper):\n"
        "  1. every ratio Davg/LB >= 1            (Theorem 1)\n"
        "  2. the Z curve's ratio -> 1.5 in any d (Theorem 2)\n"
        "  3. simple/snake match the Z curve      (Theorem 3)\n"
        "  4. Hilbert is in the same near-optimal band (open question\n"
        "     of Section VI, answered numerically here)."
    )


if __name__ == "__main__":
    main()
