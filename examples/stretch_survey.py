#!/usr/bin/env python
"""Full stretch survey: reproduce the paper's headline numbers yourself.

Declares one :class:`repro.Sweep` per dimension over a range of grid
sizes, printing for every curve the exact D^avg, D^max, the Theorem 1
lower bound and the optimality ratio — the table form of Theorems 1–3
and the 1.5-factor observation.  Each (curve, universe) cell shares one
cached :class:`repro.MetricContext`, so the whole table costs one
key-grid build and one set of axis-distance arrays per curve.

Run:  python examples/stretch_survey.py
"""

from repro import Sweep, Universe
from repro.core.asymptotics import davg_z_limit
from repro.viz.tables import format_table

CURVES = ["z", "simple", "snake", "gray", "hilbert"]


def main() -> None:
    sweeps = [
        (2, (3, 4, 5, 6)),
        (3, (2, 3, 4)),
        (4, (1, 2, 3)),
    ]
    for d, ks in sweeps:
        print(f"===== d = {d} =====")
        result = Sweep(
            universes=[Universe.power_of_two(d=d, k=k) for k in ks],
            curves=CURVES,
            metrics=("davg", "dmax", "lower_bound", "davg_ratio"),
            reports=False,
        ).run()
        for k in ks:
            universe = Universe.power_of_two(d=d, k=k)
            rows = [
                {
                    "curve": rec.curve_name,
                    "Davg": rec.values["davg"],
                    "Dmax": rec.values["dmax"],
                    "LB(Thm1)": rec.values["lower_bound"],
                    "Davg/LB": rec.values["davg_ratio"],
                    "asym n^(1-1/d)/d": davg_z_limit(universe.n, d),
                }
                for rec in result.records
                if rec.side == universe.side
            ]
            rows.sort(key=lambda r: r["Davg"])
            print(f"\n-- side {universe.side} (n = {universe.n}) --")
            print(format_table(rows))
        print()

    print(
        "Observations (match the paper):\n"
        "  1. every ratio Davg/LB >= 1            (Theorem 1)\n"
        "  2. the Z curve's ratio -> 1.5 in any d (Theorem 2)\n"
        "  3. simple/snake match the Z curve      (Theorem 3)\n"
        "  4. Hilbert is in the same near-optimal band (open question\n"
        "     of Section VI, answered numerically here)."
    )


if __name__ == "__main__":
    main()
