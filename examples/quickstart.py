#!/usr/bin/env python
"""Quickstart: the paper's model, metrics and headline result in 60 lines.

Builds the Figure 3/4 universe (8x8 grid), computes the exact stretch
metrics for the Z curve and the simple curve, compares them against
Theorem 1's universal lower bound, and renders both curves.

Run:  python examples/quickstart.py
"""

from repro import (
    MetricContext,
    SimpleCurve,
    Sweep,
    Universe,
    ZCurve,
    average_average_nn_stretch,
    davg_lower_bound,
)
from repro.viz.ascii_art import render_key_grid, render_path


def main() -> None:
    # The paper's universe: a d-dimensional grid of side 2^k.
    universe = Universe.power_of_two(d=2, k=3)
    print(f"Universe: {universe}\n")

    z = ZCurve(universe)
    simple = SimpleCurve(universe)

    # Theorem 1: NO bijection can do better than this.
    bound = davg_lower_bound(universe.n, universe.d)
    print(f"Theorem 1 lower bound on D^avg: {bound:.4f}\n")

    # One cached compute context per curve: D^avg and D^max share the
    # key grid and the per-axis distance arrays.
    for curve in (z, simple):
        ctx = MetricContext(curve)
        print(
            f"{curve.name:>8}: D^avg = {ctx.davg():7.4f}  "
            f"(ratio to bound {ctx.davg_ratio():.3f})   "
            f"D^max = {ctx.dmax():7.4f}"
        )

    print("\nZ curve key assignment (Figure 3, decimal):")
    print(render_key_grid(z))

    print("\nSimple curve steps (Figure 4 — rows with wrap jumps):")
    print(render_path(simple))

    # The headline: the Z curve is within a factor 1.5 of ANY possible
    # space filling curve, and even the trivial simple curve matches it.
    ratio_z = average_average_nn_stretch(z) / bound
    assert ratio_z < 1.75, "Z should be within ~1.5x of optimal"
    print(f"\nZ curve is within {ratio_z:.2f}x of the universal optimum.")

    # The same comparison as a one-liner declarative sweep: the whole
    # applicable curve zoo on two grid sizes, with parsed curve specs.
    print("\nDeclarative sweep (z vs hilbert vs a seeded random curve):")
    result = Sweep(
        dims=[2],
        sides=[8, 16],
        curves=["z", "hilbert", "random:seed=3"],
        metrics=["davg", "davg_ratio"],
        reports=False,
    ).run()
    print(result.to_table())


if __name__ == "__main__":
    main()
