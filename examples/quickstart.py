#!/usr/bin/env python
"""Quickstart: the paper's model, metrics and headline result in 60 lines.

Builds the Figure 3/4 universe (8x8 grid), computes the exact stretch
metrics for the Z curve and the simple curve, compares them against
Theorem 1's universal lower bound, and renders both curves.

Run:  python examples/quickstart.py
"""

from repro import (
    SimpleCurve,
    Universe,
    ZCurve,
    average_average_nn_stretch,
    average_maximum_nn_stretch,
    davg_lower_bound,
)
from repro.viz.ascii_art import render_key_grid, render_path


def main() -> None:
    # The paper's universe: a d-dimensional grid of side 2^k.
    universe = Universe.power_of_two(d=2, k=3)
    print(f"Universe: {universe}\n")

    z = ZCurve(universe)
    simple = SimpleCurve(universe)

    # Theorem 1: NO bijection can do better than this.
    bound = davg_lower_bound(universe.n, universe.d)
    print(f"Theorem 1 lower bound on D^avg: {bound:.4f}\n")

    for curve in (z, simple):
        davg = average_average_nn_stretch(curve)
        dmax = average_maximum_nn_stretch(curve)
        print(
            f"{curve.name:>8}: D^avg = {davg:7.4f}  "
            f"(ratio to bound {davg / bound:.3f})   D^max = {dmax:7.4f}"
        )

    print("\nZ curve key assignment (Figure 3, decimal):")
    print(render_key_grid(z))

    print("\nSimple curve steps (Figure 4 — rows with wrap jumps):")
    print(render_path(simple))

    # The headline: the Z curve is within a factor 1.5 of ANY possible
    # space filling curve, and even the trivial simple curve matches it.
    ratio_z = average_average_nn_stretch(z) / bound
    assert ratio_z < 1.75, "Z should be within ~1.5x of optimal"
    print(f"\nZ curve is within {ratio_z:.2f}x of the universal optimum.")


if __name__ == "__main__":
    main()
