#!/usr/bin/env python
"""Multi-dimensional range queries over an SFC-ordered table.

The paper's database motivation (Faloutsos; Orenstein & Merrett):
records keyed by an SFC are laid out sequentially; a rectangular query
reads one contiguous run per "cluster" (Moon et al.).  Under a
seek+scan cost model, curves with better clustering win.

Run:  python examples/range_query_database.py
"""

from repro import Universe
from repro.analysis.clustering import expected_clusters
from repro.apps.rangequery import SFCIndex
from repro.curves.registry import curves_for_universe
from repro.viz.tables import format_table


def main() -> None:
    universe = Universe.power_of_two(d=2, k=5)  # 32x32 key space
    zoo = curves_for_universe(
        universe, names=["hilbert", "z", "gray", "snake", "simple", "random"]
    )

    box_shapes = [(4, 4), (8, 8), (16, 2)]
    print(f"Universe {universe}; seek=10, scan=1 cost units\n")

    for shape in box_shapes:
        print(f"== Query boxes of shape {shape} ==")
        rows = []
        for name, curve in zoo.items():
            index = SFCIndex(curve, seek_cost=10.0, scan_cost=1.0)
            rows.append(
                {
                    "curve": name,
                    "avg_clusters": expected_clusters(
                        curve, shape, n_samples=100, seed=7
                    ),
                    "avg_io_cost": index.average_query_cost(
                        shape, n_samples=100, seed=7
                    ),
                }
            )
        rows.sort(key=lambda r: r["avg_io_cost"])
        print(format_table(rows))
        print()

    # Show one concrete query plan.
    index = SFCIndex(zoo["hilbert"])
    runs = index.query_runs((3, 5), (11, 13))
    print(f"Hilbert plan for box [3,11)x[5,13): {len(runs)} runs")
    print(" ", runs)


if __name__ == "__main__":
    main()
