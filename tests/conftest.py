"""Shared fixtures: canonical universes and curve zoos."""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro import Universe
from repro.curves.registry import curves_for_universe

# The lint fixtures under tests/devtools/fixtures/ contain *seeded
# violations* for `repro check`; they are lint input, never test code,
# and --doctest-modules must not import them.
collect_ignore_glob = ["devtools/fixtures/*"]


def _default_native_cache() -> Path:
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-sfc"


def _tree_snapshot(root: Path):
    if not root.is_dir():
        return None
    return sorted(str(p.relative_to(root)) for p in root.rglob("*"))


@pytest.fixture(scope="session", autouse=True)
def _isolated_disk_caches(tmp_path_factory):
    """Route every on-disk cache the suite can touch into session tmp.

    Two subsystems persist outside the repo: the native build cache
    (``REPRO_NATIVE_CACHE`` → ``~/.cache/repro-sfc``) and the artifact
    store (``$REPRO_STORE`` as the CLI default).  A test run must leave
    neither fingerprint on the host — compiled kernels land in a
    session-scoped temp dir, the store/crash-injection variables are
    cleared so CLI-default behavior is hermetic, and a before/after
    snapshot of the *real* default cache dir asserts nothing leaked.
    """
    preset = os.environ.get("REPRO_NATIVE_CACHE")
    if not preset:
        os.environ["REPRO_NATIVE_CACHE"] = str(
            tmp_path_factory.mktemp("native-cache")
        )
    saved = {
        name: os.environ.pop(name, None)
        for name in ("REPRO_STORE", "REPRO_STORE_CRASH")
    }
    default_cache = _default_native_cache()
    before = _tree_snapshot(default_cache)
    try:
        yield
    finally:
        after = _tree_snapshot(default_cache)
        if not preset:
            del os.environ["REPRO_NATIVE_CACHE"]
            assert after == before, (
                f"test run leaked into {default_cache}: "
                f"{set(after or []) ^ set(before or [])}"
            )
        for name, value in saved.items():
            if value is not None:
                os.environ[name] = value


@pytest.fixture(autouse=True)
def _isolate_native_warn_once():
    """Restore the native backend's warn-once state around every test.

    ``resolve_backend("native")`` warns exactly once per process when
    the kernels are unavailable.  Without isolation that single shot is
    order-sensitive across the suite: whichever test triggers it first
    spends it, and a reordering (or ``-k`` selection) can mask the
    warning in one test or duplicate it in another.  Snapshot/restore
    makes every test see the state it started with.
    """
    from repro.engine import native

    fired_before = native.warned_once()
    yield
    if not fired_before and native.warned_once():
        native.reset_warned()


@pytest.fixture
def u2_8() -> Universe:
    """The paper's Figure 3/4 grid: d=2, side=8, n=64."""
    return Universe.power_of_two(d=2, k=3)


@pytest.fixture
def u3_4() -> Universe:
    """A 3-D power-of-two grid: d=3, side=4, n=64."""
    return Universe.power_of_two(d=3, k=2)


@pytest.fixture
def u2_2() -> Universe:
    """The Figure 1 grid: d=2, side=2, n=4."""
    return Universe.power_of_two(d=2, k=1)


@pytest.fixture
def zoo_2d(u2_8):
    """Every registered curve instantiable on the 8x8 grid."""
    return curves_for_universe(u2_8)


@pytest.fixture
def zoo_3d(u3_4):
    """Every registered curve instantiable on the 4^3 grid."""
    return curves_for_universe(u3_4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def brute_force_davg(curve) -> float:
    """Slow, obviously-correct D^avg oracle (Definitions 1-2)."""
    from repro.grid.neighbors import neighbors_of

    universe = curve.universe
    total = 0.0
    for cell in universe.iter_cells():
        nbrs = neighbors_of(np.asarray(cell), universe)
        keys = curve.index(nbrs)
        me = int(curve.index(np.asarray(cell)))
        total += float(np.abs(keys - me).mean())
    return total / universe.n


def brute_force_dmax(curve) -> float:
    """Slow, obviously-correct D^max oracle (Definitions 3-4)."""
    from repro.grid.neighbors import neighbors_of

    universe = curve.universe
    total = 0.0
    for cell in universe.iter_cells():
        nbrs = neighbors_of(np.asarray(cell), universe)
        keys = curve.index(nbrs)
        me = int(curve.index(np.asarray(cell)))
        total += float(np.abs(keys - me).max())
    return total / universe.n


def brute_force_allpairs(curve, metric: str = "manhattan") -> float:
    """Slow all-pairs stretch oracle (Section V-B definition verbatim)."""
    from repro.grid.metrics import euclidean, manhattan

    universe = curve.universe
    cells = list(universe.iter_cells())
    n = len(cells)
    total = 0.0
    dist = manhattan if metric == "manhattan" else euclidean
    for i in range(n):
        for j in range(i + 1, n):
            a = np.asarray(cells[i])
            b = np.asarray(cells[j])
            dpi = abs(int(curve.index(a)) - int(curve.index(b)))
            total += dpi / float(dist(a, b))
    return 2.0 * total / (n * (n - 1))
