"""Schema tests: validation, round-trips, JSON-rendering of records."""

import json

import numpy as np
import pytest

from repro import Universe
from repro.engine.sweep import Sweep
from repro.serve.schemas import (
    CellRecord,
    CellSkip,
    SweepRequest,
    SweepResponse,
    jsonable,
)


class TestSweepRequest:
    def test_round_trip(self):
        request = SweepRequest(
            dims=(2,),
            sides=(8, 16),
            universes=((3, 4),),
            curves=("hilbert", "random:seed=3"),
            metrics=("davg", "dmax"),
            chunk_cells=64,
            threads=2,
            strict=True,
            timeout_s=5.0,
        )
        assert SweepRequest.from_dict(request.to_dict()) == request

    def test_round_trip_through_json(self):
        request = SweepRequest(dims=(2,), sides=(8,), threads="auto")
        wire = json.loads(json.dumps(request.to_dict()))
        assert SweepRequest.from_dict(wire) == request

    def test_minimal_universes_only(self):
        request = SweepRequest.from_dict({"universes": [[2, 8]]})
        assert request.universes == ((2, 8),)
        assert request.curves is None

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            SweepRequest.from_dict({"dims": [2], "sides": [8], "side": [8]})

    def test_no_universe_source_rejected(self):
        with pytest.raises(ValueError, match="selects no universes"):
            SweepRequest.from_dict({"curves": ["hilbert"]})

    @pytest.mark.parametrize(
        "payload",
        (
            [],
            {"dims": "2", "sides": [8]},
            {"dims": [2.5], "sides": [8]},
            {"dims": [True], "sides": [8]},
            {"dims": [0], "sides": [8]},
            {"universes": [[2, 8, 9]]},
            {"universes": 7},
            {"dims": [2], "sides": [8], "curves": [""]},
            {"dims": [2], "sides": [8], "curves": "hilbert"},
            {"dims": [2], "sides": [8], "chunk_cells": -1},
            {"dims": [2], "sides": [8], "chunk_cells": True},
            {"dims": [2], "sides": [8], "threads": 0},
            {"dims": [2], "sides": [8], "threads": "many"},
            {"dims": [2], "sides": [8], "strict": 1},
            {"dims": [2], "sides": [8], "timeout_s": 0},
            {"dims": [2], "sides": [8], "timeout_s": "soon"},
        ),
    )
    def test_invalid_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            SweepRequest.from_dict(payload)

    def test_to_sweep_plans_like_the_cli(self):
        request = SweepRequest.from_dict(
            {"dims": [2], "sides": [8], "curves": ["hilbert", "z"]}
        )
        from repro.engine.context import DEFAULT_CACHE_BYTES

        sweep = request.to_sweep(max_bytes=DEFAULT_CACHE_BYTES)
        http_tasks, _ = sweep._plan()
        cli_tasks, _ = Sweep(
            dims=[2], sides=[8], curves=["hilbert", "z"], reports=False
        )._plan()
        assert http_tasks == cli_tasks

    def test_to_sweep_threads_default(self):
        request = SweepRequest.from_dict({"dims": [2], "sides": [8]})
        assert request.to_sweep(None, default_threads=3).threads == 3
        explicit = SweepRequest.from_dict(
            {"dims": [2], "sides": [8], "threads": 2}
        )
        assert explicit.to_sweep(None, default_threads=3).threads == 2


class TestJsonable:
    def test_scalars_pass_through(self):
        assert jsonable(1.5) == 1.5
        assert jsonable(7) == 7
        assert jsonable("x") == "x"
        assert jsonable(None) is None

    def test_numpy_scalars_become_python(self):
        assert jsonable(np.float64(2.25)) == 2.25
        assert type(jsonable(np.float64(2.25))) is float
        assert jsonable(np.int64(9)) == 9
        assert type(jsonable(np.int64(9))) is int

    def test_tuples_become_lists(self):
        assert jsonable((np.int64(1), 2.0)) == [1, 2.0]

    def test_float_json_round_trip_is_exact(self):
        # The property the HTTP-vs-CLI bit-for-bit parity rests on.
        value = 1.2345678901234567
        assert json.loads(json.dumps(jsonable(value))) == value

    def test_unrenderable_raises(self):
        with pytest.raises(TypeError, match="not JSON-renderable"):
            jsonable(np.zeros(3))


class TestResponses:
    def _records(self):
        return Sweep(
            universes=[Universe(d=2, side=4)],
            curves=["z", "simple"],
            metrics=("davg", "lambdas"),
            reports=False,
        ).run().records

    def test_cell_record_renders_sweep_record(self):
        record = self._records()[0]
        cell = CellRecord.from_record(record)
        assert cell.spec == record.spec
        assert cell.n == record.n
        assert cell.values["davg"] == record.values["davg"]
        assert cell.values["lambdas"] == list(record.values["lambdas"])

    def test_response_round_trip(self):
        records = tuple(
            CellRecord.from_record(r) for r in self._records()
        )
        response = SweepResponse(
            records=records,
            skipped=(CellSkip(spec="bogus", d=2, side=4, reason="nope"),),
            deduped_cells=3,
            served_from_warm=1,
        )
        wire = json.loads(json.dumps(response.to_dict()))
        assert SweepResponse.from_dict(wire) == response
