"""Lifecycle tests: clean teardown of the serve stack.

The hard requirement: every shared-memory segment the server created is
unlinked on shutdown — both the in-process :class:`BackgroundServer`
path and the real-process SIGTERM path the CLI smoke exercises.
"""

import json
import os
import re
import signal
import subprocess
import sys
import urllib.request
from multiprocessing import shared_memory
from pathlib import Path

import repro
from repro.serve import BackgroundServer, ServeConfig

from tests.serve.conftest import http as fetch


def assert_unlinked(segment_names):
    for name in segment_names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        raise AssertionError(f"shared-memory segment {name} still exists")


class TestBackgroundServer:
    def test_stop_unlinks_shared_memory(self):
        config = ServeConfig(port=0, hot_set=(("hilbert", 2, 8),))
        server = BackgroundServer(config)
        try:
            _, stats = fetch(server.url + "/stats")
            segments = stats["shm"]["segments"]
            assert segments  # warm start published grids
        finally:
            server.stop()
        assert_unlinked(segments)

    def test_context_manager_round_trip(self):
        with BackgroundServer(ServeConfig(port=0)) as server:
            status, _ = fetch(server.url + "/healthz")
            assert status == 200
            segments = fetch(server.url + "/stats")[1]["shm"]["segments"]
        assert_unlinked(segments)

    def test_ephemeral_ports_are_independent(self):
        with BackgroundServer(ServeConfig(port=0)) as a:
            with BackgroundServer(ServeConfig(port=0)) as b:
                assert a.port != b.port
                assert fetch(b.url + "/healthz")[0] == 200
            assert fetch(a.url + "/healthz")[0] == 200


class TestSigterm:
    def test_sigterm_exits_cleanly_and_unlinks(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--hot-set",
                "hilbert@2x8",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address banner in {banner!r}"
            url = f"http://{match.group(1)}:{match.group(2)}"
            with urllib.request.urlopen(url + "/healthz", timeout=30) as r:
                assert r.status == 200
            with urllib.request.urlopen(url + "/stats", timeout=30) as r:
                stats = json.loads(r.read())
            segments = stats["shm"]["segments"]
            assert segments
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0
        assert "shut down cleanly" in output
        assert_unlinked(segments)
