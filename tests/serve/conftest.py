"""Serve-suite fixtures: one live in-process server per test."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import BackgroundServer, ServeConfig


def http(url: str, payload: dict | None = None, timeout: float = 30.0):
    """``(status, decoded_body)`` for one GET (payload None) or POST."""
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture
def server():
    """A warm in-process server on an ephemeral port (fast teardown)."""
    config = ServeConfig(
        port=0,
        hot_set=(("hilbert", 2, 8),),
        batch_window_s=0.001,
    )
    with BackgroundServer(config) as srv:
        yield srv
