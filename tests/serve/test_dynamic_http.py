"""``POST /dynamic/step``: sessions, parity over HTTP, serialization.

The acceptance-critical one: concurrent step batches against one
session must *serialize* — each batch applies atomically in some order
— which the final point count, step count and an exact
incremental-vs-recompute parity check together witness.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import DynamicStepRequest, DynamicStepResponse

from tests.serve.conftest import http as fetch


def step_url(server):
    return server.url + "/dynamic/step"


CREATE = {"d": 2, "side": 16, "curve": "hilbert", "seed_points": 100, "seed": 1}


class TestSchemas:
    def test_roundtrip(self):
        request = DynamicStepRequest.from_dict(
            {
                "session": "s",
                "create": dict(CREATE),
                "moves": [
                    {"op": "insert", "coords": [1, 2]},
                    {"op": "move", "id": 3, "coords": [0, 0]},
                    {"op": "delete", "id": 4},
                ],
                "verify": True,
            }
        )
        assert request.moves == (
            ("insert", (1, 2)),
            ("move", 3, (0, 0)),
            ("delete", 4),
        )
        assert request.create.seed_points == 100

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"session": ""},
            {"session": "s", "bogus": 1},
            {"session": "s", "moves": [{"op": "teleport"}]},
            {"session": "s", "moves": [{"op": "insert"}]},
            {"session": "s", "moves": [{"op": "delete"}]},
            {"session": "s", "moves": [{"op": "insert", "coords": [1.5]}]},
            {"session": "s", "create": {"d": 2}},
            {"session": "s", "create": {"d": 2, "side": 8, "x": 1}},
            {"session": "s", "verify": "yes"},
        ],
    )
    def test_rejects_bad_bodies(self, body):
        with pytest.raises(ValueError):
            DynamicStepRequest.from_dict(body)

    def test_response_roundtrip(self):
        response = DynamicStepResponse(
            session="s",
            spec="hilbert",
            step=3,
            metrics={"n_points": 5},
            drift=0.1,
            reselections=0,
            created=True,
            parity=True,
        )
        assert (
            DynamicStepResponse.from_dict(
                json.loads(json.dumps(response.to_dict()))
            )
            == response
        )


class TestEndpoint:
    def test_create_step_verify(self, server):
        status, body = fetch(
            step_url(server),
            {"session": "a", "create": dict(CREATE), "verify": True},
        )
        assert status == 200
        assert body["created"] is True
        assert body["parity"] is True
        assert body["metrics"]["n_points"] == 100

        status, body = fetch(
            step_url(server),
            {
                "session": "a",
                "moves": [
                    {"op": "insert", "coords": [3, 3]},
                    {"op": "delete", "id": 0},
                ],
                "verify": True,
            },
        )
        assert status == 200
        assert body["created"] is False
        assert body["parity"] is True
        assert body["metrics"]["n_points"] == 100
        assert body["step"] == 1

    def test_missing_session_404(self, server):
        status, body = fetch(step_url(server), {"session": "ghost"})
        assert status == 404
        assert "create" in body["error"]

    def test_engine_errors_are_400(self, server):
        fetch(
            step_url(server), {"session": "b", "create": dict(CREATE)}
        )
        status, body = fetch(
            step_url(server),
            {"session": "b", "moves": [{"op": "insert", "coords": [99, 0]}]},
        )
        assert status == 400
        assert "outside" in body["error"]
        status, body = fetch(
            step_url(server),
            {"session": "b", "moves": [{"op": "delete", "id": 10**6}]},
        )
        assert status == 400

    def test_malformed_json_400(self, server):
        status, _ = fetch(step_url(server), {"session": ["not-a-str"]})
        assert status == 400

    def test_get_is_405(self, server):
        status, _ = fetch(step_url(server))
        assert status == 405

    def test_stats_exposes_sessions(self, server):
        fetch(
            step_url(server), {"session": "c", "create": dict(CREATE)}
        )
        status, stats = fetch(server.url + "/stats")
        assert status == 200
        assert stats["dynamic"]["sessions"]["c"]["points"] == 100
        assert stats["counters"]["dynamic_requests"] >= 1

    def test_session_cap_429(self, server):
        cap = server.service.config.max_sessions
        for index in range(cap):
            status, _ = fetch(
                step_url(server),
                {"session": f"cap-{index}", "create": {"d": 1, "side": 4}},
            )
            assert status == 200
        status, body = fetch(
            step_url(server),
            {"session": "cap-overflow", "create": {"d": 1, "side": 4}},
        )
        assert status == 429
        assert "session bound" in body["error"]


class TestConcurrency:
    def test_concurrent_batches_serialize(self, server):
        status, body = fetch(
            step_url(server),
            {"session": "conc", "create": dict(CREATE)},
        )
        assert status == 200

        def one_batch(index):
            return fetch(
                step_url(server),
                {
                    "session": "conc",
                    "moves": [
                        # Every batch mutates the same pid, so an
                        # interleaved (non-serialized) application
                        # would corrupt the incremental state.
                        {"op": "move", "id": 0, "coords": [index, index]},
                        {"op": "insert", "coords": [index, 15 - index]},
                    ],
                },
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(one_batch, range(8)))
        assert all(status == 200 for status, _ in outcomes)

        status, body = fetch(
            step_url(server), {"session": "conc", "verify": True}
        )
        assert status == 200
        assert body["parity"] is True
        assert body["metrics"]["n_points"] == 100 + 8
        assert body["step"] == 8

    def test_concurrent_creates_build_one_session(self, server):
        def create(_):
            return fetch(
                step_url(server),
                {"session": "once", "create": dict(CREATE)},
            )

        with ThreadPoolExecutor(max_workers=6) as pool:
            outcomes = list(pool.map(create, range(6)))
        assert all(status == 200 for status, _ in outcomes)
        points = {body["metrics"]["n_points"] for _, body in outcomes}
        assert points == {100}
        status, stats = fetch(server.url + "/stats")
        assert (
            stats["dynamic"]["sessions"]["once"]["points"] == 100
        )
