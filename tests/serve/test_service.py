"""Service-level tests: single-flight, batching, admission, warm start.

These drive :class:`SweepService` coroutines directly on a private
event loop — no sockets — so the dedup/backpressure/timeout behavior is
tested deterministically, one mechanism at a time.
"""

import asyncio
import time

import pytest

from repro.engine.sweep import METRICS, register_metric
from repro.serve.batching import MicroBatcher
from repro.serve.schemas import SweepRequest
from repro.serve.service import ServeConfig, SweepService, parse_hot_set
from repro.serve.singleflight import SingleFlight


def run_with_service(config: ServeConfig, scenario) -> object:
    """Run ``await scenario(service)`` against a started service, with
    the full teardown (shared memory unlinked) on every path."""

    async def main():
        service = SweepService(config)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.aclose()

    return asyncio.run(main())


@pytest.fixture
def sleepy_metric():
    """A registered metric that sleeps, for overlap-sensitive tests."""
    register_metric(
        "serve_test_sleepy",
        lambda ctx: (time.sleep(0.25), 0.0)[1],
        overwrite=True,
        description="test-only: sleeps 0.25s",
    )
    yield "serve_test_sleepy"
    METRICS.pop("serve_test_sleepy", None)


class TestParseHotSet:
    def test_entries(self):
        assert parse_hot_set("hilbert@2x64; random:seed=3@3x16") == (
            ("hilbert", 2, 64),
            ("random:seed=3", 3, 16),
        )

    def test_empty(self):
        assert parse_hot_set("") == ()
        assert parse_hot_set(" ; ") == ()

    @pytest.mark.parametrize(
        "text", ("hilbert", "@2x8", "hilbert@2", "hilbert@ax8", "hilbert@0x8")
    )
    def test_malformed_entries_raise(self, text):
        with pytest.raises(ValueError, match="hot-set"):
            parse_hot_set(text)


class TestSingleFlight:
    def test_admit_and_coalesce(self):
        async def main():
            loop = asyncio.get_running_loop()
            flight = SingleFlight()
            f1, created1 = flight.admit("k", loop)
            f2, created2 = flight.admit("k", loop)
            assert created1 and not created2
            assert f1 is f2
            assert len(flight) == 1 and "k" in flight
            assert flight.new_keys(["k", "j"]) == 1
            flight.resolve("k", 42)
            assert len(flight) == 0
            assert await f1 == 42

        asyncio.run(main())

    def test_resolve_exception_and_unknown_key(self):
        async def main():
            loop = asyncio.get_running_loop()
            flight = SingleFlight()
            future, _ = flight.admit("k", loop)
            flight.resolve("missing", 1)  # ignored
            flight.resolve("k", RuntimeError("boom"))
            flight.resolve("k", 2)  # already resolved: ignored
            with pytest.raises(RuntimeError, match="boom"):
                await future

        asyncio.run(main())

    def test_fail_all(self):
        async def main():
            loop = asyncio.get_running_loop()
            flight = SingleFlight()
            futures = [flight.admit(k, loop)[0] for k in "abc"]
            flight.fail_all(RuntimeError("shutdown"))
            assert len(flight) == 0
            for future in futures:
                with pytest.raises(RuntimeError, match="shutdown"):
                    await future

        asyncio.run(main())


class TestMicroBatcher:
    def test_batches_within_window(self):
        async def main():
            executed = []

            def run_batch(tasks):
                executed.append(list(tasks))
                return [t * 10 for t in tasks]

            results = {}
            batcher = MicroBatcher(
                run_batch, results.__setitem__, window_s=0.05
            )
            await batcher.start()
            for key, task in ((1, 1), (2, 2), (3, 3)):
                batcher.enqueue(key, task)
            await asyncio.sleep(0.3)
            await batcher.aclose()
            assert executed == [[1, 2, 3]]  # one batch, not three
            assert results == {1: 10, 2: 20, 3: 30}
            assert batcher.batches == 1
            assert batcher.batched_cells == 3
            assert batcher.max_batch == 3

        asyncio.run(main())

    def test_batch_level_failure_reaches_every_key(self):
        async def main():
            def run_batch(tasks):
                raise RuntimeError("batch died")

            results = {}
            batcher = MicroBatcher(
                run_batch, results.__setitem__, window_s=0.0
            )
            await batcher.start()
            batcher.enqueue("a", 1)
            batcher.enqueue("b", 2)
            await asyncio.sleep(0.2)
            await batcher.aclose()
            assert set(results) == {"a", "b"}
            assert all(
                isinstance(v, RuntimeError) for v in results.values()
            )

        asyncio.run(main())


def _request(**overrides) -> SweepRequest:
    payload = {"dims": [2], "sides": [8], "curves": ["z"]}
    payload.update(overrides)
    return SweepRequest.from_dict(payload)


class TestAdmission:
    def test_plan_errors_are_400(self):
        async def scenario(service):
            status, payload = await service.handle_sweep(
                _request(curves=["no_such_curve"], strict=True)
            )
            assert status == 400
            assert "no_such_curve" in payload["error"]
            return service.counters["errors"]

        assert run_with_service(ServeConfig(port=0), scenario) == 1

    def test_byte_budget_rejects_oversized(self):
        async def scenario(service):
            status, payload = await service.handle_sweep(
                _request(sides=[64])
            )
            assert status == 413
            assert "chunk_cells" in payload["error"]
            assert service.counters["rejected"] == 1
            # The same geometry chunked fits the budget.
            status, _ = await service.handle_sweep(
                _request(sides=[64], chunk_cells=256)
            )
            assert status == 200

        run_with_service(
            ServeConfig(port=0, max_request_bytes=100_000), scenario
        )

    def test_max_inflight_rejects_with_retry_hint(self):
        async def scenario(service):
            status, payload = await service.handle_sweep(
                _request(curves=["z", "hilbert"])
            )
            assert status == 429
            assert payload["retry_after_s"] > 0
            assert service.counters["rejected"] == 1
            status, _ = await service.handle_sweep(_request(curves=["z"]))
            assert status == 200

        run_with_service(ServeConfig(port=0, max_inflight=1), scenario)

    def test_timeout_is_504_and_computation_survives(self, sleepy_metric):
        async def scenario(service):
            status, payload = await service.handle_sweep(
                _request(metrics=[sleepy_metric], timeout_s=0.05)
            )
            assert status == 504
            assert service.counters["timeouts"] == 1
            # The cell is still in flight — a retry attaches to it and,
            # once the sleep finishes, gets the result.
            assert len(service.flight) == 1
            status, payload = await service.handle_sweep(
                _request(metrics=[sleepy_metric], timeout_s=5.0)
            )
            assert status == 200
            assert payload["deduped_cells"] == 1
            assert payload["records"][0]["values"][sleepy_metric] == 0.0

        run_with_service(ServeConfig(port=0), scenario)

    def test_strict_cell_failure_is_400(self):
        async def scenario(service):
            # Bad spec kwargs fail inside the cell, after planning.
            status, payload = await service.handle_sweep(
                _request(curves=["z:bogus=1"], strict=True)
            )
            assert status == 400
            return payload

        payload = run_with_service(ServeConfig(port=0), scenario)
        assert "z:bogus=1" in payload["error"]

    def test_non_strict_failure_is_a_skip(self):
        async def scenario(service):
            status, payload = await service.handle_sweep(
                _request(curves=["z:bogus=1", "snake"])
            )
            assert status == 200
            assert [r["spec"] for r in payload["records"]] == ["snake"]
            assert payload["skipped"][0]["spec"] == "z:bogus=1"
            assert "construction error" in payload["skipped"][0]["reason"]

        run_with_service(ServeConfig(port=0), scenario)


class TestDedupAndWarm:
    def test_concurrent_identical_requests_compute_once(self):
        async def scenario(service):
            baseline = service.stats_payload()["cache"]["computes"]
            assert baseline.get("key_grid", 0) == 1  # warm hilbert only
            responses = await asyncio.gather(
                *(service.handle_sweep(_request()) for _ in range(5))
            )
            assert [status for status, _ in responses] == [200] * 5
            davgs = {p["records"][0]["values"]["davg"] for _, p in responses}
            assert len(davgs) == 1
            # One z context, one key grid build — across five requests.
            computes = service.stats_payload()["cache"]["computes"]
            assert computes["key_grid"] == 2
            assert service.counters["cells_started"] == 1
            assert service.flight.coalesced == 4
            deduped = sorted(p["deduped_cells"] for _, p in responses)
            assert deduped == [0, 1, 1, 1, 1]

        run_with_service(
            ServeConfig(
                port=0,
                hot_set=(("hilbert", 2, 8),),
                batch_window_s=0.2,
            ),
            scenario,
        )

    def test_warm_cells_are_counted(self):
        async def scenario(service):
            status, payload = await service.handle_sweep(
                _request(curves=["hilbert", "z"])
            )
            assert status == 200
            assert payload["served_from_warm"] == 1
            stats = service.stats_payload()
            assert stats["counters"]["served_from_warm"] == 1
            assert stats["warm_pairs"] == ["hilbert@2x8"]
            assert stats["shm"]["segments"]

        run_with_service(
            ServeConfig(port=0, hot_set=(("hilbert", 2, 8),)), scenario
        )

    def test_bad_hot_set_fails_startup(self):
        with pytest.raises((ValueError, KeyError)):
            SweepService(
                ServeConfig(port=0, hot_set=(("no_such_curve", 2, 8),))
            )

    def test_estimate_task_bytes(self):
        dense = list(range(12))
        dense[0], dense[1], dense[9] = 2, 64, None
        chunked = list(dense)
        chunked[9] = 256
        assert SweepService.estimate_task_bytes(tuple(dense)) == 64**2 * 8 * 4
        assert SweepService.estimate_task_bytes(tuple(chunked)) == 256 * 64
