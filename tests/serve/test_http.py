"""HTTP-level tests against a live in-process server.

The acceptance-critical ones: a sweep over HTTP is bit-for-bit the CLI
sweep, and N concurrent identical requests compute each canonical cell
exactly once (asserted through the engine's cache counters).
"""

import http.client
import json
from concurrent.futures import ThreadPoolExecutor

from repro.engine.sweep import Sweep
from repro.serve import SweepResponse

from tests.serve.conftest import http as fetch

SWEEP_BODY = {"dims": [2], "sides": [8], "curves": ["hilbert", "z", "gray"]}


class TestEndpoints:
    def test_healthz(self, server):
        assert fetch(server.url + "/healthz") == (200, {"status": "ok"})

    def test_stats_shape(self, server):
        status, stats = fetch(server.url + "/stats")
        assert status == 200
        assert set(stats) >= {"cache", "counters", "inflight", "shm"}
        assert stats["warm_pairs"] == ["hilbert@2x8"]
        assert stats["shm"]["segments"]
        assert stats["cache"]["computes"]["key_grid"] == 1

    def test_unknown_route_404(self, server):
        status, payload = fetch(server.url + "/nope")
        assert status == 404
        assert "no route" in payload["error"]

    def test_wrong_method_405(self, server):
        status, _ = fetch(server.url + "/stats", payload={})
        assert status == 405
        status, _ = fetch(server.url + "/healthz", payload={})
        assert status == 405

    def test_invalid_json_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            connection.request("POST", "/sweep", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
            assert "invalid JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_unknown_field_400(self, server):
        status, payload = fetch(
            server.url + "/sweep", payload={"dims": [2], "side": [8]}
        )
        assert status == 400
        assert "unknown request fields" in payload["error"]

    def test_malformed_request_line_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            reply = sock.recv(4096)
        assert b"400" in reply.split(b"\r\n", 1)[0]

    def test_keep_alive_reuses_connection(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port)
        try:
            for _ in range(3):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()


class TestSweepParity:
    def test_http_matches_cli_bit_for_bit(self, server):
        status, payload = fetch(server.url + "/sweep", payload=SWEEP_BODY)
        assert status == 200
        response = SweepResponse.from_dict(payload)
        cli = Sweep(
            dims=[2], sides=[8], curves=SWEEP_BODY["curves"], reports=False
        ).run()
        assert not cli.skipped and not response.skipped
        assert len(response.records) == len(cli.records)
        for http_rec, cli_rec in zip(response.records, cli.records):
            assert http_rec.spec == cli_rec.spec
            assert http_rec.curve == cli_rec.curve_name
            assert (http_rec.d, http_rec.side, http_rec.n) == (
                cli_rec.d,
                cli_rec.side,
                cli_rec.n,
            )
            assert set(http_rec.values) == set(cli_rec.values)
            for label, value in cli_rec.values.items():
                expected = (
                    list(value) if isinstance(value, tuple) else value
                )
                # == (not approx): JSON round-trips float64 exactly.
                assert http_rec.values[label] == expected

    def test_repeat_request_hits_caches(self, server):
        fetch(server.url + "/sweep", payload=SWEEP_BODY)
        _, before = fetch(server.url + "/stats")
        fetch(server.url + "/sweep", payload=SWEEP_BODY)
        _, after = fetch(server.url + "/stats")
        # Second pass builds no new key grids; the scalar memos answer.
        assert (
            after["cache"]["computes"]["key_grid"]
            == before["cache"]["computes"]["key_grid"]
        )
        assert after["cache"]["hits"] >= before["cache"]["hits"]


class TestConcurrentDedup:
    def test_identical_requests_compute_each_cell_once(self):
        from repro.serve import BackgroundServer, ServeConfig

        # A wide batch window guarantees all eight requests land while
        # the first cell is still pending, so the single-flight numbers
        # are exact (the engine-counter assertions hold regardless).
        config = ServeConfig(
            port=0, hot_set=(("hilbert", 2, 8),), batch_window_s=0.5
        )
        body = {"dims": [2], "sides": [8], "curves": ["z"]}
        with BackgroundServer(config) as server:
            _, before = fetch(server.url + "/stats")
            assert before["cache"]["computes"]["key_grid"] == 1  # warm set
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(
                    pool.map(
                        lambda _: fetch(server.url + "/sweep", payload=body),
                        range(8),
                    )
                )
            assert [status for status, _ in results] == [200] * 8
            values = {
                payload["records"][0]["values"]["davg"]
                for _, payload in results
            }
            assert len(values) == 1
            _, after = fetch(server.url + "/stats")
            # Eight requests, one z context, one key-grid build.
            assert after["cache"]["computes"]["key_grid"] == 2
            assert after["counters"]["cells_started"] == 1
            assert after["counters"]["deduped_cells"] == 7
            assert after["counters"]["requests"] >= 8


class TestBackendOverHTTP:
    """`repro serve --backend native` stays bit-for-bit the CLI and
    reports the serving backend in /stats (degrades to numpy cleanly
    on compilerless hosts, so no skip guard)."""

    def test_native_server_matches_cli_and_reports_backend(self):
        from repro.serve import BackgroundServer, ServeConfig

        config = ServeConfig(
            port=0,
            hot_set=(("hilbert", 2, 8),),
            batch_window_s=0.001,
            backend="native",
        )
        with BackgroundServer(config) as server:
            status, payload = fetch(
                server.url + "/sweep", payload=SWEEP_BODY
            )
            assert status == 200
            response = SweepResponse.from_dict(payload)
            cli = Sweep(
                dims=[2],
                sides=[8],
                curves=SWEEP_BODY["curves"],
                reports=False,
            ).run()
            assert len(response.records) == len(cli.records)
            for http_rec, cli_rec in zip(response.records, cli.records):
                for label, value in cli_rec.values.items():
                    expected = (
                        list(value) if isinstance(value, tuple) else value
                    )
                    assert http_rec.values[label] == expected
            status, stats = fetch(server.url + "/stats")
            assert status == 200
            assert stats["backend"] == "native"
            served = stats["cache"]["backends"]
            # Which backend actually served depends on host compiler
            # availability, but every cell must be accounted for.
            assert sum(served.values()) == len(SWEEP_BODY["curves"])
            assert set(served) <= {"numpy", "native"}

    def test_per_request_backend_override(self, server):
        body = dict(SWEEP_BODY, backend="numpy")
        status, _ = fetch(server.url + "/sweep", payload=body)
        assert status == 200
        status, stats = fetch(server.url + "/stats")
        assert stats["cache"]["backends"].get("numpy", 0) >= len(
            SWEEP_BODY["curves"]
        )

    def test_bad_backend_400(self, server):
        status, payload = fetch(
            server.url + "/sweep",
            payload=dict(SWEEP_BODY, backend="cuda"),
        )
        assert status == 400
        assert "backend" in payload["error"]


class TestPersistentStore:
    """`--store`: grids survive server restarts as mmap artifacts."""

    def test_restart_warm_starts_from_store(self, tmp_path):
        from repro.serve import BackgroundServer, ServeConfig

        config = ServeConfig(
            port=0, batch_window_s=0.001, store_dir=str(tmp_path)
        )
        with BackgroundServer(config) as server:
            status, first = fetch(
                server.url + "/sweep", payload=SWEEP_BODY
            )
            assert status == 200
            _, cold = fetch(server.url + "/stats")
        assert cold["store"]["dir"] == str(tmp_path)
        assert cold["store"]["entries"] > 0
        assert cold["store"]["quarantined"] == 0
        assert cold["cache"]["computes"]["key_grid"] >= 1

        # a second server lifetime over the same directory: identical
        # records, and the grids come back as mmap hits, not computes
        with BackgroundServer(config) as server:
            status, second = fetch(
                server.url + "/sweep", payload=SWEEP_BODY
            )
            assert status == 200
            _, warm = fetch(server.url + "/stats")
        assert second["records"] == first["records"]
        assert sum(warm["cache"]["mmap"].values()) > 0
        assert warm["cache"]["computes"].get("key_grid", 0) == 0

    def test_stats_has_no_store_section_when_unconfigured(self, server):
        _, stats = fetch(server.url + "/stats")
        assert "store" not in stats
        assert stats["cache"]["mmap"] == {}
