"""Tests for the SFC range-query index."""

import numpy as np
import pytest

from repro import Universe
from repro.analysis.clustering import cluster_count, rectangle_cells
from repro.apps.rangequery import QueryCost, SFCIndex
from repro.curves.hilbert import HilbertCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.zcurve import ZCurve


class TestQueryRuns:
    def test_runs_cover_exactly_the_box(self, u2_8):
        """Oracle check: cells returned by runs == brute-force box cells."""
        index = SFCIndex(ZCurve(u2_8))
        lo, hi = (1, 2), (5, 7)
        got = {tuple(r) for r in index.query_cells(lo, hi)}
        expected = {tuple(r) for r in rectangle_cells(u2_8, lo, hi)}
        assert got == expected

    def test_runs_cover_hilbert(self, u2_8):
        index = SFCIndex(HilbertCurve(u2_8))
        lo, hi = (0, 3), (6, 8)
        got = {tuple(r) for r in index.query_cells(lo, hi)}
        expected = {tuple(r) for r in rectangle_cells(u2_8, lo, hi)}
        assert got == expected

    def test_runs_are_disjoint_and_sorted(self, u2_8):
        runs = SFCIndex(ZCurve(u2_8)).query_runs((1, 1), (6, 6))
        for (a1, b1), (a2, b2) in zip(runs[:-1], runs[1:]):
            assert b1 + 1 < a2  # gap between runs, else they'd merge
        assert all(a <= b for a, b in runs)

    def test_run_count_is_cluster_count(self, u2_8):
        z = ZCurve(u2_8)
        index = SFCIndex(z)
        lo, hi = (2, 0), (7, 5)
        assert len(index.query_runs(lo, hi)) == cluster_count(z, lo, hi)

    def test_aligned_quadrant_single_run(self, u2_8):
        runs = SFCIndex(ZCurve(u2_8)).query_runs((0, 0), (4, 4))
        assert runs == [(0, 15)]


class TestQueryCost:
    def test_total_formula(self):
        cost = QueryCost(runs=3, cells_read=20, seek_cost=10.0, scan_cost=1.0)
        assert cost.total == 50.0

    def test_cells_read_equals_volume(self, u2_8):
        index = SFCIndex(ZCurve(u2_8))
        cost = index.query_cost((1, 1), (4, 5))
        assert cost.cells_read == 3 * 4

    def test_rejects_negative_costs(self, u2_8):
        with pytest.raises(ValueError):
            SFCIndex(ZCurve(u2_8), seek_cost=-1.0)

    def test_average_cost_deterministic(self, u2_8):
        index = SFCIndex(ZCurve(u2_8))
        a = index.average_query_cost((3, 3), n_samples=20, seed=7)
        b = index.average_query_cost((3, 3), n_samples=20, seed=7)
        assert a == b

    def test_structured_beats_random(self, u2_8):
        """Random bijections shatter every box into ~volume runs."""
        cost_z = SFCIndex(ZCurve(u2_8)).average_query_cost(
            (4, 4), n_samples=30, seed=0
        )
        cost_r = SFCIndex(RandomCurve(u2_8)).average_query_cost(
            (4, 4), n_samples=30, seed=0
        )
        assert cost_z < cost_r

    def test_random_curve_worst_case_runs(self, u2_8):
        """A random bijection's box of volume v needs ≈ v runs."""
        index = SFCIndex(RandomCurve(u2_8, seed=5))
        runs = index.query_runs((0, 0), (4, 4))
        assert len(runs) > 10  # nearly one run per cell

    def test_seek_scan_tradeoff(self, u2_8):
        """Higher seek cost penalizes fragmented curves more."""
        z, r = ZCurve(u2_8), RandomCurve(u2_8)
        cheap_seek_gap = SFCIndex(r, seek_cost=0.0).average_query_cost(
            (3, 3), 20, seed=1
        ) - SFCIndex(z, seek_cost=0.0).average_query_cost((3, 3), 20, seed=1)
        dear_seek_gap = SFCIndex(r, seek_cost=50.0).average_query_cost(
            (3, 3), 20, seed=1
        ) - SFCIndex(z, seek_cost=50.0).average_query_cost((3, 3), 20, seed=1)
        assert dear_seek_gap > cheap_seek_gap
        assert cheap_seek_gap == pytest.approx(0.0)  # same volume read


class TestContextAcceptance:
    def test_index_accepts_context(self, u2_8):
        from repro.engine.context import get_context
        from repro.curves.zcurve import ZCurve

        curve = ZCurve(u2_8)
        via_curve = SFCIndex(curve).query_runs((1, 2), (5, 7))
        via_ctx = SFCIndex(get_context(curve)).query_runs((1, 2), (5, 7))
        assert via_curve == via_ctx

    def test_queries_reuse_cached_inverse(self, u2_8):
        from repro.engine.context import MetricContext
        from repro.curves.zcurve import ZCurve

        ctx = MetricContext(ZCurve(u2_8))
        index = SFCIndex(ctx)
        index.query_cells((0, 0), (3, 3))
        index.query_cells((2, 2), (6, 6))
        assert ctx.stats.compute_count("inverse_perm") == 1
        assert ctx.stats.compute_count("key_grid") == 1


class TestThreadedQueries:
    """average_query_cost on a threaded context (PR 6): per-box costs
    merge in submission order, so the float accumulation replays the
    serial addition sequence bit for bit."""

    def test_threaded_matches_serial(self, u2_8):
        from repro.curves.zcurve import ZCurve
        from repro.engine.context import MetricContext

        serial = SFCIndex(ZCurve(u2_8)).average_query_cost((3, 3), 50, seed=2)
        for threads in (2, 4):
            ctx = MetricContext(ZCurve(u2_8), threads=threads)
            assert SFCIndex(ctx).average_query_cost((3, 3), 50, seed=2) == serial

    def test_threaded_chunked_matches_serial(self, u2_8):
        from repro.curves.zcurve import ZCurve
        from repro.engine.context import MetricContext

        serial = SFCIndex(ZCurve(u2_8)).average_query_cost((2, 4), 30, seed=6)
        ctx = MetricContext(ZCurve(u2_8), chunk_cells=9, threads=2)
        assert SFCIndex(ctx).average_query_cost((2, 4), 30, seed=6) == serial
