"""Tests for the halo-exchange cost model."""

import numpy as np
import pytest

from repro import Universe
from repro.apps.halo import halo_exchange
from repro.apps.partition import edge_cut, partition_by_curve
from repro.curves.hilbert import HilbertCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve


class TestHaloExchange:
    def test_single_part_no_traffic(self, u2_8):
        result = halo_exchange(ZCurve(u2_8), 1)
        assert result.ghost_cells == 0
        assert result.messages == 0
        assert result.max_partners == 0

    def test_ghosts_bounded_by_directed_cut(self, u2_8):
        """Deduplication can only reduce: ghosts ≤ 2 x edge cut."""
        z = ZCurve(u2_8)
        labels = partition_by_curve(z, 4)
        cut = edge_cut(u2_8, labels)
        result = halo_exchange(z, 4)
        assert result.ghost_cells <= 2 * cut
        assert result.ghost_cells > 0

    def test_two_halves_exact(self, u2_8):
        """Simple curve, 2 parts = bottom/top halves: each side sends
        its 8 face cells to the other; 2 messages."""
        result = halo_exchange(SimpleCurve(u2_8), 2)
        assert result.ghost_cells == 16
        assert result.messages == 2
        assert result.max_partners == 1

    def test_messages_symmetric(self, u2_8):
        """Grid adjacency is symmetric, so the message matrix is too:
        message count is even."""
        for parts in (2, 4, 8):
            result = halo_exchange(HilbertCurve(u2_8), parts)
            assert result.messages % 2 == 0

    def test_locality_curves_fewer_partners(self):
        """Compact parts talk to O(1) neighbors; random fragments talk
        to almost everyone."""
        u = Universe.power_of_two(d=2, k=5)
        parts = 16
        h = halo_exchange(HilbertCurve(u), parts)
        r = halo_exchange(RandomCurve(u), parts)
        assert h.max_partners < parts - 1
        assert r.max_partners == parts - 1  # talks to all others
        assert h.ghost_cells < r.ghost_cells / 2

    def test_dedup_matters_for_corner_cells(self):
        """A cell adjacent to two cells of the same foreign part is
        shipped once: ghosts < directed cut for quadrant partitions of
        strip-shaped parts."""
        u = Universe.power_of_two(d=2, k=4)
        s = SimpleCurve(u)
        labels = partition_by_curve(s, 8)
        cut = edge_cut(u, labels)
        result = halo_exchange(s, 8)
        # Strips of height 2: interior strip cells never duplicate, so
        # equality holds here; quadrant corners would dedup.  Just pin
        # the invariant both ways.
        assert result.ghost_cells <= 2 * cut

    def test_weighted_partition_supported(self, u2_8):
        weights = np.ones(u2_8.shape)
        weights[:4, :] = 5.0
        result = halo_exchange(ZCurve(u2_8), 4, weights)
        assert result.ghost_cells > 0

    def test_mean_partners(self, u2_8):
        result = halo_exchange(ZCurve(u2_8), 4)
        assert result.mean_partners == result.messages / 4
