"""Tests for SFC domain decomposition."""

import numpy as np
import pytest

from repro import Universe
from repro.apps.partition import (
    edge_cut,
    load_imbalance,
    partition_by_curve,
    partition_quality,
)
from repro.curves.hilbert import HilbertCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve


class TestPartitionByCurve:
    def test_labels_shape_and_range(self, u2_8):
        labels = partition_by_curve(ZCurve(u2_8), 4)
        assert labels.shape == u2_8.shape
        assert labels.min() == 0
        assert labels.max() == 3

    def test_equal_counts_without_weights(self, u2_8):
        labels = partition_by_curve(ZCurve(u2_8), 4)
        counts = np.bincount(labels.reshape(-1))
        assert counts.tolist() == [16, 16, 16, 16]

    def test_parts_are_curve_contiguous(self, u2_8):
        """Each part is a contiguous curve segment (the defining
        property of SFC partitioning)."""
        z = ZCurve(u2_8)
        labels = partition_by_curve(z, 4)
        along_curve = labels.reshape(-1)[np.argsort(z.key_grid().reshape(-1))]
        # labels along the curve must be sorted.
        assert np.all(np.diff(along_curve) >= 0)

    def test_single_part(self, u2_8):
        labels = partition_by_curve(ZCurve(u2_8), 1)
        assert np.all(labels == 0)

    def test_n_parts_equals_n(self, u2_8):
        labels = partition_by_curve(ZCurve(u2_8), u2_8.n)
        assert len(np.unique(labels)) == u2_8.n

    def test_rejects_bad_parts(self, u2_8):
        with pytest.raises(ValueError):
            partition_by_curve(ZCurve(u2_8), 0)
        with pytest.raises(ValueError):
            partition_by_curve(ZCurve(u2_8), u2_8.n + 1)

    def test_weighted_split_balances_mass(self, u2_8):
        """Heavy half of the grid gets more parts under weighting."""
        weights = np.ones(u2_8.shape)
        weights[4:, :] = 10.0  # right half is heavy
        labels = partition_by_curve(ZCurve(u2_8), 4, weights)
        imbalance = load_imbalance(labels, 4, weights)
        uniform_labels = partition_by_curve(ZCurve(u2_8), 4)
        uniform_imbalance = load_imbalance(uniform_labels, 4, weights)
        assert imbalance < uniform_imbalance

    def test_weight_shape_mismatch(self, u2_8):
        with pytest.raises(ValueError, match="shape"):
            partition_by_curve(ZCurve(u2_8), 2, np.ones((4, 4)))

    def test_negative_weights_rejected(self, u2_8):
        weights = np.ones(u2_8.shape)
        weights[0, 0] = -1
        with pytest.raises(ValueError, match="non-negative"):
            partition_by_curve(ZCurve(u2_8), 2, weights)

    def test_zero_total_weight_falls_back(self, u2_8):
        labels = partition_by_curve(ZCurve(u2_8), 4, np.zeros(u2_8.shape))
        assert len(np.unique(labels)) == 4


class TestQualityMetrics:
    def test_imbalance_perfect(self, u2_8):
        labels = partition_by_curve(ZCurve(u2_8), 4)
        assert load_imbalance(labels, 4) == 1.0

    def test_imbalance_rejects_zero_load(self):
        with pytest.raises(ValueError):
            load_imbalance(np.zeros((2, 2), dtype=int), 2, np.zeros((2, 2)))

    def test_edge_cut_counts_crossings(self, u2_8):
        """Splitting the 8x8 grid into two x-halves cuts exactly 8 pairs."""
        labels = np.zeros(u2_8.shape, dtype=np.int64)
        labels[4:, :] = 1
        assert edge_cut(u2_8, labels) == 8

    def test_edge_cut_zero_for_single_part(self, u2_8):
        assert edge_cut(u2_8, np.zeros(u2_8.shape, dtype=int)) == 0

    def test_edge_cut_shape_check(self, u2_8):
        with pytest.raises(ValueError):
            edge_cut(u2_8, np.zeros((4, 4), dtype=int))

    def test_partition_quality_struct(self, u2_8):
        q = partition_quality(ZCurve(u2_8), 8)
        assert q.n_parts == 8
        assert 0 < q.cut_fraction < 1
        assert q.imbalance >= 1.0


class TestSurfaceMetrics:
    def test_surface_counts_sum_to_twice_cut(self, u2_8):
        from repro.apps.partition import part_surface_counts

        labels = partition_by_curve(ZCurve(u2_8), 4)
        surface = part_surface_counts(u2_8, labels)
        assert surface.sum() == 2 * edge_cut(u2_8, labels)

    def test_surface_single_part_zero(self, u2_8):
        from repro.apps.partition import part_surface_counts

        labels = np.zeros(u2_8.shape, dtype=np.int64)
        assert part_surface_counts(u2_8, labels).tolist() == [0]

    def test_half_split_surface(self, u2_8):
        from repro.apps.partition import part_surface_counts

        labels = np.zeros(u2_8.shape, dtype=np.int64)
        labels[4:, :] = 1
        assert part_surface_counts(u2_8, labels).tolist() == [8, 8]

    def test_surface_to_volume_compactness(self):
        """Quadrant blocks are more compact than strips."""
        from repro.apps.partition import mean_surface_to_volume

        u = Universe.power_of_two(d=2, k=4)
        z_labels = partition_by_curve(ZCurve(u), 4)  # 8x8 quadrants
        s_labels = partition_by_curve(SimpleCurve(u), 4)  # 16x4 strips
        assert mean_surface_to_volume(u, z_labels) < mean_surface_to_volume(
            u, s_labels
        )

    def test_surface_to_volume_rejects_empty_part(self, u2_8):
        from repro.apps.partition import mean_surface_to_volume

        labels = np.zeros(u2_8.shape, dtype=np.int64)
        labels[0, 0] = 2  # part 1 empty
        with pytest.raises(ValueError, match="non-empty"):
            mean_surface_to_volume(u2_8, labels)

    def test_shape_check(self, u2_8):
        from repro.apps.partition import part_surface_counts

        with pytest.raises(ValueError):
            part_surface_counts(u2_8, np.zeros((4, 4), dtype=int))


class TestCurveComparison:
    def test_locality_curves_beat_random(self, u2_8):
        """The application-level payoff of stretch: structured curves
        cut far fewer NN pairs than a random bijection."""
        cut_h = partition_quality(HilbertCurve(u2_8), 8).edge_cut
        cut_r = partition_quality(RandomCurve(u2_8), 8).edge_cut
        assert cut_h < cut_r / 2

    def test_hilbert_and_z_beat_simple_at_many_parts(self):
        """Recursive curves produce compact parts; strips of the simple
        curve get long and thin as p grows."""
        u = Universe.power_of_two(d=2, k=5)
        cut_z = partition_quality(ZCurve(u), 32).edge_cut
        cut_s = partition_quality(SimpleCurve(u), 32).edge_cut
        assert cut_z < cut_s


class TestChunkedPartition:
    """Chunked contexts partition (weighted included, PR 6) bit-for-bit
    like the dense path."""

    @pytest.mark.parametrize("chunk", (1, 7, 16, 100))
    def test_unweighted_labels_match_dense(self, u2_8, chunk):
        from repro.engine.context import MetricContext

        dense = partition_by_curve(ZCurve(u2_8), 4)
        ctx = MetricContext(ZCurve(u2_8), chunk_cells=chunk)
        assert np.array_equal(partition_by_curve(ctx, 4), dense)

    @pytest.mark.parametrize("chunk", (1, 7, 16, 100))
    def test_weighted_labels_match_dense(self, u2_8, chunk):
        from repro.engine.context import MetricContext

        weights = np.ones(u2_8.shape)
        weights[4:, :] = 10.0
        dense = partition_by_curve(ZCurve(u2_8), 4, weights)
        ctx = MetricContext(ZCurve(u2_8), chunk_cells=chunk)
        assert np.array_equal(partition_by_curve(ctx, 4, weights), dense)

    def test_weighted_quality_matches_dense(self, u2_8):
        from repro.engine.context import MetricContext

        rng = np.random.default_rng(3)
        weights = rng.random(u2_8.shape)
        dense = partition_quality(ZCurve(u2_8), 6, weights)
        ctx = MetricContext(ZCurve(u2_8), chunk_cells=9)
        assert partition_quality(ctx, 6, weights) == dense

    def test_unweighted_quality_matches_dense(self, u2_8):
        from repro.engine.context import MetricContext

        dense = partition_quality(ZCurve(u2_8), 5)
        ctx = MetricContext(ZCurve(u2_8), chunk_cells=9)
        assert partition_quality(ctx, 5) == dense

    def test_chunked_rejects_bad_parts(self, u2_8):
        from repro.engine.context import MetricContext

        ctx = MetricContext(ZCurve(u2_8), chunk_cells=8)
        with pytest.raises(ValueError):
            partition_by_curve(ctx, 0)
        with pytest.raises(ValueError):
            partition_by_curve(ctx, u2_8.n + 1, np.ones(u2_8.shape))


class TestContextAcceptance:
    def test_partition_accepts_context(self, u2_8):
        from repro.engine.context import get_context

        curve = ZCurve(u2_8)
        via_curve = partition_by_curve(curve, 4)
        via_ctx = partition_by_curve(get_context(curve), 4)
        assert np.array_equal(via_curve, via_ctx)

    def test_quality_accepts_context(self, u2_8):
        from repro.engine.context import get_context

        curve = HilbertCurve(u2_8)
        assert partition_quality(get_context(curve), 8) == partition_quality(
            curve, 8
        )

    def test_halo_accepts_context(self, u2_8):
        from repro.apps.halo import halo_exchange
        from repro.engine.context import get_context

        curve = ZCurve(u2_8)
        assert halo_exchange(get_context(curve), 4) == halo_exchange(curve, 4)
