"""Tests for the N-body neighbor-sweep substrate."""

import numpy as np
import pytest

from repro import Universe
from repro.apps.nbody import (
    ParticleStore,
    neighbor_recall,
    sweep_cost,
    window_for_target_recall,
)
from repro.curves.hilbert import HilbertCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.zcurve import ZCurve


class TestParticleStore:
    def test_sorted_by_key(self, u2_8):
        store = ParticleStore.uniform_random(ZCurve(u2_8), 100, seed=0)
        assert np.all(np.diff(store.keys) >= 0)

    def test_len(self, u2_8):
        store = ParticleStore.uniform_random(ZCurve(u2_8), 37, seed=0)
        assert len(store) == 37

    def test_positions_in_bounds(self, u2_8):
        store = ParticleStore.uniform_random(ZCurve(u2_8), 50, seed=1)
        assert bool(np.all(u2_8.contains(store.positions)))

    def test_rejects_bad_positions(self, u2_8):
        with pytest.raises(ValueError):
            ParticleStore(ZCurve(u2_8), np.array([[8, 0]]))

    def test_rejects_1d_positions(self, u2_8):
        with pytest.raises(ValueError):
            ParticleStore(ZCurve(u2_8), np.array([1, 2]))

    def test_window_candidates(self, u2_8):
        store = ParticleStore.uniform_random(ZCurve(u2_8), 20, seed=0)
        cands = store.window_candidates(10, 3)
        assert 10 not in cands
        assert cands.min() >= 7
        assert cands.max() <= 13

    def test_window_candidates_boundary(self, u2_8):
        store = ParticleStore.uniform_random(ZCurve(u2_8), 20, seed=0)
        assert store.window_candidates(0, 5).min() == 1
        with pytest.raises(IndexError):
            store.window_candidates(20, 2)

    def test_true_grid_neighbors(self, u2_8):
        positions = np.array([[0, 0], [1, 0], [2, 0], [0, 1], [5, 5]])
        store = ParticleStore(ZCurve(u2_8), positions)
        me = int(np.nonzero((store.positions == [0, 0]).all(axis=1))[0][0])
        nbrs = store.true_grid_neighbors(me)
        nbr_cells = {tuple(r) for r in store.positions[nbrs]}
        assert nbr_cells == {(1, 0), (0, 1)}


class TestNeighborRecall:
    def test_zero_window(self, u2_8):
        assert neighbor_recall(ZCurve(u2_8), 0) == 0.0

    def test_full_window(self, u2_8):
        assert neighbor_recall(ZCurve(u2_8), u2_8.n) == 1.0

    def test_monotone(self, u2_8):
        z = ZCurve(u2_8)
        values = [neighbor_recall(z, w) for w in (1, 2, 4, 8, 16)]
        assert values == sorted(values)

    def test_matches_ccdf(self, u2_8):
        from repro.analysis.distribution import nn_distance_ccdf

        z = ZCurve(u2_8)
        ccdf = nn_distance_ccdf(z, [4])
        assert neighbor_recall(z, 4) == pytest.approx(1.0 - ccdf[4])

    def test_hilbert_beats_random(self, u2_8):
        for w in (2, 4, 8):
            assert neighbor_recall(HilbertCurve(u2_8), w) > neighbor_recall(
                RandomCurve(u2_8), w
            )

    def test_rejects_negative(self, u2_8):
        with pytest.raises(ValueError):
            neighbor_recall(ZCurve(u2_8), -1)


class TestSweepCost:
    def test_one_particle_per_cell_full_recall(self, u2_8):
        """With all cells occupied and a max window, recall is 1."""
        z = ZCurve(u2_8)
        store = ParticleStore(z, u2_8.all_coords())
        result = sweep_cost(store, window=u2_8.n)
        assert result.recall == pytest.approx(1.0)

    def test_recall_grows_with_window(self, u2_8):
        z = ZCurve(u2_8)
        store = ParticleStore(z, u2_8.all_coords())
        small = sweep_cost(store, 2)
        large = sweep_cost(store, 16)
        assert small.recall <= large.recall

    def test_efficiency_decreases_with_window(self, u2_8):
        z = ZCurve(u2_8)
        store = ParticleStore(z, u2_8.all_coords())
        tight = sweep_cost(store, 4)
        loose = sweep_cost(store, 32)
        assert tight.efficiency >= loose.efficiency

    def test_cell_recall_consistency(self, u2_8):
        """One particle per cell: sweep recall equals cell-level recall
        from the NN-distance distribution."""
        z = ZCurve(u2_8)
        store = ParticleStore(z, u2_8.all_coords())
        w = 8
        assert sweep_cost(store, w).recall == pytest.approx(
            neighbor_recall(z, w)
        )

    def test_empty_window(self, u2_8):
        z = ZCurve(u2_8)
        store = ParticleStore(z, u2_8.all_coords())
        result = sweep_cost(store, 0)
        assert result.interactions_found == 0
        assert result.candidates_examined == 0

    def test_rejects_negative_window(self, u2_8):
        store = ParticleStore.uniform_random(ZCurve(u2_8), 5, seed=0)
        with pytest.raises(ValueError):
            sweep_cost(store, -1)


class TestWindowForTargetRecall:
    def test_hilbert_needs_smaller_window(self, u2_8):
        """The application consequence of smaller NN-stretch."""
        w_h = window_for_target_recall(HilbertCurve(u2_8), 0.9)
        w_r = window_for_target_recall(RandomCurve(u2_8), 0.9)
        assert w_h < w_r


class TestDynamicRebase:
    """The DynamicUniverse-backed store matches the historical
    encode + stable-argsort construction bit for bit, and moves keep
    it sorted with exact metric parity."""

    def test_construction_bit_for_bit(self, u2_8):
        from repro.engine.context import get_context

        curve = HilbertCurve(u2_8)
        ctx = get_context(curve)
        rng = np.random.default_rng(3)
        pos = rng.integers(0, u2_8.side, size=(150, 2), dtype=np.int64)
        store = ParticleStore(curve, pos)
        keys = ctx.curve.keys_of(pos, backend=ctx.backend)
        sort = np.argsort(keys, kind="stable")
        assert np.array_equal(store.positions, pos[sort])
        assert np.array_equal(store.keys, keys[sort])

    def test_apply_moves_keeps_order_and_parity(self, u2_8):
        store = ParticleStore.uniform_random(ZCurve(u2_8), 60, seed=4)
        pids = store.pids()
        metrics = store.apply_moves(
            [
                ("move", int(pids[0]), (0, 0)),
                ("insert", (7, 7)),
                ("delete", int(pids[10])),
            ]
        )
        assert len(store) == 60
        assert np.array_equal(store.keys, np.sort(store.keys))
        assert metrics == store.dynamic.recompute()

    def test_empty_store(self, u2_8):
        store = ParticleStore(
            ZCurve(u2_8), np.empty((0, 2), dtype=np.int64)
        )
        assert len(store) == 0
        assert store.positions.shape == (0, 2)
