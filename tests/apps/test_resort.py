"""Tests for the drifting-particle resort substrate."""

import numpy as np
import pytest

from repro import Universe
from repro.apps.resort import (
    drift_step_cost,
    expected_unit_move_key_displacement,
)
from repro.curves.hilbert import HilbertCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.zcurve import ZCurve


class TestExpectedDisplacement:
    def test_equals_mean_nn_distance(self, u2_8):
        from repro.core.stretch import nn_distance_values

        z = ZCurve(u2_8)
        assert expected_unit_move_key_displacement(z) == pytest.approx(
            float(nn_distance_values(z).mean())
        )

    def test_hilbert_below_random(self, u2_8):
        assert expected_unit_move_key_displacement(
            HilbertCurve(u2_8)
        ) < expected_unit_move_key_displacement(RandomCurve(u2_8))


class TestDriftStepCost:
    def test_deterministic(self, u2_8):
        a = drift_step_cost(ZCurve(u2_8), 100, 3, seed=5)
        b = drift_step_cost(ZCurve(u2_8), 100, 3, seed=5)
        assert a == b

    def test_fields(self, u2_8):
        cost = drift_step_cost(ZCurve(u2_8), 50, 2, seed=0)
        assert cost.curve_name == "z"
        assert cost.n_particles == 50
        assert cost.steps == 2
        assert cost.mean_key_displacement >= 0
        assert cost.max_rank_displacement <= 50

    def test_key_displacement_tracks_expectation(self):
        """Measured per-step key displacement ≈ the NN-distance mean
        (slightly below: boundary moves are rejected)."""
        u = Universe.power_of_two(d=2, k=5)
        z = ZCurve(u)
        cost = drift_step_cost(z, 4000, 5, seed=1)
        expected = expected_unit_move_key_displacement(z)
        assert cost.mean_key_displacement == pytest.approx(
            expected, rel=0.25
        )

    def test_structured_cheaper_than_random(self):
        """The application payoff: drifting particles on a structured
        curve need far less resort work than on a random bijection."""
        u = Universe.power_of_two(d=2, k=5)
        cost_h = drift_step_cost(HilbertCurve(u), 500, 5, seed=2)
        cost_r = drift_step_cost(RandomCurve(u), 500, 5, seed=2)
        assert (
            cost_h.mean_key_displacement
            < cost_r.mean_key_displacement / 3
        )
        assert (
            cost_h.mean_rank_displacement
            < cost_r.mean_rank_displacement / 2
        )

    def test_rank_displacement_bounded_by_particles(self, u2_8):
        cost = drift_step_cost(ZCurve(u2_8), 30, 3, seed=3)
        assert cost.mean_rank_displacement <= 30

    def test_rejects_bad_args(self, u2_8):
        with pytest.raises(ValueError):
            drift_step_cost(ZCurve(u2_8), 0, 1)
        with pytest.raises(ValueError):
            drift_step_cost(ZCurve(u2_8), 10, 0)


class TestDynamicRebase:
    """The DynamicUniverse-backed loop matches the historical
    full-re-encode + stable-argsort implementation bit for bit."""

    @staticmethod
    def _reference_drift(curve, n_particles, steps, seed):
        """Verbatim pre-rebase drift_step_cost (the regression oracle)."""
        from repro.engine.context import get_context

        ctx = get_context(curve)
        universe = ctx.universe
        rng = np.random.default_rng(seed)
        positions = rng.integers(
            0, universe.side, size=(n_particles, universe.d), dtype=np.int64
        )
        total_key = 0.0
        total_rank = 0.0
        worst_rank = 0
        for _ in range(steps):
            keys_before = ctx.curve.keys_of(positions, backend=ctx.backend)
            order_before = np.argsort(keys_before, kind="stable")
            ranks_before = np.empty(n_particles, dtype=np.int64)
            ranks_before[order_before] = np.arange(n_particles)
            axes = rng.integers(0, universe.d, size=n_particles)
            signs = rng.choice(np.array([-1, 1]), size=n_particles)
            moved = positions.copy()
            moved[np.arange(n_particles), axes] += signs
            in_bounds = universe.contains(moved)
            positions = np.where(in_bounds[:, None], moved, positions)
            keys_after = ctx.curve.keys_of(positions, backend=ctx.backend)
            order_after = np.argsort(keys_after, kind="stable")
            ranks_after = np.empty(n_particles, dtype=np.int64)
            ranks_after[order_after] = np.arange(n_particles)
            key_shift = np.abs(keys_after - keys_before)
            rank_shift = np.abs(ranks_after - ranks_before)
            total_key += float(key_shift.mean())
            total_rank += float(rank_shift.mean())
            worst_rank = max(worst_rank, int(rank_shift.max()))
        return (
            total_key / steps,
            total_rank / steps,
            worst_rank,
        )

    @pytest.mark.parametrize("curve_cls", [ZCurve, HilbertCurve])
    def test_bit_for_bit_vs_reference(self, u2_8, curve_cls):
        curve = curve_cls(u2_8)
        cost = drift_step_cost(curve, 120, 5, seed=7)
        assert (
            cost.mean_key_displacement,
            cost.mean_rank_displacement,
            cost.max_rank_displacement,
        ) == self._reference_drift(curve, 120, 5, seed=7)

    def test_bit_for_bit_3d(self):
        u = Universe(d=3, side=8)
        curve = ZCurve(u)
        cost = drift_step_cost(curve, 80, 4, seed=9)
        assert (
            cost.mean_key_displacement,
            cost.mean_rank_displacement,
            cost.max_rank_displacement,
        ) == self._reference_drift(curve, 80, 4, seed=9)
