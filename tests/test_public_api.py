"""Public-API integrity: exports resolve, docstrings exist, README
quickstart works as printed."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.grid",
    "repro.curves",
    "repro.core",
    "repro.engine",
    "repro.analysis",
    "repro.apps",
    "repro.viz",
    "repro.io",
    "repro.cli",
]


class TestExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 20

    def test_public_callables_documented(self):
        """Every top-level export carries a docstring."""
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        """The exact code block from README.md."""
        from repro import (
            Universe,
            ZCurve,
            average_average_nn_stretch,
            davg_lower_bound,
        )

        u = Universe.power_of_two(d=2, k=5)
        z = ZCurve(u)
        davg = average_average_nn_stretch(z)
        bound = davg_lower_bound(u.n, u.d)
        assert davg == pytest.approx(16.33, abs=0.01)
        assert bound == pytest.approx(10.67, abs=0.01)
        assert davg / bound == pytest.approx(1.53, abs=0.01)

    def test_module_docstring_example(self):
        """The doctest in repro/__init__.py holds."""
        from repro import (
            Universe,
            ZCurve,
            average_average_nn_stretch,
            davg_lower_bound,
        )

        u = Universe.power_of_two(d=2, k=4)
        z = ZCurve(u)
        assert average_average_nn_stretch(z) >= davg_lower_bound(u.n, u.d)
