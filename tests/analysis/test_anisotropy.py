"""Tests for the per-dimension anisotropy analysis."""

from fractions import Fraction

import numpy as np
import pytest

from repro import Universe
from repro.analysis.anisotropy import (
    anisotropy_index,
    axis_fractions,
    simple_axis_fraction_exact,
    z_axis_fraction_limit,
)
from repro.curves.hilbert import HilbertCurve
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve


class TestAxisFractions:
    def test_sum_to_one(self, zoo_3d):
        for curve in zoo_3d.values():
            assert axis_fractions(curve).sum() == pytest.approx(1.0)

    def test_simple_exact_fractions(self):
        """Λ_i fractions of S follow side^{i-1} weights exactly."""
        u = Universe(d=3, side=4)
        fractions = axis_fractions(SimpleCurve(u))
        for i in (1, 2, 3):
            assert fractions[i - 1] == pytest.approx(
                float(simple_axis_fraction_exact(3, 4, i))
            )

    def test_z_fractions_converge_to_lemma5(self):
        gaps = []
        for k in (2, 4, 6):
            u = Universe.power_of_two(d=2, k=k)
            fractions = axis_fractions(ZCurve(u))
            limit = float(z_axis_fraction_limit(2, 1))
            gaps.append(abs(fractions[0] - limit))
        assert gaps == sorted(gaps, reverse=True)
        assert gaps[-1] < 0.01

    def test_1d_single_fraction(self):
        fractions = axis_fractions(SimpleCurve(Universe(d=1, side=4)))
        assert fractions.tolist() == [1.0]

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            axis_fractions(SimpleCurve(Universe(d=2, side=1)))


class TestAnisotropyIndex:
    def test_hilbert_most_isotropic(self):
        """The Hilbert curve treats dimensions nearly symmetrically;
        Z's index ~ 2^{d-1}, simple's ~ side^{d-1}."""
        u = Universe.power_of_two(d=2, k=4)
        h = anisotropy_index(HilbertCurve(u))
        z = anisotropy_index(ZCurve(u))
        s = anisotropy_index(SimpleCurve(u))
        assert h < z < s

    def test_simple_index_is_side_power(self):
        u = Universe(d=3, side=4)
        assert anisotropy_index(SimpleCurve(u)) == pytest.approx(16.0)

    def test_z_index_approaches_2_power(self):
        u = Universe.power_of_two(d=3, k=3)
        # limit: (2^{d-1}/(2^d-1)) / (2^0/(2^d-1)) = 2^{d-1} = 4.
        assert anisotropy_index(ZCurve(u)) == pytest.approx(4.0, rel=0.1)


class TestClosedForms:
    def test_z_limits_sum_to_one(self):
        for d in (1, 2, 3, 5):
            assert sum(
                z_axis_fraction_limit(d, i) for i in range(1, d + 1)
            ) == 1

    def test_simple_fractions_sum_to_one(self):
        for d, side in [(2, 4), (3, 3), (4, 2)]:
            assert sum(
                simple_axis_fraction_exact(d, side, i)
                for i in range(1, d + 1)
            ) == 1

    def test_simple_fraction_value(self):
        assert simple_axis_fraction_exact(2, 4, 2) == Fraction(4, 5)

    def test_rejects_bad_indices(self):
        with pytest.raises(ValueError):
            z_axis_fraction_limit(2, 0)
        with pytest.raises(ValueError):
            simple_axis_fraction_exact(2, 4, 3)
        with pytest.raises(ValueError):
            simple_axis_fraction_exact(2, 1, 1)
