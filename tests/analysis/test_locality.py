"""Tests for the reverse (window-dilation) locality metrics."""

import numpy as np
import pytest

from repro import Universe
from repro.analysis.locality import (
    dilation_profile,
    window_dilation,
    worst_window_pairs,
)
from repro.curves.hilbert import HilbertCurve
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve


class TestWindowDilation:
    def test_window_one_continuous_curve(self, u2_8):
        """A continuous curve has dilation exactly 1 at window 1."""
        assert window_dilation(HilbertCurve(u2_8), 1) == 1

    def test_window_one_z_curve_jumps(self, u2_8):
        """The Z curve jumps at block boundaries: dilation >> 1."""
        assert window_dilation(ZCurve(u2_8), 1) > 1

    def test_simple_curve_row_wrap(self, u2_8):
        """Simple curve's worst window-1 jump is the row wrap: ∆ = side-1+1."""
        assert window_dilation(SimpleCurve(u2_8), 1) == 8

    def test_euclidean_variant(self, u2_8):
        val = window_dilation(HilbertCurve(u2_8), 1, metric="euclidean")
        assert val == pytest.approx(1.0)

    def test_monotone_nondecreasing_envelope_hilbert(self, u2_8):
        """Hilbert dilation grows like O(sqrt(window)) in 2-D — compare
        with the Niedermeier et al. bound 3·sqrt(m)."""
        h = HilbertCurve(u2_8)
        for window in (1, 4, 9, 16, 25):
            assert window_dilation(h, window) <= 3 * np.sqrt(window) + 2

    def test_rejects_bad_window(self, u2_8):
        with pytest.raises(ValueError):
            window_dilation(ZCurve(u2_8), 0)
        with pytest.raises(ValueError):
            window_dilation(ZCurve(u2_8), 64)

    def test_rejects_bad_metric(self, u2_8):
        with pytest.raises(ValueError):
            window_dilation(ZCurve(u2_8), 1, metric="cosine")


class TestWorstWindowPairs:
    def test_pairs_attain_maximum(self, u2_8):
        z = ZCurve(u2_8)
        a, b = worst_window_pairs(z, 1)
        worst = window_dilation(z, 1)
        dist = np.abs(a - b).sum(axis=1)
        assert np.all(dist == worst)

    def test_pairs_are_window_apart(self, u2_8):
        z = ZCurve(u2_8)
        a, b = worst_window_pairs(z, 3)
        assert np.all(z.curve_distance(a, b) == 3)


class TestDilationProfile:
    def test_keys(self, u2_8):
        profile = dilation_profile(HilbertCurve(u2_8), [1, 2, 4])
        assert sorted(profile) == [1, 2, 4]

    def test_z_saturates_immediately(self, u2_8):
        """Z's dilation is near-diameter already at window 1 — the
        sharp contrast bench A6 reports."""
        profile = dilation_profile(ZCurve(u2_8), [1])
        assert profile[1] >= 7


class TestContextAcceptance:
    def test_context_and_curve_agree(self, u2_8):
        from repro.engine.context import get_context

        curve = ZCurve(u2_8)
        ctx = get_context(curve)
        for window in (1, 3, 7):
            assert window_dilation(ctx, window) == window_dilation(
                curve, window
            )

    def test_profile_caches_window_arrays(self, u2_8):
        from repro.engine.context import MetricContext

        ctx = MetricContext(HilbertCurve(u2_8))
        dilation_profile(ctx, [1, 2, 4])
        dilation_profile(ctx, [1, 2, 4])
        for window in (1, 2, 4):
            key = f"win_dist[{window},manhattan]"
            assert ctx.stats.compute_count(key) == 1

    def test_worst_pairs_from_context(self, u2_8):
        from repro.engine.context import get_context

        z = ZCurve(u2_8)
        a1, b1 = worst_window_pairs(z, 2)
        a2, b2 = worst_window_pairs(get_context(z), 2)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
