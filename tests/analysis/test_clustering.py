"""Tests for the Moon et al. clustering metric."""

import numpy as np
import pytest

from repro import Universe
from repro.analysis.clustering import (
    cluster_count,
    expected_clusters,
    rectangle_cells,
)
from repro.curves.hilbert import HilbertCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve


class TestRectangleCells:
    def test_volume(self):
        u = Universe(d=2, side=8)
        cells = rectangle_cells(u, (1, 2), (4, 5))
        assert cells.shape == (9, 2)

    def test_contents(self):
        u = Universe(d=2, side=4)
        cells = {tuple(r) for r in rectangle_cells(u, (0, 0), (2, 2))}
        assert cells == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_full_grid(self):
        u = Universe(d=3, side=3)
        assert rectangle_cells(u, (0,) * 3, (3,) * 3).shape == (27, 3)

    def test_rejects_empty(self):
        u = Universe(d=2, side=4)
        with pytest.raises(ValueError, match="non-empty"):
            rectangle_cells(u, (2, 2), (2, 3))

    def test_rejects_out_of_range(self):
        u = Universe(d=2, side=4)
        with pytest.raises(ValueError, match="outside"):
            rectangle_cells(u, (0, 0), (5, 2))

    def test_rejects_wrong_shape(self):
        u = Universe(d=2, side=4)
        with pytest.raises(ValueError, match="shape"):
            rectangle_cells(u, (0,), (2,))


class TestClusterCount:
    def test_full_grid_is_one_cluster(self, u2_8):
        """Every bijection covers the full grid with a single run."""
        for curve in (ZCurve(u2_8), SimpleCurve(u2_8), RandomCurve(u2_8)):
            assert cluster_count(curve, (0, 0), (8, 8)) == 1

    def test_single_cell_is_one_cluster(self, u2_8):
        assert cluster_count(ZCurve(u2_8), (3, 3), (4, 4)) == 1

    def test_simple_curve_row_queries(self, u2_8):
        """A full row aligned with the simple curve is one run; a column
        is side runs."""
        s = SimpleCurve(u2_8)
        assert cluster_count(s, (0, 3), (8, 4)) == 1  # one row
        assert cluster_count(s, (3, 0), (4, 8)) == 8  # one column

    def test_z_curve_aligned_quadrant(self, u2_8):
        """Z curve: an aligned power-of-two quadrant is one run."""
        assert cluster_count(ZCurve(u2_8), (0, 0), (4, 4)) == 1
        assert cluster_count(ZCurve(u2_8), (4, 4), (8, 8)) == 1

    def test_matches_bruteforce(self, u2_8):
        h = HilbertCurve(u2_8)
        cells = rectangle_cells(u2_8, (1, 2), (5, 7))
        keys = sorted(int(h.index(c)) for c in cells)
        brute = 1 + sum(
            1 for a, b in zip(keys[:-1], keys[1:]) if b > a + 1
        )
        assert cluster_count(h, (1, 2), (5, 7)) == brute


class TestExpectedClusters:
    def test_hilbert_beats_random(self, u2_8):
        hilbert = expected_clusters(HilbertCurve(u2_8), (3, 3), 50, seed=1)
        random_ = expected_clusters(RandomCurve(u2_8), (3, 3), 50, seed=1)
        assert hilbert < random_

    def test_deterministic(self, u2_8):
        a = expected_clusters(ZCurve(u2_8), (2, 2), 20, seed=5)
        b = expected_clusters(ZCurve(u2_8), (2, 2), 20, seed=5)
        assert a == b

    def test_full_grid_shape(self, u2_8):
        assert expected_clusters(ZCurve(u2_8), (8, 8), 5, seed=0) == 1.0

    def test_rejects_oversized_box(self, u2_8):
        with pytest.raises(ValueError):
            expected_clusters(ZCurve(u2_8), (9, 2), 5)

    def test_rejects_wrong_dim(self, u2_8):
        with pytest.raises(ValueError):
            expected_clusters(ZCurve(u2_8), (2, 2, 2), 5)

    def test_clustering_and_stretch_rank_differently(self, u2_8):
        """Section II: clustering is a DIFFERENT metric from stretch.
        On 4x4 boxes the simple curve wins clustering (4 row runs) while
        the Z curve wins D^avg — the two metrics invert the ranking."""
        from repro.core.stretch import average_average_nn_stretch

        s, z = SimpleCurve(u2_8), ZCurve(u2_8)
        clusters_s = expected_clusters(s, (4, 4), 100, seed=2)
        clusters_z = expected_clusters(z, (4, 4), 100, seed=2)
        assert clusters_s < clusters_z  # simple wins clustering
        # while stretch ranks them the other way:
        assert average_average_nn_stretch(z) < average_average_nn_stretch(s)


class TestContextAcceptance:
    def test_cluster_count_accepts_context(self, u2_8):
        from repro.engine.context import get_context

        curve = HilbertCurve(u2_8)
        ctx = get_context(curve)
        assert cluster_count(ctx, (1, 2), (5, 7)) == cluster_count(
            curve, (1, 2), (5, 7)
        )

    def test_expected_clusters_accepts_context(self, u2_8):
        from repro.engine.context import get_context

        curve = ZCurve(u2_8)
        assert expected_clusters(
            get_context(curve), (2, 2), 20, seed=5
        ) == expected_clusters(curve, (2, 2), 20, seed=5)

    def test_no_curve_evaluation_after_grid_built(self, u2_8):
        """Cluster counts come off the cached key grid (one build)."""
        from repro.engine.context import MetricContext

        ctx = MetricContext(ZCurve(u2_8))
        expected_clusters(ctx, (3, 3), 30, seed=1)
        assert ctx.stats.compute_count("key_grid") == 1
        assert ctx.stats.hits >= 29


class TestThreadedClustering:
    """expected_clusters on a threaded context (PR 6): placements are
    pre-drawn in the serial RNG order and the integer count sum is
    order-free, so the result is bit-for-bit the serial one."""

    def test_threaded_matches_serial(self, u2_8):
        from repro.engine.context import MetricContext

        curve = ZCurve(u2_8)
        serial = expected_clusters(curve, (3, 2), 60, seed=4)
        for threads in (2, 4):
            ctx = MetricContext(ZCurve(u2_8), threads=threads)
            assert expected_clusters(ctx, (3, 2), 60, seed=4) == serial

    def test_threaded_chunked_matches_serial(self, u2_8):
        from repro.engine.context import MetricContext

        serial = expected_clusters(ZCurve(u2_8), (2, 2), 40, seed=9)
        ctx = MetricContext(ZCurve(u2_8), chunk_cells=7, threads=3)
        assert expected_clusters(ctx, (2, 2), 40, seed=9) == serial
