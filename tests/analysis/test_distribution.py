"""Tests for NN curve-distance distribution views."""

import numpy as np
import pytest

from repro import Universe
from repro.analysis.distribution import (
    nn_distance_ccdf,
    nn_distance_quantiles,
    window_for_recall,
)
from repro.curves.hilbert import HilbertCurve
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve


class TestQuantiles:
    def test_max_quantile_is_dmax_support(self, u2_8):
        from repro.core.stretch import nn_distance_values

        z = ZCurve(u2_8)
        q = nn_distance_quantiles(z, (1.0,))
        assert q[1.0] == nn_distance_values(z).max()

    def test_median_le_max(self, u2_8):
        q = nn_distance_quantiles(ZCurve(u2_8), (0.5, 1.0))
        assert q[0.5] <= q[1.0]

    def test_simple_curve_quantiles(self, u2_8):
        """Simple curve NN distances are only 1 or 8 on the 8x8 grid,
        with the 1s (horizontal pairs) being exactly half."""
        q = nn_distance_quantiles(SimpleCurve(u2_8), (0.25, 0.75))
        assert q[0.25] == 1.0
        assert q[0.75] == 8.0

    def test_rejects_bad_quantile(self, u2_8):
        with pytest.raises(ValueError):
            nn_distance_quantiles(ZCurve(u2_8), (1.5,))


class TestCCDF:
    def test_window_zero_misses_everything(self, u2_8):
        ccdf = nn_distance_ccdf(ZCurve(u2_8), [0])
        assert ccdf[0] == 1.0  # all NN distances are >= 1

    def test_huge_window_misses_nothing(self, u2_8):
        ccdf = nn_distance_ccdf(ZCurve(u2_8), [u2_8.n])
        assert ccdf[u2_8.n] == 0.0

    def test_monotone_nonincreasing(self, u2_8):
        windows = [1, 2, 4, 8, 16, 32]
        ccdf = nn_distance_ccdf(ZCurve(u2_8), windows)
        values = [ccdf[w] for w in windows]
        assert values == sorted(values, reverse=True)

    def test_hilbert_dominates_random_everywhere(self, u2_8):
        from repro.curves.random_curve import RandomCurve

        windows = [1, 2, 4, 8]
        h = nn_distance_ccdf(HilbertCurve(u2_8), windows)
        r = nn_distance_ccdf(RandomCurve(u2_8), windows)
        assert all(h[w] <= r[w] for w in windows)


class TestWindowForRecall:
    def test_full_recall_is_max_distance(self, u2_8):
        from repro.core.stretch import nn_distance_values

        z = ZCurve(u2_8)
        assert window_for_recall(z, 1.0) == int(nn_distance_values(z).max())

    def test_recall_achieved(self, u2_8):
        from repro.apps.nbody import neighbor_recall

        z = ZCurve(u2_8)
        for target in (0.5, 0.9, 0.99):
            w = window_for_recall(z, target)
            assert neighbor_recall(z, w) >= target
            if w > 1:
                assert neighbor_recall(z, w - 1) < target

    def test_monotone_in_recall(self, u2_8):
        z = ZCurve(u2_8)
        assert window_for_recall(z, 0.5) <= window_for_recall(z, 0.95)

    def test_rejects_bad_recall(self, u2_8):
        with pytest.raises(ValueError):
            window_for_recall(ZCurve(u2_8), 0.0)
        with pytest.raises(ValueError):
            window_for_recall(ZCurve(u2_8), 1.1)
