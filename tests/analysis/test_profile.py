"""Tests for the stretch-by-distance profile."""

import numpy as np
import pytest

from repro import Universe
from repro.analysis.profile import (
    stretch_profile_exact,
    stretch_profile_sampled,
)
from repro.curves.random_curve import RandomCurve
from repro.curves.simple import SimpleCurve
from repro.curves.zcurve import ZCurve


class TestExactProfile:
    def test_distances_covered(self):
        u = Universe(d=2, side=4)
        profile = stretch_profile_exact(SimpleCurve(u))
        assert sorted(profile) == list(range(1, 7))  # r = 1..d(side-1)

    def test_r1_matches_nn_average(self):
        """profile(1) is the unweighted mean ∆π over NN pairs."""
        from repro.core.stretch import nn_distance_values

        u = Universe(d=2, side=8)
        z = ZCurve(u)
        profile = stretch_profile_exact(z)
        assert profile[1] == pytest.approx(
            float(nn_distance_values(z).mean())
        )

    def test_chunking_invariance(self):
        u = Universe(d=2, side=8)
        z = ZCurve(u)
        full = stretch_profile_exact(z, chunk=u.n)
        tiny = stretch_profile_exact(z, chunk=5)
        for r in full:
            assert full[r] == pytest.approx(tiny[r])

    def test_weighted_average_is_allpairs_stretch(self):
        """Averaging profile(r) with the pair-count weights recovers
        str_{avg,M} — consistency between the two modules."""
        from repro.core.allpairs import average_allpairs_stretch_exact
        from repro.grid.metrics import pairwise_manhattan

        u = Universe(d=2, side=4)
        z = ZCurve(u)
        profile = stretch_profile_exact(z)
        cells = u.all_coords()
        dist = pairwise_manhattan(cells, cells).reshape(-1)
        counts = np.bincount(dist)
        total_pairs = u.n * (u.n - 1)
        weighted = sum(
            profile[r] * counts[r] for r in profile
        ) / total_pairs
        assert weighted == pytest.approx(
            average_allpairs_stretch_exact(z), rel=1e-9
        )

    def test_random_curve_flat_key_distance(self):
        """For a random bijection E[∆π | r] ≈ (n+1)/3 for every r, so
        profile(r) ≈ (n+1)/(3r) — a 1/r law."""
        u = Universe(d=2, side=16)
        profile = stretch_profile_exact(RandomCurve(u, seed=4))
        expected_const = (u.n + 1) / 3.0
        for r in (1, 3, 6, 10):
            assert profile[r] * r == pytest.approx(expected_const, rel=0.15)

    def test_structured_vs_random_crossover(self):
        """At r=1 the Z curve beats random by Θ(n^{1/d}); the Z profile
        is roughly flat in r while random decays like 1/r, so the two
        cross somewhere before the diameter — the structured advantage
        is specifically a *short-range* phenomenon, which is the
        paper's argument for focusing on nearest neighbors."""
        u = Universe(d=2, side=16)
        z = stretch_profile_exact(ZCurve(u))
        r = stretch_profile_exact(RandomCurve(u, seed=0))
        assert z[1] < r[1] / 5
        # Z's profile is flat within a factor ~2 across the range.
        z_values = [z[rr] for rr in (1, 2, 4, 8, 15)]
        assert max(z_values) / min(z_values) < 2.0
        # A crossover exists: random wins (smaller ratio) at long range.
        max_r = max(z)
        assert r[max_r] < z[max_r]

    def test_rejects_single_cell(self):
        with pytest.raises(ValueError):
            stretch_profile_exact(SimpleCurve(Universe(d=1, side=1)))


class TestSampledProfile:
    def test_matches_exact_on_common_distances(self):
        u = Universe(d=2, side=8)
        z = ZCurve(u)
        exact = stretch_profile_exact(z)
        sampled = stretch_profile_sampled(z, n_pairs=200_000, seed=1)
        for r in (1, 2, 4, 8):
            assert sampled[r] == pytest.approx(exact[r], rel=0.1)

    def test_deterministic(self):
        u = Universe(d=2, side=8)
        z = ZCurve(u)
        a = stretch_profile_sampled(z, n_pairs=10_000, seed=2)
        b = stretch_profile_sampled(z, n_pairs=10_000, seed=2)
        assert a == b

    def test_rejects_bad_args(self):
        u = Universe(d=2, side=4)
        with pytest.raises(ValueError):
            stretch_profile_sampled(ZCurve(u), n_pairs=0)
