"""Tests for the per-cell stretch dispersion statistics."""

import numpy as np
import pytest

from repro import Universe
from repro.analysis.dispersion import gini, stretch_dispersion
from repro.curves.hilbert import HilbertCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.simple import SimpleCurve


class TestGini:
    def test_all_equal_is_zero(self):
        assert gini(np.full(10, 3.0)) == pytest.approx(0.0)

    def test_fully_concentrated(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert gini(values) == pytest.approx(0.99, abs=0.01)

    def test_scale_invariant(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1, 100)
        assert gini(values) == pytest.approx(gini(values * 7.5))

    def test_uniform_distribution_value(self):
        # Gini of U(0,1) is 1/3.
        rng = np.random.default_rng(1)
        assert gini(rng.uniform(0, 1, 100_000)) == pytest.approx(
            1 / 3, abs=0.01
        )

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini(np.array([1.0, -0.5]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gini(np.array([]))

    def test_zero_total(self):
        assert gini(np.zeros(5)) == 0.0


class TestStretchDispersion:
    def test_mean_matches_davg(self, u2_8):
        from repro.core.stretch import average_average_nn_stretch

        h = HilbertCurve(u2_8)
        disp = stretch_dispersion(h)
        assert disp.mean == pytest.approx(average_average_nn_stretch(h))

    def test_quantiles_ordered(self, u2_8):
        disp = stretch_dispersion(HilbertCurve(u2_8))
        assert disp.q50 <= disp.q90 <= disp.q99

    def test_simple_curve_low_dispersion(self):
        """Interior cells of S share one δ^avg value — dispersion comes
        only from the boundary, so the Gini is tiny."""
        u = Universe.power_of_two(d=2, k=5)
        disp_s = stretch_dispersion(SimpleCurve(u))
        disp_h = stretch_dispersion(HilbertCurve(u))
        assert disp_s.gini < disp_h.gini
        assert disp_s.coefficient_of_variation < 0.2

    def test_random_curve_relative_dispersion_small(self):
        """Random keys: every cell's δ^avg concentrates near (n+1)/3,
        so the relative dispersion is small even though the mean is
        huge."""
        u = Universe.power_of_two(d=2, k=5)
        disp = stretch_dispersion(RandomCurve(u, seed=2))
        assert disp.coefficient_of_variation < 0.5

    def test_curve_name_recorded(self, u2_8):
        assert stretch_dispersion(HilbertCurve(u2_8)).curve_name == "hilbert"
