"""Tests for the convergence-study tooling."""

import pytest

from repro.analysis.convergence import (
    ConvergencePoint,
    convergence_study,
    is_converging,
)


def _mk(parameter, measured, reference=1.0, n=0):
    return ConvergencePoint(
        parameter=parameter, n=n, measured=measured, reference=reference
    )


class TestConvergencePoint:
    def test_ratio_and_gap(self):
        pt = _mk(1, measured=1.2)
        assert pt.ratio == pytest.approx(1.2)
        assert pt.gap == pytest.approx(0.2)

    def test_gap_symmetric(self):
        assert _mk(1, 0.8).gap == pytest.approx(_mk(1, 1.2).gap)


class TestConvergenceStudy:
    def test_runs_callables(self):
        points = convergence_study(
            [1, 2, 3],
            measure=lambda k: 2.0**k + 1,
            reference=lambda k: 2.0**k,
            n_of=lambda k: 4**k,
        )
        assert [pt.parameter for pt in points] == [1, 2, 3]
        assert points[0].measured == 3.0
        assert points[2].n == 64

    def test_gap_sequence(self):
        points = convergence_study(
            [1, 2, 3, 4],
            measure=lambda k: 1.0 + 1.0 / k,
            reference=lambda k: 1.0,
            n_of=lambda k: k,
        )
        assert is_converging(points, final_gap=0.3)


class TestIsConverging:
    def test_accepts_shrinking(self):
        points = [_mk(k, 1 + 0.5 / k) for k in (1, 2, 4, 8)]
        assert is_converging(points)

    def test_rejects_growing_gap(self):
        points = [_mk(1, 1.05), _mk(2, 1.2)]
        assert not is_converging(points)

    def test_rejects_large_final_gap(self):
        points = [_mk(1, 2.0), _mk(2, 1.8)]
        assert not is_converging(points, final_gap=0.25)

    def test_wrong_exponent_detected(self):
        """The falsification property: if the reference has the wrong
        growth rate the ratio diverges and the check fails."""
        points = convergence_study(
            [1, 2, 3, 4, 5],
            measure=lambda k: 4.0**k,
            reference=lambda k: 2.0**k,  # wrong exponent
            n_of=lambda k: k,
        )
        assert not is_converging(points)

    def test_wrong_constant_detected(self):
        points = convergence_study(
            [1, 2, 3, 4],
            measure=lambda k: 3.0 * 2**k,
            reference=lambda k: 2.0**k,  # off by constant 3
            n_of=lambda k: k,
        )
        assert not is_converging(points)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            is_converging([])


class TestMetricConvergenceStudy:
    def test_engine_backed_measure(self):
        from repro.analysis.convergence import metric_convergence_study
        from repro.core.asymptotics import davg_z_limit
        from repro.engine.context import MetricContext
        from repro.engine.pool import ContextPool
        from repro.curves.zcurve import ZCurve
        from repro.grid.universe import Universe

        pool = ContextPool()
        points = metric_convergence_study(
            [2, 3, 4],
            curve="z",
            metric="davg",
            reference=lambda k: davg_z_limit(4**k, 2),
            d=2,
            pool=pool,
        )
        assert [pt.n for pt in points] == [16, 64, 256]
        assert len(pool) == 3
        for pt in points:
            u = Universe.power_of_two(d=2, k=pt.parameter)
            assert pt.measured == MetricContext(ZCurve(u)).davg()
        # Theorem 2's ~ claim: the ratio approaches 1 from these sizes on.
        gaps = [pt.gap for pt in points]
        assert gaps[-1] < gaps[0]

    def test_parameterized_metric_spec(self):
        from repro.analysis.convergence import metric_convergence_study

        points = metric_convergence_study(
            [2, 3],
            curve="hilbert",
            metric="dilation:window=1",
            reference=lambda k: 1.0,
            d=2,
        )
        # A continuous curve has dilation exactly 1 at window 1.
        assert all(pt.ratio == 1.0 for pt in points)
