"""Tests for the convergence-study tooling."""

import pytest

from repro.analysis.convergence import (
    ConvergencePoint,
    convergence_study,
    is_converging,
)


def _mk(parameter, measured, reference=1.0, n=0):
    return ConvergencePoint(
        parameter=parameter, n=n, measured=measured, reference=reference
    )


class TestConvergencePoint:
    def test_ratio_and_gap(self):
        pt = _mk(1, measured=1.2)
        assert pt.ratio == pytest.approx(1.2)
        assert pt.gap == pytest.approx(0.2)

    def test_gap_symmetric(self):
        assert _mk(1, 0.8).gap == pytest.approx(_mk(1, 1.2).gap)


class TestConvergenceStudy:
    def test_runs_callables(self):
        points = convergence_study(
            [1, 2, 3],
            measure=lambda k: 2.0**k + 1,
            reference=lambda k: 2.0**k,
            n_of=lambda k: 4**k,
        )
        assert [pt.parameter for pt in points] == [1, 2, 3]
        assert points[0].measured == 3.0
        assert points[2].n == 64

    def test_gap_sequence(self):
        points = convergence_study(
            [1, 2, 3, 4],
            measure=lambda k: 1.0 + 1.0 / k,
            reference=lambda k: 1.0,
            n_of=lambda k: k,
        )
        assert is_converging(points, final_gap=0.3)


class TestIsConverging:
    def test_accepts_shrinking(self):
        points = [_mk(k, 1 + 0.5 / k) for k in (1, 2, 4, 8)]
        assert is_converging(points)

    def test_rejects_growing_gap(self):
        points = [_mk(1, 1.05), _mk(2, 1.2)]
        assert not is_converging(points)

    def test_rejects_large_final_gap(self):
        points = [_mk(1, 2.0), _mk(2, 1.8)]
        assert not is_converging(points, final_gap=0.25)

    def test_wrong_exponent_detected(self):
        """The falsification property: if the reference has the wrong
        growth rate the ratio diverges and the check fails."""
        points = convergence_study(
            [1, 2, 3, 4, 5],
            measure=lambda k: 4.0**k,
            reference=lambda k: 2.0**k,  # wrong exponent
            n_of=lambda k: k,
        )
        assert not is_converging(points)

    def test_wrong_constant_detected(self):
        points = convergence_study(
            [1, 2, 3, 4],
            measure=lambda k: 3.0 * 2**k,
            reference=lambda k: 2.0**k,  # off by constant 3
            n_of=lambda k: k,
        )
        assert not is_converging(points)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            is_converging([])
