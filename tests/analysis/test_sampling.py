"""Tests for the seeded sampling helpers."""

import numpy as np
import pytest

from repro.analysis.sampling import (
    MeanEstimate,
    sample_mean_ci,
    sample_rectangles,
)


class TestMeanEstimate:
    def test_ci_contains_mean(self):
        est = MeanEstimate(mean=5.0, stderr=0.5, n_samples=100)
        lo, hi = est.ci95
        assert lo < 5.0 < hi
        assert hi - lo == pytest.approx(2 * 1.96 * 0.5)


class TestSampleMeanCI:
    def test_constant_draw(self):
        est = sample_mean_ci(lambda rng: 3.0, n_samples=10, seed=0)
        assert est.mean == 3.0
        assert est.stderr == 0.0

    def test_uniform_draw_mean(self):
        est = sample_mean_ci(
            lambda rng: float(rng.uniform(0, 1)), n_samples=2000, seed=0
        )
        assert est.mean == pytest.approx(0.5, abs=0.05)

    def test_deterministic(self):
        draw = lambda rng: float(rng.normal())
        a = sample_mean_ci(draw, 50, seed=3)
        b = sample_mean_ci(draw, 50, seed=3)
        assert a.mean == b.mean

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            sample_mean_ci(lambda rng: 0.0, n_samples=1)


class TestSampleRectangles:
    def test_shapes_and_bounds(self):
        boxes = sample_rectangles(8, 2, (3, 2), 50, seed=0)
        assert len(boxes) == 50
        for lo, hi in boxes:
            assert np.array_equal(hi - lo, [3, 2])
            assert np.all(lo >= 0)
            assert np.all(hi <= 8)

    def test_full_size_box(self):
        boxes = sample_rectangles(4, 2, (4, 4), 3, seed=0)
        for lo, hi in boxes:
            assert lo.tolist() == [0, 0]

    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            sample_rectangles(4, 2, (5, 1), 3)

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError):
            sample_rectangles(4, 2, (2,), 3)

    def test_deterministic(self):
        a = sample_rectangles(8, 2, (2, 2), 10, seed=4)
        b = sample_rectangles(8, 2, (2, 2), 10, seed=4)
        for (lo1, _), (lo2, _) in zip(a, b):
            assert np.array_equal(lo1, lo2)
