"""Tests for curve serialization."""

import numpy as np
import pytest

from repro import Universe
from repro.core.stretch import average_average_nn_stretch
from repro.curves.hilbert import HilbertCurve
from repro.curves.random_curve import RandomCurve
from repro.curves.zcurve import ZCurve
from repro.io import load_curve, save_curve


class TestRoundTrip:
    def test_key_grid_preserved(self, tmp_path):
        u = Universe.power_of_two(d=2, k=3)
        z = ZCurve(u)
        path = save_curve(z, tmp_path / "z.npz")
        loaded = load_curve(path)
        assert np.array_equal(loaded.key_grid(), z.key_grid())
        assert loaded.name == "z"
        assert loaded.universe == u

    def test_metrics_preserved(self, tmp_path):
        u = Universe.power_of_two(d=3, k=2)
        h = HilbertCurve(u)
        loaded = load_curve(save_curve(h, tmp_path / "h"))
        assert average_average_nn_stretch(loaded) == pytest.approx(
            average_average_nn_stretch(h)
        )

    def test_suffix_added(self, tmp_path):
        u = Universe(d=2, side=4)
        path = save_curve(RandomCurve(u), tmp_path / "r")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_random_curve_roundtrip(self, tmp_path):
        u = Universe(d=2, side=5)
        curve = RandomCurve(u, seed=11)
        loaded = load_curve(save_curve(curve, tmp_path / "rand.npz"))
        idx = np.arange(u.n)
        assert np.array_equal(loaded.coords(idx), curve.coords(idx))


class TestValidation:
    def test_corrupted_grid_rejected(self, tmp_path):
        u = Universe(d=2, side=2)
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            key_grid=np.zeros((2, 2), dtype=np.int64),  # not a bijection
            d=np.int64(2),
            side=np.int64(2),
            name=np.bytes_(b"bad"),
            format_version=np.int64(1),
        )
        with pytest.raises(ValueError, match="bijection"):
            load_curve(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "incomplete.npz"
        np.savez_compressed(path, key_grid=np.arange(4).reshape(2, 2))
        with pytest.raises(ValueError, match="missing field"):
            load_curve(path)

    def test_unknown_version_rejected(self, tmp_path):
        u = Universe(d=2, side=2)
        path = save_curve(ZCurve(u), tmp_path / "v.npz")
        with np.load(path) as data:
            fields = dict(data)
        fields["format_version"] = np.int64(999)
        np.savez_compressed(path, **fields)
        with pytest.raises(ValueError, match="version"):
            load_curve(path)
