"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_survey_defaults(self):
        args = build_parser().parse_args(["survey"])
        assert args.d == 2
        assert args.side == 8

    def test_render_curve_choice(self):
        args = build_parser().parse_args(["render", "--curve", "hilbert"])
        assert args.curve == "hilbert"

    def test_render_rejects_unknown_curve(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "--curve", "nope"])


class TestCommands:
    def test_survey(self, capsys):
        assert main(["survey", "-d", "2", "--side", "4"]) == 0
        out = capsys.readouterr().out
        assert "Davg" in out
        assert "z" in out

    def test_survey_allpairs(self, capsys):
        assert main(["survey", "-d", "2", "--side", "4", "--allpairs"]) == 0
        out = capsys.readouterr().out
        assert "str_M" in out

    def test_bounds(self, capsys):
        assert main(["bounds", "-d", "3", "--side", "4"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out

    def test_render_keys(self, capsys):
        assert main(["render", "--curve", "z", "--side", "4"]) == 0
        out = capsys.readouterr().out
        assert "15" in out

    def test_render_path(self, capsys):
        assert (
            main(["render", "--curve", "hilbert", "--side", "4", "--path"])
            == 0
        )
        out = capsys.readouterr().out
        assert "→" in out or "↑" in out

    def test_partition(self, capsys):
        assert main(["partition", "--side", "8", "--parts", "4"]) == 0
        out = capsys.readouterr().out
        assert "edge_cut" in out

    def test_certificate(self, capsys):
        assert main(["certificate", "--curve", "z", "--side", "8"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1 holds" in out
        assert "True" in out

    def test_profile(self, capsys):
        assert main(["profile", "--curve", "z", "--side", "8"]) == 0
        out = capsys.readouterr().out
        assert "E[dpi/d | d=r]" in out

    def test_optimal(self, capsys):
        assert main(
            ["optimal", "--side", "4", "--iterations", "500", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "best D^avg found" in out
        assert "best / bound" in out

    def test_export_roundtrip(self, capsys, tmp_path):
        from repro.io import load_curve

        out_path = tmp_path / "curve.npz"
        assert main(
            ["export", "--curve", "hilbert", "--side", "8", "--out", str(out_path)]
        ) == 0
        loaded = load_curve(out_path)
        assert loaded.name == "hilbert"
        assert loaded.universe.side == 8

    def test_heatmap(self, capsys):
        assert main(["heatmap", "--curve", "hilbert", "--side", "16"]) == 0
        out = capsys.readouterr().out
        assert "delta^avg" in out
        lines = [l for l in out.splitlines() if not l.startswith("#")]
        assert len(lines) == 16

    def test_heatmap_rejects_3d(self, capsys):
        assert main(["heatmap", "--curve", "z", "-d", "3", "--side", "4"]) == 2

    def test_error_exit_code(self, capsys):
        # Z curve on a non power-of-two grid -> clean error, exit 2.
        assert main(["render", "--curve", "z", "--side", "6"]) == 2
        assert "error" in capsys.readouterr().err

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bounds", "--side", "4"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "Theorem 1" in proc.stdout


class TestSweepCommand:
    def test_sweep_defaults(self, capsys):
        assert main(["sweep"]) == 0
        out = capsys.readouterr().out
        assert "davg" in out
        assert "z" in out

    def test_sweep_grid_and_specs(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--dims", "2,3",
                    "--sides", "4,8",
                    "--curves", "z,random:seed=3",
                    "--metrics", "davg,davg_ratio",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "random:seed=3" in out
        assert "davg_ratio" in out

    def test_sweep_reports_skipped(self, capsys):
        assert (
            main(["sweep", "--sides", "9", "--curves", "z,peano"]) == 0
        )
        out = capsys.readouterr().out
        assert "peano" in out
        assert "skipped z" in out

    def test_sweep_unknown_metric_errors(self, capsys):
        assert main(["sweep", "--metrics", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown metrics" in err

    def test_sweep_processes(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--sides", "4",
                    "--curves", "z,simple",
                    "--processes", "2",
                ]
            )
            == 0
        )
        assert "z" in capsys.readouterr().out

    def test_sweep_processes_shared_default_no_warning(self, capsys):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # pooling-bypass must not fire
            assert (
                main(
                    [
                        "sweep",
                        "--sides", "8",
                        "--curves", "z,hilbert",
                        "--processes", "2",
                        "--stats",
                    ]
                )
                == 0
            )
        out = capsys.readouterr().out
        assert "shared=" in out  # CacheStats repr carries shared counter

    def test_sweep_no_shared_opts_out(self, capsys):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # CLI opts out of pooling too
            assert (
                main(
                    [
                        "sweep",
                        "--sides", "4",
                        "--curves", "z",
                        "--processes", "2",
                        "--no-shared",
                    ]
                )
                == 0
            )
        assert "z" in capsys.readouterr().out

    def test_sweep_multi_kwarg_specs_survive_comma_split(self, capsys):
        # A bare key=value chunk belongs to the preceding spec, for
        # both --curves and --metrics.
        assert (
            main(
                [
                    "sweep",
                    "--sides", "8",
                    "--curves", "z,reflected:inner=hilbert,axes=0",
                    "--metrics", "davg,dilation:window=4,metric=euclidean",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reflected:inner=hilbert,axes=0" in out
        assert "dilation:window=4,metric=euclidean" in out

    def test_spec_split_handles_colon_inside_value(self):
        # kwarg order must not matter: a key=value chunk whose value
        # carries a colon (nested spec) still continues the prior spec.
        from repro.cli import build_parser

        ns = build_parser().parse_args(
            [
                "sweep",
                "--curves", "reflected:axes=0,inner=random:seed=3,z",
            ]
        )
        assert ns.curves == [
            "reflected:axes=0,inner=random:seed=3",
            "z",
        ]

    def test_sweep_transform_spec(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--sides", "8",
                    "--curves", "hilbert,reversed:inner=hilbert",
                    "--metrics", "davg",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "reversed:inner=hilbert" in out

    def test_sweep_help_describes_auto_selection(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--help"])
        out = capsys.readouterr().out
        assert "--shared" in out and "--no-shared" in out
        assert "auto-select" in out  # chunked auto-selection described
        assert "shared memory" in out


class TestRegistryCommands:
    def test_metrics_lists_registry(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "dilation" in out
        assert "window=1" in out
        assert "partition" in out
        assert "parts=8" in out
        assert "Definition 2" in out

    def test_curves_lists_capabilities(self, capsys):
        assert main(["curves"]) == 0
        out = capsys.readouterr().out
        assert "hilbert" in out
        assert "2^m" in out
        assert "3^m" in out  # peano
        assert "min_side" in out
        assert "reversed" not in out  # hidden wrappers stay out

    def test_metrics_markdown_reference(self, capsys):
        assert main(["metrics", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Sweep metric reference")
        assert "Auto-generated" in out
        assert "| `davg` |" in out
        assert "`window=1,metric=manhattan`" in out

    def test_curves_markdown_reference(self, capsys):
        assert main(["curves", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Curve reference")
        assert "| `hilbert` |" in out
        assert "## Transform wrappers" in out
        assert "| `reversed` |" in out  # hidden wrappers documented here


class TestSweepMetricSpecs:
    def test_sweep_parameterized_metrics(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--sides", "8",
                    "--curves", "z,hilbert",
                    "--metrics", "davg,dilation:window=16,partition:parts=8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "dilation:window=16" in out
        assert "partition:parts=8" in out

    def test_sweep_stats_flag(self, capsys):
        assert (
            main(
                ["sweep", "--sides", "4", "--curves", "z,simple", "--stats"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine cache:" in out
        assert "hit_rate=" in out

    def test_sweep_no_pool(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--sides", "4",
                    "--curves", "z",
                    "--no-pool",
                    "--stats",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine cache:" in out

    def test_sweep_bad_metric_param_errors(self, capsys):
        assert main(["sweep", "--metrics", "davg:bogus=1"]) == 2
        err = capsys.readouterr().err
        assert "parameter" in err

    def test_sweep_bad_metric_value_errors(self, capsys):
        assert main(["sweep", "--metrics", "dilation:window=1.5"]) == 2
        err = capsys.readouterr().err
        assert "expects int" in err
